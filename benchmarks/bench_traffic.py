"""E11 — batched traffic engine vs per-pair path resolution.

The vectorized traffic engine (``repro.routing.engine``) claims O(V) scatter
per unique demand source where the per-pair path pays one predecessor-tree
walk, three list builds, and per-hop ``Link``/dict updates per pair.  This
benchmark:

1. runs the E11 engine suite (one-search-per-source, ECMP conservation, and
   demand-model gates; records land in ``RESULTS/E11/``);
2. times both assignment methods on the same geometric instance — n=2000
   nodes full, n=400 smoke, with a hub-heavy integer-volume demand matrix —
   and gates the speedup (>=10x full, >=3x smoke) with **bit-identical**
   link-load vectors: Euclidean lengths make shortest paths unique (exact
   ties have measure zero) so both methods load the same paths, and integral
   volumes make the per-edge sums exact in floating point regardless of
   accumulation order, so the vectors must agree to the last bit;
3. routes a sample of single pairs in ECMP mode over hop weights and asserts
   per-pair conservation to 1e-9: volume out of the source, volume into the
   target, and total volume-hops all equal the pair's demand (times its hop
   distance);
4. when scipy is available, routes the same compiled demand through both
   engine backends and asserts the numpy batch path actually engaged
   (``batch_dijkstra_calls``; no silent fallback) with edge loads within
   1e-9 of the pure-Python reference (bit-identical here: integral volumes
   on tie-free Euclidean weights).

Writes ``BENCH_E11.json`` and a text table under ``benchmarks/results/``.
"""

from __future__ import annotations

import random
import sys
from math import inf

from repro.experiments.reporting import (
    emit_rows,
    experiment_bench_payload,
    print_experiment,
    timed,
    write_bench_json,
)
from repro.experiments.runner import run_experiment
from repro.geography.demand import DemandMatrix
from repro.routing.assignment import assign_demand
from repro.routing.engine import compile_demand, route_demand
from repro.topology.compiled import KERNEL_COUNTERS, dijkstra_indices, have_numpy_backend
from repro.topology.graph import Topology

NUM_NODES = 2000
SMOKE_NUM_NODES = 400
NUM_SOURCES = 30
SMOKE_NUM_SOURCES = 12
SEED = 61
SPEEDUP_FLOOR = 10.0
SMOKE_SPEEDUP_FLOOR = 3.0
ECMP_SAMPLE_PAIRS = 60
CONSERVATION_RTOL = 1e-9


def build_instance(num_nodes: int, num_sources: int, seed: int):
    """A geometric connected topology plus an integer-volume demand matrix.

    Random tree + chords with Euclidean lengths; ``num_sources`` hub nodes
    each send traffic to every other node (the content-distribution pattern
    that makes per-pair routing expensive: few searches, many pairs).
    Volumes are integral so load sums are exact in any accumulation order.
    """
    rng = random.Random(seed)
    topology = Topology(name=f"traffic-{num_nodes}")
    for i in range(num_nodes):
        topology.add_node(i, location=(rng.random(), rng.random()))
    for i in range(1, num_nodes):
        topology.add_link(i, rng.randrange(i))
    added = 0
    while added < num_nodes // 2:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v and not topology.has_link(u, v):
            topology.add_link(u, v)
            added += 1

    endpoints = [str(i) for i in range(num_nodes)]
    hubs = rng.sample(range(num_nodes), num_sources)
    sources, targets, volumes = [], [], []
    for hub in hubs:
        for other in range(num_nodes):
            if other == hub:
                continue
            sources.append(min(hub, other))
            targets.append(max(hub, other))
            volumes.append(float(rng.randint(1, 16)))
    demand = DemandMatrix.from_arrays(endpoints, sources, targets, volumes)
    endpoint_map = {str(i): i for i in range(num_nodes)}
    return topology, demand, endpoint_map


def time_methods(num_nodes: int, num_sources: int, seed: int):
    """Time per-pair vs batched assignment; assert bit-identical loads."""
    topology, demand, endpoint_map = build_instance(num_nodes, num_sources, seed)
    topology.compiled()  # compile outside both measured windows

    t_reference, _ = timed(
        lambda: assign_demand(topology, demand, endpoint_map, method="per-pair")
    )
    reference_loads = [link.load for link in topology.links()]

    KERNEL_COUNTERS.reset()
    t_batched, result = timed(
        lambda: assign_demand(topology, demand, endpoint_map, method="batched")
    )
    counters = KERNEL_COUNTERS.snapshot()
    batched_loads = [link.load for link in topology.links()]

    assert batched_loads == reference_loads, (
        "batched link-load vector diverged from the per-pair reference "
        "(integral volumes: sums must be exact)"
    )
    # One search per unique *oriented* source: compilation turns the
    # hub-to-all matrix into one search per hub.
    unique_sources = len(set(compile_demand(topology, demand, endpoint_map).sources))
    assert counters["traffic_batched_sources"] == unique_sources
    assert counters["single_source"] == unique_sources
    assert counters["traffic_assigned_pairs"] == sum(1 for _ in demand.pairs())
    assert not result.unrouted_pairs
    return {
        "nodes": num_nodes,
        "links": topology.num_links,
        "pairs": counters["traffic_assigned_pairs"],
        "unique_sources": unique_sources,
        "per_pair_seconds": t_reference,
        "batched_seconds": t_batched,
        "speedup": t_reference / t_batched,
        "routed_volume": result.routed_volume,
        "bit_identical_loads": True,
    }


def check_ecmp_conservation(num_nodes: int, seed: int, sample_pairs: int):
    """Route single pairs in ECMP mode; volumes must be conserved per pair."""
    topology, demand, endpoint_map = build_instance(num_nodes, 2, seed + 1)
    graph = topology.compiled()
    weights = graph.edge_weights(lambda link: 1.0)
    rng = random.Random(seed)
    pairs = list(demand.pairs())
    checked = 0
    max_error = 0.0
    for a, b, volume in rng.sample(pairs, min(sample_pairs, len(pairs))):
        single = DemandMatrix.from_arrays([a, b], [0], [1], [volume])
        compiled = compile_demand(topology, single, {a: endpoint_map[a], b: endpoint_map[b]})
        flow = route_demand(compiled, weight="hops", mode="ecmp")
        source = graph.index_of[endpoint_map[a]]
        target = graph.index_of[endpoint_map[b]]
        dist, _, _ = dijkstra_indices(graph, source, weights)
        assert dist[target] != inf
        incident_source = 0.0
        incident_target = 0.0
        for e in range(graph.num_edges):
            if source in (graph.edge_u[e], graph.edge_v[e]):
                incident_source += flow.edge_loads[e]
            if target in (graph.edge_u[e], graph.edge_v[e]):
                incident_target += flow.edge_loads[e]
        tolerance = CONSERVATION_RTOL * max(1.0, volume)
        for observed, expected in (
            (incident_source, volume),
            (incident_target, volume),
            (sum(flow.edge_loads), volume * dist[target]),
        ):
            error = abs(observed - expected)
            max_error = max(max_error, error / max(1.0, expected))
            assert error <= tolerance * max(1.0, dist[target]), (a, b, observed, expected)
        checked += 1
    return {"pairs_checked": checked, "max_relative_error": max_error}


def check_backend_parity(num_nodes: int, seed: int):
    """numpy batch routing must engage and match the reference to 1e-9.

    Integral volumes on tie-free Euclidean weights mean the vectors are in
    fact bit-identical; the 1e-9 gate is the documented contract, not the
    expected error.  Skipped (recorded, not silent) when scipy is absent —
    CI installs scipy, so the bench matrix always exercises the batch path.
    """
    if not have_numpy_backend():
        return {"available": False}
    topology, demand, endpoint_map = build_instance(num_nodes, 4, seed + 2)
    compiled = compile_demand(topology, demand, endpoint_map)
    reference = route_demand(compiled, backend="python")
    KERNEL_COUNTERS.reset()
    batched = route_demand(compiled, backend="numpy")
    counters = KERNEL_COUNTERS.snapshot()
    assert counters["batch_dijkstra_calls"] >= 1, "numpy batch path did not engage"
    reference_loads = reference.loads_list()
    max_diff = max(
        (abs(a - b) for a, b in zip(reference_loads, batched.loads_list())),
        default=0.0,
    )
    scale = max(1.0, max(reference_loads, default=0.0))
    assert max_diff <= 1e-9 * scale, f"backend load divergence {max_diff}"
    return {
        "available": True,
        "batch_calls": counters["batch_dijkstra_calls"],
        "max_abs_diff": max_diff,
    }


def run_benchmark(smoke: bool = False):
    num_nodes = SMOKE_NUM_NODES if smoke else NUM_NODES
    num_sources = SMOKE_NUM_SOURCES if smoke else NUM_SOURCES
    timing = time_methods(num_nodes, num_sources, SEED)
    ecmp = check_ecmp_conservation(
        SMOKE_NUM_NODES, SEED, ECMP_SAMPLE_PAIRS if not smoke else 20
    )
    results = {
        "mode": "smoke" if smoke else "full",
        "timing": timing,
        "ecmp_conservation": ecmp,
        "backend_parity": check_backend_parity(SMOKE_NUM_NODES, SEED),
    }
    rows = [
        {
            "assignment": f"demand routing (n={num_nodes}, {timing['pairs']} pairs)",
            "per_pair_s": round(timing["per_pair_seconds"], 3),
            "batched_s": round(timing["batched_seconds"], 3),
            "speedup": round(timing["speedup"], 1),
            "sources": timing["unique_sources"],
            "bit_identical": timing["bit_identical_loads"],
            "ecmp_pairs_ok": ecmp["pairs_checked"],
        }
    ]
    return results, rows


def check_acceptance(results, smoke: bool = False):
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    timing = results["timing"]
    assert timing["speedup"] >= floor, (
        f"batched assignment speedup {timing['speedup']:.1f}x "
        f"under the {floor}x floor"
    )
    assert timing["bit_identical_loads"]
    assert results["ecmp_conservation"]["max_relative_error"] <= CONSERVATION_RTOL
    parity = results["backend_parity"]
    if parity["available"]:
        assert parity["batch_calls"] >= 1
        assert parity["max_abs_diff"] <= CONSERVATION_RTOL * SMOKE_NUM_NODES


def main(smoke: bool = False, jobs: int = 1, force: bool = False):
    engine_result = run_experiment("E11", smoke=smoke, jobs=jobs, force=force)
    print_experiment(engine_result)
    results, rows = run_benchmark(smoke=smoke)
    check_acceptance(results, smoke=smoke)
    results["experiment"] = experiment_bench_payload(engine_result)
    path = write_bench_json("E11", results)
    emit_rows(
        "E11",
        "batched vs per-pair demand assignment",
        rows,
        slug="traffic",
    )
    print(f"\nwrote {path}")


def test_traffic_engine():
    """Equality, conservation, and relaxed speedup gates at the CI size."""
    main(smoke=True)


if __name__ == "__main__":
    argv = sys.argv[1:]
    jobs = 1
    if "--jobs" in argv:
        jobs = int(argv[argv.index("--jobs") + 1])
    main(smoke="--smoke" in argv, jobs=jobs, force="--force" in argv)
