"""E10 — move-based simulated annealing vs copy-based full re-evaluation.

The incremental objective engine (``repro.optimization.incremental``) claims
O(Δ) per candidate where the copy-based search pays O(copy + full
evaluation).  This benchmark:

1. runs the E10 engine suite (score/edge/per-move equality gates plus the
   ISP design-refinement point; records land in ``RESULTS/E10/``);
2. times both searches on the same cable-plan annealing instance — n=2000
   full, n=300 smoke — and gates the speedup (>=10x full, >=3x smoke) with
   score-identical best designs per seed;
3. snapshots ``KERNEL_COUNTERS`` around the move-based run and asserts
   ``objective_delta_evals`` dwarfs ``objective_full_evals``.

Writes ``BENCH_E10.json`` and a text table under ``benchmarks/results/``.
"""

from __future__ import annotations

import random
import sys

from repro.experiments.reporting import (
    emit_rows,
    experiment_bench_payload,
    print_experiment,
    timed,
    write_bench_json,
)
from repro.experiments.runner import run_experiment
from repro.experiments.suites.e10_local_search import (
    SCORE_RTOL,
    apply_move_to_topology,
    build_anneal_instance,
    draw_move,
    edge_signature,
    make_objective,
)
from repro.optimization.incremental import IncrementalState
from repro.optimization.local_search import (
    simulated_annealing,
    simulated_annealing_moves,
)
from repro.topology.compiled import KERNEL_COUNTERS

NUM_NODES = 2000
SMOKE_NUM_NODES = 300
ITERATIONS = 1500
SMOKE_ITERATIONS = 500
SEED = 47
SPEEDUP_FLOOR = 10.0
SMOKE_SPEEDUP_FLOOR = 3.0


def time_pair(size: int, objective_name: str, iterations: int, seed: int):
    """Time the copy-based and move-based searches on one instance."""
    base_topology, base_context = build_anneal_instance(size, seed)
    objective = make_objective(objective_name)

    def neighbor(current, prng):
        candidate = current.copy()
        apply_move_to_topology(candidate, draw_move(candidate, prng, base_context))
        return candidate

    t_base, baseline = timed(
        lambda: simulated_annealing(
            base_topology,
            objective.evaluate,
            neighbor,
            max_iterations=iterations,
            rng=random.Random(seed),
        )
    )

    move_topology, move_context = build_anneal_instance(size, seed)
    KERNEL_COUNTERS.reset()
    t_move, incremental = timed(
        lambda: simulated_annealing_moves(
            IncrementalState(move_topology, make_objective(objective_name)),
            lambda st, prng: draw_move(st.topology, prng, move_context),
            max_iterations=iterations,
            rng=random.Random(seed),
        )
    )
    counters = KERNEL_COUNTERS.snapshot()

    scale = max(1.0, abs(baseline.best_cost))
    assert abs(baseline.best_cost - incremental.best_cost) <= SCORE_RTOL * scale, (
        baseline.best_cost,
        incremental.best_cost,
    )
    assert edge_signature(baseline.best_solution) == edge_signature(
        incremental.best_solution
    ), "best designs diverged between the copy-based and move-based searches"
    assert baseline.accepted_moves == incremental.accepted_moves
    return {
        "size": size,
        "objective": objective_name,
        "iterations": iterations,
        "copy_based_seconds": t_base,
        "move_based_seconds": t_move,
        "speedup": t_base / t_move,
        "best_score": baseline.best_cost,
        "accepted_moves": baseline.accepted_moves,
        "objective_delta_evals": counters["objective_delta_evals"],
        "objective_full_evals": counters["objective_full_evals"],
    }


def run_benchmark(smoke: bool = False):
    size = SMOKE_NUM_NODES if smoke else NUM_NODES
    iterations = SMOKE_ITERATIONS if smoke else ITERATIONS
    results = {"mode": "smoke" if smoke else "full", "timings": {}}
    rows = []
    for objective_name in ("cost", "profit"):
        timing = time_pair(size, objective_name, iterations, SEED)
        results["timings"][objective_name] = timing
        rows.append(
            {
                "search": f"simulated annealing ({objective_name}, n={size})",
                "copy_s": round(timing["copy_based_seconds"], 3),
                "move_s": round(timing["move_based_seconds"], 3),
                "speedup": round(timing["speedup"], 1),
                "delta_evals": timing["objective_delta_evals"],
                "full_evals": timing["objective_full_evals"],
            }
        )
    return results, rows


def check_acceptance(results, smoke: bool = False):
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    for objective_name, timing in results["timings"].items():
        assert timing["speedup"] >= floor, (
            f"{objective_name}: move-based annealing speedup "
            f"{timing['speedup']:.1f}x under the {floor}x floor"
        )
        # The counters must show the O(Δ) story: every candidate was a delta
        # evaluation, with one full evaluation for the initial state build.
        assert timing["objective_delta_evals"] >= 50 * max(
            1, timing["objective_full_evals"]
        ), timing
        assert timing["objective_full_evals"] <= 2, timing


def main(smoke: bool = False, jobs: int = 1, force: bool = False):
    engine_result = run_experiment("E10", smoke=smoke, jobs=jobs, force=force)
    print_experiment(engine_result)
    results, rows = run_benchmark(smoke=smoke)
    check_acceptance(results, smoke=smoke)
    results["experiment"] = experiment_bench_payload(engine_result)
    path = write_bench_json("E10", results)
    emit_rows(
        "E10",
        "move-based vs copy-based simulated annealing",
        rows,
        slug="local_search",
    )
    print(f"\nwrote {path}")


def test_local_search_engine():
    """Equality, counter, and relaxed speedup gates at the CI (smoke) size."""
    main(smoke=True)


if __name__ == "__main__":
    argv = sys.argv[1:]
    jobs = 1
    if "--jobs" in argv:
        jobs = int(argv[argv.index("--jobs") + 1])
    main(smoke="--smoke" in argv, jobs=jobs, force="--force" in argv)
