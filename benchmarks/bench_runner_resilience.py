"""Overhead and recovery benchmarks for the fault-tolerant sweep runner.

Measures what the work-queue engine (``repro.experiments.runner``) costs and
buys relative to the barrier ``pool.map`` runner it replaced, on a synthetic
"RSL" suite of sha256-chain tasks (~40-80 ms each — long enough to dominate
dispatch overhead, deterministic by construction):

* **fault-free overhead** — best-of-N wall clock of ``run_tasks`` (per-task
  dispatch + per-task persistence + liveness polling) vs. the barrier
  reference (one ``pool.map``, persist at the end), both at ``--jobs``
  workers on a cold store.  Gate: <= 5% overhead full, relaxed in smoke
  mode where per-task cost is too small to amortize CI noise.
* **resume after a crash** — populate the store, delete ~12.5% of the
  records (a sweep killed near the end), re-run with ``resume=True``.
  Gate: the resumed sweep costs <= 25% of the cold run full (<= 50% smoke).
* **chaos convergence** — a kill+raise fault plan against parallel workers
  must still produce a manifest byte-identical to a clean ``--jobs 1`` run.

Run directly (``python benchmarks/bench_runner_resilience.py``) for the full
24-task sweep, or with ``--smoke`` for the 8-task CI variant.  Writes
``BENCH_runner_resilience.json`` and a text table under
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import hashlib
import multiprocessing
import os
import tempfile
import time
from pathlib import Path

from repro.experiments import (
    ExperimentSuite,
    Fault,
    FaultPlan,
    ResultStore,
    register_suite,
    run_experiment,
    run_tasks,
)
from repro.experiments.reporting import emit_rows, write_bench_json
from repro.experiments.runner import execute_task
from repro.experiments.task import expand_grid

SUITE_ID = "RSL"
BASE_SEED = 23
SPIN = 100_000  # sha256-chain length per task; ~50-60 ms on CI hardware
FULL_TASKS = 24
SMOKE_TASKS = 8
HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _expand(smoke):
    count = SMOKE_TASKS if smoke else FULL_TASKS
    return expand_grid(SUITE_ID, BASE_SEED, {"i": list(range(count))})


def _run_point(point, seed):
    block = hashlib.sha256(f"{point['i']}:{seed}".encode()).digest()
    for _ in range(SPIN):
        block = hashlib.sha256(block).digest()
    return {"i": point["i"], "chain": block.hex()}


def _aggregate(records):
    return {"main": [{"i": r.payload["i"], "chain": r.payload["chain"][:16]} for r in records]}


register_suite(
    ExperimentSuite(
        scenario_id=SUITE_ID,
        title="fault-tolerant runner synthetic workload",
        expand=_expand,
        run_point=_run_point,
        aggregate=_aggregate,
        base_seed=BASE_SEED,
    )
)


def _barrier_reference(tasks, jobs: int) -> float:
    """The pre-PR runner semantics: one ``pool.map`` barrier, persist at the end."""
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp))
        start = time.perf_counter()
        if jobs > 1 and HAS_FORK:
            with multiprocessing.get_context("fork").Pool(processes=jobs) as pool:
                records = pool.map(execute_task, tasks)
        else:
            records = [execute_task(task) for task in tasks]
        for record in records:
            store.store(record)
        return time.perf_counter() - start


def _work_queue(tasks, jobs: int, faults: FaultPlan | None = None) -> float:
    """One cold run through the fault-tolerant work queue."""
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp))
        start = time.perf_counter()
        run_tasks(tasks, jobs=jobs, store=store, fault_plan=faults, retry_backoff=0.01)
        return time.perf_counter() - start


def run_benchmark(smoke: bool = False, jobs: int = 2):
    tasks = _expand(smoke)
    repeats = 2 if smoke else 3
    jobs = jobs if HAS_FORK else 1
    rows = []
    results = {
        "mode": "smoke" if smoke else "full",
        "cpus": os.cpu_count() or 1,
        "suite": {"tasks": len(tasks), "spin": SPIN, "jobs": jobs, "base_seed": BASE_SEED},
    }

    # --- fault-free overhead vs. the barrier runner --------------------
    # Interleaved best-of: alternating the two runners inside each repeat
    # cancels machine-load drift that sequential best-of blocks would
    # attribute to whichever runner went second.
    t_barrier = t_queue = float("inf")
    for _ in range(repeats):
        t_barrier = min(t_barrier, _barrier_reference(tasks, jobs))
        t_queue = min(t_queue, _work_queue(tasks, jobs))
    overhead = t_queue / t_barrier - 1.0
    results["overhead"] = {
        "barrier_seconds": t_barrier,
        "work_queue_seconds": t_queue,
        "overhead_fraction": overhead,
    }
    rows.append(
        {
            "measure": "fault-free sweep",
            "barrier_s": round(t_barrier, 3),
            "work_queue_s": round(t_queue, 3),
            "note": f"overhead {overhead:+.1%}",
        }
    )

    # --- resume after a crash ------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(Path(tmp))
        start = time.perf_counter()
        run_tasks(tasks, jobs=jobs, store=store)
        t_cold = time.perf_counter() - start
        victims = tasks[::8]  # ~12.5%: a sweep killed near the end
        for task in victims:
            store.record_path(SUITE_ID, task.digest).unlink()
        start = time.perf_counter()
        report = run_tasks(tasks, jobs=jobs, store=store, resume=True)
        t_resume = time.perf_counter() - start
    assert report.resumed == len(tasks) - len(victims), report
    assert report.executed == len(victims), report
    results["resume"] = {
        "cold_seconds": t_cold,
        "resume_seconds": t_resume,
        "recomputed_tasks": len(victims),
        "resumed_tasks": report.resumed,
        "resume_fraction": t_resume / t_cold,
    }
    rows.append(
        {
            "measure": "resume after crash",
            "barrier_s": round(t_cold, 3),
            "work_queue_s": round(t_resume, 3),
            "note": f"{len(victims)}/{len(tasks)} tasks recomputed",
        }
    )

    # --- chaos convergence ---------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        clean_dir = Path(tmp) / "clean"
        chaos_dir = Path(tmp) / "chaos"
        run_experiment(SUITE_ID, smoke=smoke, jobs=1, results_dir=clean_dir)
        faults = {tasks[3].digest: [Fault("raise", message="chaos")]}
        if HAS_FORK:
            faults[tasks[1].digest] = [Fault("kill")]
        chaos = run_experiment(
            SUITE_ID,
            smoke=smoke,
            jobs=jobs,
            results_dir=chaos_dir,
            fault_plan=FaultPlan(faults),
            retry_backoff=0.01,
        )
        clean_bytes = (clean_dir / SUITE_ID / "manifest.json").read_bytes()
        chaos_bytes = (chaos_dir / SUITE_ID / "manifest.json").read_bytes()
    assert chaos_bytes == clean_bytes, "chaos manifest diverged from clean serial run"
    assert chaos.report.retries == len(faults), chaos.report
    results["chaos"] = {
        "injected_faults": len(faults),
        "retries": chaos.report.retries,
        "manifest_identical": True,
    }
    rows.append(
        {
            "measure": "chaos convergence",
            "barrier_s": "-",
            "work_queue_s": "-",
            "note": f"{len(faults)} faults, manifest byte-identical",
        }
    )
    return results, rows


def check_acceptance(results, smoke: bool = False):
    # The 5% ceiling needs the workers to actually run in parallel with a
    # spare core for the parent; on an oversubscribed box (cpus <= jobs)
    # scheduler contention swings both runners by >10% run-to-run, so only
    # gross regressions (e.g. an accidental barrier) are gated there.  Smoke
    # sweeps are likewise too short to amortize CI timing noise.
    contended = results["cpus"] <= results["suite"]["jobs"]
    overhead_ceiling = 0.50 if (smoke or contended) else 0.05
    resume_ceiling = 0.50 if smoke else 0.25
    assert results["overhead"]["overhead_fraction"] <= overhead_ceiling, results["overhead"]
    assert results["resume"]["resume_fraction"] <= resume_ceiling, results["resume"]
    assert results["chaos"]["manifest_identical"]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fault-tolerant runner overhead/recovery benchmarks."
    )
    parser.add_argument("--smoke", action="store_true", help="reduced CI sweep")
    parser.add_argument("--jobs", type=int, default=2, help="worker processes")
    args = parser.parse_args(argv)
    results, rows = run_benchmark(smoke=args.smoke, jobs=args.jobs)
    check_acceptance(results, smoke=args.smoke)
    path = write_bench_json("runner_resilience", results)
    emit_rows(
        "E-resilience",
        "fault-tolerant work queue vs barrier runner (%d tasks, %d workers)"
        % (results["suite"]["tasks"], results["suite"]["jobs"]),
        rows,
        slug="runner_resilience",
    )
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main()
