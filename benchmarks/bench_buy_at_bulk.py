"""E2 — Buy-at-bulk access design degree distributions (paper §4.2).

Paper claim: "the approximation method in [24] yields tree topologies with
exponential node degree distributions" under fictitious-but-realistic cable
parameters.

The benchmark solves single-sink instances at several customer counts and
placements with the Meyerson-style incremental algorithm and records, per
instance: tree-ness, the tail verdict, the exponential rate, and the log-log
vs log-linear CCDF fit quality (exponential ⇒ the log-linear fit wins).
"""

import pytest

from _report import emit_rows
from repro.core import random_instance, solve_meyerson
from repro.metrics import (
    ccdf_linear_fit_r2,
    classify_tail,
    topology_degree_ccdf,
)
from repro.workloads import buy_at_bulk_scenario

SCENARIO = buy_at_bulk_scenario()
CUSTOMER_COUNTS = SCENARIO.parameters["customer_counts"]
SEED = SCENARIO.parameters["seed"]
PLACEMENTS = SCENARIO.parameters["placements"]


def run_series():
    rows = []
    for placement in PLACEMENTS:
        clustered = placement == "clustered"
        for count in CUSTOMER_COUNTS:
            instance = random_instance(count, seed=SEED + count, clustered=clustered)
            solution = solve_meyerson(instance, seed=SEED + count)
            degrees = solution.topology.degree_sequence()
            ccdf = topology_degree_ccdf(solution.topology)
            tail = classify_tail(degrees)
            rows.append(
                {
                    "placement": placement,
                    "customers": count,
                    "is_tree": solution.topology.is_tree(),
                    "max_degree": max(degrees),
                    "tail_verdict": tail.verdict,
                    "exponential_rate": round(tail.exponential.rate, 3),
                    "r2_loglinear": round(ccdf_linear_fit_r2(ccdf, log_x=False, log_y=True), 3),
                    "r2_loglog": round(ccdf_linear_fit_r2(ccdf, log_x=True, log_y=True), 3),
                    "cost": round(solution.total_cost(), 1),
                }
            )
    return rows


def test_buy_at_bulk_degree_distribution(benchmark):
    rows = benchmark(run_series)
    benchmark.extra_info["experiment"] = SCENARIO.experiment_id
    benchmark.extra_info["rows"] = rows

    emit_rows(
        SCENARIO.experiment_id,
        "buy-at-bulk access trees (Meyerson-style incremental)",
        rows,
    )

    # Paper §4.2: solutions are trees ...
    assert all(row["is_tree"] for row in rows)
    # ... and none of them exhibits a power-law degree tail;
    assert all(row["tail_verdict"] != "power-law" for row in rows)
    # the majority are positively classified as exponential.
    exponential = sum(1 for row in rows if row["tail_verdict"] == "exponential")
    assert exponential >= len(rows) / 2
    # No giant hub: max degree stays far below the customer count.
    assert all(row["max_degree"] < row["customers"] / 4 for row in rows)


def test_meyerson_solver_speed(benchmark):
    """Time a single 400-customer solve (the largest point in the series)."""
    instance = random_instance(max(CUSTOMER_COUNTS), seed=SEED)
    solution = benchmark(solve_meyerson, instance, SEED)
    assert solution.is_feasible()
