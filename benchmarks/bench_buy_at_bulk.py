"""E2 — Buy-at-bulk access design degree distributions (paper §4.2).

Paper claim: "the approximation method in [24] yields tree topologies with
exponential node degree distributions" under fictitious-but-realistic cable
parameters.

The sweep definition (placements × customer counts), the per-instance
Meyerson solve, and the tree/tail gates live in
:mod:`repro.experiments.suites.e2_buy_at_bulk`; this script drives them
through the orchestration engine and writes ``BENCH_E2.json``.
"""

from repro.experiments.reporting import bench_main, run_bench

EXPERIMENT = "E2"


def test_buy_at_bulk_degree_distribution():
    """The smoke sweep passes the tree/exponential-tail gates."""
    run_bench(EXPERIMENT, smoke=True)


if __name__ == "__main__":
    bench_main(EXPERIMENT)
