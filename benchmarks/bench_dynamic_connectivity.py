"""Dynamic-connectivity engine vs the legacy rebuild-based move engine.

The HDT structure (``repro.topology.dynconn``) claims O(log² n) per edge
deletion where the legacy engine paid a full O(V+E) reachability sweep plus
an O(V) union-find snapshot.  This benchmark pins the claim from two sides:

1. **Deletion-heavy local search** (n=2000 full, n=400 smoke): one
   pre-generated move trace — ≥50% ``RemoveLink``/``Rewire``, integral
   demands, ``CostObjective`` — replayed through both engines.  Gates: the
   dynconn engine is >=10x faster (>=2x smoke), its trajectory is
   **bit-identical** (per-move deltas, running score, final edge set), it
   never rebuilds reachability, and the legacy engine rebuilds on every
   deletion-bearing move.
2. **Failure-cascade fixed point** (n=10000 full, n=2000 smoke): the same
   provisioned surge cascaded to a fixed point under each engine (the
   legacy leg via ``REPRO_DYNCONN=0``).  Gates: per-round load hashes are
   byte-identical, the trip sequences agree, and the dynconn leg performs
   measurably fewer sweep-equivalent operations — zero linear-cost
   connectivity operations against the legacy leg's one rebuild (plus O(V)
   snapshot) per round, with the measured ETT ops per tripped link pinned
   under a polylog bound.  Wall-clock is reported, not gated — the cascade
   is dominated by routing, not connectivity.

Writes ``BENCH_dynconn.json`` and a text table under ``benchmarks/results/``.
Pure bookkeeping either way: the benchmark behaves identically under both
``REPRO_BACKEND`` settings (CI runs it on both legs).
"""

from __future__ import annotations

import math
import os
import random
import struct
import sys

from repro.core.objectives import CostObjective
from repro.economics.cables import default_catalog
from repro.economics.provisioning import provision_topology
from repro.experiments.reporting import emit_rows, timed, write_bench_json
from repro.geography.demand import DemandMatrix
from repro.optimization.incremental import (
    AddLink,
    IncrementalState,
    RemoveLink,
    Rewire,
)
from repro.routing.engine import route_demand
from repro.routing.temporal import failure_cascade
from repro.topology.compiled import KERNEL_COUNTERS
from repro.topology.graph import Topology
from repro.topology.node import NodeRole

NUM_NODES = 2000
SMOKE_NUM_NODES = 400
NUM_MOVES = 600
SMOKE_NUM_MOVES = 200
CASCADE_NUM_NODES = 10_000
SMOKE_CASCADE_NUM_NODES = 2_000
# The cable ladder's capacity steps are ~3.4-4x apart, so a provisioned
# link only trips when the surge outruns its band: 4x clears every step.
CASCADE_SURGE = 4.0
SEED = 59
SPEEDUP_FLOOR = 10.0
SMOKE_SPEEDUP_FLOOR = 2.0


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


def build_anneal_instance(size: int, seed: int) -> Topology:
    """An access tree plus chords with *integral* customer demands.

    Integral demands are exact in float and their component sums stay under
    2^53, so the dynconn engine's correctly-rounded fixed-point sums
    coincide bitwise with the legacy engine's accumulated floats — which is
    what lets the trajectory gate demand bit-identity, not tolerance.
    """
    rng = random.Random(seed)
    topology = Topology(name=f"dynconn-anneal-{size}")
    topology.add_node("core0", role=NodeRole.CORE, location=(0.5, 0.5))
    for i in range(size - 1):
        topology.add_node(
            f"c{i}",
            role=NodeRole.CUSTOMER,
            location=(rng.random(), rng.random()),
            demand=float(rng.randint(1, 9)),
        )
        target = "core0" if i == 0 else f"c{rng.randrange(i)}"
        topology.add_link(f"c{i}", target, install_cost=2.0, usage_cost=0.1)
    ids = [node.node_id for node in topology.nodes()]
    added = 0
    while added < size // 4:
        u, v = rng.sample(ids, 2)
        if not topology.has_link(u, v):
            topology.add_link(u, v, install_cost=2.0, usage_cost=0.1)
            added += 1
    return topology


def generate_trace(size: int, seed: int, num_moves: int):
    """A deletion-heavy apply/revert trace, valid from the seed instance.

    Generated against a throwaway mirror of the instance (link presence is
    all that move validity depends on), so both engines replay the exact
    same sequence.  Mix: 50% RemoveLink, ~15% Rewire, rest AddLink, with a
    20% revert after each applied move — well past the >=50%
    deletion-bearing floor once Rewire and reverts of AddLink are counted.
    """
    mirror = build_anneal_instance(size, seed)
    rng = random.Random(seed + 1)
    ids = [node.node_id for node in mirror.nodes()]
    trace = []
    undo = []  # inverse link ops so the mirror can follow reverts
    applied = deletions = 0
    while applied < num_moves:
        roll = rng.random()
        if roll < 0.50:
            link = rng.choice(list(mirror.links()))
            move = RemoveLink(link.source, link.target)
            mirror.remove_link(link.source, link.target)
            undo.append((("add", link.source, link.target),))
            deletions += 1
        elif roll < 0.65:
            leaves = [n for n in ids if mirror.degree(n) == 1]
            if not leaves:
                continue
            node = rng.choice(leaves)
            old = mirror.neighbors(node)[0]
            new = rng.choice([x for x in ids if x not in (node, old)])
            if mirror.has_link(node, new):
                continue
            move = Rewire(node, old, new)
            mirror.remove_link(node, old)
            mirror.add_link(node, new)
            undo.append((("remove", node, new), ("add", node, old)))
            deletions += 1
        else:
            u, v = rng.sample(ids, 2)
            if mirror.has_link(u, v):
                continue
            move = AddLink(u, v, install_cost=2.0, usage_cost=0.05)
            mirror.add_link(u, v)
            undo.append((("remove", u, v),))
        trace.append(("apply", move))
        applied += 1
        if rng.random() < 0.20:
            for op, a, b in undo.pop():
                if op == "add":
                    mirror.add_link(a, b)
                else:
                    mirror.remove_link(a, b)
            trace.append(("revert", None))
    return trace, deletions


def replay(state: IncrementalState, trace) -> list:
    deltas = []
    for op, move in trace:
        if op == "apply":
            deltas.append(state.apply(move))
        else:
            state.revert()
    return deltas


def time_engines(size: int, num_moves: int, seed: int):
    """Replay one trace through both engines; time, compare, and count."""
    trace, deletions = generate_trace(size, seed, num_moves)

    dyn_state = IncrementalState(
        build_anneal_instance(size, seed), CostObjective(), use_dynconn=True
    )
    before = KERNEL_COUNTERS.snapshot()
    t_dyn, dyn_deltas = timed(lambda: replay(dyn_state, trace))
    mid = KERNEL_COUNTERS.snapshot()
    legacy_state = IncrementalState(
        build_anneal_instance(size, seed), CostObjective(), use_dynconn=False
    )
    start = KERNEL_COUNTERS.snapshot()
    t_legacy, legacy_deltas = timed(lambda: replay(legacy_state, trace))
    after = KERNEL_COUNTERS.snapshot()

    # Bit-identical trajectories: every delta, the running score, the edges.
    assert [_bits(d) for d in dyn_deltas] == [_bits(d) for d in legacy_deltas]
    assert _bits(dyn_state.score) == _bits(legacy_state.score)
    assert list(dyn_state.topology.link_keys()) == list(
        legacy_state.topology.link_keys()
    )
    dyn_state.verify()
    legacy_state.verify()

    dyn_rebuilds = mid["reachability_rebuilds"] - before["reachability_rebuilds"]
    legacy_rebuilds = after["reachability_rebuilds"] - start["reachability_rebuilds"]
    assert dyn_rebuilds == 0, dyn_rebuilds
    assert legacy_rebuilds >= deletions, (legacy_rebuilds, deletions)
    return {
        "size": size,
        "moves": num_moves,
        "deletion_moves": deletions,
        "dynconn_seconds": t_dyn,
        "legacy_seconds": t_legacy,
        "speedup": t_legacy / t_dyn,
        "dynconn_rebuilds": dyn_rebuilds,
        "legacy_rebuilds": legacy_rebuilds,
        "dynconn_tree_ops": mid["dynconn_tree_ops"] - before["dynconn_tree_ops"],
        "replacement_searches": mid["dynconn_replacement_searches"]
        - before["dynconn_replacement_searches"],
        "trajectory_bit_identical": True,
    }


def build_cascade_instance(num_nodes: int, seed: int):
    """A provisioned geometric backbone plus its surged demand."""
    rng = random.Random(seed)
    topology = Topology(name=f"dynconn-cascade-{num_nodes}")
    for i in range(num_nodes):
        topology.add_node(i, location=(rng.random(), rng.random()))
    for i in range(1, num_nodes):
        topology.add_link(i, rng.randrange(i))
    added = 0
    while added < num_nodes // 2:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v and not topology.has_link(u, v):
            topology.add_link(u, v)
            added += 1
    endpoints = [str(i) for i in range(num_nodes)]
    chosen = set()
    while len(chosen) < num_nodes // 10:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v:
            chosen.add((min(u, v), max(u, v)))
    sources, targets, volumes = [], [], []
    for u, v in sorted(chosen):
        sources.append(u)
        targets.append(v)
        volumes.append(float(rng.randint(1, 16)))
    demand = DemandMatrix.from_arrays(endpoints, sources, targets, volumes)
    endpoint_map = {str(i): i for i in range(num_nodes)}
    base = route_demand(topology, demand, endpoint_map=endpoint_map, backend="python")
    provision_topology(topology, default_catalog(), flow=base)
    return topology, demand.scaled(CASCADE_SURGE), endpoint_map


def time_cascade(num_nodes: int, seed: int):
    """One surge cascaded to a fixed point under each engine."""
    topology, surge, endpoint_map = build_cascade_instance(num_nodes, seed)

    def run_leg():
        before = KERNEL_COUNTERS.snapshot()
        seconds, cascade = timed(
            lambda: failure_cascade(
                topology, surge, endpoint_map=endpoint_map, backend="python"
            )
        )
        after = KERNEL_COUNTERS.snapshot()
        return seconds, cascade, {k: after[k] - before[k] for k in after}

    t_dyn, dyn_cascade, dyn_spent = run_leg()
    saved = os.environ.get("REPRO_DYNCONN")
    os.environ["REPRO_DYNCONN"] = "0"
    try:
        t_legacy, legacy_cascade, legacy_spent = run_leg()
    finally:
        if saved is None:
            del os.environ["REPRO_DYNCONN"]
        else:
            os.environ["REPRO_DYNCONN"] = saved

    assert dyn_cascade.fixed_point and legacy_cascade.fixed_point
    assert dyn_cascade.total_trips > 0, "cascade instance must actually trip"
    assert dyn_cascade.step_hashes() == legacy_cascade.step_hashes()
    assert dyn_cascade.tripped_keys == legacy_cascade.tripped_keys
    assert dyn_spent["reachability_rebuilds"] == 0, dyn_spent
    assert legacy_spent["reachability_rebuilds"] > 0, legacy_spent
    # Sweep-equivalent operations: connectivity operations whose cost scales
    # linearly with the graph (a reachability sweep, or the O(V) union-find
    # snapshot that rides along with each one).  The legacy leg pays one per
    # cascade round; the dynconn leg pays none — every trip is O(polylog),
    # pinned by bounding its *measured* ETT ops per trip.  tree_ops spends
    # V-1 links on engine construction and mirrors the delete-phase work
    # once more in the restore unwind; the remainder is the deletions.
    trips = dyn_cascade.total_trips
    per_trip = (dyn_spent["dynconn_tree_ops"] - (num_nodes - 1)) / (2 * trips)
    assert per_trip <= 4 * math.log2(num_nodes), (per_trip, num_nodes)
    return {
        "size": num_nodes,
        "rounds": dyn_cascade.num_rounds,
        "total_trips": trips,
        "dynconn_seconds": t_dyn,
        "legacy_seconds": t_legacy,
        "round_hashes_identical": True,
        "dynconn_rebuilds": dyn_spent["reachability_rebuilds"],
        "legacy_rebuilds": legacy_spent["reachability_rebuilds"],
        "dynconn_tree_ops": dyn_spent["dynconn_tree_ops"],
        "tree_ops_per_trip": per_trip,
    }


def run_benchmark(smoke: bool = False):
    size = SMOKE_NUM_NODES if smoke else NUM_NODES
    moves = SMOKE_NUM_MOVES if smoke else NUM_MOVES
    cascade_size = SMOKE_CASCADE_NUM_NODES if smoke else CASCADE_NUM_NODES
    anneal = time_engines(size, moves, SEED)
    cascade = time_cascade(cascade_size, SEED + 1)
    results = {
        "mode": "smoke" if smoke else "full",
        "anneal": anneal,
        "cascade": cascade,
    }
    rows = [
        {
            "workload": f"deletion-heavy moves (n={anneal['size']})",
            "dynconn_s": round(anneal["dynconn_seconds"], 3),
            "legacy_s": round(anneal["legacy_seconds"], 3),
            "speedup": round(anneal["speedup"], 1),
            "rebuilds": f"{anneal['dynconn_rebuilds']}/{anneal['legacy_rebuilds']}",
        },
        {
            "workload": f"failure cascade (n={cascade['size']})",
            "dynconn_s": round(cascade["dynconn_seconds"], 3),
            "legacy_s": round(cascade["legacy_seconds"], 3),
            "speedup": "-",
            "rebuilds": f"{cascade['dynconn_rebuilds']}/{cascade['legacy_rebuilds']}",
        },
    ]
    return results, rows


def check_acceptance(results, smoke: bool = False):
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    anneal = results["anneal"]
    assert anneal["speedup"] >= floor, (
        f"dynconn engine speedup {anneal['speedup']:.1f}x under the {floor}x floor"
    )
    assert anneal["trajectory_bit_identical"]
    assert anneal["dynconn_rebuilds"] == 0
    assert anneal["legacy_rebuilds"] > 0
    assert 2 * anneal["deletion_moves"] >= anneal["moves"], anneal
    cascade = results["cascade"]
    assert cascade["round_hashes_identical"]
    # Measurably fewer sweep-equivalent operations: zero against one per
    # round, with the per-trip work pinned polylog by time_cascade.
    assert cascade["dynconn_rebuilds"] == 0
    assert cascade["dynconn_rebuilds"] < cascade["legacy_rebuilds"]
    assert cascade["tree_ops_per_trip"] <= 4 * math.log2(cascade["size"])


def main(smoke: bool = False):
    results, rows = run_benchmark(smoke=smoke)
    check_acceptance(results, smoke=smoke)
    path = write_bench_json("dynconn", results)
    emit_rows(
        "dynconn",
        "dynamic-connectivity engine vs rebuild-based deletions",
        rows,
        slug="dynamic_connectivity",
    )
    print(f"\nwrote {path}")


def test_dynamic_connectivity_engine():
    """Bit-identity, counter, and relaxed speedup gates at the CI size."""
    main(smoke=True)


if __name__ == "__main__":
    main(smoke="--smoke" in sys.argv[1:])
