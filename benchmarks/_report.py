"""Shared reporting helper for the benchmark harness.

pytest captures stdout of passing tests, so each benchmark both prints its
experiment table (visible with ``pytest -s``) and persists it under
``benchmarks/results/`` so the regenerated series are always available as
plain-text artifacts (referenced from EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence

RESULTS_DIR = Path(__file__).parent / "results"


def format_rows(rows: Sequence[Dict[str, object]], min_width: int = 10) -> List[str]:
    """Render a list of homogeneous dictionaries as aligned table lines."""
    if not rows:
        return ["(no rows)"]
    header = list(rows[0].keys())
    widths = {
        column: max(min_width, len(column), *(len(str(row[column])) for row in rows))
        for column in header
    }
    lines = ["  ".join(column.rjust(widths[column]) for column in header)]
    lines.append("  ".join("-" * widths[column] for column in header))
    for row in rows:
        lines.append("  ".join(str(row[column]).rjust(widths[column]) for column in header))
    return lines


def emit_rows(
    experiment_id: str,
    title: str,
    rows: Sequence[Dict[str, object]],
    slug: str = "",
) -> None:
    """Print an experiment table and persist it to ``benchmarks/results/``."""
    lines = [f"{experiment_id}: {title}", ""] + format_rows(rows)
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = f"_{slug}" if slug else ""
    path = RESULTS_DIR / f"{experiment_id}{suffix}.txt"
    path.write_text(text + "\n")


def emit_text(experiment_id: str, title: str, text: str, slug: str = "") -> None:
    """Print and persist free-form experiment output."""
    body = f"{experiment_id}: {title}\n\n{text}"
    print("\n" + body)
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = f"_{slug}" if slug else ""
    (RESULTS_DIR / f"{experiment_id}{suffix}.txt").write_text(body + "\n")
