"""Compiled graph backend vs. legacy object-graph kernels.

Compares the CSR-backed kernels introduced with ``repro.topology.compiled``
against the pure object-graph implementations they replaced (inlined below,
verbatim from the seed), on a 1000-node GLP topology:

* all-pairs shortest lengths (array API and dict API),
* random and targeted removal traces,
* customer→core demand routing, where the kernel invocation counters verify
  that one multi-source search replaces the per-customer single-source loop.

Run directly (``python benchmarks/bench_compiled_graph.py``) for the full
1000-node comparison with the >=5x speedup gates, or with ``--smoke`` for a
smaller CI variant that keeps the exactness and search-count gates but skips
the load-sensitive speedup thresholds.  Writes ``BENCH_compiled_graph.json``
and a text table under ``benchmarks/results/``.
"""

from __future__ import annotations

import heapq
import random
import sys

from repro.experiments.reporting import best_of, emit_rows, write_bench_json
from repro.generators.glp import GLPGenerator
from repro.metrics.resilience import removal_trace
from repro.optimization.shortest_path import (
    all_pairs_length_matrix,
    all_pairs_shortest_lengths,
)
from repro.routing.assignment import route_customer_demand_to_core
from repro.routing.paths import resolve_weight
from repro.topology.compiled import KERNEL_COUNTERS
from repro.topology.node import NodeRole

NUM_NODES = 1000
CORE_COUNT = 50
SMOKE_NUM_NODES = 400
SMOKE_CORE_COUNT = 30
SEED = 7
REPEATS = 3


def build_topology(num_nodes: int, core_count: int):
    topo = GLPGenerator().generate(num_nodes, seed=SEED)
    ranked = sorted(topo.nodes(), key=lambda n: topo.degree(n.node_id), reverse=True)
    for rank, node in enumerate(ranked):
        if rank < core_count:
            node.role = NodeRole.CORE
        else:
            node.role = NodeRole.CUSTOMER
            node.demand = 1.0
    return topo


# ----------------------------------------------------------------------
# Legacy kernels (seed implementations, object graph)
# ----------------------------------------------------------------------
def _default_weight(link):
    return link.length if link.length > 0 else 1.0


def legacy_dijkstra(topology, source, weight=None):
    if weight is None:
        weight = _default_weight
    distances = {source: 0.0}
    predecessors = {}
    visited = set()
    counter = 0
    heap = [(0.0, counter, source)]
    while heap:
        distance, _, current = heapq.heappop(heap)
        if current in visited:
            continue
        visited.add(current)
        for link in topology.incident_links(current):
            neighbor = link.other_end(current)
            if neighbor in visited:
                continue
            candidate = distance + weight(link)
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                predecessors[neighbor] = current
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return distances, predecessors


def legacy_all_pairs(topology):
    return {s: legacy_dijkstra(topology, s)[0] for s in topology.node_ids()}


def legacy_bfs_reachable(topology, source):
    adjacency = topology._adjacency
    visited = {source}
    queue = [source]
    head = 0
    while head < len(queue):
        current = queue[head]
        head += 1
        for neighbor in adjacency[current]:
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
    return visited


def legacy_largest_component_fraction(topology, original_size):
    if topology.num_nodes == 0 or original_size == 0:
        return 0.0
    remaining = set(topology.node_ids())
    best = 0
    while remaining:
        component = legacy_bfs_reachable(topology, next(iter(remaining)))
        best = max(best, len(component))
        remaining -= component
    return best / original_size


def legacy_disconnected_demand_fraction(topology, total_demand):
    if total_demand <= 0:
        return 0.0
    cores = [n.node_id for n in topology.nodes() if n.role == NodeRole.CORE]
    if not cores:
        return 0.0
    reachable = set()
    for core in cores:
        reachable.update(legacy_bfs_reachable(topology, core))
    connected = sum(
        n.demand
        for n in topology.nodes()
        if n.role == NodeRole.CUSTOMER and n.node_id in reachable
    )
    return 1.0 - connected / total_demand


def legacy_removal_trace(topology, strategy, steps=20, max_fraction=0.5, seed=0):
    working = topology.copy()
    original_size = topology.num_nodes
    total_demand = sum(
        n.demand for n in topology.nodes() if n.role == NodeRole.CUSTOMER
    )
    rng = random.Random(seed)
    removable = list(topology.node_ids())
    total_to_remove = min(int(max_fraction * original_size), len(removable))
    per_step = max(1, total_to_remove // steps)
    fractions = [0.0]
    largest = [legacy_largest_component_fraction(working, original_size)]
    demand_loss = [legacy_disconnected_demand_fraction(working, total_demand)]
    removed = 0
    if strategy == "random":
        rng.shuffle(removable)
    while removed < total_to_remove:
        batch = min(per_step, total_to_remove - removed)
        for _ in range(batch):
            if strategy == "targeted":
                candidates = [n for n in working.node_ids() if n in set(removable)]
                if not candidates:
                    break
                victim = max(candidates, key=working.degree)
                removable.remove(victim)
            else:
                victim = None
                while removable:
                    candidate = removable.pop()
                    if working.has_node(candidate):
                        victim = candidate
                        break
                if victim is None:
                    break
            if working.has_node(victim):
                working.remove_node(victim)
                removed += 1
        fractions.append(removed / original_size)
        largest.append(legacy_largest_component_fraction(working, original_size))
        demand_loss.append(legacy_disconnected_demand_fraction(working, total_demand))
        if not removable:
            break
    return fractions, largest, demand_loss


def legacy_route_customer_demand_to_core(topology):
    """Seed routing loop: one cached single-source search per customer,
    one distance query per (customer, core) pair."""
    cores = [n.node_id for n in topology.nodes() if n.role == NodeRole.CORE]
    customers = [
        n for n in topology.nodes() if n.role == NodeRole.CUSTOMER and n.demand > 0
    ]
    weight = resolve_weight(None)
    searches = 0
    queries = 0
    cache = {}
    routed = 0.0
    for customer in customers:
        if customer.node_id not in cache:
            cache[customer.node_id] = legacy_dijkstra(topology, customer.node_id, weight)
            searches += 1
        distances, _ = cache[customer.node_id]
        best = None
        best_distance = float("inf")
        for core in cores:
            queries += 1
            d = distances.get(core, float("inf"))
            if d < best_distance:
                best_distance = d
                best = core
        if best is not None and best_distance < float("inf"):
            routed += customer.demand
    return {"searches": searches, "queries": queries, "routed": routed}


# ----------------------------------------------------------------------
# Benchmark body
# ----------------------------------------------------------------------
def run_benchmark(smoke: bool = False):
    core_count = SMOKE_CORE_COUNT if smoke else CORE_COUNT
    repeats = 2 if smoke else REPEATS
    topo = build_topology(SMOKE_NUM_NODES if smoke else NUM_NODES, core_count)
    topo.compiled()  # compile outside the timed regions
    rows = []
    results = {
        "mode": "smoke" if smoke else "full",
        "topology": {
            "generator": "glp",
            "nodes": topo.num_nodes,
            "links": topo.num_links,
            "cores": core_count,
            "seed": SEED,
        },
    }

    # --- all-pairs shortest lengths -----------------------------------
    t_matrix, _ = best_of(lambda: all_pairs_length_matrix(topo), repeats=repeats)
    t_dicts, compiled_dicts = best_of(
        lambda: all_pairs_shortest_lengths(topo), repeats=repeats
    )
    t_legacy, legacy_dicts = best_of(lambda: legacy_all_pairs(topo), repeats=1)
    assert compiled_dicts == legacy_dicts, "all-pairs results diverge from legacy"
    results["all_pairs"] = {
        "legacy_seconds": t_legacy,
        "compiled_matrix_seconds": t_matrix,
        "compiled_dict_seconds": t_dicts,
        "speedup_matrix": t_legacy / t_matrix,
        "speedup_dict": t_legacy / t_dicts,
    }
    rows.append(
        {
            "kernel": "all_pairs (matrix API)",
            "legacy_s": round(t_legacy, 3),
            "compiled_s": round(t_matrix, 3),
            "speedup": round(t_legacy / t_matrix, 1),
        }
    )
    rows.append(
        {
            "kernel": "all_pairs (dict API)",
            "legacy_s": round(t_legacy, 3),
            "compiled_s": round(t_dicts, 3),
            "speedup": round(t_legacy / t_dicts, 1),
        }
    )

    # --- removal traces ------------------------------------------------
    results["removal_trace"] = {}
    for strategy in ("random", "targeted"):
        t_new, trace = best_of(
            lambda: removal_trace(
                topo, strategy=strategy, steps=20, max_fraction=0.5, seed=3
            ),
            repeats=repeats,
        )
        t_old, legacy = best_of(
            lambda: legacy_removal_trace(
                topo, strategy, steps=20, max_fraction=0.5, seed=3
            ),
            repeats=1,
        )
        if strategy == "random":
            # Same victims, same measurements: traces must agree exactly.
            assert trace.fractions_removed == legacy[0]
            assert trace.largest_component_fraction == legacy[1]
            assert trace.disconnected_demand_fraction == legacy[2]
        results["removal_trace"][strategy] = {
            "legacy_seconds": t_old,
            "compiled_seconds": t_new,
            "speedup": t_old / t_new,
        }
        rows.append(
            {
                "kernel": f"removal_trace ({strategy})",
                "legacy_s": round(t_old, 3),
                "compiled_s": round(t_new, 3),
                "speedup": round(t_old / t_new, 1),
            }
        )

    # --- customer→core routing: search counts --------------------------
    legacy_routing = legacy_route_customer_demand_to_core(topo)
    KERNEL_COUNTERS.reset()
    t_route, result = best_of(
        lambda: route_customer_demand_to_core(topo), repeats=repeats
    )
    multi = KERNEL_COUNTERS.multi_source
    single = KERNEL_COUNTERS.single_source
    assert multi == repeats and single == 0, (
        f"expected 1 multi-source search per run and no single-source runs, "
        f"got multi={multi} single={single} over {repeats} runs"
    )
    assert result.routed_volume == legacy_routing["routed"]
    t_route_legacy, _ = best_of(
        lambda: legacy_route_customer_demand_to_core(topo), repeats=1
    )
    results["route_customer_demand_to_core"] = {
        "customers": topo.num_nodes - core_count,
        "cores": core_count,
        "legacy_single_source_searches": legacy_routing["searches"],
        "legacy_distance_queries": legacy_routing["queries"],
        "compiled_multi_source_searches_per_run": multi // repeats,
        "compiled_single_source_searches_per_run": single,
        "legacy_seconds": t_route_legacy,
        "compiled_seconds": t_route,
        "speedup": t_route_legacy / t_route,
    }
    rows.append(
        {
            "kernel": "route_customer_demand_to_core",
            "legacy_s": round(t_route_legacy, 3),
            "compiled_s": round(t_route, 3),
            "speedup": round(t_route_legacy / t_route, 1),
        }
    )

    return results, rows


def check_acceptance(results, smoke: bool = False):
    # Speedup thresholds: full gates at n=1000; a laxer floor at the smaller,
    # load-sensitive CI size so regressions to the object-graph path still fail.
    floor = 2.0 if smoke else 5.0
    assert results["all_pairs"]["speedup_matrix"] >= floor, results["all_pairs"]
    for strategy in ("random", "targeted"):
        assert results["removal_trace"][strategy]["speedup"] >= floor, results[
            "removal_trace"
        ]
    routing = results["route_customer_demand_to_core"]
    assert routing["compiled_multi_source_searches_per_run"] == 1
    assert routing["compiled_single_source_searches_per_run"] == 0
    assert routing["legacy_distance_queries"] == routing["customers"] * routing["cores"]


def main(smoke: bool = False):
    results, rows = run_benchmark(smoke=smoke)
    check_acceptance(results, smoke=smoke)
    path = write_bench_json("compiled_graph", results)
    emit_rows(
        "E-compiled",
        "compiled CSR kernels vs legacy object-graph kernels (%d-node GLP)"
        % results["topology"]["nodes"],
        rows,
        slug="compiled_graph",
    )
    print(f"\nwrote {path}")


def test_compiled_graph_backend():
    """Exactness and search-count gates at the CI (smoke) size."""
    main(smoke=True)


if __name__ == "__main__":
    main(smoke="--smoke" in sys.argv[1:])
