"""E6 — AS graphs from interconnected ISPs (paper §2.3, §3.2).

Paper claims exercised here:

* interconnecting independently designed ISPs at shared cities yields the AS
  graph, whose node count/degree structure is a by-product of per-ISP
  optimization plus peering policy;
* an AS's degree tracks its geographic coverage (number of PoP cities) — a
  causal, economically grounded explanation of AS degree;
* router-level and AS-level graphs are different objects produced by different
  formulations (the paper's §3.2 point about different mechanisms).
"""

import pytest

from _report import emit_rows
from repro.core import InternetGenerator, PeeringPolicy
from repro.metrics import classify_tail, degree_statistics
from repro.workloads import peering_scenario

SCENARIO = peering_scenario()
ISP_COUNTS = SCENARIO.parameters["isp_counts"]
NUM_CITIES = SCENARIO.parameters["num_cities"]
SEED = SCENARIO.parameters["seed"]


def build_internet(num_isps: int):
    generator = InternetGenerator(
        num_isps=num_isps,
        num_cities=NUM_CITIES,
        policy=PeeringPolicy(min_shared_cities=1, probability=0.7),
        seed=SEED,
    )
    return generator.generate()


def coverage_degree_correlation(internet) -> float:
    pairs = [
        (internet.coverage(name), internet.as_degree(name)) for name in internet.isps
    ]
    n = len(pairs)
    mean_x = sum(x for x, _ in pairs) / n
    mean_y = sum(y for _, y in pairs) / n
    sxx = sum((x - mean_x) ** 2 for x, _ in pairs)
    syy = sum((y - mean_y) ** 2 for _, y in pairs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in pairs)
    if sxx == 0 or syy == 0:
        return 0.0
    return sxy / (sxx * syy) ** 0.5


def run_series():
    rows = []
    for num_isps in ISP_COUNTS:
        internet = build_internet(num_isps)
        as_graph = internet.as_graph
        stats = degree_statistics(as_graph)
        merged = internet.router_level_graph()
        rows.append(
            {
                "isps": num_isps,
                "as_links": as_graph.num_links,
                "as_mean_degree": round(stats.mean, 2),
                "as_max_degree": stats.maximum,
                "as_tail": classify_tail(as_graph.degree_sequence()).verdict,
                "coverage_degree_corr": round(coverage_degree_correlation(internet), 3),
                "router_nodes": merged.num_nodes,
                "router_links": merged.num_links,
            }
        )
    return rows


def test_peering_as_graph(benchmark):
    rows = benchmark(run_series)
    benchmark.extra_info["experiment"] = SCENARIO.experiment_id
    benchmark.extra_info["rows"] = rows

    emit_rows(
        SCENARIO.experiment_id,
        "AS graphs from interconnected optimization-designed ISPs",
        rows,
    )

    for row in rows:
        # AS degree is strongly driven by geographic coverage.
        assert row["coverage_degree_corr"] > 0.3
        # The router-level graph is a much larger, structurally different object.
        assert row["router_nodes"] > row["isps"]
        assert row["router_links"] >= row["as_links"]
    # AS graphs grow with the number of ISPs.
    assert all(a["as_links"] < b["as_links"] for a, b in zip(rows, rows[1:]))


def test_internet_generation_speed(benchmark):
    """Time generating the mid-size internetwork (backbones only)."""
    internet = benchmark(build_internet, ISP_COUNTS[1])
    assert internet.num_ases() == ISP_COUNTS[1]
