"""E6 — AS graphs from interconnected ISPs (paper §2.3, §3.2).

Paper claims exercised here:

* interconnecting independently designed ISPs at shared cities yields the AS
  graph, whose node count/degree structure is a by-product of per-ISP
  optimization plus peering policy;
* an AS's degree tracks its geographic coverage (number of PoP cities);
* router-level and AS-level graphs are different objects produced by
  different formulations.

The sweep over ISP counts and the coverage/degree gates live in
:mod:`repro.experiments.suites.e6_peering`.  Writes ``BENCH_E6.json``.
"""

from repro.experiments.reporting import bench_main, run_bench

EXPERIMENT = "E6"


def test_peering_as_graph():
    """The smoke sweep passes the coverage-degree and growth gates."""
    run_bench(EXPERIMENT, smoke=True)


if __name__ == "__main__":
    bench_main(EXPERIMENT)
