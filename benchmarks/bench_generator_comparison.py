"""E5 — Optimization-driven vs descriptive generators (paper §1, §3.2).

Paper claim: a generator tuned to match one metric (the degree distribution)
"matches observations on the chosen metrics but looks very dissimilar on
others".

Each model (three HOT constructions plus every registered descriptive
baseline) is one engine task evaluating the full metric suite — so the
comparison parallelizes per model; the cross-model disagreement gates live
in :mod:`repro.experiments.suites.e5_generator_comparison`.  Writes
``BENCH_E5.json``.
"""

from repro.experiments.reporting import bench_main, run_bench

EXPERIMENT = "E5"


def test_generator_comparison():
    """The smoke sweep passes the metric-separation gates."""
    run_bench(EXPERIMENT, smoke=True)


if __name__ == "__main__":
    bench_main(EXPERIMENT)
