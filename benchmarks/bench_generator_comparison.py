"""E5 — Optimization-driven vs descriptive generators (paper §1, §3.2).

Paper claim: a generator tuned to match one metric (the degree distribution)
"matches observations on the chosen metrics but looks very dissimilar on
others".  The benchmark generates same-size topologies from the HOT models and
from every registered descriptive baseline, evaluates the full metric suite,
and checks the separations the paper predicts: degree-based baselines and the
intermediate-alpha FKP tree agree on the power-law tail yet disagree sharply
on clustering, distortion, and the robust-yet-fragile gap.
"""

import pytest

from _report import emit_text
from repro.core import generate_fkp_tree, random_instance, solve_meyerson
from repro.generators import available_generators, make_generator
from repro.metrics import compare_topologies, metric_disagreement, report_table
from repro.workloads import generator_comparison_scenario

SCENARIO = generator_comparison_scenario()
NUM_NODES = SCENARIO.parameters["num_nodes"]
SEED = SCENARIO.parameters["seed"]


def build_topologies():
    topologies = {
        "hot:fkp-powerlaw": generate_fkp_tree(NUM_NODES, alpha=4.0, seed=SEED),
        "hot:fkp-exponential": generate_fkp_tree(
            NUM_NODES, alpha=2.0 * NUM_NODES**0.5, seed=SEED
        ),
        "hot:buy-at-bulk": solve_meyerson(
            random_instance(NUM_NODES - 1, seed=SEED), seed=SEED
        ).topology,
    }
    for name in SCENARIO.parameters["baselines"]:
        if name in available_generators():
            topologies[f"desc:{name}"] = make_generator(name).generate(NUM_NODES, seed=SEED)
    return topologies


def run_comparison():
    topologies = build_topologies()
    reports = compare_topologies(topologies, sample_size=40, seed=SEED)
    return {report.name: report for report in reports}


def test_generator_comparison(benchmark):
    by_name = benchmark(run_comparison)
    reports = list(by_name.values())
    benchmark.extra_info["experiment"] = SCENARIO.experiment_id
    benchmark.extra_info["metrics"] = {r.name: r.metrics for r in reports}

    columns = [
        "mean_degree",
        "max_degree",
        "tail_verdict_code",
        "avg_clustering",
        "avg_path_hops",
        "distortion",
        "cycle_edge_fraction",
        "assortativity",
        "fragility_gap",
    ]
    emit_text(
        SCENARIO.experiment_id,
        "optimization-driven vs descriptive generators",
        report_table(reports, columns=columns),
    )

    ba = by_name["desc:barabasi-albert"]
    fkp_pl = by_name["hot:fkp-powerlaw"]
    buyatbulk = by_name["hot:buy-at-bulk"]

    # Agreement on the "chosen metric": both BA and intermediate-alpha FKP
    # show heavy-tailed degrees (power-law or at worst inconclusive).
    assert ba.get("tail_verdict_code") >= 0
    assert fkp_pl.get("tail_verdict_code") >= 0
    # ... but disagreement everywhere else:
    # HOT designs are trees (no cycles, distortion 1), BA is not.
    assert fkp_pl.get("cycle_edge_fraction") == pytest.approx(0.0)
    assert buyatbulk.get("cycle_edge_fraction") == pytest.approx(0.0)
    assert ba.get("cycle_edge_fraction") > 0.2
    assert ba.get("distortion") > 1.05
    # Clustering separates the families as well.
    assert ba.get("avg_clustering") >= fkp_pl.get("avg_clustering")
    # The disagreement across the ensemble is large even though sizes match.
    assert metric_disagreement(reports, "avg_path_hops") > 1.0
    assert metric_disagreement(reports, "cycle_edge_fraction") > 0.3


def test_metric_suite_cost(benchmark):
    """Time the full metric suite on one mid-size topology (harness overhead)."""
    from repro.metrics import evaluate_topology

    topo = generate_fkp_tree(NUM_NODES, alpha=4.0, seed=SEED)
    report = benchmark(evaluate_topology, topo, "fkp", False, 30, SEED)
    assert report.get("num_nodes") == NUM_NODES
