"""E4 — Single-ISP hierarchy vs population served (paper §2.2).

Paper claim: "the size, location and connectivity of the ISP will depend
largely on the number and location of its customers", and the design
decomposes into backbone (WAN) / distribution (MAN) / customer (LAN) levels.

The sweep (objectives × city counts, plus the gravity-vs-uniform demand
ablation) and its monotone-growth gates live in
:mod:`repro.experiments.suites.e4_isp_hierarchy`; this script drives them
through the orchestration engine and writes ``BENCH_E4.json``.
"""

from repro.experiments.reporting import bench_main, run_bench

EXPERIMENT = "E4"


def test_isp_hierarchy():
    """The smoke sweep passes the hierarchy/monotone-growth gates."""
    run_bench(EXPERIMENT, smoke=True)


if __name__ == "__main__":
    bench_main(EXPERIMENT)
