"""E4 — Single-ISP hierarchy vs population served (paper §2.2).

Paper claim: "the size, location and connectivity of the ISP will depend
largely on the number and location of its customers", and the design
decomposes into backbone (WAN) / distribution (MAN) / customer (LAN) levels.

The benchmark designs ISPs over growing city sets (and under both objective
formulations) and records the emergent hierarchy: level sizes, backbone
fraction, customer depth, and build-out cost.  It also ablates the demand
model (gravity vs uniform) on backbone provisioning.
"""

import pytest

from _report import emit_rows, emit_text
from repro.core import ISPGenerator, ISPParameters
from repro.geography import gravity_demand, uniform_demand
from repro.routing import assign_demand
from repro.topology import summarize_hierarchy
from repro.workloads import isp_hierarchy_scenario, scaled_population

SCENARIO = isp_hierarchy_scenario()
CITY_COUNTS = SCENARIO.parameters["city_counts"]
SEED = SCENARIO.parameters["seed"]
SCALE = SCENARIO.parameters["customers_per_city_scale"]


def design_isp(num_cities: int, objective: str):
    population = scaled_population(num_cities, seed=SEED)
    parameters = ISPParameters(
        num_cities=num_cities,
        coverage_fraction=0.7,
        customers_per_city_scale=SCALE,
        objective=objective,
        seed=SEED,
    )
    return ISPGenerator(population=population, parameters=parameters).generate()


def run_hierarchy_table():
    rows = []
    for objective in SCENARIO.parameters["objectives"]:
        for num_cities in CITY_COUNTS:
            design = design_isp(num_cities, objective)
            topo = design.topology
            summary = summarize_hierarchy(topo)
            rows.append(
                {
                    "objective": objective,
                    "cities": num_cities,
                    "pops": design.pop_count(),
                    "nodes": topo.num_nodes,
                    "links": topo.num_links,
                    "core": summary.count("core"),
                    "distribution": summary.count("distribution")
                    + summary.count("access"),
                    "customers": summary.count("customer"),
                    "backbone_fraction": round(summary.backbone_fraction, 3),
                    "customer_depth": round(summary.mean_customer_depth, 2),
                    "total_cost": round(topo.total_cost(), 1),
                }
            )
    return rows


def test_isp_hierarchy(benchmark):
    rows = benchmark(run_hierarchy_table)
    benchmark.extra_info["experiment"] = SCENARIO.experiment_id
    benchmark.extra_info["rows"] = rows

    emit_rows(SCENARIO.experiment_id, "single-ISP hierarchy vs served population", rows)

    cost_rows = [r for r in rows if r["objective"] == "cost"]
    # A three-level hierarchy emerges at every size.
    for row in rows:
        assert row["core"] > 0 and row["distribution"] > 0 and row["customers"] > 0
    # More cities -> more PoPs, more nodes, higher cost (monotone growth).
    assert all(a["pops"] <= b["pops"] for a, b in zip(cost_rows, cost_rows[1:]))
    assert all(a["nodes"] < b["nodes"] for a, b in zip(cost_rows, cost_rows[1:]))
    assert all(a["total_cost"] < b["total_cost"] for a, b in zip(cost_rows, cost_rows[1:]))
    # The backbone remains a small fraction of the network (hierarchy, not mesh).
    assert all(row["backbone_fraction"] < 0.5 for row in rows)
    # The profit formulation never enters more cities than the cost formulation.
    for cost_row in cost_rows:
        profit_row = next(
            r for r in rows if r["objective"] == "profit" and r["cities"] == cost_row["cities"]
        )
        assert profit_row["pops"] <= cost_row["pops"]


def test_demand_model_ablation(benchmark):
    """Gravity vs uniform demand: gravity concentrates backbone load unevenly."""

    def run():
        design = design_isp(15, "cost")
        backbone_nodes = set(design.backbone_nodes())
        backbone = design.topology.subgraph(backbone_nodes, name="backbone")
        cities = [design.population.city(name) for name in design.pop_cities]
        endpoint_map = {c.name: f"core:{c.name}" for c in cities}
        results = {}
        for label, matrix in [
            ("gravity", gravity_demand(cities, total_volume=1000.0)),
            ("uniform", uniform_demand([c.name for c in cities], total_volume=1000.0)),
        ]:
            assign_demand(backbone, matrix, endpoint_map=endpoint_map)
            loads = sorted((link.load for link in backbone.links()), reverse=True)
            total = sum(loads) or 1.0
            top_share = sum(loads[: max(1, len(loads) // 10)]) / total
            results[label] = round(top_share, 3)
        return results

    results = benchmark(run)
    benchmark.extra_info["top_decile_load_share"] = results
    emit_text(
        SCENARIO.experiment_id,
        "demand-model ablation",
        f"top-decile backbone load share: {results}",
        slug="demand_ablation",
    )
    assert results["gravity"] >= results["uniform"] - 0.05
