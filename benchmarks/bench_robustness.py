"""E7 — Robust-yet-fragile behaviour of HOT designs (paper §3.1).

Paper claim: HOT systems achieve "high performance [and] apparently simple and
robust external behavior, with the risk of hopefully rare but potentially
catastrophic cascading failures initiated by possibly quite small
perturbations".  Operationally: optimization-driven access trees tolerate
random node failures (most nodes are leaves) but collapse when their few
high-degree aggregation hubs are targeted, while a degree-matched random mesh
shows a much smaller gap.  The footnote-7 redundancy variant narrows the gap.
"""

import pytest

from _report import emit_rows
from repro.core import design_access_network, generate_fkp_tree, random_instance, solve_meyerson
from repro.generators import ErdosRenyiGenerator
from repro.metrics import robustness_summary
from repro.workloads import robustness_scenario

SCENARIO = robustness_scenario()
NUM_NODES = SCENARIO.parameters["num_nodes"]
SEED = SCENARIO.parameters["seed"]
MAX_FRACTION = SCENARIO.parameters["max_fraction"]


def build_subjects():
    """The topologies whose failure response the experiment compares."""
    subjects = {
        "fkp-tree": generate_fkp_tree(NUM_NODES, alpha=4.0, seed=SEED),
        "buy-at-bulk-tree": solve_meyerson(
            random_instance(NUM_NODES - 1, seed=SEED), seed=SEED
        ).topology,
        "metro-tree": design_access_network(
            NUM_NODES // 2, seed=SEED, redundancy=False
        ).topology,
        "metro-with-redundancy": design_access_network(
            NUM_NODES // 2, seed=SEED, redundancy=True
        ).topology,
        "random-mesh": ErdosRenyiGenerator(target_mean_degree=4.0).generate(
            NUM_NODES, seed=SEED
        ),
    }
    return subjects


def run_robustness_table():
    rows = []
    for name, topology in build_subjects().items():
        summary = robustness_summary(
            topology, steps=8, max_fraction=MAX_FRACTION, seed=SEED
        )
        rows.append(
            {
                "topology": name,
                "nodes": topology.num_nodes,
                "random_auc": round(summary["random_auc"], 3),
                "targeted_auc": round(summary["targeted_auc"], 3),
                "fragility_gap": round(summary["fragility_gap"], 3),
            }
        )
    return rows


def test_robust_yet_fragile(benchmark):
    rows = benchmark(run_robustness_table)
    benchmark.extra_info["experiment"] = SCENARIO.experiment_id
    benchmark.extra_info["rows"] = rows

    emit_rows(
        SCENARIO.experiment_id,
        "random vs targeted failures (largest-component AUC, removing up to %d%% of nodes)"
        % int(100 * MAX_FRACTION),
        rows,
    )

    by_name = {row["topology"]: row for row in rows}
    # HOT designs survive random failures far better than targeted attacks ...
    for name in ("fkp-tree", "buy-at-bulk-tree", "metro-tree", "metro-with-redundancy"):
        assert by_name[name]["random_auc"] > by_name[name]["targeted_auc"]
        assert by_name[name]["fragility_gap"] > 0.1
    # ... while the degree-matched random mesh has a much smaller gap and keeps
    # most of its connectivity even under targeted removal.
    assert by_name["random-mesh"]["fragility_gap"] < by_name["fkp-tree"]["fragility_gap"]
    for name in ("fkp-tree", "buy-at-bulk-tree", "metro-tree"):
        assert by_name["random-mesh"]["targeted_auc"] > by_name[name]["targeted_auc"]
    # Redundant concentrator uplinks (footnote 7) never make targeted attacks worse.
    assert (
        by_name["metro-with-redundancy"]["targeted_auc"]
        >= by_name["metro-tree"]["targeted_auc"] - 0.05
    )


def test_robustness_analysis_speed(benchmark):
    """Time the removal-trace analysis on one HOT tree."""
    topology = generate_fkp_tree(NUM_NODES, alpha=4.0, seed=SEED)
    summary = benchmark(robustness_summary, topology, 8, MAX_FRACTION, SEED)
    assert set(summary) == {"random_auc", "targeted_auc", "fragility_gap"}
