"""E7 — Robust-yet-fragile behaviour of HOT designs (paper §3.1).

Paper claim: HOT systems achieve "high performance [and] apparently simple
and robust external behavior, with the risk of hopefully rare but potentially
catastrophic cascading failures initiated by possibly quite small
perturbations".  Operationally: optimization-driven access trees tolerate
random node failures but collapse when their few aggregation hubs are
targeted, while a degree-matched random mesh shows a much smaller gap.

One engine task per subject topology; the cross-subject fragility gates live
in :mod:`repro.experiments.suites.e7_robustness`.  Writes ``BENCH_E7.json``.
"""

from repro.experiments.reporting import bench_main, run_bench

EXPERIMENT = "E7"


def test_robust_yet_fragile():
    """The smoke sweep passes the robust-yet-fragile gates."""
    run_bench(EXPERIMENT, smoke=True)


if __name__ == "__main__":
    bench_main(EXPERIMENT)
