"""E1 — FKP tradeoff phase diagram (paper §3.1).

Paper claim: tuning alpha (distance weight vs centrality) moves the degree
distribution of the grown tree from a star (tiny alpha), through power-law
degrees (intermediate alpha), to exponential tails (alpha ≳ sqrt(n)).

The sweep definition, per-alpha measurement, and acceptance gates live in
:mod:`repro.experiments.suites.e1_fkp_phase`; this script fans the sweep out
over the orchestration engine (``--jobs N``, ``--smoke`` for the CI grid),
renders the experiment table, and writes ``BENCH_E1.json``.  Per-task
wall-clock lives in the ``RESULTS/E1/`` manifests' timing fields.
"""

from repro.experiments.reporting import bench_main, run_bench

EXPERIMENT = "E1"


def test_fkp_phase_diagram():
    """The smoke sweep passes the experiment's regime-structure gates."""
    run_bench(EXPERIMENT, smoke=True)


if __name__ == "__main__":
    bench_main(EXPERIMENT)
