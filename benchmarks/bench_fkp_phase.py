"""E1 — FKP tradeoff phase diagram (paper §3.1).

Paper claim: tuning alpha (distance weight vs centrality) moves the degree
distribution of the grown tree from a star (tiny alpha), through power-law
degrees (intermediate alpha), to exponential tails (alpha ≳ sqrt(n)).

The benchmark regenerates the alpha sweep at n = 1000 and records, per alpha:
maximum degree, hub share, the measured tail verdict, and the log-log /
log-linear CCDF fit quality.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest

from _report import emit_rows
from repro.core import alpha_regime, generate_fkp_tree
from repro.metrics import (
    ccdf_linear_fit_r2,
    classify_tail,
    max_degree_share,
    topology_degree_ccdf,
)
from repro.workloads import fkp_phase_scenario

SCENARIO = fkp_phase_scenario()
NUM_NODES = SCENARIO.parameters["num_nodes"]
ALPHAS = SCENARIO.parameters["alphas"]
SEED = SCENARIO.parameters["seed"]


def sweep_rows():
    """One row per alpha: the series the experiment reports."""
    rows = []
    for alpha in ALPHAS:
        tree = generate_fkp_tree(NUM_NODES, alpha, seed=SEED)
        degrees = tree.degree_sequence()
        ccdf = topology_degree_ccdf(tree)
        tail = classify_tail(degrees)
        rows.append(
            {
                "alpha": round(alpha, 2),
                "predicted_regime": alpha_regime(alpha, NUM_NODES),
                "max_degree": max(degrees),
                "hub_share": round(max_degree_share(tree), 3),
                "measured_tail": tail.verdict,
                "power_law_exponent": round(tail.power_law.exponent, 2),
                "exponential_rate": round(tail.exponential.rate, 3),
                "r2_loglog": round(ccdf_linear_fit_r2(ccdf, log_x=True, log_y=True), 3),
                "r2_loglinear": round(ccdf_linear_fit_r2(ccdf, log_x=False, log_y=True), 3),
            }
        )
    return rows


def test_fkp_phase_diagram(benchmark):
    """Time one full alpha sweep and verify the regime structure holds."""
    rows = benchmark(sweep_rows)
    benchmark.extra_info["experiment"] = SCENARIO.experiment_id
    benchmark.extra_info["rows"] = rows

    emit_rows(SCENARIO.experiment_id, "FKP phase diagram (n=%d)" % NUM_NODES, rows)

    by_regime = {row["predicted_regime"]: row for row in rows}
    # Star regime: the root grabs ~half of all endpoints.
    assert by_regime["star"]["hub_share"] > 0.4
    # Exponential regime: bounded degrees, no power-law verdict.
    assert by_regime["exponential"]["max_degree"] < 40
    assert by_regime["exponential"]["measured_tail"] != "power-law"
    # Intermediate regime has a much heavier tail than the exponential one.
    power_law_rows = [r for r in rows if r["predicted_regime"] == "power-law"]
    assert max(r["max_degree"] for r in power_law_rows) > 3 * by_regime["exponential"]["max_degree"]
    # At least one intermediate-alpha tree is classified as power-law.
    assert any(r["measured_tail"] == "power-law" for r in power_law_rows)


def test_fkp_growth_throughput(benchmark):
    """Raw growth speed at the experiment's size (single power-law-regime tree)."""
    tree = benchmark(generate_fkp_tree, NUM_NODES, 4.0, SEED)
    assert tree.is_tree()
    benchmark.extra_info["nodes"] = NUM_NODES
