"""E12 — the million-node scale tier of the numpy batch kernels.

The numpy-native compiled view claims that the full paper pipeline —
generate, compile, route a gravity matrix, provision — is tractable two
orders of magnitude past the E8 sweep.  This benchmark:

1. runs the E12 engine suite (batch-path engagement, one-search-per-source,
   and numpy-vs-python load-parity gates; records land in ``RESULTS/E12/``);
2. times each pipeline phase per size — n=10^5 and n=10^6 full, reduced
   smoke sizes in CI — recording wall-clock and the process's peak RSS after
   each size, and gating the route at the largest full size under
   ``ROUTE_SECONDS_CEILING`` (the "a million-node route completes in
   seconds, not minutes" claim);
3. times the pure-Python reference backend against the numpy batch path on
   the same FKP instance (n=50k full, n=5k smoke) with an integral-volume
   endpoint mesh, and gates the speedup (>=5x full, >=1.5x smoke) with
   **bit-identical** link-load vectors: Euclidean lengths make shortest
   paths unique almost surely and integral volumes make per-edge sums exact
   in floating point regardless of accumulation order;
4. times the hierarchical overlay engine against flat batch routing on a
   many-source instance (n=10^5 with 1024 endpoints full — >=512 unique
   sources as the acceptance shape demands — n=5k/96 smoke), splitting
   overlay build from the routing pass, and gates the *cold* speedup
   (build + route vs flat route: >=5x full, >=1.5x smoke) with the same
   bit-identical load gate — tie-free weights plus integral volumes mean
   the overlay joins must reproduce flat loads exactly, not approximately.

The script *requires* the numpy/scipy backend — a missing scipy fails
loudly rather than timing the pure-Python fallback against itself (the
tier-1 suite has a dedicated no-scipy leg; this benchmark does not).

Writes ``BENCH_E12.json`` and a text table under ``benchmarks/results/``.
"""

from __future__ import annotations

import random
import sys

from repro.core.fkp import generate_fkp_tree
from repro.economics.cables import default_catalog
from repro.economics.provisioning import provision_topology
from repro.experiments.reporting import (
    emit_rows,
    experiment_bench_payload,
    print_experiment,
    timed,
    write_bench_json,
)
from repro.experiments.runner import peak_rss_kb, run_experiment
from repro.experiments.suites.e12_scaling_tier import gravity_matrix
from repro.geography.demand import DemandMatrix
from repro.routing.engine import route_demand
from repro.routing.hierarchical import overlay_for
from repro.routing.paths import resolve_weight
from repro.topology.compiled import KERNEL_COUNTERS, have_numpy_backend
from repro.workloads.scenarios import scenario_for

SEED = 61
ALPHA = 10.0

#: Backend comparison instance: n=50k is the ISSUE's acceptance size.
COMPARE_NUM_NODES = 50_000
SMOKE_COMPARE_NUM_NODES = 5_000
COMPARE_NUM_ENDPOINTS = 64
SMOKE_COMPARE_NUM_ENDPOINTS = 24
SPEEDUP_FLOOR = 5.0
SMOKE_SPEEDUP_FLOOR = 1.5

#: Hierarchical-vs-flat instance: the acceptance shape is n=10^5 with >=512
#: unique sources; 1024 endpoints in a full mesh give 1023 unique sources.
HIER_NUM_NODES = 100_000
SMOKE_HIER_NUM_NODES = 5_000
HIER_NUM_ENDPOINTS = 1_024
SMOKE_HIER_NUM_ENDPOINTS = 96
HIER_SPEEDUP_FLOOR = 5.0
SMOKE_HIER_SPEEDUP_FLOOR = 1.5

#: The million-node route must complete in seconds, not minutes.
ROUTE_SECONDS_CEILING = 120.0


def build_compare_instance(num_nodes: int, num_endpoints: int, seed: int):
    """An FKP tree plus an integral-volume all-pairs endpoint mesh.

    Euclidean link lengths (the ``add_link`` default) make shortest paths
    unique almost surely, and integral volumes make load sums exact in any
    accumulation order — together they let the backend comparison demand
    bit-identical edge-load vectors, not a tolerance.
    """
    topology = generate_fkp_tree(num_nodes, ALPHA, seed=seed)
    rng = random.Random(seed)
    endpoint_ids = sorted(rng.sample(range(num_nodes), num_endpoints))
    sources, targets, volumes = [], [], []
    for i in range(num_endpoints):
        for j in range(i + 1, num_endpoints):
            sources.append(i)
            targets.append(j)
            volumes.append(float(rng.randint(1, 16)))
    demand = DemandMatrix.from_arrays(endpoint_ids, sources, targets, volumes)
    return topology, demand.compile(topology)


def time_backends(num_nodes: int, num_endpoints: int, seed: int):
    """Time python vs numpy routing; assert bit-identical loads."""
    topology, compiled = build_compare_instance(num_nodes, num_endpoints, seed)
    topology.compiled()  # compile outside both measured windows

    t_python, flow_python = timed(lambda: route_demand(compiled, backend="python"))

    KERNEL_COUNTERS.reset()
    t_numpy, flow_numpy = timed(lambda: route_demand(compiled, backend="numpy"))
    counters = KERNEL_COUNTERS.snapshot()

    unique_sources = len(set(compiled.sources))
    # The batch path must actually engage — backend="numpy" raises rather
    # than falling back, and the counters prove the dispatch happened.
    assert counters["batch_dijkstra_calls"] >= 1
    assert counters["batch_sources_total"] == unique_sources
    assert counters["traffic_batched_sources"] == unique_sources
    assert not flow_numpy.unrouted and not flow_python.unrouted
    assert flow_numpy.loads_list() == flow_python.loads_list(), (
        "numpy edge-load vector diverged from the pure-Python reference "
        "(integral volumes on tie-free weights: sums must be exact)"
    )
    return {
        "nodes": num_nodes,
        "pairs": compiled.num_pairs,
        "unique_sources": unique_sources,
        "batch_calls": counters["batch_dijkstra_calls"],
        "python_seconds": t_python,
        "numpy_seconds": t_numpy,
        "speedup": t_python / t_numpy,
        "bit_identical_loads": True,
    }


def time_hierarchical(num_nodes: int, num_endpoints: int, seed: int):
    """Time flat vs hierarchical routing; assert bit-identical loads.

    The overlay build is timed separately from the routing pass: the build
    amortizes across route calls on the same compiled snapshot (it is cached
    by weight name), so the *warm* speedup is what repeated-routing loops
    see, while the *cold* speedup (build + route) is the conservative
    single-shot figure the acceptance floor gates.
    """
    topology, compiled = build_compare_instance(num_nodes, num_endpoints, seed)
    graph = topology.compiled()  # compile outside every measured window

    t_flat, flow_flat = timed(
        lambda: route_demand(compiled, backend="numpy", method="flat")
    )

    weights = graph.edge_weight_column(None, resolve_weight(None))
    KERNEL_COUNTERS.reset()
    t_overlay, overlay = timed(
        lambda: overlay_for(graph, None, weights, backend="numpy")
    )
    t_hier, flow_hier = timed(
        lambda: route_demand(compiled, backend="numpy", method="hierarchical")
    )
    counters = KERNEL_COUNTERS.snapshot()

    # The overlay path must actually engage: one build (the route call hits
    # the cache), every pair answered by a table join, regions swept.
    assert counters["hier_overlay_builds"] == 1
    assert counters["hier_table_joins"] == compiled.num_pairs
    assert counters["hier_region_sweeps"] >= 1
    assert not flow_hier.unrouted and not flow_flat.unrouted
    assert flow_hier.loads_list() == flow_flat.loads_list(), (
        "hierarchical edge-load vector diverged from flat routing "
        "(integral volumes on tie-free weights: loads must be bit-identical)"
    )
    stats = overlay.stats()
    return {
        "nodes": num_nodes,
        "pairs": compiled.num_pairs,
        "unique_sources": len(set(compiled.sources)),
        "overlay_nodes": stats["overlay_nodes"],
        "overlay_regions": stats["regions"],
        "region_sweeps": counters["hier_region_sweeps"],
        "flat_seconds": t_flat,
        "overlay_seconds": t_overlay,
        "hier_seconds": t_hier,
        "warm_speedup": t_flat / t_hier,
        "cold_speedup": t_flat / (t_overlay + t_hier),
        "bit_identical_loads": True,
    }


def time_scale_phases(sizes, num_endpoints: int, total_volume: float, seed: int):
    """Per-phase wall-clock and peak RSS of the full pipeline at each size.

    Phases mirror the E12 suite's ``run_point`` exactly (same generator,
    same gravity matrix, same provisioning) so each row decomposes one
    suite task into generate / compile / demand / route / provision time.
    ``peak_rss_kb`` is the process high-water mark after the size completes
    (monotone across rows — ``ru_maxrss`` never shrinks).
    """
    rows = []
    for size in sizes:
        t_generate, topology = timed(lambda s=size: generate_fkp_tree(s, ALPHA, seed=seed))
        t_compile, graph = timed(topology.compiled)
        t_demand, compiled = timed(
            lambda t=topology, s=size: gravity_matrix(
                t, s, num_endpoints, total_volume, seed
            ).compile(t)
        )
        KERNEL_COUNTERS.reset()
        t_route, flow = timed(lambda c=compiled: route_demand(c, backend="numpy"))
        counters = KERNEL_COUNTERS.snapshot()
        t_provision, _report = timed(
            lambda t=topology, f=flow: provision_topology(t, default_catalog(), flow=f)
        )
        assert counters["batch_dijkstra_calls"] >= 1
        assert not flow.unrouted
        rows.append(
            {
                "size": size,
                "num_edges": graph.num_edges,
                "pairs": compiled.num_pairs,
                "generate_seconds": t_generate,
                "compile_seconds": t_compile,
                "demand_seconds": t_demand,
                "route_seconds": t_route,
                "provision_seconds": t_provision,
                "peak_rss_kb": peak_rss_kb(),
            }
        )
    return rows


def run_benchmark(smoke: bool = False):
    params = scenario_for("E12", smoke).parameters
    scale = time_scale_phases(
        params["sizes"], params["num_endpoints"], params["total_volume"], SEED
    )
    compare = time_backends(
        SMOKE_COMPARE_NUM_NODES if smoke else COMPARE_NUM_NODES,
        SMOKE_COMPARE_NUM_ENDPOINTS if smoke else COMPARE_NUM_ENDPOINTS,
        SEED,
    )
    hierarchical = time_hierarchical(
        SMOKE_HIER_NUM_NODES if smoke else HIER_NUM_NODES,
        SMOKE_HIER_NUM_ENDPOINTS if smoke else HIER_NUM_ENDPOINTS,
        SEED,
    )
    return {
        "mode": "smoke" if smoke else "full",
        "scale": scale,
        "backends": compare,
        "hierarchical": hierarchical,
    }


def check_acceptance(results, smoke: bool = False):
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    compare = results["backends"]
    assert compare["speedup"] >= floor, (
        f"numpy batch routing speedup {compare['speedup']:.1f}x at "
        f"n={compare['nodes']} under the {floor}x floor"
    )
    assert compare["bit_identical_loads"]
    hier_floor = SMOKE_HIER_SPEEDUP_FLOOR if smoke else HIER_SPEEDUP_FLOOR
    hierarchical = results["hierarchical"]
    assert hierarchical["cold_speedup"] >= hier_floor, (
        f"hierarchical routing cold speedup {hierarchical['cold_speedup']:.1f}x "
        f"at n={hierarchical['nodes']} under the {hier_floor}x floor"
    )
    assert hierarchical["bit_identical_loads"]
    if not smoke:
        assert hierarchical["unique_sources"] >= 512, (
            "acceptance shape demands >=512 unique sources at the full size"
        )
        largest = max(results["scale"], key=lambda row: row["size"])
        assert largest["route_seconds"] <= ROUTE_SECONDS_CEILING, (
            f"n={largest['size']} route took {largest['route_seconds']:.1f}s "
            f"(ceiling {ROUTE_SECONDS_CEILING:.0f}s)"
        )


def main(smoke: bool = False, jobs: int = 1, force: bool = False):
    if not have_numpy_backend():
        raise SystemExit(
            "bench_scaling_tier requires the numpy/scipy backend "
            "(unset REPRO_BACKEND=python and install scipy)"
        )
    engine_result = run_experiment("E12", smoke=smoke, jobs=jobs, force=force)
    print_experiment(engine_result)
    results = run_benchmark(smoke=smoke)
    check_acceptance(results, smoke=smoke)
    results["experiment"] = experiment_bench_payload(engine_result)
    path = write_bench_json("E12", results)
    rows = [
        {
            "size": row["size"],
            "edges": row["num_edges"],
            "generate_s": round(row["generate_seconds"], 2),
            "compile_s": round(row["compile_seconds"], 2),
            "route_s": round(row["route_seconds"], 3),
            "provision_s": round(row["provision_seconds"], 2),
            "peak_rss_mb": row["peak_rss_kb"] // 1024,
        }
        for row in results["scale"]
    ] + [
        {
            "size": results["backends"]["nodes"],
            "edges": "(backend compare)",
            "generate_s": "-",
            "compile_s": "-",
            "route_s": round(results["backends"]["numpy_seconds"], 3),
            "provision_s": "-",
            "peak_rss_mb": f"{results['backends']['speedup']:.1f}x vs python",
        },
        {
            "size": results["hierarchical"]["nodes"],
            "edges": "(hierarchical)",
            "generate_s": "-",
            "compile_s": round(results["hierarchical"]["overlay_seconds"], 3),
            "route_s": round(results["hierarchical"]["hier_seconds"], 3),
            "provision_s": "-",
            "peak_rss_mb": f"{results['hierarchical']['cold_speedup']:.1f}x vs flat",
        },
    ]
    emit_rows("E12", "million-node scale tier (phase timings)", rows, slug="scaling_tier")
    print(f"\nwrote {path}")


def test_scaling_tier():
    """Engagement, parity, and relaxed speedup gates at the CI size."""
    main(smoke=True)


if __name__ == "__main__":
    argv = sys.argv[1:]
    jobs = 1
    if "--jobs" in argv:
        jobs = int(argv[argv.index("--jobs") + 1])
    main(smoke="--smoke" in argv, jobs=jobs, force="--force" in argv)
