"""Generation engine vs. seed growth loops, across all generators.

Times the rewritten generators (Fenwick dynamic weighted sampling,
spatial-grid attachment, grid-bucketed skip/rejection sampling) against the
seed implementations they replaced — inlined below verbatim for GLP, INET,
and PLRG; selected via ``use_spatial_index=False`` for FKP and
``method="naive"`` for Waxman, both of which preserve the seed algorithm
exactly.  Also records the sampler/spatial operation counts from
``KERNEL_COUNTERS`` that back the O(log n)-per-draw claim.

Run directly (``python benchmarks/bench_generators.py``) for the full sweep
(n in {2000, 10000, 50000}; legacy timed where feasible) with the acceptance
gates (FKP >= 10x and GLP >= 5x at n=10000, bit-identical outputs), or with
``--smoke`` for the small-n CI variant without gates.  Writes
``BENCH_generators.json`` at the repository root and a text table under
``benchmarks/results/``.
"""

from __future__ import annotations

import random
import sys
from typing import List, Optional

from repro.core.fkp import FKPModel, FKPParameters
from repro.experiments.reporting import emit_rows, timed, write_bench_json
from repro.generators import (
    BarabasiAlbertGenerator,
    GLPGenerator,
    InetGenerator,
    PLRGGenerator,
    WaxmanGenerator,
)
from repro.generators.plrg import power_law_degree_sequence
from repro.topology.compiled import KERNEL_COUNTERS
from repro.topology.graph import Topology

SEED = 7
FKP_ALPHA = 4.0  # power-law regime, the paper's headline case
WAXMAN_PARAMS = {"alpha_w": 0.05, "beta": 0.08, "connect": False}  # sparse at 10k+


# ----------------------------------------------------------------------
# Legacy growth loops (seed implementations)
# ----------------------------------------------------------------------
def legacy_glp_generate(generator: GLPGenerator, num_nodes: int, seed: int) -> Topology:
    """Seed GLP: rebuild candidates/weights and scan linearly per draw."""
    m = generator.links_per_step
    rng = random.Random(seed)
    topology = Topology(name=f"glp-n{num_nodes}")
    for node_id in range(m + 2):
        topology.add_node(node_id)
    for node_id in range(m + 1):
        topology.add_link(node_id, node_id + 1)

    def preferential_targets(count: int, exclude: set) -> List[int]:
        candidates = [n for n in topology.node_ids() if n not in exclude]
        weights = [
            max(1e-9, topology.degree(n) - generator.beta_glp) for n in candidates
        ]
        total = sum(weights)
        chosen: List[int] = []
        attempts = 0
        while len(chosen) < min(count, len(candidates)) and attempts < 100 * count:
            attempts += 1
            target_weight = rng.random() * total
            cumulative = 0.0
            for candidate, weight in zip(candidates, weights):
                cumulative += weight
                if target_weight <= cumulative:
                    if candidate not in chosen:
                        chosen.append(candidate)
                    break
        return chosen

    next_id = m + 2
    max_steps = 50 * num_nodes
    steps = 0
    while topology.num_nodes < num_nodes and steps < max_steps:
        steps += 1
        if rng.random() < generator.p_new:
            new_id = next_id
            next_id += 1
            topology.add_node(new_id)
            for target in preferential_targets(m, {new_id}):
                if not topology.has_link(new_id, target):
                    topology.add_link(new_id, target)
        else:
            for _ in range(m):
                pair = preferential_targets(2, set())
                if len(pair) == 2 and not topology.has_link(pair[0], pair[1]):
                    topology.add_link(pair[0], pair[1])
    return topology


def legacy_preferential_choice(candidates, remaining, rng) -> Optional[int]:
    """Seed INET choice: weight list rebuild plus linear cumulative scan."""
    if not candidates:
        return None
    weights = [max(remaining[c], 1) for c in candidates]
    total = sum(weights)
    target = rng.random() * total
    cumulative = 0.0
    for candidate, weight in zip(candidates, weights):
        cumulative += weight
        if target <= cumulative:
            return candidate
    return candidates[-1]


def legacy_inet_generate(generator: InetGenerator, num_nodes: int, seed: int) -> Topology:
    """Seed INET: per-draw candidate list rebuilds in all three phases."""
    rng = random.Random(seed)
    max_degree = max(generator.min_degree, int(generator.max_degree_fraction * num_nodes))
    degrees = power_law_degree_sequence(
        num_nodes, generator.exponent, generator.min_degree, max_degree, rng
    )
    degrees.sort(reverse=True)
    topology = Topology(name=f"inet-n{num_nodes}")
    for node_id in range(num_nodes):
        topology.add_node(node_id, target_degree=degrees[node_id])
    remaining = list(degrees)
    core_nodes = [n for n in range(num_nodes) if degrees[n] >= 2] or [0, 1]
    for position in range(1, len(core_nodes)):
        node = core_nodes[position]
        target = legacy_preferential_choice(core_nodes[:position], remaining, rng)
        if target is not None and not topology.has_link(node, target):
            topology.add_link(node, target)
            remaining[node] -= 1
            remaining[target] -= 1
    leaf_nodes = [n for n in range(num_nodes) if degrees[n] < 2 and n not in core_nodes]
    for node in leaf_nodes:
        target = legacy_preferential_choice(core_nodes, remaining, rng)
        if target is not None and not topology.has_link(node, target):
            topology.add_link(node, target)
            remaining[node] -= 1
            remaining[target] -= 1
    attempts = 0
    max_attempts = 20 * num_nodes
    while attempts < max_attempts:
        attempts += 1
        open_nodes = [n for n in range(num_nodes) if remaining[n] > 0]
        if len(open_nodes) < 2:
            break
        u = legacy_preferential_choice(open_nodes, remaining, rng)
        v = legacy_preferential_choice([n for n in open_nodes if n != u], remaining, rng)
        if u is None or v is None:
            break
        if not topology.has_link(u, v):
            topology.add_link(u, v)
            remaining[u] -= 1
            remaining[v] -= 1
    return topology


def legacy_power_law_degree_sequence(num_nodes, exponent, min_degree, max_degree, rng):
    """Seed PLRG degree sampler: linear scan over the cumulative table."""
    max_degree = max_degree or max(min_degree, num_nodes - 1)
    weights = [k ** (-exponent) for k in range(min_degree, max_degree + 1)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    degrees = []
    for _ in range(num_nodes):
        u = rng.random()
        index = 0
        while index < len(cumulative) - 1 and cumulative[index] < u:
            index += 1
        degrees.append(min_degree + index)
    if sum(degrees) % 2 == 1:
        degrees[rng.randrange(num_nodes)] += 1
    return degrees


def legacy_plrg_generate(generator: PLRGGenerator, num_nodes: int, seed: int) -> Topology:
    """Seed PLRG: linear-scan degree sampler + stub matching."""
    from repro.generators.base import ensure_connected

    rng = random.Random(seed)
    degrees = legacy_power_law_degree_sequence(
        num_nodes, generator.exponent, generator.min_degree, generator.max_degree, rng
    )
    topology = Topology(name=f"plrg-n{num_nodes}")
    for node_id in range(num_nodes):
        topology.add_node(node_id, target_degree=degrees[node_id])
    stubs: List[int] = []
    for node_id, degree in enumerate(degrees):
        stubs.extend([node_id] * degree)
    rng.shuffle(stubs)
    for index in range(0, len(stubs) - 1, 2):
        u, v = stubs[index], stubs[index + 1]
        if u != v and not topology.has_link(u, v):
            topology.add_link(u, v)
    if generator.connect:
        ensure_connected(topology, rng)
    return topology


# ----------------------------------------------------------------------
# Benchmark body
# ----------------------------------------------------------------------
def edge_set(topo):
    return sorted(map(str, topo.link_keys()))


def bench_generator(name, new_run, legacy_run, sizes, legacy_sizes, check_identical):
    """Time one generator old vs. new; verify bit-identity where requested."""
    entry = {"per_n": {}}
    for n in sizes:
        KERNEL_COUNTERS.reset()
        t_new, topo_new = timed(lambda: new_run(n))
        counters = KERNEL_COUNTERS.snapshot()
        record = {
            "new_seconds": round(t_new, 4),
            "links": topo_new.num_links,
            "sampler_draws": counters["sampler_draws"],
            "sampler_updates": counters["sampler_updates"],
            "spatial_queries": counters["spatial_queries"],
            "spatial_candidates": counters["spatial_candidates"],
        }
        if legacy_run is not None and n in legacy_sizes:
            t_old, topo_old = timed(lambda: legacy_run(n))
            record["legacy_seconds"] = round(t_old, 4)
            record["speedup"] = round(t_old / t_new, 1)
            if check_identical:
                assert edge_set(topo_old) == edge_set(topo_new), (
                    f"{name} n={n}: new output diverges from the seed implementation"
                )
                record["bit_identical"] = True
        entry["per_n"][n] = record
    return entry


def run_benchmark(smoke: bool = False):
    if smoke:
        sizes = [300, 800]
        legacy_sizes = set(sizes)
        waxman_sizes, waxman_legacy = [300, 800], {300, 800}
        inet_legacy = set(sizes)
    else:
        sizes = [2000, 10000, 50000]
        legacy_sizes = {2000, 10000}
        waxman_sizes, waxman_legacy = [2000, 10000, 50000], {2000, 10000}
        inet_legacy = {2000}  # seed INET's phase-3 rebuild is intractable at 10k

    glp = GLPGenerator()
    inet = InetGenerator()
    plrg = PLRGGenerator()
    ba = BarabasiAlbertGenerator()

    results = {
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "fkp_alpha": FKP_ALPHA,
        "generators": {},
    }

    results["generators"]["fkp"] = bench_generator(
        "fkp",
        lambda n: FKPModel(FKPParameters(num_nodes=n, alpha=FKP_ALPHA, seed=SEED)).generate(),
        lambda n: FKPModel(
            FKPParameters(num_nodes=n, alpha=FKP_ALPHA, seed=SEED),
            use_spatial_index=False,
        ).generate(),
        sizes,
        legacy_sizes,
        check_identical=True,
    )
    results["generators"]["glp"] = bench_generator(
        "glp",
        lambda n: glp.generate(n, seed=SEED),
        lambda n: legacy_glp_generate(glp, n, SEED),
        sizes,
        legacy_sizes,
        check_identical=True,
    )
    results["generators"]["inet"] = bench_generator(
        "inet",
        lambda n: inet.generate(n, seed=SEED),
        lambda n: legacy_inet_generate(inet, n, SEED),
        sizes,
        inet_legacy,
        check_identical=True,
    )
    results["generators"]["plrg"] = bench_generator(
        "plrg",
        lambda n: plrg.generate(n, seed=SEED),
        lambda n: legacy_plrg_generate(plrg, n, SEED),
        sizes,
        legacy_sizes,
        check_identical=True,
    )
    results["generators"]["barabasi-albert"] = bench_generator(
        "barabasi-albert",
        lambda n: ba.generate(n, seed=SEED),
        None,  # seed BA was already O(1) per draw; the engine formalizes it
        sizes,
        set(),
        check_identical=False,
    )
    results["generators"]["waxman"] = bench_generator(
        "waxman",
        lambda n: WaxmanGenerator(**WAXMAN_PARAMS).generate(n, seed=SEED),
        lambda n: WaxmanGenerator(method="naive", **WAXMAN_PARAMS).generate(n, seed=SEED),
        waxman_sizes,
        waxman_legacy,
        check_identical=False,  # per-seed stream changed; gated statistically
    )

    rows = []
    for name, entry in results["generators"].items():
        for n, record in entry["per_n"].items():
            rows.append(
                {
                    "generator": name,
                    "n": n,
                    "legacy_s": record.get("legacy_seconds", "-"),
                    "new_s": record["new_seconds"],
                    "speedup": record.get("speedup", "-"),
                    "sampler_ops": record["sampler_draws"] + record["sampler_updates"],
                    "spatial_cands": record["spatial_candidates"],
                }
            )
    return results, rows


def check_acceptance(results):
    fkp = results["generators"]["fkp"]["per_n"][10000]
    glp = results["generators"]["glp"]["per_n"][10000]
    assert fkp["bit_identical"] and glp["bit_identical"]
    assert fkp["speedup"] >= 10.0, f"FKP speedup at n=10000 below 10x: {fkp}"
    assert glp["speedup"] >= 5.0, f"GLP speedup at n=10000 below 5x: {glp}"


def main(smoke: bool = False):
    results, rows = run_benchmark(smoke=smoke)
    if not smoke:
        check_acceptance(results)
    path = write_bench_json("generators", results)
    emit_rows(
        "E-generators",
        "generation engine (Fenwick sampling + spatial grids) vs seed growth loops",
        rows,
        slug="generators",
    )
    print(f"\nwrote {path}")


if __name__ == "__main__":
    main(smoke="--smoke" in sys.argv[1:])
