"""E13 — temporal diff routing vs from-scratch per-step routing.

The temporal engine (``repro.routing.temporal``) claims that routing a
demand series step by step only pays for the sources whose offered volume
actually changed: ``compile_series`` orients the union of every step's
pairs once, and ``route_series(reuse=True)`` keeps per-source load columns
alive across steps so an unchanged source costs nothing.  This benchmark:

1. runs the E13 temporal suite (diurnal conservation, flash-crowd diff
   bit-identity, and cascade fixed-point gates; records land in
   ``RESULTS/E13/``);
2. times a flash-crowd series two ways on the same geometric instance —
   n=2000 nodes full, n=400 smoke, with a sparse integer-volume demand
   matrix — per-step from-scratch :func:`route_demand` against one
   :func:`compile_series` + :func:`route_series` pass, and gates the
   speedup (>=5x full, >=2x smoke) with **bit-identical** per-step load
   vectors: Euclidean lengths make shortest paths unique and integral
   volumes make per-edge sums exact in any accumulation order, so the
   SHA-256 load digests must agree step for step;
3. proves the diff engine engaged from ``KERNEL_COUNTERS`` — the temporal
   pass must resolve strictly fewer source searches than the
   ``steps x unique_sources`` a from-scratch loop pays — so the speedup
   cannot come from anything but the diff;
4. when scipy is available, repeats the series through the numpy backend
   and asserts the per-step digests match the pure-Python reference
   exactly (bit-identical here: integral volumes on tie-free weights).

Writes ``BENCH_E13.json`` and a text table under ``benchmarks/results/``.
"""

from __future__ import annotations

import hashlib
import random
import sys
from array import array

from repro.experiments.reporting import (
    emit_rows,
    experiment_bench_payload,
    print_experiment,
    timed,
    write_bench_json,
)
from repro.experiments.runner import run_experiment
from repro.geography.demand import DemandMatrix
from repro.routing.engine import route_demand
from repro.routing.temporal import compile_series, flash_crowd, route_series
from repro.topology.compiled import KERNEL_COUNTERS, have_numpy_backend
from repro.topology.graph import Topology

NUM_NODES = 2000
SMOKE_NUM_NODES = 400
NUM_PAIRS = 300
SMOKE_NUM_PAIRS = 80
NUM_STEPS = 16
SMOKE_NUM_STEPS = 10
SEED = 73
SPEEDUP_FLOOR = 5.0
SMOKE_SPEEDUP_FLOOR = 2.0
FLASH_HOTSPOTS = 3
FLASH_SPIKE = 6.0
FLASH_DURATION = 3


def build_instance(num_nodes: int, num_pairs: int, seed: int):
    """A geometric connected topology plus a sparse integer-volume matrix.

    Random tree + chords with Euclidean lengths; demand is ``num_pairs``
    distinct random pairs (the scatter pattern that makes per-step
    re-routing expensive: many unique sources, few pairs each).  Sparse
    pairs keep each flash-crowd hotspot's blast radius small, so the diff
    engine has unchanged sources to skip; integral volumes make load sums
    exact in any accumulation order.
    """
    rng = random.Random(seed)
    topology = Topology(name=f"temporal-{num_nodes}")
    for i in range(num_nodes):
        topology.add_node(i, location=(rng.random(), rng.random()))
    for i in range(1, num_nodes):
        topology.add_link(i, rng.randrange(i))
    added = 0
    while added < num_nodes // 2:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v and not topology.has_link(u, v):
            topology.add_link(u, v)
            added += 1

    endpoints = [str(i) for i in range(num_nodes)]
    chosen = set()
    while len(chosen) < num_pairs:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v:
            chosen.add((min(u, v), max(u, v)))
    sources, targets, volumes = [], [], []
    for u, v in sorted(chosen):
        sources.append(u)
        targets.append(v)
        volumes.append(float(rng.randint(1, 16)))
    demand = DemandMatrix.from_arrays(endpoints, sources, targets, volumes)
    endpoint_map = {str(i): i for i in range(num_nodes)}
    return topology, demand, endpoint_map


def _digest(loads) -> str:
    return hashlib.sha256(array("d", loads).tobytes()).hexdigest()


def time_methods(num_nodes: int, num_pairs: int, num_steps: int, seed: int):
    """Time from-scratch per-step routing vs the diff engine.

    Both sides run the same backend (auto) over tie-free Euclidean
    weights; per-step SHA-256 load digests must agree exactly.
    """
    topology, base, endpoint_map = build_instance(num_nodes, num_pairs, seed)
    series = flash_crowd(
        base,
        num_steps=num_steps,
        num_hotspots=FLASH_HOTSPOTS,
        spike=FLASH_SPIKE,
        duration=FLASH_DURATION,
        seed=seed + 1,
    )
    topology.compiled()  # compile outside both measured windows

    def scratch():
        return [
            route_demand(topology, step, endpoint_map=endpoint_map)
            for step in series.steps
        ]

    t_scratch, scratch_flows = timed(scratch)
    scratch_digests = [_digest(flow.loads_list()) for flow in scratch_flows]

    KERNEL_COUNTERS.reset()
    t_temporal, result = timed(
        lambda: route_series(
            topology, series, endpoint_map=endpoint_map, reuse=True
        )
    )
    counters = KERNEL_COUNTERS.snapshot()

    step_digests = result.step_hashes()
    assert step_digests == scratch_digests, (
        "temporal per-step load vectors diverged from the from-scratch "
        "reference (integral volumes on tie-free weights: must be exact)"
    )
    compiled = compile_series(topology, series, endpoint_map)
    unique_sources = compiled.unique_sources
    full_resolutions = num_steps * unique_sources
    assert counters["temporal_steps"] == num_steps
    assert counters["temporal_resolved_sources"] == result.resolved_sources_total
    assert result.resolved_sources_total < full_resolutions, (
        "diff engine did not engage: temporal pass resolved "
        f"{result.resolved_sources_total} sources, the from-scratch cost is "
        f"{full_resolutions}"
    )
    assert all(not step.unrouted for step in result.steps)
    return {
        "nodes": num_nodes,
        "links": topology.num_links,
        "pairs": compiled.num_pairs,
        "steps": num_steps,
        "unique_sources": unique_sources,
        "resolved_sources": result.resolved_sources_total,
        "full_resolutions": full_resolutions,
        "scratch_seconds": t_scratch,
        "temporal_seconds": t_temporal,
        "speedup": t_scratch / t_temporal,
        "bit_identical_steps": True,
    }


def check_backend_parity(num_nodes: int, num_pairs: int, num_steps: int, seed: int):
    """numpy temporal routing must match the python reference digest-for-digest.

    Integral volumes on tie-free Euclidean weights mean the per-step load
    vectors are in fact bit-identical, so the digests are compared exactly.
    Skipped (recorded, not silent) when scipy is absent — CI installs
    scipy, so the bench matrix always exercises the batch path.
    """
    if not have_numpy_backend():
        return {"available": False}
    topology, base, endpoint_map = build_instance(num_nodes, num_pairs, seed + 2)
    series = flash_crowd(base, num_steps=num_steps, seed=seed + 3)
    compiled = compile_series(topology, series, endpoint_map)
    reference = route_series(compiled, backend="python")
    batched = route_series(compiled, backend="numpy")
    identical = reference.step_hashes() == batched.step_hashes()
    assert identical, "numpy temporal load digests diverged from python"
    return {"available": True, "bit_identical_steps": identical}


def run_benchmark(smoke: bool = False):
    num_nodes = SMOKE_NUM_NODES if smoke else NUM_NODES
    num_pairs = SMOKE_NUM_PAIRS if smoke else NUM_PAIRS
    num_steps = SMOKE_NUM_STEPS if smoke else NUM_STEPS
    timing = time_methods(num_nodes, num_pairs, num_steps, SEED)
    results = {
        "mode": "smoke" if smoke else "full",
        "timing": timing,
        "backend_parity": check_backend_parity(
            SMOKE_NUM_NODES, SMOKE_NUM_PAIRS, SMOKE_NUM_STEPS, SEED
        ),
    }
    rows = [
        {
            "series": (
                f"flash crowd (n={num_nodes}, {timing['steps']} steps, "
                f"{timing['pairs']} pairs)"
            ),
            "scratch_s": round(timing["scratch_seconds"], 3),
            "temporal_s": round(timing["temporal_seconds"], 3),
            "speedup": round(timing["speedup"], 1),
            "resolved": timing["resolved_sources"],
            "full_cost": timing["full_resolutions"],
            "bit_identical": timing["bit_identical_steps"],
        }
    ]
    return results, rows


def check_acceptance(results, smoke: bool = False):
    floor = SMOKE_SPEEDUP_FLOOR if smoke else SPEEDUP_FLOOR
    timing = results["timing"]
    assert timing["speedup"] >= floor, (
        f"temporal diff routing speedup {timing['speedup']:.1f}x "
        f"under the {floor}x floor"
    )
    assert timing["bit_identical_steps"]
    assert timing["resolved_sources"] < timing["full_resolutions"]
    parity = results["backend_parity"]
    if parity["available"]:
        assert parity["bit_identical_steps"]


def main(smoke: bool = False, jobs: int = 1, force: bool = False):
    suite_result = run_experiment("E13", smoke=smoke, jobs=jobs, force=force)
    print_experiment(suite_result)
    results, rows = run_benchmark(smoke=smoke)
    check_acceptance(results, smoke=smoke)
    results["experiment"] = experiment_bench_payload(suite_result)
    path = write_bench_json("E13", results)
    emit_rows(
        "E13",
        "temporal diff vs from-scratch series routing",
        rows,
        slug="temporal",
    )
    print(f"\nwrote {path}")


def test_temporal_engine():
    """Bit-identity, diff-engagement, and relaxed speedup gates at CI size."""
    main(smoke=True)


if __name__ == "__main__":
    argv = sys.argv[1:]
    jobs = 1
    if "--jobs" in argv:
        jobs = int(argv[argv.index("--jobs") + 1])
    main(smoke="--smoke" in argv, jobs=jobs, force="--force" in argv)
