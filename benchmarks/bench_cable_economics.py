"""E3 — Economies of scale and buy-at-bulk algorithm ablation (paper §4.1).

Paper claims exercised here:

* the buy-at-bulk cost structure (economies of scale) rewards aggregating
  traffic onto shared high-capacity cables, so aggregation-based algorithms
  beat the naive direct-star provisioning;
* with a purely linear cost structure (no economies of scale) that advantage
  disappears — the ablation that shows the cable economics, not the
  algorithm, is what produces tree-like aggregation.

Both sub-tables (solver comparison, catalog ablation) are one engine sweep in
:mod:`repro.experiments.suites.e3_cable_economics`; this script drives it and
writes ``BENCH_E3.json``.
"""

from repro.experiments.reporting import bench_main, run_bench

EXPERIMENT = "E3"


def test_cable_economics():
    """The smoke sweep passes the aggregation-vs-star and ablation gates."""
    run_bench(EXPERIMENT, smoke=True)


if __name__ == "__main__":
    bench_main(EXPERIMENT)
