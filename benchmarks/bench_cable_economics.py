"""E3 — Economies of scale and buy-at-bulk algorithm ablation (paper §4.1).

Paper claims exercised here:

* the buy-at-bulk cost structure (economies of scale) rewards aggregating
  traffic onto shared high-capacity cables, so aggregation-based algorithms
  beat the naive direct-star provisioning;
* with a purely linear cost structure (no economies of scale) that advantage
  disappears — the ablation that shows the cable economics, not the algorithm,
  is what produces tree-like aggregation.
"""

import pytest

from _report import emit_rows
from repro.core import (
    random_instance,
    solve_direct_star,
    solve_greedy_aggregation,
    solve_meyerson,
    solve_mst_routing,
    trivial_lower_bound,
)
from repro.economics import default_catalog, linear_catalog
from repro.routing import load_concentration
from repro.workloads import cable_economics_scenario

SCENARIO = cable_economics_scenario()
CUSTOMER_COUNTS = SCENARIO.parameters["customer_counts"]
SEED = SCENARIO.parameters["seed"]

SOLVERS = {
    "meyerson": lambda instance: solve_meyerson(instance, seed=SEED),
    "greedy": solve_greedy_aggregation,
    "mst": solve_mst_routing,
    "star": solve_direct_star,
}


def run_algorithm_table():
    """Cost of each algorithm (normalized by the lower bound) per instance size."""
    rows = []
    for count in CUSTOMER_COUNTS:
        instance = random_instance(count, seed=SEED + count, catalog=default_catalog())
        bound = trivial_lower_bound(instance)
        row = {"customers": count, "lower_bound": round(bound, 1)}
        for name, solver in SOLVERS.items():
            solution = solver(instance)
            row[f"{name}_cost"] = round(solution.total_cost(), 1)
            row[f"{name}_ratio"] = round(solution.total_cost() / bound, 2)
        rows.append(row)
    return rows


def run_catalog_ablation():
    """Aggregation vs star under the bulk catalog and under linear costs."""
    rows = []
    for label, catalog in [("default", default_catalog()), ("linear", linear_catalog())]:
        for count in (100, 200):
            instance = random_instance(count, seed=SEED + count, catalog=catalog)
            aggregated = solve_greedy_aggregation(instance)
            star = solve_direct_star(instance)
            rows.append(
                {
                    "catalog": label,
                    "customers": count,
                    "aggregation_cost": round(aggregated.total_cost(), 1),
                    "star_cost": round(star.total_cost(), 1),
                    "aggregation_wins": aggregated.total_cost() < star.total_cost(),
                    "traffic_concentration": round(
                        load_concentration(aggregated.topology, top_fraction=0.1), 3
                    ),
                }
            )
    return rows


def test_algorithm_comparison(benchmark):
    rows = benchmark(run_algorithm_table)
    benchmark.extra_info["experiment"] = SCENARIO.experiment_id
    benchmark.extra_info["rows"] = rows

    emit_rows(
        SCENARIO.experiment_id,
        "buy-at-bulk algorithm comparison (cost / lower bound)",
        rows,
        slug="algorithms",
    )

    for row in rows:
        # Every aggregation-based algorithm beats the naive star at every size.
        assert row["meyerson_cost"] < row["star_cost"]
        assert row["greedy_cost"] < row["star_cost"]
        assert row["mst_cost"] < row["star_cost"]
        # And stays within a size-independent constant factor of the lower bound.
        assert row["meyerson_ratio"] < 20.0


def test_economies_of_scale_ablation(benchmark):
    rows = benchmark(run_catalog_ablation)
    benchmark.extra_info["rows"] = rows

    emit_rows(
        SCENARIO.experiment_id,
        "economies-of-scale ablation (aggregation vs direct star)",
        rows,
        slug="economies_of_scale",
    )

    with_scale = [row for row in rows if row["catalog"] == "default"]
    without_scale = [row for row in rows if row["catalog"] == "linear"]
    # With economies of scale aggregation wins; with linear costs it cannot beat the star.
    assert all(row["aggregation_wins"] for row in with_scale)
    assert all(not row["aggregation_wins"] for row in without_scale)


def test_meyerson_constant_factor_across_sizes(benchmark):
    """Approximation ratio (vs the trivial lower bound) does not grow with size."""

    def ratios():
        values = []
        for count in CUSTOMER_COUNTS:
            instance = random_instance(count, seed=SEED + count)
            values.append(
                solve_meyerson(instance, seed=SEED).total_cost() / trivial_lower_bound(instance)
            )
        return values

    values = benchmark(ratios)
    benchmark.extra_info["ratios"] = [round(v, 2) for v in values]
    # The ratio of the largest instance is within 2x of the smallest instance's —
    # i.e. no systematic growth with problem size (constant-factor behaviour).
    assert values[-1] <= 2.0 * values[0]
