"""E9 (supplementary) — Ablations of the design choices called out in DESIGN.md.

Not a figure from the paper, but the ablation studies DESIGN.md commits to:

* **Solver ablation** is covered by E3; here we ablate the *randomization* of
  the incremental algorithm (random vs demand-sorted vs given arrival order).
* **Degree constraints** (paper §2.1 line-card limits): imposing a per-node
  interface bound on the FKP growth process truncates the degree tail.
* **Centrality definition** in the FKP objective: hop-to-root vs Euclidean
  distance-to-root vs subtree-load centrality.
* **Validation targets**: the generated HOT topologies match the reference
  signatures of the graph family they are supposed to model (router-access),
  and the degree-based baseline matches the AS-graph signature instead.
"""

import pytest

from _report import emit_rows
from repro.core import (
    MeyersonBuyAtBulk,
    MeyersonParameters,
    euclidean_centrality,
    hop_centrality,
    random_instance,
    subtree_load_centrality,
)
from repro.core.fkp import FKPModel, FKPParameters
from repro.generators import BarabasiAlbertGenerator
from repro.metrics import classify_tail
from repro.metrics.validation import as_graph_target, router_access_target, validate_topology
from repro.topology.node import NodeRole

SEED = 41
EXPERIMENT = "E9"


def run_arrival_order_ablation():
    instance = random_instance(300, seed=SEED)
    rows = []
    for order in ("random", "demand", "given"):
        solution = MeyersonBuyAtBulk(
            instance, MeyersonParameters(seed=SEED, arrival_order=order)
        ).solve()
        degrees = solution.topology.degree_sequence()
        rows.append(
            {
                "arrival_order": order,
                "cost": round(solution.total_cost(), 1),
                "max_degree": max(degrees),
                "tail": classify_tail(degrees).verdict,
            }
        )
    return rows


def run_degree_constraint_ablation():
    rows = []
    for max_degree in (None, 16, 8, 4):
        parameters = FKPParameters(num_nodes=600, alpha=4.0, seed=SEED)
        model = FKPModel(parameters)
        topology = model.generate()
        if max_degree is not None:
            # Re-run growth with a hard interface limit: candidates at the limit
            # are skipped (the economically second-best attachment is used).
            topology = _constrained_fkp(parameters, max_degree)
        degrees = topology.degree_sequence()
        rows.append(
            {
                "max_degree_limit": max_degree if max_degree is not None else "none",
                "observed_max_degree": max(degrees),
                "tail": classify_tail(degrees).verdict,
                "is_tree": topology.is_tree(),
            }
        )
    return rows


def _constrained_fkp(parameters: FKPParameters, max_degree: int):
    """FKP growth with a per-node interface limit (paper §2.1)."""
    import random as random_module

    from repro.geography.points import euclidean
    from repro.geography.regions import unit_square
    from repro.topology.graph import Topology

    rng = random_module.Random(parameters.seed)
    region = unit_square()
    locations = region.sample_uniform(parameters.num_nodes, rng)
    topology = Topology(name=f"fkp-constrained-{max_degree}")
    topology.add_node(0, role=NodeRole.CORE, location=locations[0])
    hops = {0: 0}
    for new_id in range(1, parameters.num_nodes):
        candidates = sorted(
            (
                parameters.alpha * euclidean(locations[new_id], locations[existing])
                + hops[existing],
                existing,
            )
            for existing in topology.node_ids()
        )
        parent = None
        for _, candidate in candidates:
            if topology.degree(candidate) < max_degree:
                parent = candidate
                break
        if parent is None:
            parent = candidates[0][1]
        topology.add_node(new_id, role=NodeRole.CUSTOMER, location=locations[new_id])
        topology.add_link(parent, new_id)
        hops[new_id] = hops[parent] + 1
    return topology


def run_centrality_ablation():
    rows = []
    variants = {
        "hop-to-root": hop_centrality,
        "euclidean-to-root": euclidean_centrality,
        "subtree-load": subtree_load_centrality,
    }
    for name, centrality in variants.items():
        model = FKPModel(
            FKPParameters(num_nodes=600, alpha=4.0, seed=SEED), centrality=centrality
        )
        topology = model.generate()
        degrees = topology.degree_sequence()
        rows.append(
            {
                "centrality": name,
                "max_degree": max(degrees),
                "tail": classify_tail(degrees).verdict,
                "is_tree": topology.is_tree(),
            }
        )
    return rows


def run_validation_matrix():
    from repro.core import solve_meyerson

    access = solve_meyerson(random_instance(300, seed=SEED), seed=SEED).topology
    ba = BarabasiAlbertGenerator().generate(600, seed=SEED)
    rows = []
    for name, topology in (("buy-at-bulk-access", access), ("barabasi-albert", ba)):
        for target in (router_access_target(), as_graph_target()):
            report = validate_topology(topology, target, sample_size=30, seed=SEED)
            rows.append(
                {
                    "topology": name,
                    "target": target.name,
                    "pass_fraction": round(report.pass_fraction, 2),
                    "passed": report.passed,
                }
            )
    return rows


def test_arrival_order_ablation(benchmark):
    rows = benchmark(run_arrival_order_ablation)
    benchmark.extra_info["rows"] = rows
    emit_rows(EXPERIMENT, "Meyerson arrival-order ablation", rows, slug="arrival_order")
    # All variants keep the exponential tree structure; randomization is not
    # what produces the degree shape.
    assert all(row["tail"] != "power-law" for row in rows)


def test_degree_constraint_ablation(benchmark):
    rows = benchmark(run_degree_constraint_ablation)
    benchmark.extra_info["rows"] = rows
    emit_rows(EXPERIMENT, "router interface-limit ablation (FKP alpha=4)", rows, slug="degree_limits")
    unconstrained = next(r for r in rows if r["max_degree_limit"] == "none")
    tightest = next(r for r in rows if r["max_degree_limit"] == 4)
    # Line-card limits truncate the tail: the observed maximum degree respects
    # the cap and the power-law verdict disappears under the tightest cap.
    assert tightest["observed_max_degree"] <= 4
    assert unconstrained["observed_max_degree"] > 4 * tightest["observed_max_degree"]
    assert tightest["tail"] != "power-law"
    assert all(row["is_tree"] for row in rows)


def test_centrality_ablation(benchmark):
    rows = benchmark(run_centrality_ablation)
    benchmark.extra_info["rows"] = rows
    emit_rows(EXPERIMENT, "FKP centrality-definition ablation (alpha=4)", rows, slug="centrality")
    assert all(row["is_tree"] for row in rows)
    # The centrality definition materially changes the resulting degree
    # structure — exactly the causal sensitivity the paper wants formulations
    # to expose: hop-to-root gives the heavy-tailed hubs of the FKP theorem,
    # Euclidean distance-to-root behaves like the exponential regime, and
    # subtree-load centrality collapses toward a star.
    by_centrality = {row["centrality"]: row for row in rows}
    assert by_centrality["hop-to-root"]["max_degree"] > by_centrality["euclidean-to-root"]["max_degree"]
    assert by_centrality["subtree-load"]["max_degree"] >= by_centrality["hop-to-root"]["max_degree"]
    assert by_centrality["euclidean-to-root"]["tail"] != "power-law"


def test_validation_matrix(benchmark):
    rows = benchmark(run_validation_matrix)
    benchmark.extra_info["rows"] = rows
    emit_rows(EXPERIMENT, "reference-signature validation matrix", rows, slug="validation")
    by_key = {(row["topology"], row["target"]): row for row in rows}
    # The optimization-driven access tree matches the router-access signature,
    # not the AS-graph one; the degree-based baseline matches the AS-graph
    # signature, not the router-access one.
    assert by_key[("buy-at-bulk-access", "router-access")]["passed"]
    assert not by_key[("buy-at-bulk-access", "as-graph")]["passed"]
    assert by_key[("barabasi-albert", "as-graph")]["pass_fraction"] >= 0.8
    assert not by_key[("barabasi-albert", "router-access")]["passed"]
