"""E9 (supplementary) — Ablations of the design choices called out in DESIGN.md.

Not a figure from the paper, but the ablation studies DESIGN.md commits to:
arrival-order randomization of the incremental algorithm, per-node interface
(degree) limits on FKP growth, the centrality definition in the FKP
objective, and the reference-signature validation matrix.

All four sub-tables are one engine sweep in
:mod:`repro.experiments.suites.e9_ablations`.  Writes ``BENCH_E9.json``.
"""

from repro.experiments.reporting import bench_main, run_bench

EXPERIMENT = "E9"


def test_ablations():
    """The smoke sweep passes all four ablation gates."""
    run_bench(EXPERIMENT, smoke=True)


if __name__ == "__main__":
    bench_main(EXPERIMENT)
