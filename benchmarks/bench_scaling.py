"""E8 — Approximation quality and runtime scaling (paper §4.1).

Paper claim: the randomized incremental algorithm of Meyerson et al.
"provide[s] a constant factor bound on the quality of the solution
independent of problem size".

One engine task per instance size; quality ratios are the deterministic
payload, while per-size wall-clock lives in the ``RESULTS/E8/`` manifests'
timing fields (excluded from the bit-identity contract).  Gates live in
:mod:`repro.experiments.suites.e8_scaling`.  Writes ``BENCH_E8.json``.
"""

from repro.experiments.reporting import bench_main, run_bench

EXPERIMENT = "E8"


def test_approximation_quality_scaling():
    """The smoke sweep passes the constant-factor gates."""
    run_bench(EXPERIMENT, smoke=True)


if __name__ == "__main__":
    bench_main(EXPERIMENT)
