"""E8 — Approximation quality and runtime scaling (paper §4.1).

Paper claim: the randomized incremental algorithm of Meyerson et al. "provide[s]
a constant factor bound on the quality of the solution independent of problem
size".  The benchmark measures, across instance sizes:

* the cost ratio to the trivial lower bound (should not grow with size);
* the gain from best-of-k repetition of the randomized algorithm;
* wall-clock scaling of one solve (timed by pytest-benchmark at each size).
"""

import time

import pytest

from _report import emit_rows
from repro.core import (
    best_of_runs,
    expected_approximation_factor,
    random_instance,
    solve_meyerson,
    trivial_lower_bound,
)
from repro.workloads import scaling_scenario

SCENARIO = scaling_scenario()
CUSTOMER_COUNTS = SCENARIO.parameters["customer_counts"]
SEED = SCENARIO.parameters["seed"]
BEST_OF = SCENARIO.parameters["best_of"]


def run_quality_table():
    rows = []
    for count in CUSTOMER_COUNTS:
        instance = random_instance(count, seed=SEED + count)
        bound = trivial_lower_bound(instance)
        start = time.perf_counter()
        single = solve_meyerson(instance, seed=SEED)
        single_seconds = time.perf_counter() - start
        best = best_of_runs(instance, num_runs=BEST_OF, seed=SEED)
        rows.append(
            {
                "customers": count,
                "lower_bound": round(bound, 1),
                "single_ratio": round(single.total_cost() / bound, 2),
                "best_of_%d_ratio" % BEST_OF: round(best.total_cost() / bound, 2),
                "single_seconds": round(single_seconds, 4),
                "max_degree": max(single.topology.degree_sequence()),
            }
        )
    return rows


def test_approximation_quality_scaling(benchmark):
    rows = benchmark(run_quality_table)
    benchmark.extra_info["experiment"] = SCENARIO.experiment_id
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["indicative_factor"] = expected_approximation_factor(5)

    emit_rows(
        SCENARIO.experiment_id,
        "approximation quality vs instance size (ratios to the trivial lower bound)",
        rows,
    )

    ratios = [row["single_ratio"] for row in rows]
    # Constant-factor behaviour: the ratio does not grow systematically with size.
    assert max(ratios) <= 2.5 * min(ratios)
    # Repetition never hurts.
    for row in rows:
        assert row["best_of_%d_ratio" % BEST_OF] <= row["single_ratio"] + 1e-9
    # Runtime grows sub-quadratically in practice for these sizes (sanity bound).
    seconds = [row["single_seconds"] for row in rows]
    sizes = [row["customers"] for row in rows]
    if seconds[0] > 0:
        growth = (seconds[-1] / seconds[0]) / ((sizes[-1] / sizes[0]) ** 2.5)
        assert growth < 5.0


@pytest.mark.parametrize("count", CUSTOMER_COUNTS)
def test_solve_time_by_size(benchmark, count):
    """Wall-clock of a single randomized incremental solve at each size."""
    instance = random_instance(count, seed=SEED + count)
    solution = benchmark(solve_meyerson, instance, SEED)
    assert solution.is_feasible()
    benchmark.extra_info["customers"] = count
