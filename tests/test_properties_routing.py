"""Property-based tests on routing, flow, and Steiner-tree invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geography.demand import DemandMatrix
from repro.geography.points import euclidean
from repro.optimization.flow import network_from_topology
from repro.optimization.mst import euclidean_mst_length, prim_mst_points
from repro.optimization.steiner import geometric_steiner_backbone
from repro.routing.assignment import assign_demand
from repro.routing.utilization import utilization_report
from repro.topology.graph import Topology


coordinates = st.tuples(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


def random_connected_topology(rng: random.Random, n: int, extra_links: int) -> Topology:
    """A random connected topology: random tree plus ``extra_links`` chords."""
    topology = Topology()
    for i in range(n):
        topology.add_node(i, location=(rng.random(), rng.random()))
    for i in range(1, n):
        topology.add_link(i, rng.randrange(i))
    added = 0
    attempts = 0
    while added < extra_links and attempts < 20 * extra_links + 20:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not topology.has_link(u, v):
            topology.add_link(u, v)
            added += 1
    return topology


class TestRoutingProperties:
    @given(
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_assigned_volume_conservation(self, n, extra_links, seed):
        """Routed volume plus unrouted volume equals the offered volume."""
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra_links)
        endpoints = [str(i) for i in range(n)]
        demand = DemandMatrix(endpoints=endpoints)
        offered = 0.0
        for _ in range(min(10, n)):
            a, b = rng.sample(range(n), 2)
            volume = rng.uniform(0.5, 5.0)
            demand.set_demand(str(a), str(b), demand.demand(str(a), str(b)) + volume)
        offered = demand.total()
        result = assign_demand(topology, demand, endpoint_map={str(i): i for i in range(n)})
        assert abs((result.routed_volume + result.unrouted_volume) - offered) < 1e-6

    @given(
        st.integers(min_value=3, max_value=15),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_total_link_load_at_least_offered_volume(self, n, extra_links, seed):
        """Each routed unit traverses at least one link (connected topology)."""
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra_links)
        endpoints = [str(i) for i in range(n)]
        demand = DemandMatrix(endpoints=endpoints)
        a, b = rng.sample(range(n), 2)
        demand.set_demand(str(a), str(b), 3.0)
        assign_demand(topology, demand, endpoint_map={str(i): i for i in range(n)})
        report = utilization_report(topology)
        assert report.total_load >= 3.0 - 1e-9


class TestFlowProperties:
    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_max_flow_bounded_by_source_capacity(self, n, extra_links, seed):
        """Max flow never exceeds the total capacity leaving the source."""
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra_links)
        for link in topology.links():
            link.capacity = rng.uniform(1.0, 10.0)
        network = network_from_topology(topology)
        source, sink = 0, n - 1
        out_capacity = sum(link.capacity for link in topology.incident_links(source))
        in_capacity = sum(link.capacity for link in topology.incident_links(sink))
        flow = network.max_flow(source, sink)
        assert flow <= out_capacity + 1e-9
        assert flow <= in_capacity + 1e-9
        assert flow >= 0.0

    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_min_cost_flow_never_cheaper_than_unit_shortest_path(self, n, seed):
        """For one unit of demand, min-cost flow equals the cheapest path cost."""
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra_links=3)
        for link in topology.links():
            link.capacity = 100.0
            link.usage_cost = rng.uniform(0.1, 2.0)
        from repro.optimization.shortest_path import dijkstra

        distances, _ = dijkstra(topology, 0, weight=lambda link: link.usage_cost)
        network = network_from_topology(topology)
        sent, cost = network.min_cost_flow(0, n - 1, 1.0)
        assert sent == 1.0
        assert abs(cost - distances[n - 1]) < 1e-6


class TestSteinerProperties:
    @given(st.lists(coordinates, min_size=3, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_backbone_length_equals_mst_and_bounds_tour(self, points):
        """The geometric backbone has MST length, which lower-bounds any tour."""
        backbone = geometric_steiner_backbone(points)
        mst_length = euclidean_mst_length(points)
        assert abs(backbone.total_length() - mst_length) < 1e-9
        tour = sum(euclidean(points[i], points[i + 1]) for i in range(len(points) - 1))
        assert mst_length <= tour + 1e-9

    @given(st.lists(coordinates, min_size=2, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_mst_edges_form_acyclic_spanning_structure(self, points):
        edges = prim_mst_points(points)
        assert len(edges) == len(points) - 1
        seen = set()
        for u, v in edges:
            seen.add(u)
            seen.add(v)
        if len(points) > 1:
            assert seen == set(range(len(points)))
