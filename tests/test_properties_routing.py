"""Property-based tests on routing, flow, and Steiner-tree invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.geography.demand import DemandMatrix
from repro.geography.points import euclidean
from repro.optimization.flow import network_from_topology
from repro.optimization.mst import euclidean_mst_length, prim_mst_points
from repro.optimization.steiner import geometric_steiner_backbone
from repro.routing.assignment import assign_demand
from repro.routing.engine import compile_demand, route_demand
from repro.routing.utilization import utilization_report
from repro.topology.graph import Topology


coordinates = st.tuples(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)


def random_connected_topology(rng: random.Random, n: int, extra_links: int) -> Topology:
    """A random connected topology: random tree plus ``extra_links`` chords."""
    topology = Topology()
    for i in range(n):
        topology.add_node(i, location=(rng.random(), rng.random()))
    for i in range(1, n):
        topology.add_link(i, rng.randrange(i))
    added = 0
    attempts = 0
    while added < extra_links and attempts < 20 * extra_links + 20:
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not topology.has_link(u, v):
            topology.add_link(u, v)
            added += 1
    return topology


class TestRoutingProperties:
    @given(
        st.integers(min_value=3, max_value=20),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_assigned_volume_conservation(self, n, extra_links, seed):
        """Routed volume plus unrouted volume equals the offered volume."""
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra_links)
        endpoints = [str(i) for i in range(n)]
        demand = DemandMatrix(endpoints=endpoints)
        offered = 0.0
        for _ in range(min(10, n)):
            a, b = rng.sample(range(n), 2)
            volume = rng.uniform(0.5, 5.0)
            demand.set_demand(str(a), str(b), demand.demand(str(a), str(b)) + volume)
        offered = demand.total()
        result = assign_demand(topology, demand, endpoint_map={str(i): i for i in range(n)})
        assert abs((result.routed_volume + result.unrouted_volume) - offered) < 1e-6

    @given(
        st.integers(min_value=3, max_value=15),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_total_link_load_at_least_offered_volume(self, n, extra_links, seed):
        """Each routed unit traverses at least one link (connected topology)."""
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra_links)
        endpoints = [str(i) for i in range(n)]
        demand = DemandMatrix(endpoints=endpoints)
        a, b = rng.sample(range(n), 2)
        demand.set_demand(str(a), str(b), 3.0)
        assign_demand(topology, demand, endpoint_map={str(i): i for i in range(n)})
        report = utilization_report(topology)
        assert report.total_load >= 3.0 - 1e-9


def random_demand(
    rng: random.Random, n: int, pairs: int, integral: bool
) -> DemandMatrix:
    """A random demand matrix over str(i) endpoints (volumes accumulate)."""
    demand = DemandMatrix(endpoints=[str(i) for i in range(n)])
    for _ in range(pairs):
        a, b = rng.sample(range(n), 2)
        volume = float(rng.randint(1, 12)) if integral else rng.uniform(0.25, 8.0)
        demand.set_demand(str(a), str(b), demand.demand(str(a), str(b)) + volume)
    return demand


class TestBatchedEngineProperties:
    @given(
        st.integers(min_value=3, max_value=24),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_batched_loads_bit_identical_for_integral_volumes(self, n, extra, seed):
        """Integral volumes sum exactly in any order: loads must match bitwise.

        Routing runs on Euclidean lengths, where exact shortest-path ties
        have measure zero, so both methods load the same (unique) paths; the
        engine's equivalence contract does not cover tied shortest paths
        (see the repro.routing.engine module docstring).
        """
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra)
        demand = random_demand(rng, n, min(12, n), integral=True)
        endpoint_map = {str(i): i for i in range(n)}
        reference = assign_demand(topology, demand, endpoint_map, method="per-pair")
        reference_loads = [link.load for link in topology.links()]
        batched = assign_demand(topology, demand, endpoint_map, method="batched")
        assert [link.load for link in topology.links()] == reference_loads
        assert batched.routed_volume == reference.routed_volume
        assert batched.unrouted_volume == reference.unrouted_volume
        assert batched.link_loads == reference.link_loads

    @given(
        st.integers(min_value=3, max_value=24),
        st.integers(min_value=0, max_value=12),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_batched_matches_per_pair_for_float_volumes(self, n, extra, seed):
        """Arbitrary volumes: same loads up to float accumulation order."""
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra)
        demand = random_demand(rng, n, min(12, n), integral=False)
        endpoint_map = {str(i): i for i in range(n)}
        reference = assign_demand(topology, demand, endpoint_map, method="per-pair")
        reference_loads = [link.load for link in topology.links()]
        batched = assign_demand(topology, demand, endpoint_map, method="batched")
        for observed, expected in zip(
            (link.load for link in topology.links()), reference_loads
        ):
            assert abs(observed - expected) <= 1e-9 * max(1.0, abs(expected))
        assert abs(batched.routed_volume - reference.routed_volume) <= 1e-9 * max(
            1.0, reference.routed_volume
        )
        assert batched.unrouted_volume == reference.unrouted_volume

    @given(
        st.integers(min_value=4, max_value=20),
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_ecmp_deterministic_and_conserves_volume_per_pair(self, n, extra, seed):
        """Same seed → same split; every pair's volume is conserved."""
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra)
        a, b = rng.sample(range(n), 2)
        volume = rng.uniform(1.0, 9.0)
        demand = DemandMatrix(endpoints=[str(a), str(b)])
        demand.set_demand(str(a), str(b), volume)
        compiled = compile_demand(topology, demand, {str(a): a, str(b): b})
        flow = route_demand(compiled, weight="hops", mode="ecmp")
        again = route_demand(compiled, weight="hops", mode="ecmp")
        assert list(flow.edge_loads) == list(again.edge_loads)
        graph = compiled.graph
        for endpoint in (a, b):
            index = graph.index_of[endpoint]
            incident = sum(
                flow.edge_loads[e]
                for e in range(graph.num_edges)
                if index in (graph.edge_u[e], graph.edge_v[e])
            )
            assert abs(incident - volume) <= 1e-9 * max(1.0, volume)
        hops = topology.hop_distances(a)[b]
        assert abs(sum(flow.edge_loads) - volume * hops) <= 1e-9 * max(
            1.0, volume * hops
        )


class TestFlowProperties:
    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_max_flow_bounded_by_source_capacity(self, n, extra_links, seed):
        """Max flow never exceeds the total capacity leaving the source."""
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra_links)
        for link in topology.links():
            link.capacity = rng.uniform(1.0, 10.0)
        network = network_from_topology(topology)
        source, sink = 0, n - 1
        out_capacity = sum(link.capacity for link in topology.incident_links(source))
        in_capacity = sum(link.capacity for link in topology.incident_links(sink))
        flow = network.max_flow(source, sink)
        assert flow <= out_capacity + 1e-9
        assert flow <= in_capacity + 1e-9
        assert flow >= 0.0

    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_min_cost_flow_never_cheaper_than_unit_shortest_path(self, n, seed):
        """For one unit of demand, min-cost flow equals the cheapest path cost."""
        rng = random.Random(seed)
        topology = random_connected_topology(rng, n, extra_links=3)
        for link in topology.links():
            link.capacity = 100.0
            link.usage_cost = rng.uniform(0.1, 2.0)
        from repro.optimization.shortest_path import dijkstra

        distances, _ = dijkstra(topology, 0, weight=lambda link: link.usage_cost)
        network = network_from_topology(topology)
        sent, cost = network.min_cost_flow(0, n - 1, 1.0)
        assert sent == 1.0
        assert abs(cost - distances[n - 1]) < 1e-6


class TestSteinerProperties:
    @given(st.lists(coordinates, min_size=3, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_backbone_length_equals_mst_and_bounds_tour(self, points):
        """The geometric backbone has MST length, which lower-bounds any tour."""
        backbone = geometric_steiner_backbone(points)
        mst_length = euclidean_mst_length(points)
        assert abs(backbone.total_length() - mst_length) < 1e-9
        tour = sum(euclidean(points[i], points[i + 1]) for i in range(len(points) - 1))
        assert mst_length <= tour + 1e-9

    @given(st.lists(coordinates, min_size=2, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_mst_edges_form_acyclic_spanning_structure(self, points):
        edges = prim_mst_points(points)
        assert len(edges) == len(points) - 1
        seen = set()
        for u, v in edges:
            seen.add(u)
            seen.add(v)
        if len(points) > 1:
            assert seen == set(range(len(points)))
