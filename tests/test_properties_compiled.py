"""Property tests: compiled kernels agree with pure-Python references.

Seeded random topologies (~200 nodes) are run through both the compiled
CSR kernels (as exposed by the public APIs) and straightforward object-graph
reference implementations kept here: dictionary Dijkstra, dictionary BFS,
set-based components, and a copy-per-step removal trace.  Agreement is exact,
including after mutations that bump ``Topology.version``.
"""

import heapq
import random

import pytest

from repro.metrics.resilience import removal_trace
from repro.optimization.shortest_path import (
    all_pairs_shortest_lengths,
    dijkstra,
    multi_source_dijkstra,
)
from repro.topology.graph import Topology
from repro.topology.node import NodeRole


# ----------------------------------------------------------------------
# Reference implementations (object graph, no compiled view)
# ----------------------------------------------------------------------
def _default_weight(link):
    return link.length if link.length > 0 else 1.0


def reference_dijkstra(topology, source, weight=None):
    if weight is None:
        weight = _default_weight
    distances = {source: 0.0}
    visited = set()
    counter = 0
    heap = [(0.0, counter, source)]
    while heap:
        distance, _, current = heapq.heappop(heap)
        if current in visited:
            continue
        visited.add(current)
        for link in topology.incident_links(current):
            neighbor = link.other_end(current)
            if neighbor in visited:
                continue
            candidate = distance + weight(link)
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return distances


def reference_hop_distances(topology, source):
    distances = {source: 0}
    queue = [source]
    head = 0
    while head < len(queue):
        current = queue[head]
        head += 1
        for neighbor in topology.neighbors(current):
            if neighbor not in distances:
                distances[neighbor] = distances[current] + 1
                queue.append(neighbor)
    return distances


def reference_components(topology):
    remaining = set(topology.node_ids())
    components = []
    while remaining:
        seed = next(iter(remaining))
        component = set(reference_hop_distances(topology, seed))
        components.append(frozenset(component))
        remaining -= component
    return set(components)


def reference_removal_trace(topology, strategy, steps, max_fraction, seed):
    """Copy-per-step removal trace with the library's tie-break rules.

    Targeted removal picks the highest-degree node, breaking ties in node
    insertion order of the original topology.
    """
    working = topology.copy()
    original_size = topology.num_nodes
    insertion_rank = {nid: i for i, nid in enumerate(topology.node_ids())}
    total_demand = sum(
        node.demand for node in topology.nodes() if node.role == NodeRole.CUSTOMER
    )
    rng = random.Random(seed)
    removable = list(topology.node_ids())
    total_to_remove = min(int(max_fraction * original_size), len(removable))
    per_step = max(1, total_to_remove // steps)

    def largest_fraction():
        if working.num_nodes == 0:
            return 0.0
        components = reference_components(working)
        return max(len(c) for c in components) / original_size

    def demand_loss_fraction():
        if total_demand <= 0:
            return 0.0
        cores = [n.node_id for n in working.nodes() if n.role == NodeRole.CORE]
        if not cores:
            return 0.0
        reachable = set()
        for core in cores:
            reachable.update(reference_hop_distances(working, core))
        connected = sum(
            node.demand
            for node in working.nodes()
            if node.role == NodeRole.CUSTOMER and node.node_id in reachable
        )
        return 1.0 - connected / total_demand

    fractions = [0.0]
    largest = [largest_fraction()]
    demand_loss = [demand_loss_fraction()]
    removed = 0
    if strategy == "random":
        rng.shuffle(removable)
    while removed < total_to_remove:
        batch = min(per_step, total_to_remove - removed)
        for _ in range(batch):
            if strategy == "targeted":
                candidates = [n for n in removable if working.has_node(n)]
                if not candidates:
                    break
                victim = max(
                    candidates,
                    key=lambda n: (working.degree(n), -insertion_rank[n]),
                )
                removable.remove(victim)
            else:
                victim = None
                while removable:
                    candidate = removable.pop()
                    if working.has_node(candidate):
                        victim = candidate
                        break
                if victim is None:
                    break
            working.remove_node(victim)
            removed += 1
        fractions.append(removed / original_size)
        largest.append(largest_fraction())
        demand_loss.append(demand_loss_fraction())
        if not removable:
            break
    return fractions, largest, demand_loss


# ----------------------------------------------------------------------
# Random topology factory
# ----------------------------------------------------------------------
def random_topology(seed: int, num_nodes: int = 200, num_links: int = 420) -> Topology:
    rng = random.Random(seed)
    topo = Topology(name=f"random-{seed}")
    for i in range(num_nodes):
        role = rng.choice(
            [NodeRole.GENERIC, NodeRole.CORE, NodeRole.CUSTOMER, NodeRole.ACCESS]
        )
        demand = rng.uniform(0.5, 4.0) if role == NodeRole.CUSTOMER else 0.0
        topo.add_node(f"n{i}", role=role, demand=demand)
    added = 0
    while added < num_links:
        u, v = rng.sample(range(num_nodes), 2)
        if not topo.has_link(f"n{u}", f"n{v}"):
            topo.add_link(f"n{u}", f"n{v}", length=rng.uniform(0.1, 10.0))
            added += 1
    return topo


def mutate(topology: Topology, seed: int) -> None:
    """Apply structural mutations that must bump the version."""
    rng = random.Random(seed)
    node_ids = list(topology.node_ids())
    removed = 0
    for node_id in rng.sample(node_ids, 5):
        topology.remove_node(node_id)
        removed += 1
    survivors = list(topology.node_ids())
    added = 0
    while added < 8:
        u, v = rng.sample(survivors, 2)
        if not topology.has_link(u, v):
            topology.add_link(u, v, length=rng.uniform(0.1, 10.0))
            added += 1
    topology.add_node("extra")
    topology.add_link("extra", survivors[0], length=1.0)


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dijkstra_matches_reference(seed):
    topo = random_topology(seed)
    rng = random.Random(seed + 100)
    for source in rng.sample(list(topo.node_ids()), 10):
        distances, predecessors = dijkstra(topo, source)
        assert distances == reference_dijkstra(topo, source)
        # Predecessor map must reconstruct paths of exactly the right length.
        for target, distance in distances.items():
            node, walked = target, 0.0
            while node != source:
                parent = predecessors[node]
                length = topo.link(parent, node).length
                walked += length if length > 0 else 1.0
                node = parent
            assert walked == pytest.approx(distance)


@pytest.mark.parametrize("seed", [3, 4])
def test_hop_distances_and_components_match_reference(seed):
    topo = random_topology(seed, num_links=230)  # sparse: leaves components
    rng = random.Random(seed)
    for source in rng.sample(list(topo.node_ids()), 10):
        assert topo.hop_distances(source) == reference_hop_distances(topo, source)
    assert {frozenset(c) for c in topo.connected_components()} == reference_components(
        topo
    )


@pytest.mark.parametrize("seed", [5, 6])
def test_all_pairs_matches_per_source_reference(seed):
    topo = random_topology(seed, num_nodes=80, num_links=160)
    lengths = all_pairs_shortest_lengths(topo)
    for source in topo.node_ids():
        assert lengths[source] == reference_dijkstra(topo, source)


@pytest.mark.parametrize("seed", [7, 8])
def test_multi_source_matches_min_over_single_sources(seed):
    topo = random_topology(seed)
    rng = random.Random(seed)
    sources = rng.sample(list(topo.node_ids()), 6)
    distances, _, nearest = multi_source_dijkstra(topo, sources)
    per_source = {s: reference_dijkstra(topo, s) for s in sources}
    for node, distance in distances.items():
        best = min(per_source[s].get(node, float("inf")) for s in sources)
        assert distance == pytest.approx(best)
        assert per_source[nearest[node]].get(node) == pytest.approx(distance)
    for s in sources:
        for node, d in per_source[s].items():
            assert node in distances


@pytest.mark.parametrize("strategy", ["random", "targeted"])
@pytest.mark.parametrize("seed", [9, 10])
def test_removal_trace_matches_copy_per_step_reference(strategy, seed):
    topo = random_topology(seed, num_nodes=120, num_links=200)
    trace = removal_trace(topo, strategy=strategy, steps=6, max_fraction=0.4, seed=seed)
    fractions, largest, demand_loss = reference_removal_trace(
        topo, strategy, steps=6, max_fraction=0.4, seed=seed
    )
    assert trace.fractions_removed == pytest.approx(fractions)
    assert trace.largest_component_fraction == pytest.approx(largest)
    assert trace.disconnected_demand_fraction == pytest.approx(demand_loss)
    # The input topology must be untouched by the mask-based trace.
    assert topo.num_nodes == 120


@pytest.mark.parametrize("seed", [11, 12])
def test_kernels_agree_after_mutations(seed):
    topo = random_topology(seed)
    before = topo.version
    dijkstra(topo, "n0")  # warm the compiled cache
    mutate(topo, seed)
    assert topo.version > before
    rng = random.Random(seed)
    for source in rng.sample(list(topo.node_ids()), 8):
        assert dijkstra(topo, source)[0] == reference_dijkstra(topo, source)
        assert topo.hop_distances(source) == reference_hop_distances(topo, source)
    assert {frozenset(c) for c in topo.connected_components()} == reference_components(
        topo
    )
