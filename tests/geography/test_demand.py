"""Tests for repro.geography.demand."""

import pytest

from repro.geography.demand import (
    DemandMatrix,
    access_demands,
    gravity_demand,
    uniform_demand,
)
from repro.geography.population import City


def sample_cities():
    return [
        City("metropolis", (0.0, 0.0), 1000.0),
        City("midtown", (1.0, 0.0), 500.0),
        City("hamlet", (10.0, 10.0), 10.0),
    ]


class TestDemandMatrix:
    def test_symmetric(self):
        matrix = DemandMatrix(endpoints=["a", "b"])
        matrix.set_demand("a", "b", 5.0)
        assert matrix.demand("b", "a") == 5.0

    def test_self_demand_zero_and_rejected(self):
        matrix = DemandMatrix(endpoints=["a", "b"])
        assert matrix.demand("a", "a") == 0.0
        with pytest.raises(ValueError):
            matrix.set_demand("a", "a", 1.0)

    def test_unknown_endpoint_rejected(self):
        matrix = DemandMatrix(endpoints=["a", "b"])
        with pytest.raises(KeyError):
            matrix.set_demand("a", "z", 1.0)

    def test_negative_demand_rejected(self):
        matrix = DemandMatrix(endpoints=["a", "b"])
        with pytest.raises(ValueError):
            matrix.set_demand("a", "b", -1.0)

    def test_duplicate_endpoints_rejected(self):
        with pytest.raises(ValueError):
            DemandMatrix(endpoints=["a", "a"])

    def test_total_and_outgoing(self):
        matrix = DemandMatrix(endpoints=["a", "b", "c"])
        matrix.set_demand("a", "b", 2.0)
        matrix.set_demand("a", "c", 3.0)
        assert matrix.total() == pytest.approx(5.0)
        assert matrix.outgoing("a") == pytest.approx(5.0)
        assert matrix.outgoing("b") == pytest.approx(2.0)

    def test_top_pairs(self):
        matrix = DemandMatrix(endpoints=["a", "b", "c"])
        matrix.set_demand("a", "b", 1.0)
        matrix.set_demand("b", "c", 9.0)
        top = matrix.top_pairs(1)
        assert len(top) == 1
        assert top[0][2] == 9.0

    def test_scaled(self):
        matrix = DemandMatrix(endpoints=["a", "b"])
        matrix.set_demand("a", "b", 2.0)
        assert matrix.scaled(2.5).demand("a", "b") == pytest.approx(5.0)


class TestFromArrays:
    def test_matches_set_demand(self):
        via_calls = DemandMatrix(endpoints=["a", "b", "c"])
        via_calls.set_demand("a", "b", 2.0)
        via_calls.set_demand("c", "a", 3.0)
        via_arrays = DemandMatrix.from_arrays(
            ["a", "b", "c"], [0, 2], [1, 0], [2.0, 3.0]
        )
        assert sorted(via_arrays.pairs()) == sorted(via_calls.pairs())
        assert via_arrays.demand("a", "c") == 3.0

    def test_keys_canonicalized(self):
        matrix = DemandMatrix.from_arrays(["b", "a"], [0], [1], [1.5])
        assert matrix.demand("a", "b") == 1.5
        assert matrix.demand("b", "a") == 1.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DemandMatrix.from_arrays(["a", "b"], [0], [0], [1.0])
        with pytest.raises(ValueError):
            DemandMatrix.from_arrays(["a", "b"], [0], [1], [-1.0])
        with pytest.raises(ValueError):
            DemandMatrix.from_arrays(["a", "b"], [0, 1], [1], [1.0])
        with pytest.raises(ValueError):
            DemandMatrix.from_arrays(["a", "a"], [0], [1], [1.0])


class TestGravityDemand:
    def test_total_volume_normalized(self):
        matrix = gravity_demand(sample_cities(), total_volume=100.0)
        assert matrix.total() == pytest.approx(100.0)

    def test_big_close_pair_dominates(self):
        matrix = gravity_demand(sample_cities(), total_volume=100.0)
        big_pair = matrix.demand("metropolis", "midtown")
        small_pair = matrix.demand("midtown", "hamlet")
        assert big_pair > small_pair

    def test_distance_exponent_zero_ignores_distance(self):
        cities = sample_cities()
        matrix = gravity_demand(cities, total_volume=1.0, distance_exponent=0.0)
        # With no distance dependence, the ratio equals the population product ratio.
        ratio = matrix.demand("metropolis", "midtown") / matrix.demand("metropolis", "hamlet")
        assert ratio == pytest.approx((1000 * 500) / (1000 * 10), rel=1e-6)

    def test_requires_two_cities(self):
        with pytest.raises(ValueError):
            gravity_demand(sample_cities()[:1])

    def test_colocated_cities_handled(self):
        cities = [
            City("a", (0.0, 0.0), 10.0),
            City("b", (0.0, 0.0), 20.0),
            City("c", (5.0, 5.0), 30.0),
        ]
        matrix = gravity_demand(cities, total_volume=10.0)
        assert matrix.total() == pytest.approx(10.0)
        assert matrix.demand("a", "b") > 0


class TestUniformDemand:
    def test_equal_split(self):
        matrix = uniform_demand(["a", "b", "c"], total_volume=30.0)
        assert matrix.demand("a", "b") == pytest.approx(10.0)
        assert matrix.total() == pytest.approx(30.0)

    def test_requires_two_endpoints(self):
        with pytest.raises(ValueError):
            uniform_demand(["only"])


class TestAccessDemands:
    def test_proportional(self):
        assert access_demands([1000.0, 2000.0], per_capita=0.01) == [10.0, 20.0]

    def test_negative_population_rejected(self):
        with pytest.raises(ValueError):
            access_demands([-5.0])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            access_demands([1.0], per_capita=-0.1)
