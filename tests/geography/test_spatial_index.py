"""Tests for the uniform spatial grid index (repro.geography.spatial_index)."""

import math
import random

import pytest

from repro.geography.regions import metro_region, unit_square
from repro.geography.spatial_index import GridBuckets, SpatialGridIndex
from repro.topology.compiled import KERNEL_COUNTERS


def brute_force_argmin(points, query, alpha):
    """Ascending-id scan with strict improvement — the seed's selection rule."""
    best_id, best_obj = None, math.inf
    for item_id, (x, y), score in points:
        objective = alpha * math.hypot(query[0] - x, query[1] - y) + score
        if objective < best_obj:
            best_obj = objective
            best_id = item_id
    return best_id, best_obj


class TestSpatialGridIndex:
    @pytest.mark.parametrize("alpha", [0.0, 0.1, 1.0, 4.0, 50.0])
    def test_argmin_matches_brute_force(self, alpha):
        rng = random.Random(int(alpha * 10) + 1)
        region = unit_square()
        index = SpatialGridIndex(region, expected_points=8)
        points = []
        for item_id in range(400):
            location = (rng.random(), rng.random())
            score = float(rng.randrange(0, 12))
            points.append((item_id, location, score))
            index.insert(item_id, location, score)
            query = (rng.random(), rng.random())
            assert index.argmin(query, alpha) == brute_force_argmin(points, query, alpha)

    def test_tie_breaks_toward_lowest_id(self):
        index = SpatialGridIndex(unit_square(), expected_points=4)
        # Nodes 7 and 3 tie exactly (same location, same score); 9 loses.
        index.insert(7, (0.5, 0.5), 1.0)
        index.insert(3, (0.5, 0.5), 1.0)
        index.insert(9, (0.9, 0.9), 2.0)
        best_id, best_obj = index.argmin((0.5, 0.5), 1.0)
        assert best_id == 3
        assert best_obj == 1.0

    def test_stop_above_prunes_but_never_loses_ties(self):
        index = SpatialGridIndex(unit_square(), expected_points=4)
        index.insert(1, (0.1, 0.1), 0.0)
        index.insert(2, (0.9, 0.9), 0.0)
        query = (0.1, 0.1)
        # Incumbent exactly equal to node 1's objective: 1 must still be found.
        best_id, best_obj = index.argmin(query, 1.0, stop_above=0.0)
        assert best_id == 1
        assert best_obj == 0.0
        # Incumbent below anything reachable: everything may be pruned.
        best_id, best_obj = index.argmin(query, 1.0, stop_above=-1.0)
        assert best_id is None and best_obj == math.inf

    def test_non_unit_region(self):
        rng = random.Random(4)
        region = metro_region(size_km=50.0)
        index = SpatialGridIndex(region, expected_points=8)
        points = []
        for item_id in range(200):
            location = (rng.random() * 50.0, rng.random() * 50.0)
            score = rng.random() * 5.0
            points.append((item_id, location, score))
            index.insert(item_id, location, score)
        for _ in range(50):
            query = (rng.random() * 50.0, rng.random() * 50.0)
            assert index.argmin(query, 2.0) == brute_force_argmin(points, query, 2.0)

    def test_rebuild_keeps_all_points(self):
        index = SpatialGridIndex(unit_square(), expected_points=1)
        rng = random.Random(2)
        for item_id in range(300):  # forces several grid rebuilds
            index.insert(item_id, (rng.random(), rng.random()), 0.0)
        assert len(index) == 300
        best_id, _ = index.argmin((0.5, 0.5), 1.0)
        assert 0 <= best_id < 300

    def test_empty_query_raises(self):
        with pytest.raises(ValueError):
            SpatialGridIndex(unit_square()).argmin((0.5, 0.5), 1.0)

    def test_counters_increment(self):
        KERNEL_COUNTERS.reset()
        index = SpatialGridIndex(unit_square(), expected_points=4)
        index.insert(0, (0.2, 0.2), 0.0)
        index.argmin((0.3, 0.3), 1.0)
        assert KERNEL_COUNTERS.spatial_queries == 1
        assert KERNEL_COUNTERS.spatial_candidates >= 1


class TestGridBuckets:
    def test_every_point_bucketed_once(self):
        rng = random.Random(1)
        points = [(rng.random(), rng.random()) for _ in range(200)]
        buckets = GridBuckets(points, unit_square(), cells_per_side=5)
        seen = sorted(i for _, members in buckets.cells for i in members)
        assert seen == list(range(200))

    def test_cells_sorted_for_determinism(self):
        rng = random.Random(2)
        points = [(rng.random(), rng.random()) for _ in range(100)]
        buckets = GridBuckets(points, unit_square(), cells_per_side=4)
        keys = [key for key, _ in buckets.cells]
        assert keys == sorted(keys)

    def test_min_distance_is_a_lower_bound(self):
        rng = random.Random(3)
        points = [(rng.random(), rng.random()) for _ in range(150)]
        buckets = GridBuckets(points, unit_square(), cells_per_side=4)
        for key_a, members_a in buckets.cells:
            for key_b, members_b in buckets.cells:
                lower = buckets.min_distance(key_a, key_b)
                for i in members_a:
                    for j in members_b:
                        if i != j:
                            actual = math.hypot(
                                points[i][0] - points[j][0],
                                points[i][1] - points[j][1],
                            )
                            assert actual >= lower - 1e-12

    def test_adjacent_and_same_cells_have_zero_bound(self):
        buckets = GridBuckets([(0.1, 0.1)], unit_square(), cells_per_side=4)
        assert buckets.min_distance((0, 0), (0, 0)) == 0.0
        assert buckets.min_distance((0, 0), (1, 1)) == 0.0
        assert buckets.min_distance((0, 0), (2, 0)) == 0.25

    def test_invalid_cells_per_side(self):
        with pytest.raises(ValueError):
            GridBuckets([], unit_square(), cells_per_side=0)
