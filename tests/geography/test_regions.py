"""Tests for repro.geography.regions."""

import random

import pytest

from repro.geography.regions import Region, metro_region, national_region, unit_square


class TestRegion:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Region(width=0.0)
        with pytest.raises(ValueError):
            Region(height=-1.0)

    def test_area_and_center(self):
        region = Region(width=4.0, height=2.0, origin=(1.0, 1.0))
        assert region.area == pytest.approx(8.0)
        assert region.center == pytest.approx((3.0, 2.0))

    def test_diagonal(self):
        region = Region(width=3.0, height=4.0)
        assert region.diagonal == pytest.approx(5.0)

    def test_contains(self):
        region = Region(width=2.0, height=2.0, origin=(1.0, 1.0))
        assert region.contains((2.0, 2.0))
        assert region.contains((1.0, 1.0))
        assert not region.contains((0.5, 2.0))

    def test_clamp(self):
        region = Region(width=1.0, height=1.0)
        assert region.clamp((2.0, -1.0)) == (1.0, 0.0)
        assert region.clamp((0.3, 0.4)) == (0.3, 0.4)

    def test_sample_uniform_inside(self):
        region = Region(width=10.0, height=5.0, origin=(-5.0, -5.0))
        points = region.sample_uniform(50, random.Random(1))
        assert all(region.contains(p) for p in points)

    def test_sample_clustered_inside(self):
        region = Region(width=10.0, height=5.0)
        points = region.sample_clustered(50, 3, random.Random(1))
        assert all(region.contains(p) for p in points)

    def test_subdivide(self):
        region = Region(width=4.0, height=2.0)
        cells = region.subdivide(2, 2)
        assert len(cells) == 4
        assert sum(c.area for c in cells) == pytest.approx(region.area)
        assert all(c.width == 2.0 and c.height == 1.0 for c in cells)

    def test_subdivide_invalid(self):
        with pytest.raises(ValueError):
            Region().subdivide(0, 1)


class TestNamedRegions:
    def test_unit_square(self):
        region = unit_square()
        assert region.width == 1.0 and region.height == 1.0

    def test_metro_region(self):
        assert metro_region(size_km=30.0).width == 30.0

    def test_national_region_is_continental(self):
        region = national_region()
        assert region.width > 1000.0 and region.height > 1000.0
