"""Tests for repro.geography.population."""

import random

import pytest

from repro.geography.population import (
    City,
    PopulationModel,
    population_weights,
    synthetic_population,
    zipf_populations,
)
from repro.geography.regions import national_region, unit_square


class TestCity:
    def test_non_positive_population_rejected(self):
        with pytest.raises(ValueError):
            City(name="x", location=(0, 0), population=0.0)

    def test_distance(self):
        a = City(name="a", location=(0, 0), population=1.0)
        b = City(name="b", location=(3, 4), population=1.0)
        assert a.distance_to(b) == pytest.approx(5.0)


class TestZipfPopulations:
    def test_rank_size_rule(self):
        pops = zipf_populations(5, largest_population=100.0, exponent=1.0)
        assert pops[0] == pytest.approx(100.0)
        assert pops[1] == pytest.approx(50.0)
        assert pops[4] == pytest.approx(20.0)

    def test_monotone_decreasing(self):
        pops = zipf_populations(20, exponent=0.8)
        assert all(a >= b for a, b in zip(pops, pops[1:]))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            zipf_populations(0)
        with pytest.raises(ValueError):
            zipf_populations(3, largest_population=0.0)
        with pytest.raises(ValueError):
            zipf_populations(3, exponent=-1.0)


class TestPopulationModel:
    def build(self) -> PopulationModel:
        region = unit_square()
        cities = [
            City("big", (0.2, 0.2), 1000.0, is_major=True),
            City("mid", (0.8, 0.8), 500.0),
            City("small", (0.5, 0.9), 100.0),
        ]
        return PopulationModel(region=region, cities=cities)

    def test_duplicate_names_rejected(self):
        region = unit_square()
        cities = [City("a", (0, 0), 1.0), City("a", (1, 1), 2.0)]
        with pytest.raises(ValueError):
            PopulationModel(region=region, cities=cities)

    def test_total_population(self):
        assert self.build().total_population == pytest.approx(1600.0)

    def test_lookup_and_missing(self):
        model = self.build()
        assert model.city("mid").population == 500.0
        with pytest.raises(KeyError):
            model.city("ghost")

    def test_major_cities(self):
        assert [c.name for c in self.build().major_cities()] == ["big"]

    def test_largest(self):
        model = self.build()
        assert [c.name for c in model.largest(2)] == ["big", "mid"]

    def test_nearest_city(self):
        assert self.build().nearest_city((0.0, 0.0)).name == "big"

    def test_sample_city_proportional_to_population(self):
        model = self.build()
        rng = random.Random(0)
        counts = {"big": 0, "mid": 0, "small": 0}
        for _ in range(2000):
            counts[model.sample_city(rng).name] += 1
        assert counts["big"] > counts["mid"] > counts["small"]

    def test_sample_customer_locations_in_region(self):
        model = self.build()
        locations = model.sample_customer_locations(100, random.Random(1))
        assert len(locations) == 100
        assert all(model.region.contains(p) for p in locations)


class TestSyntheticPopulation:
    def test_city_count_and_names_unique(self):
        model = synthetic_population(national_region(), 25, seed=3)
        assert len(model.cities) == 25
        assert len({c.name for c in model.cities}) == 25

    def test_deterministic_with_seed(self):
        a = synthetic_population(national_region(), 10, seed=5)
        b = synthetic_population(national_region(), 10, seed=5)
        assert [c.location for c in a.cities] == [c.location for c in b.cities]

    def test_populations_follow_zipf_order(self):
        model = synthetic_population(national_region(), 15, seed=1)
        pops = [c.population for c in model.cities]
        assert all(a >= b for a, b in zip(pops, pops[1:]))

    def test_major_fraction(self):
        model = synthetic_population(national_region(), 20, seed=2, major_fraction=0.25)
        assert len(model.major_cities()) == 5

    def test_cities_inside_region(self):
        region = national_region()
        model = synthetic_population(region, 30, seed=4)
        assert all(region.contains(c.location) for c in model.cities)


class TestPopulationWeights:
    def test_weights_sum_to_one(self):
        cities = [City("a", (0, 0), 10.0), City("b", (1, 1), 30.0)]
        weights = population_weights(cities)
        assert sum(weights) == pytest.approx(1.0)
        assert weights[1] == pytest.approx(0.75)
