"""Tests for repro.geography.points."""

import random

import pytest

from repro.geography.points import (
    Point,
    bounding_box,
    centroid,
    clustered_points,
    euclidean,
    grid_points,
    manhattan,
    nearest_point_index,
    pairwise_distances,
    random_points,
    total_length,
)


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_manhattan(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, 4)) == pytest.approx(7.0)

    def test_midpoint(self):
        mid = Point(0, 0).midpoint(Point(2, 4))
        assert (mid.x, mid.y) == (1.0, 2.0)

    def test_translated(self):
        moved = Point(1, 1).translated(2, -1)
        assert moved.as_tuple() == (3.0, 0.0)


class TestDistanceHelpers:
    def test_euclidean(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_manhattan(self):
        assert manhattan((1, 1), (4, 5)) == pytest.approx(7.0)

    def test_centroid(self):
        assert centroid([(0, 0), (2, 0), (1, 3)]) == pytest.approx((1.0, 1.0))

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_bounding_box(self):
        assert bounding_box([(1, 2), (-1, 5), (3, 0)]) == (-1, 0, 3, 5)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])

    def test_nearest_point_index(self):
        assert nearest_point_index((0, 0), [(5, 5), (1, 1), (2, 2)]) == 1

    def test_nearest_point_index_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_point_index((0, 0), [])

    def test_pairwise_distances_symmetric(self):
        matrix = pairwise_distances([(0, 0), (1, 0), (0, 1)])
        assert matrix[0][1] == pytest.approx(1.0)
        assert matrix[1][0] == matrix[0][1]
        assert matrix[2][2] == 0.0

    def test_total_length(self):
        assert total_length([(0, 0), (1, 0), (1, 1)]) == pytest.approx(2.0)


class TestSampling:
    def test_random_points_in_rectangle(self):
        rng = random.Random(1)
        points = random_points(100, rng, width=2.0, height=3.0, origin=(1.0, 1.0))
        assert len(points) == 100
        assert all(1.0 <= x <= 3.0 and 1.0 <= y <= 4.0 for x, y in points)

    def test_random_points_deterministic_with_seed(self):
        assert random_points(10, random.Random(7)) == random_points(10, random.Random(7))

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            random_points(-1)

    def test_clustered_points_within_bounds(self):
        rng = random.Random(2)
        points = clustered_points(200, 4, rng)
        assert len(points) == 200
        assert all(0 <= x <= 1 and 0 <= y <= 1 for x, y in points)

    def test_clustered_points_are_clustered(self):
        rng = random.Random(3)
        clustered = clustered_points(200, 2, rng, spread=0.01)
        uniform = random_points(200, random.Random(3))
        def mean_nn(points):
            total = 0.0
            for p in points:
                total += min(euclidean(p, q) for q in points if q is not p)
            return total / len(points)
        assert mean_nn(clustered) < mean_nn(uniform)

    def test_clustered_invalid_clusters_raises(self):
        with pytest.raises(ValueError):
            clustered_points(10, 0)

    def test_grid_points(self):
        points = grid_points(2, 3)
        assert len(points) == 6
        assert all(0 < x < 1 and 0 < y < 1 for x, y in points)

    def test_grid_points_invalid(self):
        with pytest.raises(ValueError):
            grid_points(0, 3)
