"""Tests for repro.optimization.shortest_path."""

import pytest

from repro.optimization.shortest_path import (
    all_pairs_shortest_lengths,
    dijkstra,
    eccentricity,
    path_length,
    reconstruct_path,
    shortest_path,
)
from repro.topology.graph import Topology


def weighted_square() -> Topology:
    """Square a-b-c-d with a long diagonal a-c."""
    topo = Topology()
    for n in "abcd":
        topo.add_node(n)
    topo.add_link("a", "b", length=1.0)
    topo.add_link("b", "c", length=1.0)
    topo.add_link("c", "d", length=1.0)
    topo.add_link("d", "a", length=1.0)
    topo.add_link("a", "c", length=5.0)
    return topo


class TestDijkstra:
    def test_distances(self):
        distances, _ = dijkstra(weighted_square(), "a")
        assert distances["c"] == pytest.approx(2.0)
        assert distances["b"] == pytest.approx(1.0)

    def test_prefers_cheaper_multi_hop_path(self):
        path = shortest_path(weighted_square(), "a", "c")
        assert path in (["a", "b", "c"], ["a", "d", "c"])

    def test_unreachable_returns_none(self):
        topo = Topology()
        topo.add_node("x")
        topo.add_node("y")
        assert shortest_path(topo, "x", "y") is None

    def test_zero_length_links_count_as_one_hop(self, path_topology):
        distances, _ = dijkstra(path_topology, 0)
        assert distances[5] == pytest.approx(5.0)

    def test_negative_weight_rejected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b")
        with pytest.raises(ValueError):
            dijkstra(topo, "a", weight=lambda link: -1.0)

    def test_custom_weight(self):
        # With hop-count weights the long diagonal a-c becomes the best route.
        topo = weighted_square()
        distances, _ = dijkstra(topo, "a", weight=lambda link: 1.0)
        assert distances["c"] == pytest.approx(1.0)
        assert distances["b"] == pytest.approx(1.0)


class TestPathUtilities:
    def test_reconstruct_path(self):
        topo = weighted_square()
        distances, predecessors = dijkstra(topo, "a")
        path = reconstruct_path(predecessors, "a", "c")
        assert path[0] == "a" and path[-1] == "c"
        assert len(path) == 3

    def test_reconstruct_missing_raises(self):
        with pytest.raises(ValueError):
            reconstruct_path({}, "a", "b")

    def test_path_length(self):
        topo = weighted_square()
        assert path_length(topo, ["a", "b", "c"]) == pytest.approx(2.0)
        assert path_length(topo, ["a", "c"]) == pytest.approx(5.0)

    def test_all_pairs_subset_sources(self):
        topo = weighted_square()
        lengths = all_pairs_shortest_lengths(topo, sources=["a"])
        assert set(lengths) == {"a"}
        assert lengths["a"]["d"] == pytest.approx(1.0)

    def test_eccentricity(self, path_topology):
        assert eccentricity(path_topology, 0) == pytest.approx(5.0)
        assert eccentricity(path_topology, 2) == pytest.approx(3.0)
