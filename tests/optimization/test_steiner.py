"""Tests for repro.optimization.steiner."""

import random

import pytest

from repro.geography.points import random_points
from repro.optimization.mst import euclidean_mst_length
from repro.optimization.steiner import (
    geometric_steiner_backbone,
    metric_closure_steiner_tree,
    steiner_tree_cost,
    takahashi_matsuyama_steiner_tree,
)
from repro.topology.graph import Topology


def grid_graph(size: int = 4) -> Topology:
    """A size x size grid graph with unit edge lengths."""
    topo = Topology()
    for r in range(size):
        for c in range(size):
            topo.add_node((r, c), location=(float(c), float(r)))
    for r in range(size):
        for c in range(size):
            if c + 1 < size:
                topo.add_link((r, c), (r, c + 1), length=1.0)
            if r + 1 < size:
                topo.add_link((r, c), (r + 1, c), length=1.0)
    return topo


class TestMetricClosureSteiner:
    def test_contains_all_terminals_and_is_tree(self):
        graph = grid_graph()
        terminals = [(0, 0), (3, 3), (0, 3)]
        tree = metric_closure_steiner_tree(graph, terminals)
        for terminal in terminals:
            assert tree.has_node(terminal)
        assert tree.is_tree()

    def test_cost_at_most_twice_mst_lower_bound(self):
        graph = grid_graph(5)
        terminals = [(0, 0), (4, 4), (0, 4), (4, 0)]
        tree = metric_closure_steiner_tree(graph, terminals)
        # Lower bound: half the MST of the metric closure <= OPT; 2-approx guarantee.
        cost = steiner_tree_cost(tree)
        assert cost <= 2 * 16 + 1e-9  # grid diameter-based generous bound
        assert cost >= 8.0  # must at least connect opposite corners twice

    def test_single_terminal(self):
        graph = grid_graph()
        tree = metric_closure_steiner_tree(graph, [(1, 1)])
        assert tree.num_nodes == 1
        assert tree.num_links == 0

    def test_duplicate_terminals_deduplicated(self):
        graph = grid_graph()
        tree = metric_closure_steiner_tree(graph, [(0, 0), (0, 0), (1, 1)])
        assert tree.has_node((0, 0)) and tree.has_node((1, 1))

    def test_missing_terminal_raises(self):
        graph = grid_graph()
        with pytest.raises(ValueError):
            metric_closure_steiner_tree(graph, [(99, 99)])

    def test_unreachable_terminal_raises(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        with pytest.raises(ValueError):
            metric_closure_steiner_tree(topo, ["a", "b"])

    def test_no_terminals_raises(self):
        with pytest.raises(ValueError):
            metric_closure_steiner_tree(grid_graph(), [])

    def test_no_superfluous_leaves(self):
        graph = grid_graph(5)
        terminals = [(0, 0), (0, 4), (4, 2)]
        tree = metric_closure_steiner_tree(graph, terminals)
        for node_id in tree.node_ids():
            if tree.degree(node_id) == 1:
                assert node_id in terminals


class TestTakahashiMatsuyama:
    def test_contains_terminals_and_is_tree(self):
        graph = grid_graph()
        terminals = [(0, 0), (3, 3), (3, 0)]
        tree = takahashi_matsuyama_steiner_tree(graph, terminals)
        for terminal in terminals:
            assert tree.has_node(terminal)
        assert tree.is_tree()

    def test_comparable_to_metric_closure(self):
        graph = grid_graph(5)
        terminals = [(0, 0), (4, 4), (0, 4), (2, 2)]
        cost_tm = steiner_tree_cost(takahashi_matsuyama_steiner_tree(graph, terminals))
        cost_mc = steiner_tree_cost(metric_closure_steiner_tree(graph, terminals))
        assert cost_tm <= 2 * cost_mc + 1e-9
        assert cost_mc <= 2 * cost_tm + 1e-9


class TestGeometricBackbone:
    def test_is_tree_spanning_all_points(self):
        points = random_points(15, random.Random(5))
        backbone = geometric_steiner_backbone(points)
        assert backbone.is_tree()
        assert backbone.num_nodes == 15

    def test_total_length_equals_euclidean_mst(self):
        points = random_points(12, random.Random(6))
        backbone = geometric_steiner_backbone(points)
        assert backbone.total_length() == pytest.approx(euclidean_mst_length(points))
