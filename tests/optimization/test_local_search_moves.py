"""Tests for the move-based local search API (hill_climb_moves & friends).

The headline property — copy-based and move-based annealing follow identical
trajectories for the same seed — is exercised through the E10 suite helpers,
which is also what the benchmark gates.
"""

import random

import pytest

from repro.core.objectives import CostObjective
from repro.experiments.suites.e10_local_search import (
    build_anneal_instance,
    draw_move,
    edge_signature,
    run_anneal_pair,
)
from repro.optimization.incremental import IncrementalState, UpgradeCable
from repro.optimization.local_search import (
    hill_climb_moves,
    multi_start_moves,
    simulated_annealing_moves,
)


def upgrade_proposal(context):
    """Cable right-sizing proposals over a fixed tree (always feasible)."""

    def propose(state, rng):
        return draw_move(state.topology, rng, context)

    return propose


class TestHillClimbMoves:
    def test_descends_and_returns_best_topology(self):
        topology, context = build_anneal_instance(60, seed=9)
        state = IncrementalState(topology, CostObjective())
        start = state.score
        result = hill_climb_moves(
            state, upgrade_proposal(context), max_iterations=400, rng=random.Random(1)
        )
        assert result.best_cost < start
        assert result.best_solution is topology
        # Pure descent: the working topology ends at the best score exactly.
        assert state.score == result.best_cost
        assert result.history[0] == start
        assert len(result.history) == result.iterations + 1

    def test_patience_stops_early(self):
        topology, context = build_anneal_instance(20, seed=2)
        state = IncrementalState(topology, CostObjective())

        def never_improves(st, rng):
            rng.random()
            return None

        result = hill_climb_moves(
            state, never_improves, max_iterations=500, patience=10, rng=random.Random(0)
        )
        assert result.iterations == 10
        assert result.accepted_moves == 0

    def test_invalid_arguments_rejected(self):
        topology, context = build_anneal_instance(10, seed=0)
        state = IncrementalState(topology, CostObjective())
        with pytest.raises(ValueError):
            hill_climb_moves(state, upgrade_proposal(context), max_iterations=-1)

    def test_infeasible_proposals_leave_state_intact(self):
        topology, context = build_anneal_instance(15, seed=4)
        state = IncrementalState(topology, CostObjective())
        customer, target = context.tree_links[0]

        def duplicate_link(st, rng):
            from repro.optimization.incremental import AddLink

            return AddLink(customer, target)

        result = hill_climb_moves(
            state, duplicate_link, max_iterations=30, patience=5, rng=random.Random(0)
        )
        assert result.accepted_moves == 0
        state.verify()


class TestSimulatedAnnealingMoves:
    def test_rolls_back_to_best_depth(self):
        topology, context = build_anneal_instance(60, seed=7)
        state = IncrementalState(topology, CostObjective())
        result = simulated_annealing_moves(
            state, upgrade_proposal(context), max_iterations=500, rng=random.Random(3)
        )
        # After the rollback the working topology scores exactly the best cost.
        assert state.score == result.best_cost
        state.verify()

    def test_matches_copy_based_trajectory(self):
        payload = run_anneal_pair(120, "cost", iterations=250, seed=11, audit=True)
        assert payload["scores_equal"]
        assert payload["identical_edges"]
        assert payload["baseline_accepted"] == payload["incremental_accepted"]
        assert payload["incremental_full_evals"] <= 2
        assert payload["delta_evals"] == 250

    def test_matches_copy_based_trajectory_profit(self):
        payload = run_anneal_pair(100, "profit", iterations=200, seed=13, audit=False)
        assert payload["scores_equal"]
        assert payload["identical_edges"]


class TestMultiStartMoves:
    def test_keeps_best_of_several_states(self):
        # Three independent working copies of the same instance; the shared
        # rng stream makes each climb explore a different trajectory.
        states = []
        context = None
        for _ in range(3):
            topology, context = build_anneal_instance(40, seed=0)
            states.append(IncrementalState(topology, CostObjective()))
        start = states[0].score
        result = multi_start_moves(
            states, upgrade_proposal(context), max_iterations=150, rng=random.Random(5)
        )
        assert result.best_cost == min(s.score for s in states)
        assert result.best_cost < start
        assert edge_signature(result.best_solution)

    def test_empty_start_list_rejected(self):
        with pytest.raises(ValueError):
            multi_start_moves([], lambda s, r: None)


class TestUpgradeOnlySearch:
    def test_finds_per_link_optimum(self):
        """With only cable upgrades, hill climbing approaches the separable optimum."""
        topology, context = build_anneal_instance(30, seed=8)
        catalog = context.catalog
        optimal = sum(
            min(
                cable.install_cost * max(1, 1) * link.length + cable.usage_cost * link.length * link.load
                for cable in catalog
            )
            for link in topology.links()
        )

        def upgrades_only(state, rng):
            u, v = context.tree_links[rng.randrange(len(context.tree_links))]
            cable = context.cables[rng.randrange(len(context.cables))]
            link = state.topology.link(u, v)
            return UpgradeCable(
                u,
                v,
                cable=cable.name,
                capacity=cable.capacity,
                install_cost=cable.install_cost * link.length,
                usage_cost=cable.usage_cost * link.length,
            )

        state = IncrementalState(topology, CostObjective())
        result = hill_climb_moves(
            state, upgrades_only, max_iterations=3000, patience=600, rng=random.Random(2)
        )
        node_cost = state._node_equipment
        assert result.best_cost == pytest.approx(optimal + node_cost, rel=0.05)
