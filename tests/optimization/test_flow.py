"""Tests for repro.optimization.flow."""

import pytest

from repro.optimization.flow import (
    FlowNetwork,
    cheapest_routing_cost,
    network_from_topology,
    pairwise_min_cut,
)
from repro.topology.graph import Topology


def classic_network() -> FlowNetwork:
    """A 4-node instance whose max s-t flow is 26 (limited by the arcs into t)."""
    net = FlowNetwork()
    net.add_arc("s", "a", 16, 1)
    net.add_arc("s", "b", 13, 1)
    net.add_arc("a", "b", 10, 1)
    net.add_arc("b", "a", 4, 1)
    net.add_arc("a", "t", 12, 1)
    net.add_arc("b", "t", 14, 1)
    net.add_arc("t", "b", 9, 1)  # irrelevant backward arc
    net.add_arc("a", "b", 0, 1)
    return net


class TestMaxFlow:
    def test_series_parallel(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 10)
        net.add_arc("a", "t", 5)
        net.add_arc("s", "t", 3)
        assert net.max_flow("s", "t") == pytest.approx(8.0)

    def test_classic_instance(self):
        assert classic_network().max_flow("s", "t") == pytest.approx(26.0)

    def test_disconnected(self):
        net = FlowNetwork()
        net.add_node("s")
        net.add_node("t")
        assert net.max_flow("s", "t") == 0.0

    def test_unknown_node_rejected(self):
        net = FlowNetwork()
        net.add_node("s")
        with pytest.raises(ValueError):
            net.max_flow("s", "ghost")

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValueError):
            net.add_arc("a", "b", -1.0)

    def test_undirected_edge(self):
        net = FlowNetwork()
        net.add_edge("s", "t", 7)
        assert net.max_flow("s", "t") == pytest.approx(7.0)


class TestMinCostFlow:
    def test_prefers_cheap_path_first(self):
        net = FlowNetwork()
        net.add_arc("s", "a", 10, cost=1.0)
        net.add_arc("a", "t", 5, cost=1.0)
        net.add_arc("s", "t", 3, cost=5.0)
        sent, cost = net.min_cost_flow("s", "t", 6)
        assert sent == pytest.approx(6.0)
        assert cost == pytest.approx(5 * 2.0 + 1 * 5.0)

    def test_partial_when_capacity_insufficient(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 4, cost=1.0)
        sent, cost = net.min_cost_flow("s", "t", 10)
        assert sent == pytest.approx(4.0)
        assert cost == pytest.approx(4.0)

    def test_zero_amount(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 4, cost=1.0)
        assert net.min_cost_flow("s", "t", 0.0) == (0.0, 0.0)

    def test_negative_amount_rejected(self):
        net = FlowNetwork()
        net.add_arc("s", "t", 4)
        with pytest.raises(ValueError):
            net.min_cost_flow("s", "t", -1.0)

    def test_matches_max_flow_when_saturating(self):
        sent, _ = classic_network().min_cost_flow("s", "t", 1000.0)
        assert sent == pytest.approx(26.0)


class TestTopologyAdapters:
    def build_topology(self) -> Topology:
        topo = Topology()
        for n in "sabt":
            topo.add_node(n)
        topo.add_link("s", "a", capacity=10.0, usage_cost=1.0, length=1.0)
        topo.add_link("a", "t", capacity=5.0, usage_cost=1.0, length=1.0)
        topo.add_link("s", "t", capacity=3.0, usage_cost=5.0, length=1.0)
        return topo

    def test_network_from_topology_preserves_nodes(self):
        network = network_from_topology(self.build_topology())
        assert set(network.nodes()) == {"s", "a", "b", "t"}

    def test_pairwise_min_cut(self):
        # Cut around t: 5 (a-t) + 3 (s-t) = 8.
        assert pairwise_min_cut(self.build_topology(), "s", "t") == pytest.approx(8.0)

    def test_cheapest_routing_cost(self):
        cost = cheapest_routing_cost(self.build_topology(), "s", "t", 6.0)
        assert cost == pytest.approx(5 * 2.0 + 1 * 5.0)

    def test_cheapest_routing_infeasible_returns_none(self):
        assert cheapest_routing_cost(self.build_topology(), "s", "t", 100.0) is None

    def test_unbounded_links_use_default_capacity(self):
        topo = Topology()
        topo.add_node("x")
        topo.add_node("y")
        topo.add_link("x", "y")
        assert pairwise_min_cut(topo, "x", "y") == float("inf")

    def test_redundant_access_design_has_larger_min_cut(self):
        from repro.core import design_access_network
        from repro.topology.node import NodeRole

        tree = design_access_network(40, seed=3, redundancy=False).topology
        redundant = design_access_network(40, seed=3, redundancy=True).topology

        def concentrator_cut(topology):
            core = next(n.node_id for n in topology.nodes() if n.role == NodeRole.CORE)
            concentrators = [
                n.node_id for n in topology.nodes() if n.role == NodeRole.ACCESS
            ]
            network = network_from_topology(topology, default_capacity=1.0)
            # Hop-connectivity style cut: every link counts 1.
            for arc_index in range(len(network._capacity)):
                if network._capacity[arc_index] > 0:
                    network._capacity[arc_index] = 1.0
            return network.max_flow(concentrators[0], core)

        assert concentrator_cut(redundant) >= concentrator_cut(tree)
