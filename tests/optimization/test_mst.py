"""Tests for repro.optimization.mst."""

import random

import pytest

from repro.geography.points import euclidean, random_points
from repro.optimization.mst import (
    UnionFind,
    euclidean_mst_length,
    kruskal_edges,
    lazy_prim_edges,
    minimum_spanning_tree,
    prim_mst_points,
    prim_mst_topology_from_points,
)
from repro.topology.graph import Topology


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(["a", "b", "c"])
        assert uf.union("a", "b")
        assert uf.connected("a", "b")
        assert not uf.connected("a", "c")

    def test_union_same_set_returns_false(self):
        uf = UnionFind(["a", "b"])
        uf.union("a", "b")
        assert not uf.union("b", "a")

    def test_num_sets(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.num_sets() == 3

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find("ghost")

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add("x")
        uf.add("x")
        assert uf.num_sets() == 1


class TestKruskal:
    def test_spanning_tree_edge_count(self):
        nodes = list(range(4))
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 10.0), (0, 2, 10.0)]
        chosen = kruskal_edges(nodes, edges)
        assert len(chosen) == 3
        assert sum(w for _, _, w in chosen) == pytest.approx(6.0)

    def test_forest_on_disconnected_input(self):
        nodes = list(range(4))
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        chosen = kruskal_edges(nodes, edges)
        assert len(chosen) == 2


class TestPrimPoints:
    def test_tree_edge_count(self):
        points = random_points(30, random.Random(1))
        edges = prim_mst_points(points)
        assert len(edges) == 29

    def test_empty_and_single(self):
        assert prim_mst_points([]) == []
        assert prim_mst_points([(0.0, 0.0)]) == []

    def test_matches_kruskal_total_length(self):
        points = random_points(25, random.Random(2))
        prim_total = sum(euclidean(points[u], points[v]) for u, v in prim_mst_points(points))
        edges = [
            (i, j, euclidean(points[i], points[j]))
            for i in range(len(points))
            for j in range(i + 1, len(points))
        ]
        kruskal_total = sum(w for _, _, w in kruskal_edges(list(range(len(points))), edges))
        assert prim_total == pytest.approx(kruskal_total, rel=1e-9)

    def test_square_mst_length(self):
        square = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]
        assert euclidean_mst_length(square) == pytest.approx(3.0)

    def test_topology_from_points_is_tree(self):
        points = random_points(20, random.Random(3))
        topo = prim_mst_topology_from_points(points)
        assert topo.is_tree()
        assert topo.num_nodes == 20


class TestMinimumSpanningTreeOfTopology:
    def test_removes_heaviest_cycle_edge(self):
        topo = Topology()
        topo.add_node("a", location=(0, 0))
        topo.add_node("b", location=(1, 0))
        topo.add_node("c", location=(0, 1))
        topo.add_link("a", "b")       # length 1
        topo.add_link("a", "c")       # length 1
        topo.add_link("b", "c")       # length sqrt(2), should be dropped
        mst = minimum_spanning_tree(topo)
        assert mst.is_tree()
        assert not mst.has_link("b", "c")

    def test_custom_weight_function(self):
        topo = Topology()
        for n in ("a", "b", "c"):
            topo.add_node(n)
        topo.add_link("a", "b", install_cost=10.0)
        topo.add_link("b", "c", install_cost=1.0)
        topo.add_link("a", "c", install_cost=1.0)
        mst = minimum_spanning_tree(topo, weight=lambda link: link.install_cost)
        assert not mst.has_link("a", "b")

    def test_preserves_all_nodes(self, triangle_topology):
        mst = minimum_spanning_tree(triangle_topology)
        assert mst.num_nodes == triangle_topology.num_nodes


class TestLazyPrim:
    def test_sparse_adjacency(self):
        adjacency = {
            "a": [("b", 1.0), ("c", 4.0)],
            "b": [("a", 1.0), ("c", 2.0)],
            "c": [("a", 4.0), ("b", 2.0)],
        }
        edges = lazy_prim_edges(["a", "b", "c"], adjacency)
        assert len(edges) == 2
        assert sum(w for _, _, w in edges) == pytest.approx(3.0)

    def test_empty_nodes(self):
        assert lazy_prim_edges([], {}) == []
