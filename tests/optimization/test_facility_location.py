"""Tests for repro.optimization.facility_location."""

import random

import pytest

from repro.geography.points import euclidean, random_points
from repro.optimization.facility_location import (
    choose_concentrator_count,
    greedy_facility_location,
    k_median,
)


def two_clusters(rng_seed: int = 0, per_cluster: int = 10):
    rng = random.Random(rng_seed)
    left = [(rng.uniform(0.0, 0.1), rng.uniform(0.0, 0.1)) for _ in range(per_cluster)]
    right = [(rng.uniform(0.9, 1.0), rng.uniform(0.9, 1.0)) for _ in range(per_cluster)]
    return left + right


class TestGreedyFacilityLocation:
    def test_every_client_assigned(self):
        clients = two_clusters()
        solution = greedy_facility_location(clients, clients, opening_cost=0.05)
        assert set(solution.assignment) == set(range(len(clients)))
        assert all(f in solution.facilities for f in solution.assignment.values())

    def test_cheap_facilities_open_in_both_clusters(self):
        clients = two_clusters()
        solution = greedy_facility_location(clients, clients, opening_cost=0.01)
        sides = {int(clients[f][0] > 0.5) for f in solution.facilities}
        assert sides == {0, 1}

    def test_expensive_facilities_open_few(self):
        clients = two_clusters()
        cheap = greedy_facility_location(clients, clients, opening_cost=0.001)
        expensive = greedy_facility_location(clients, clients, opening_cost=100.0)
        assert len(expensive.facilities) <= len(cheap.facilities)
        assert len(expensive.facilities) == 1

    def test_total_cost_components(self):
        clients = two_clusters()
        solution = greedy_facility_location(clients, clients, opening_cost=0.5)
        assert solution.total_cost == pytest.approx(
            solution.opening_cost + solution.connection_cost
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            greedy_facility_location([], [(0, 0)], 1.0)
        with pytest.raises(ValueError):
            greedy_facility_location([(0, 0)], [], 1.0)
        with pytest.raises(ValueError):
            greedy_facility_location([(0, 0)], [(0, 0)], -1.0)
        with pytest.raises(ValueError):
            greedy_facility_location([(0, 0)], [(0, 0)], 1.0, weights=[1.0, 2.0])

    def test_weights_pull_facility_toward_heavy_client(self):
        clients = [(0.0, 0.0), (1.0, 0.0)]
        candidates = [(0.0, 0.0), (1.0, 0.0)]
        solution = greedy_facility_location(
            clients, candidates, opening_cost=10.0, weights=[1.0, 100.0]
        )
        assert solution.facilities == [1]


class TestKMedian:
    def test_opens_exactly_k(self):
        clients = two_clusters()
        solution = k_median(clients, clients, k=2)
        assert len(solution.facilities) == 2

    def test_k2_separates_clusters(self):
        clients = two_clusters()
        solution = k_median(clients, clients, k=2, rng=random.Random(1))
        facility_sides = {int(clients[f][0] > 0.5) for f in solution.facilities}
        assert facility_sides == {0, 1}

    def test_connection_cost_decreases_with_k(self):
        clients = random_points(40, random.Random(2))
        cost1 = k_median(clients, clients, k=1).connection_cost
        cost4 = k_median(clients, clients, k=4).connection_cost
        assert cost4 <= cost1

    def test_clients_of(self):
        clients = two_clusters()
        solution = k_median(clients, clients, k=2)
        total = sum(len(solution.clients_of(f)) for f in solution.facilities)
        assert total == len(clients)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            k_median([(0, 0)], [(0, 0)], k=0)
        with pytest.raises(ValueError):
            k_median([(0, 0)], [(0, 0)], k=2)


class TestConcentratorCount:
    def test_rounding_up(self):
        assert choose_concentrator_count(25, clients_per_concentrator=24) == 2
        assert choose_concentrator_count(24, clients_per_concentrator=24) == 1

    def test_at_least_one(self):
        assert choose_concentrator_count(0) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            choose_concentrator_count(-1)
        with pytest.raises(ValueError):
            choose_concentrator_count(5, clients_per_concentrator=0)
