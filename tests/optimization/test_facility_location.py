"""Tests for repro.optimization.facility_location."""

import random

import pytest

from repro.geography.points import random_points
from repro.optimization.facility_location import (
    choose_concentrator_count,
    greedy_facility_location,
    k_median,
)


def two_clusters(rng_seed: int = 0, per_cluster: int = 10):
    rng = random.Random(rng_seed)
    left = [(rng.uniform(0.0, 0.1), rng.uniform(0.0, 0.1)) for _ in range(per_cluster)]
    right = [(rng.uniform(0.9, 1.0), rng.uniform(0.9, 1.0)) for _ in range(per_cluster)]
    return left + right


class TestGreedyFacilityLocation:
    def test_every_client_assigned(self):
        clients = two_clusters()
        solution = greedy_facility_location(clients, clients, opening_cost=0.05)
        assert set(solution.assignment) == set(range(len(clients)))
        assert all(f in solution.facilities for f in solution.assignment.values())

    def test_cheap_facilities_open_in_both_clusters(self):
        clients = two_clusters()
        solution = greedy_facility_location(clients, clients, opening_cost=0.01)
        sides = {int(clients[f][0] > 0.5) for f in solution.facilities}
        assert sides == {0, 1}

    def test_expensive_facilities_open_few(self):
        clients = two_clusters()
        cheap = greedy_facility_location(clients, clients, opening_cost=0.001)
        expensive = greedy_facility_location(clients, clients, opening_cost=100.0)
        assert len(expensive.facilities) <= len(cheap.facilities)
        assert len(expensive.facilities) == 1

    def test_total_cost_components(self):
        clients = two_clusters()
        solution = greedy_facility_location(clients, clients, opening_cost=0.5)
        assert solution.total_cost == pytest.approx(
            solution.opening_cost + solution.connection_cost
        )

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            greedy_facility_location([], [(0, 0)], 1.0)
        with pytest.raises(ValueError):
            greedy_facility_location([(0, 0)], [], 1.0)
        with pytest.raises(ValueError):
            greedy_facility_location([(0, 0)], [(0, 0)], -1.0)
        with pytest.raises(ValueError):
            greedy_facility_location([(0, 0)], [(0, 0)], 1.0, weights=[1.0, 2.0])

    def test_weights_pull_facility_toward_heavy_client(self):
        clients = [(0.0, 0.0), (1.0, 0.0)]
        candidates = [(0.0, 0.0), (1.0, 0.0)]
        solution = greedy_facility_location(
            clients, candidates, opening_cost=10.0, weights=[1.0, 100.0]
        )
        assert solution.facilities == [1]


class TestKMedian:
    def test_opens_exactly_k(self):
        clients = two_clusters()
        solution = k_median(clients, clients, k=2)
        assert len(solution.facilities) == 2

    def test_k2_separates_clusters(self):
        clients = two_clusters()
        solution = k_median(clients, clients, k=2, rng=random.Random(1))
        facility_sides = {int(clients[f][0] > 0.5) for f in solution.facilities}
        assert facility_sides == {0, 1}

    def test_connection_cost_decreases_with_k(self):
        clients = random_points(40, random.Random(2))
        cost1 = k_median(clients, clients, k=1).connection_cost
        cost4 = k_median(clients, clients, k=4).connection_cost
        assert cost4 <= cost1

    def test_clients_of(self):
        clients = two_clusters()
        solution = k_median(clients, clients, k=2)
        total = sum(len(solution.clients_of(f)) for f in solution.facilities)
        assert total == len(clients)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            k_median([(0, 0)], [(0, 0)], k=0)
        with pytest.raises(ValueError):
            k_median([(0, 0)], [(0, 0)], k=2)


class TestConcentratorCount:
    def test_rounding_up(self):
        assert choose_concentrator_count(25, clients_per_concentrator=24) == 2
        assert choose_concentrator_count(24, clients_per_concentrator=24) == 1

    def test_at_least_one(self):
        assert choose_concentrator_count(0) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            choose_concentrator_count(-1)
        with pytest.raises(ValueError):
            choose_concentrator_count(5, clients_per_concentrator=0)


class TestAssignClientsSpatialIndex:
    """Grid-backed nearest-facility assignment matches the brute-force scan."""

    def test_equivalent_on_random_instances(self):
        from repro.optimization.facility_location import _assign_clients

        rng = random.Random(7)
        for _ in range(20):
            n = rng.randrange(4, 80)
            clients = [(rng.random() * 40.0, rng.random() * 40.0) for _ in range(n)]
            weights = [rng.uniform(0.5, 4.0) for _ in range(n)]
            k = rng.randrange(1, min(n, 20))
            open_facilities = rng.sample(range(n), k)
            grid = _assign_clients(
                clients, weights, clients, open_facilities, use_spatial_index=True
            )
            scan = _assign_clients(
                clients, weights, clients, open_facilities, use_spatial_index=False
            )
            assert grid[0] == scan[0]
            assert grid[1] == scan[1]

    def test_tie_breaks_toward_scan_order(self):
        from repro.optimization.facility_location import _assign_clients

        # Two facilities equidistant from the client; the scan keeps the first
        # entry of ``open_facilities`` — the grid must do the same.
        clients = [(0.0, 0.0)]
        candidates = [(1.0, 0.0), (-1.0, 0.0)]
        for order in ([1, 0], [0, 1]):
            grid = _assign_clients(clients, [1.0], candidates, order, use_spatial_index=True)
            scan = _assign_clients(clients, [1.0], candidates, order, use_spatial_index=False)
            assert grid[0] == scan[0] == {0: order[0]}

    def test_k_median_unchanged_by_grid_threshold(self):
        # End-to-end: k_median over enough facilities to cross the grid
        # threshold gives the same solution as with the scan forced.
        from repro.optimization import facility_location as fl

        rng_points = random.Random(9)
        clients = [(rng_points.random(), rng_points.random()) for _ in range(120)]
        baseline = k_median(clients, clients, k=12, rng=random.Random(1))
        original = fl.SPATIAL_INDEX_THRESHOLD
        try:
            fl.SPATIAL_INDEX_THRESHOLD = 10**9  # force the linear scan
            scan = k_median(clients, clients, k=12, rng=random.Random(1))
        finally:
            fl.SPATIAL_INDEX_THRESHOLD = original
        assert baseline.facilities == scan.facilities
        assert baseline.assignment == scan.assignment
        assert baseline.connection_cost == scan.connection_cost
