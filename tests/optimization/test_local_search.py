"""Tests for repro.optimization.local_search."""

import random

import pytest

from repro.optimization.local_search import (
    AnnealingSchedule,
    hill_climb,
    multi_start,
    pareto_front,
    simulated_annealing,
)


def quadratic_cost(x: float) -> float:
    return (x - 3.0) ** 2


def step_neighbor(x: float, rng: random.Random) -> float:
    return x + rng.uniform(-0.5, 0.5)


class TestHillClimb:
    def test_converges_toward_minimum(self):
        result = hill_climb(
            10.0, quadratic_cost, step_neighbor, max_iterations=2000, patience=300,
            rng=random.Random(0),
        )
        assert abs(result.best_solution - 3.0) < 0.5
        assert result.best_cost < quadratic_cost(10.0)

    def test_history_starts_at_initial_cost(self):
        result = hill_climb(5.0, quadratic_cost, step_neighbor, max_iterations=10, rng=random.Random(1))
        assert result.history[0] == pytest.approx(quadratic_cost(5.0))

    def test_never_returns_worse_than_initial(self):
        result = hill_climb(2.0, quadratic_cost, step_neighbor, max_iterations=50, rng=random.Random(2))
        assert result.best_cost <= quadratic_cost(2.0)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            hill_climb(0.0, quadratic_cost, step_neighbor, max_iterations=-1)


class TestAnnealingSchedule:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(initial_temperature=0.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(cooling_rate=1.0)
        with pytest.raises(ValueError):
            AnnealingSchedule(min_temperature=0.0)

    def test_temperatures_decreasing(self):
        temps = AnnealingSchedule(initial_temperature=1.0, cooling_rate=0.9).temperatures(50)
        assert all(a > b for a, b in zip(temps, temps[1:]))

    def test_temperatures_capped(self):
        temps = AnnealingSchedule(cooling_rate=0.999999).temperatures(10)
        assert len(temps) == 10


class TestSimulatedAnnealing:
    def test_escapes_local_minimum_landscape(self):
        # Cost with a local minimum at x=0 (cost 1) and global minimum at x=2 (cost 0).
        def cost(x):
            return min(x * x + 1.0, (x - 2.0) ** 2)

        def wide_neighbor(x, rng):
            return x + rng.uniform(-1.5, 1.5)

        result = simulated_annealing(
            0.0, cost, wide_neighbor,
            schedule=AnnealingSchedule(initial_temperature=2.0, cooling_rate=0.999),
            max_iterations=4000, rng=random.Random(3),
        )
        assert result.best_cost < 1.0

    def test_best_cost_not_worse_than_start(self):
        result = simulated_annealing(
            8.0, quadratic_cost, step_neighbor, max_iterations=500, rng=random.Random(4)
        )
        assert result.best_cost <= quadratic_cost(8.0)


class TestMultiStart:
    def test_picks_best_start(self):
        result = multi_start(
            [100.0, 3.2], quadratic_cost, step_neighbor, max_iterations=200,
            rng=random.Random(5),
        )
        assert abs(result.best_solution - 3.0) < 1.0

    def test_requires_starts(self):
        with pytest.raises(ValueError):
            multi_start([], quadratic_cost, step_neighbor)


class TestParetoFront:
    def test_removes_dominated_points(self):
        points = [(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0)]
        front = pareto_front(points)
        assert (3.0, 4.0) not in front
        assert (1.0, 5.0) in front and (4.0, 1.0) in front

    def test_front_is_monotone(self):
        points = [(float(i), float(10 - i)) for i in range(10)]
        front = pareto_front(points)
        ys = [y for _, y in front]
        assert ys == sorted(ys, reverse=True)

    def test_empty(self):
        assert pareto_front([]) == []
