"""Property tests for repro.optimization.incremental.

The central contract: after any sequence of applied/reverted moves, the
incrementally maintained score equals a canonical ``Objective.evaluate`` of
the working topology (to float accumulation order), and a full rollback
restores the starting score *bit-exactly*.
"""

import random

import pytest

from repro.core.objectives import (
    CostObjective,
    PerformanceCostObjective,
    ProfitObjective,
)
from repro.optimization.incremental import (
    AddLink,
    AddNode,
    IncrementalState,
    RemoveLink,
    Rewire,
    UpgradeCable,
)
from repro.topology.compiled import KERNEL_COUNTERS
from repro.topology.graph import Topology, TopologyError
from repro.topology.node import NodeRole


def random_access_tree(seed: int = 0, size: int = 25) -> Topology:
    rng = random.Random(seed)
    topology = Topology(name="incremental-fixture")
    topology.add_node("core0", role=NodeRole.CORE, location=(0.5, 0.5))
    for i in range(size):
        topology.add_node(
            f"c{i}",
            role=NodeRole.CUSTOMER,
            location=(rng.random(), rng.random()),
            demand=rng.uniform(1.0, 5.0),
        )
        target = "core0" if i == 0 else f"c{rng.randrange(i)}"
        topology.add_link(
            f"c{i}",
            target,
            install_cost=rng.uniform(1.0, 3.0),
            usage_cost=0.1,
            load=rng.uniform(0.0, 2.0),
        )
    return topology


def random_move(topology: Topology, rng: random.Random, step: int):
    kind = rng.randrange(5)
    node_ids = [n.node_id for n in topology.nodes()]
    if kind == 0:
        u, v = rng.sample(node_ids, 2)
        if topology.has_link(u, v):
            return None
        return AddLink(u, v, install_cost=2.0, usage_cost=0.05, load=1.0)
    if kind == 1:
        link = rng.choice(list(topology.links()))
        return RemoveLink(link.source, link.target)
    if kind == 2:
        return AddNode(
            f"new{step}",
            role=NodeRole.CUSTOMER,
            location=(rng.random(), rng.random()),
            demand=3.0,
            attach_to=(rng.choice(node_ids),),
        )
    if kind == 3:
        link = rng.choice(list(topology.links()))
        return UpgradeCable(
            link.source, link.target, cable="OC-3", install_cost=5.0, usage_cost=0.01
        )
    leaves = [n for n in node_ids if topology.degree(n) == 1]
    if not leaves:
        return None
    node = rng.choice(leaves)
    old = topology.neighbors(node)[0]
    new = rng.choice([x for x in node_ids if x not in (node, old)])
    if topology.has_link(node, new):
        return None
    return Rewire(node, old, new)


OBJECTIVES = [
    ("cost", CostObjective),
    ("profit", ProfitObjective),
    ("performance", lambda: PerformanceCostObjective(performance_weight=2.0)),
]


class TestDeltaVsFullEquivalence:
    @pytest.mark.parametrize("name,make_objective", OBJECTIVES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_move_sequences(self, name, make_objective, seed):
        """apply/revert over random move sequences tracks the canonical score."""
        topology = random_access_tree(seed)
        state = IncrementalState(topology, make_objective())
        start_score = state.score
        rng = random.Random(seed)
        applied = 0
        for step in range(150):
            move = random_move(topology, rng, step)
            if move is None:
                continue
            try:
                state.apply(move)
            except TopologyError:
                continue
            applied += 1
            state.verify()  # raises when delta and full evaluation diverge
            if rng.random() < 0.5:
                state.revert()
                state.verify()
        assert applied > 30
        state.revert_to(0)
        state.verify()
        # Full rollback restores the starting score bit-exactly, not approximately.
        assert state.score == start_score
        assert topology.validate() == []

    def test_apply_returns_score_delta(self):
        topology = random_access_tree(3)
        state = IncrementalState(topology, CostObjective())
        before = state.score
        delta = state.apply(UpgradeCable("c0", "core0", install_cost=50.0))
        assert state.score == pytest.approx(before + delta)

    def test_unknown_objective_rejected(self):
        class Custom:
            pass

        with pytest.raises(TypeError):
            IncrementalState(random_access_tree(0), Custom())


class TestMoves:
    def test_add_remove_link_round_trip(self):
        topology = random_access_tree(5)
        u = "c1"
        v = next(
            f"c{i}" for i in range(2, 25) if not topology.has_link(u, f"c{i}")
        )
        state = IncrementalState(topology, CostObjective())
        links_before = topology.num_links
        state.apply(AddLink(u, v, install_cost=4.0))
        assert topology.num_links == links_before + 1
        state.apply(RemoveLink(u, v))
        assert topology.num_links == links_before
        state.revert()
        state.revert()
        assert topology.num_links == links_before
        state.verify()

    def test_remove_link_disconnects_and_penalizes(self):
        topology = random_access_tree(5)
        objective = CostObjective(demand_penalty=1000.0)
        state = IncrementalState(topology, objective)
        assert state.unserved_demand == pytest.approx(0.0)
        delta = state.apply(RemoveLink("c0", "core0"))
        assert state.unserved_demand > 0
        assert delta > 0  # the lost link cost is dwarfed by the penalty
        assert not state.is_served("c0")
        state.verify()
        state.revert()
        assert state.unserved_demand == pytest.approx(0.0)
        assert state.is_served("c0")

    def test_add_node_with_attachment_is_served(self):
        topology = random_access_tree(5)
        state = IncrementalState(topology, ProfitObjective())
        delta = state.apply(
            AddNode("fresh", role=NodeRole.CUSTOMER, demand=4.0, attach_to=("c0",))
        )
        assert state.is_served("fresh")
        assert delta < 0  # new revenue, near-zero unannotated link cost
        state.verify()
        state.revert()
        assert not topology.has_node("fresh")
        state.verify()

    def test_add_node_failed_attachment_rolls_back(self):
        topology = random_access_tree(5)
        topology.node("c0").max_degree = topology.degree("c0")
        state = IncrementalState(topology, CostObjective())
        score_before = state.score
        with pytest.raises(TopologyError):
            state.apply(
                AddNode("fresh", role=NodeRole.CUSTOMER, demand=1.0, attach_to=("c0",))
            )
        assert not topology.has_node("fresh")
        assert state.score == score_before
        assert state.undo_depth == 0
        state.verify()

    def test_rewire_rescales_annotations_by_length(self):
        topology = Topology()
        topology.add_node("core", role=NodeRole.CORE, location=(0.0, 0.0))
        topology.add_node("far", role=NodeRole.GENERIC, location=(10.0, 0.0))
        topology.add_node("near", role=NodeRole.GENERIC, location=(1.0, 0.0))
        topology.add_node("cust", role=NodeRole.CUSTOMER, location=(0.0, 0.0), demand=1.0)
        topology.add_link("cust", "far", install_cost=20.0, usage_cost=2.0, load=1.0)
        topology.add_link("core", "near")
        topology.add_link("core", "far")
        state = IncrementalState(topology, CostObjective())
        state.apply(Rewire("cust", "far", "near"))
        moved = topology.link("cust", "near")
        assert moved.install_cost == pytest.approx(2.0)  # 20 * (1/10)
        assert moved.usage_cost == pytest.approx(0.2)
        state.verify()

    def test_duplicate_link_rejected_without_corruption(self):
        topology = random_access_tree(4)
        state = IncrementalState(topology, CostObjective())
        with pytest.raises(TopologyError):
            state.apply(AddLink("c0", "core0"))
        state.verify()
        assert state.undo_depth == 0


class TestUndoStack:
    def test_revert_without_moves_raises(self):
        state = IncrementalState(random_access_tree(0), CostObjective())
        with pytest.raises(ValueError):
            state.revert()

    def test_revert_checks_move_identity(self):
        state = IncrementalState(random_access_tree(0), CostObjective())
        move = UpgradeCable("c0", "core0", install_cost=9.0)
        state.apply(move)
        with pytest.raises(ValueError):
            state.revert(UpgradeCable("c1", "core0", install_cost=9.0))
        state.revert(move)

    def test_revert_to_partial_depth(self):
        topology = random_access_tree(2)
        state = IncrementalState(topology, CostObjective())
        scores = [state.score]
        for install in (5.0, 10.0, 20.0):
            state.apply(UpgradeCable("c0", "core0", install_cost=install))
            scores.append(state.score)
        state.revert_to(1)
        assert state.score == scores[1]
        with pytest.raises(ValueError):
            state.revert_to(5)
        with pytest.raises(ValueError):
            state.revert_to(-1)


class TestCounters:
    def test_delta_and_full_eval_counters(self):
        topology = random_access_tree(1)
        KERNEL_COUNTERS.reset()
        objective = CostObjective()
        state = IncrementalState(topology, objective)  # rebuild = 1 full eval
        assert KERNEL_COUNTERS.objective_full_evals == 1
        for install in (2.0, 4.0, 8.0):
            state.apply(UpgradeCable("c0", "core0", install_cost=install))
        assert KERNEL_COUNTERS.objective_delta_evals == 3
        assert KERNEL_COUNTERS.objective_full_evals == 1
        objective.evaluate(topology)
        assert KERNEL_COUNTERS.objective_full_evals == 2
