"""Tests for repro.metrics.distortion."""

import math

import pytest

from repro.generators import ErdosRenyiGenerator
from repro.metrics.distortion import cycle_edge_fraction, is_tree_like, tree_distortion
from repro.topology.graph import Topology


def cycle_graph(n: int) -> Topology:
    topo = Topology()
    for i in range(n):
        topo.add_node(i)
    for i in range(n):
        topo.add_link(i, (i + 1) % n)
    return topo


class TestTreeDistortion:
    def test_tree_has_distortion_one(self, path_topology):
        assert tree_distortion(path_topology, sample_pairs=50) == pytest.approx(1.0)

    def test_cycle_has_distortion_above_one(self):
        distortion = tree_distortion(cycle_graph(20), sample_pairs=100, seed=1)
        assert distortion > 1.2

    def test_mesh_distortion_above_tree(self):
        mesh = ErdosRenyiGenerator(target_mean_degree=6.0).generate(120, seed=1)
        assert tree_distortion(mesh, sample_pairs=80, seed=2) > 1.05

    def test_too_small_topology_nan(self):
        topo = Topology()
        topo.add_node("only")
        assert math.isnan(tree_distortion(topo))

    def test_custom_spanning_tree(self, triangle_topology):
        from repro.optimization.mst import minimum_spanning_tree

        tree = minimum_spanning_tree(triangle_topology)
        value = tree_distortion(triangle_topology, sample_pairs=30, spanning_tree=tree)
        assert value >= 1.0


class TestIsTreeLike:
    def test_tree_is_tree_like(self, star_topology):
        assert is_tree_like(star_topology)

    def test_cycle_is_not_tree_like(self):
        assert not is_tree_like(cycle_graph(30), threshold=1.1)


class TestCycleEdgeFraction:
    def test_tree_has_zero(self, path_topology):
        assert cycle_edge_fraction(path_topology) == 0.0

    def test_cycle_has_positive(self):
        assert cycle_edge_fraction(cycle_graph(10)) == pytest.approx(0.1)

    def test_empty_topology(self):
        assert cycle_edge_fraction(Topology()) == 0.0

    def test_forest(self):
        topo = Topology()
        for i in range(4):
            topo.add_node(i)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        assert cycle_edge_fraction(topo) == 0.0
