"""Tests for repro.metrics.hierarchy_metrics."""

import math

import pytest

from repro.core.fkp import generate_fkp_tree
from repro.generators import BarabasiAlbertGenerator, ErdosRenyiGenerator
from repro.metrics.hierarchy_metrics import (
    core_periphery_ratio,
    degree_assortativity,
    hierarchy_depth,
    hierarchy_report,
    rich_club_coefficient,
)
from repro.topology.graph import Topology


class TestAssortativity:
    def test_star_is_disassortative(self, star_topology):
        assert degree_assortativity(star_topology) < 0

    def test_regular_cycle_is_degenerate(self):
        topo = Topology()
        for i in range(6):
            topo.add_node(i)
        for i in range(6):
            topo.add_link(i, (i + 1) % 6)
        assert math.isnan(degree_assortativity(topo))

    def test_empty_topology_nan(self):
        assert math.isnan(degree_assortativity(Topology()))

    def test_ba_more_disassortative_than_er(self):
        ba = BarabasiAlbertGenerator().generate(400, seed=1)
        er = ErdosRenyiGenerator(target_mean_degree=4.0).generate(400, seed=1)
        assert degree_assortativity(ba) < degree_assortativity(er) + 0.05


class TestRichClub:
    def test_star_rich_club_zero(self, star_topology):
        # Only the hub exceeds the threshold, so the "club" has fewer than 2 members.
        assert rich_club_coefficient(star_topology, degree_threshold=2) == 0.0

    def test_clique_rich_club_one(self):
        topo = Topology()
        for i in range(4):
            topo.add_node(i)
        for i in range(4):
            for j in range(i + 1, 4):
                topo.add_link(i, j)
        topo.add_node("pendant")
        topo.add_link(0, "pendant")
        assert rich_club_coefficient(topo, degree_threshold=2) == pytest.approx(1.0)


class TestCorePeriphery:
    def test_star_core_touches_everything(self, star_topology):
        assert core_periphery_ratio(star_topology, core_fraction=0.2) == pytest.approx(1.0)

    def test_invalid_fraction(self, star_topology):
        with pytest.raises(ValueError):
            core_periphery_ratio(star_topology, core_fraction=0.0)

    def test_empty_topology(self):
        assert core_periphery_ratio(Topology()) == 0.0


class TestHierarchyDepth:
    def test_star_depth_one(self, star_topology):
        assert hierarchy_depth(star_topology) == 1

    def test_path_depth(self, path_topology):
        # Every node has degree <= 2; the max-degree node is an interior one.
        assert hierarchy_depth(path_topology) >= 3

    def test_empty(self):
        assert hierarchy_depth(Topology()) == 0


class TestHierarchyReport:
    def test_report_keys(self, star_topology):
        report = hierarchy_report(star_topology)
        assert {
            "assortativity",
            "rich_club",
            "core_periphery_ratio",
            "hierarchy_depth",
            "backbone_fraction",
            "mean_customer_depth",
        } <= set(report)

    def test_fkp_tree_is_hierarchical(self):
        tree = generate_fkp_tree(300, alpha=4.0, seed=4)
        report = hierarchy_report(tree)
        assert report["assortativity"] < 0
        assert report["core_periphery_ratio"] > 0.4
