"""Tests for repro.metrics.degree."""

import pytest

from repro.metrics.degree import (
    degree_ccdf,
    degree_histogram,
    degree_rank_curve,
    degree_statistics,
    leaf_fraction,
    max_degree_share,
    topology_degree_ccdf,
)
from repro.topology.graph import Topology


class TestDegreeStatistics:
    def test_star_statistics(self, star_topology):
        stats = degree_statistics(star_topology)
        assert stats.num_nodes == 6
        assert stats.num_links == 5
        assert stats.maximum == 5
        assert stats.minimum == 1
        assert stats.mean == pytest.approx(10 / 6)

    def test_cv_higher_for_star_than_path(self, star_topology, path_topology):
        star_cv = degree_statistics(star_topology).coefficient_of_variation
        path_cv = degree_statistics(path_topology).coefficient_of_variation
        assert star_cv > path_cv

    def test_empty_topology_raises(self):
        with pytest.raises(ValueError):
            degree_statistics(Topology())


class TestHistogramAndCCDF:
    def test_histogram(self, star_topology):
        histogram = degree_histogram(star_topology)
        assert histogram == {1: 5, 5: 1}

    def test_ccdf_starts_at_one(self, star_topology):
        ccdf = topology_degree_ccdf(star_topology)
        assert ccdf[0][1] == pytest.approx(1.0)

    def test_ccdf_monotone_decreasing(self, path_topology):
        ccdf = topology_degree_ccdf(path_topology)
        values = [v for _, v in ccdf]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_ccdf_of_explicit_sequence(self):
        ccdf = dict(degree_ccdf([1, 1, 2, 3]))
        assert ccdf[1] == pytest.approx(1.0)
        assert ccdf[2] == pytest.approx(0.5)
        assert ccdf[3] == pytest.approx(0.25)

    def test_ccdf_empty(self):
        assert degree_ccdf([]) == []


class TestShapeHelpers:
    def test_leaf_fraction(self, star_topology, path_topology):
        assert leaf_fraction(star_topology) == pytest.approx(5 / 6)
        assert leaf_fraction(path_topology) == pytest.approx(2 / 6)

    def test_leaf_fraction_empty(self):
        assert leaf_fraction(Topology()) == 0.0

    def test_max_degree_share_star(self, star_topology):
        assert max_degree_share(star_topology) == pytest.approx(0.5)

    def test_max_degree_share_path(self, path_topology):
        assert max_degree_share(path_topology) == pytest.approx(2 / 10)

    def test_degree_rank_curve_sorted(self, star_topology):
        curve = degree_rank_curve(star_topology)
        assert curve[0] == (1, 5)
        degrees = [d for _, d in curve]
        assert degrees == sorted(degrees, reverse=True)
