"""Tests for repro.metrics.comparison — the full-suite harness."""

import pytest

from repro.core.fkp import generate_fkp_tree
from repro.generators import BarabasiAlbertGenerator
from repro.metrics.comparison import (
    METRIC_COLUMNS,
    TAIL_VERDICT_CODES,
    compare_topologies,
    evaluate_topology,
    metric_disagreement,
    report_table,
)


@pytest.fixture(scope="module")
def sample_reports():
    topologies = {
        "fkp": generate_fkp_tree(150, alpha=4.0, seed=1),
        "ba": BarabasiAlbertGenerator().generate(150, seed=1),
    }
    return compare_topologies(topologies, sample_size=20, seed=1)


class TestEvaluateTopology:
    def test_all_columns_present(self, star_topology):
        report = evaluate_topology(star_topology, sample_size=10)
        for column in METRIC_COLUMNS:
            assert column in report.metrics

    def test_name_defaults_to_topology_name(self, star_topology):
        assert evaluate_topology(star_topology, sample_size=10).name == "star"

    def test_include_spectrum_adds_columns(self, star_topology):
        report = evaluate_topology(star_topology, include_spectrum=True, sample_size=10)
        assert "algebraic_connectivity" in report.metrics

    def test_get_missing_metric_returns_nan(self, star_topology):
        report = evaluate_topology(star_topology, sample_size=10)
        assert report.get("nonexistent") != report.get("nonexistent")  # NaN

    def test_tail_verdict_codes_complete(self):
        assert set(TAIL_VERDICT_CODES) == {"power-law", "exponential", "inconclusive"}


class TestCompareTopologies:
    def test_one_report_per_topology(self, sample_reports):
        assert [r.name for r in sample_reports] == ["fkp", "ba"]

    def test_tree_vs_mesh_differences(self, sample_reports):
        fkp, ba = sample_reports
        assert fkp.get("cycle_edge_fraction") == pytest.approx(0.0)
        assert ba.get("cycle_edge_fraction") > 0.2
        assert ba.get("avg_clustering") >= fkp.get("avg_clustering")

    def test_metric_disagreement(self, sample_reports):
        spread = metric_disagreement(sample_reports, "cycle_edge_fraction")
        assert spread > 0.2

    def test_metric_disagreement_missing_metric(self, sample_reports):
        assert metric_disagreement(sample_reports, "missing") != metric_disagreement(
            sample_reports, "missing"
        )  # NaN


class TestReportTable:
    def test_table_contains_names_and_header(self, sample_reports):
        table = report_table(sample_reports, columns=["mean_degree", "max_degree"])
        assert "fkp" in table and "ba" in table
        assert "mean_degree" in table.splitlines()[0]

    def test_table_row_count(self, sample_reports):
        table = report_table(sample_reports)
        # Header + separator + one row per report.
        assert len(table.splitlines()) == 2 + len(sample_reports)

    def test_nan_rendered(self, sample_reports):
        table = report_table(sample_reports, columns=["nonexistent"])
        assert "nan" in table
