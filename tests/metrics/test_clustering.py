"""Tests for repro.metrics.clustering."""

import pytest

from repro.metrics.clustering import (
    average_clustering,
    clustering_by_degree,
    clustering_by_node,
    local_clustering,
    transitivity,
)
from repro.topology.graph import Topology


def complete_graph(n: int) -> Topology:
    topo = Topology()
    for i in range(n):
        topo.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            topo.add_link(i, j)
    return topo


class TestLocalClustering:
    def test_triangle_nodes_fully_clustered(self, triangle_topology):
        assert local_clustering(triangle_topology, "a") == pytest.approx(1.0)

    def test_leaf_has_zero_clustering(self, star_topology):
        assert local_clustering(star_topology, "leaf0") == 0.0

    def test_hub_of_star_has_zero_clustering(self, star_topology):
        assert local_clustering(star_topology, "hub") == 0.0

    def test_partial_clustering(self):
        topo = Topology()
        for n in "abcd":
            topo.add_node(n)
        topo.add_link("a", "b")
        topo.add_link("a", "c")
        topo.add_link("a", "d")
        topo.add_link("b", "c")
        assert local_clustering(topo, "a") == pytest.approx(1 / 3)


class TestGlobalClustering:
    def test_complete_graph_is_one(self):
        topo = complete_graph(5)
        assert average_clustering(topo) == pytest.approx(1.0)
        assert transitivity(topo) == pytest.approx(1.0)

    def test_tree_is_zero(self, path_topology, star_topology):
        assert average_clustering(path_topology) == 0.0
        assert transitivity(star_topology) == 0.0

    def test_empty_topology(self):
        assert average_clustering(Topology()) == 0.0
        assert transitivity(Topology()) == 0.0

    def test_clustering_by_node_covers_all(self, triangle_topology):
        coefficients = clustering_by_node(triangle_topology)
        assert set(coefficients) == {"a", "b", "c"}

    def test_transitivity_between_zero_and_one(self):
        topo = complete_graph(4)
        topo.add_node("pendant")
        topo.add_link(0, "pendant")
        value = transitivity(topo)
        assert 0.0 < value < 1.0


class TestClusteringByDegree:
    def test_groups_by_degree(self, star_topology):
        by_degree = clustering_by_degree(star_topology)
        assert set(by_degree) == {1, 5}
        assert by_degree[1] == 0.0

    def test_complete_graph_single_group(self):
        by_degree = clustering_by_degree(complete_graph(4))
        assert by_degree == {3: pytest.approx(1.0)}
