"""Tests for repro.metrics.expansion."""

import pytest

from repro.core.fkp import generate_fkp_tree
from repro.generators import ErdosRenyiGenerator
from repro.metrics.expansion import (
    ball_sizes,
    expansion_at,
    expansion_curve,
    expansion_exponent,
)
from repro.topology.graph import Topology


class TestBallSizes:
    def test_path_graph(self, path_topology):
        sizes = ball_sizes(path_topology, 0)
        assert sizes[0] == 1
        assert sizes[1] == 2
        assert sizes[5] == 6

    def test_star_graph(self, star_topology):
        sizes = ball_sizes(star_topology, "hub")
        assert sizes[0] == 1
        assert sizes[1] == 6

    def test_max_hops_limits(self, path_topology):
        sizes = ball_sizes(path_topology, 0, max_hops=2)
        assert max(sizes) == 2


class TestExpansionCurve:
    def test_monotone_nondecreasing(self, path_topology):
        curve = expansion_curve(path_topology, sample_size=None)
        values = [curve[h] for h in sorted(curve)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_reaches_one_on_connected_graph(self, star_topology):
        curve = expansion_curve(star_topology, sample_size=None)
        assert curve[max(curve)] == pytest.approx(1.0)

    def test_empty_topology(self):
        assert expansion_curve(Topology()) == {}

    def test_expansion_at(self, star_topology):
        assert expansion_at(star_topology, hops=2, sample_size=None) == pytest.approx(1.0)
        assert expansion_at(star_topology, hops=0, sample_size=None) == pytest.approx(1 / 6)

    def test_negative_hops_rejected(self, star_topology):
        with pytest.raises(ValueError):
            expansion_at(star_topology, hops=-1)


class TestExpansionContrast:
    def test_random_graph_expands_faster_than_geometric_tree(self):
        random_graph = ErdosRenyiGenerator(target_mean_degree=6.0).generate(300, seed=1)
        tree = generate_fkp_tree(300, alpha=40.0, seed=1)
        assert expansion_at(random_graph, hops=3, sample_size=30) > expansion_at(
            tree, hops=3, sample_size=30
        )

    def test_exponent_finite_for_tree(self):
        tree = generate_fkp_tree(200, alpha=20.0, seed=2)
        exponent = expansion_exponent(tree, sample_size=20)
        assert exponent == exponent  # not NaN
        assert exponent > 0
