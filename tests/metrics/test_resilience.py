"""Tests for repro.metrics.resilience."""

import pytest

from repro.core.fkp import generate_fkp_tree
from repro.generators import ErdosRenyiGenerator
from repro.metrics.resilience import (
    removal_trace,
    resilience_metric,
    robustness_summary,
)
from repro.topology.graph import Topology
from repro.topology.node import NodeRole


class TestRemovalTrace:
    def test_invalid_arguments(self, star_topology):
        with pytest.raises(ValueError):
            removal_trace(star_topology, strategy="alphabetical")
        with pytest.raises(ValueError):
            removal_trace(star_topology, steps=0)
        with pytest.raises(ValueError):
            removal_trace(star_topology, max_fraction=0.0)

    def test_trace_starts_fully_connected(self, star_topology):
        trace = removal_trace(star_topology, strategy="random", steps=3)
        assert trace.largest_component_fraction[0] == pytest.approx(1.0)

    def test_largest_component_never_increases_much(self, path_topology):
        trace = removal_trace(path_topology, strategy="targeted", steps=3, max_fraction=0.5)
        values = trace.largest_component_fraction
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_does_not_mutate_input(self, star_topology):
        before = star_topology.num_nodes
        removal_trace(star_topology, strategy="targeted", steps=2)
        assert star_topology.num_nodes == before

    def test_targeted_removal_of_star_hub_shatters_graph(self, star_topology):
        trace = removal_trace(star_topology, strategy="targeted", steps=1, max_fraction=0.2)
        assert trace.largest_component_fraction[-1] <= 0.2

    def test_protect_roles(self, star_topology):
        trace = removal_trace(
            star_topology,
            strategy="targeted",
            steps=1,
            max_fraction=0.2,
            protect_roles=[NodeRole.CORE],
        )
        # The hub is protected, so the graph stays mostly intact.
        assert trace.largest_component_fraction[-1] > 0.5

    def test_demand_loss_tracked(self):
        topo = Topology()
        topo.add_node("core", role=NodeRole.CORE)
        topo.add_node("mid", role=NodeRole.ACCESS)
        topo.add_node("cust", role=NodeRole.CUSTOMER, demand=10.0)
        topo.add_link("core", "mid")
        topo.add_link("mid", "cust")
        trace = removal_trace(
            topo,
            strategy="targeted",
            steps=1,
            max_fraction=0.4,
            protect_roles=[NodeRole.CORE, NodeRole.CUSTOMER],
        )
        assert trace.disconnected_demand_fraction[-1] == pytest.approx(1.0)

    def test_area_under_curve_bounds(self, star_topology):
        trace = removal_trace(star_topology, strategy="random", steps=3)
        assert 0.0 <= trace.area_under_curve() <= 1.0


class TestRobustnessSummary:
    def test_keys(self, star_topology):
        summary = robustness_summary(star_topology)
        assert set(summary) == {"random_auc", "targeted_auc", "fragility_gap"}

    def test_hot_tree_has_positive_fragility_gap(self):
        tree = generate_fkp_tree(300, alpha=4.0, seed=1)
        summary = robustness_summary(tree, steps=5, max_fraction=0.2)
        assert summary["fragility_gap"] > 0.0

    def test_random_graph_less_fragile_than_hot_tree(self):
        tree = generate_fkp_tree(300, alpha=4.0, seed=2)
        mesh = ErdosRenyiGenerator(target_mean_degree=6.0).generate(300, seed=2)
        tree_gap = robustness_summary(tree, steps=5, max_fraction=0.2)["fragility_gap"]
        mesh_gap = robustness_summary(mesh, steps=5, max_fraction=0.2)["fragility_gap"]
        assert tree_gap > mesh_gap


class TestResilienceMetric:
    def test_higher_for_denser_graphs(self):
        mesh = ErdosRenyiGenerator(target_mean_degree=8.0).generate(150, seed=3)
        tree = generate_fkp_tree(150, alpha=30.0, seed=3)
        assert resilience_metric(mesh, seed=1) > resilience_metric(tree, seed=1)

    def test_small_graph(self, path_topology):
        value = resilience_metric(path_topology, sample_size=10)
        assert value >= 1.0
