"""Tests for repro.metrics.distance."""

import math

import pytest

from repro.metrics.distance import (
    average_shortest_path_hops,
    eccentricity_distribution,
    geographic_stretch,
    hop_diameter,
    weighted_diameter,
)
from repro.topology.graph import Topology


class TestAveragePathAndDiameter:
    def test_path_graph_diameter(self, path_topology):
        assert hop_diameter(path_topology) == 5

    def test_star_diameter(self, star_topology):
        assert hop_diameter(star_topology) == 2

    def test_average_path_star(self, star_topology):
        # 5 pairs at distance 1 (hub-leaf) * 2 directions + 20 leaf-leaf at 2.
        expected = (10 * 1 + 20 * 2) / 30
        assert average_shortest_path_hops(star_topology) == pytest.approx(expected)

    def test_sampled_average_close_to_exact(self, path_topology):
        exact = average_shortest_path_hops(path_topology)
        sampled = average_shortest_path_hops(path_topology, sample_size=3, seed=1)
        assert abs(exact - sampled) < 2.0

    def test_single_node(self):
        topo = Topology()
        topo.add_node("only")
        assert average_shortest_path_hops(topo) == 0.0
        assert hop_diameter(topo) == 0

    def test_weighted_diameter(self, triangle_topology):
        assert weighted_diameter(triangle_topology) == pytest.approx(2 ** 0.5)


class TestEccentricity:
    def test_path_eccentricities(self, path_topology):
        eccentricities = eccentricity_distribution(path_topology)
        assert eccentricities[0] == 5
        assert eccentricities[2] == 3
        assert eccentricities[5] == 5


class TestGeographicStretch:
    def test_straight_line_topology_has_stretch_one(self):
        topo = Topology()
        topo.add_node("a", location=(0.0, 0.0))
        topo.add_node("b", location=(1.0, 0.0))
        topo.add_node("c", location=(2.0, 0.0))
        topo.add_link("a", "b")
        topo.add_link("b", "c")
        stretch = geographic_stretch(topo, pairs=[("a", "c")])
        assert stretch == pytest.approx(1.0)

    def test_detour_increases_stretch(self):
        topo = Topology()
        topo.add_node("a", location=(0.0, 0.0))
        topo.add_node("b", location=(1.0, 1.0))
        topo.add_node("c", location=(2.0, 0.0))
        topo.add_link("a", "b")
        topo.add_link("b", "c")
        stretch = geographic_stretch(topo, pairs=[("a", "c")])
        assert stretch > 1.3

    def test_without_locations_returns_nan(self, path_topology):
        assert math.isnan(geographic_stretch(path_topology))
