"""Tests for repro.metrics.spectrum."""

import numpy as np
import pytest

from repro.metrics.spectrum import (
    adjacency_matrix,
    adjacency_spectrum,
    algebraic_connectivity,
    laplacian_matrix,
    laplacian_spectrum,
    spectral_gap,
    spectral_summary,
)
from repro.topology.graph import Topology


def complete_graph(n: int) -> Topology:
    topo = Topology()
    for i in range(n):
        topo.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            topo.add_link(i, j)
    return topo


class TestMatrices:
    def test_adjacency_symmetric(self, triangle_topology):
        matrix = adjacency_matrix(triangle_topology)
        assert np.allclose(matrix, matrix.T)
        assert matrix.sum() == pytest.approx(6.0)

    def test_laplacian_rows_sum_to_zero(self, star_topology):
        laplacian = laplacian_matrix(star_topology)
        assert np.allclose(laplacian.sum(axis=1), 0.0)

    def test_normalized_laplacian_diagonal_ones(self, triangle_topology):
        laplacian = laplacian_matrix(triangle_topology, normalized=True)
        assert np.allclose(np.diag(laplacian), 1.0)


class TestSpectra:
    def test_complete_graph_largest_eigenvalue(self):
        spectrum = adjacency_spectrum(complete_graph(5))
        assert spectrum[0] == pytest.approx(4.0)
        assert spectrum[-1] == pytest.approx(-1.0)

    def test_laplacian_smallest_eigenvalue_zero(self, star_topology):
        spectrum = laplacian_spectrum(star_topology, normalized=False)
        assert spectrum[0] == pytest.approx(0.0, abs=1e-9)

    def test_empty_topology(self):
        assert adjacency_spectrum(Topology()) == []
        assert laplacian_spectrum(Topology()) == []

    def test_algebraic_connectivity_zero_for_disconnected(self):
        topo = Topology()
        for i in range(4):
            topo.add_node(i)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        assert algebraic_connectivity(topo, normalized=False) == pytest.approx(0.0, abs=1e-9)

    def test_algebraic_connectivity_positive_for_connected(self, triangle_topology):
        assert algebraic_connectivity(triangle_topology) > 0.1

    def test_spectral_gap_nonnegative(self, star_topology):
        assert spectral_gap(star_topology) >= 0.0

    def test_summary_keys(self, triangle_topology):
        summary = spectral_summary(triangle_topology)
        assert set(summary) == {
            "largest_adjacency_eigenvalue",
            "spectral_gap",
            "algebraic_connectivity",
            "largest_laplacian_eigenvalue",
        }
