"""Tests for repro.metrics.fits — power-law vs exponential tail classification."""

import math
import random

import pytest

from repro.metrics.fits import (
    ccdf_linear_fit_r2,
    classify_tail,
    fit_exponential,
    fit_power_law,
)


def sample_power_law(n: int, exponent: float, k_min: int, rng: random.Random):
    """Inverse-transform samples from a continuous power law, rounded down."""
    samples = []
    for _ in range(n):
        u = rng.random()
        value = k_min * (1.0 - u) ** (-1.0 / (exponent - 1.0))
        samples.append(max(k_min, int(value)))
    return samples


def sample_geometric(n: int, rate: float, k_min: int, rng: random.Random):
    q = math.exp(-rate)
    samples = []
    for _ in range(n):
        k = k_min
        while rng.random() < q:
            k += 1
        samples.append(k)
    return samples


class TestPowerLawFit:
    def test_recovers_exponent(self):
        rng = random.Random(1)
        data = sample_power_law(5000, 2.5, 2, rng)
        fit = fit_power_law(data, k_min=2)
        assert 2.2 < fit.exponent < 2.8

    def test_invalid_k_min(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], k_min=0)

    def test_empty_tail_raises(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 1, 1], k_min=5)

    def test_degenerate_all_equal(self):
        # With every observation at k_min the MLE produces a very steep exponent.
        fit = fit_power_law([3, 3, 3], k_min=3)
        assert fit.exponent > 3.0
        assert fit.num_tail == 3


class TestExponentialFit:
    def test_recovers_rate(self):
        rng = random.Random(2)
        data = sample_geometric(5000, 0.5, 1, rng)
        fit = fit_exponential(data, k_min=1)
        assert 0.4 < fit.rate < 0.6

    def test_degenerate_all_equal(self):
        fit = fit_exponential([2, 2, 2], k_min=2)
        assert math.isinf(fit.rate)

    def test_num_tail(self):
        fit = fit_exponential([1, 2, 3, 4, 5], k_min=3)
        assert fit.num_tail == 3


class TestClassifyTail:
    def test_power_law_data_classified(self):
        rng = random.Random(3)
        data = sample_power_law(3000, 2.2, 2, rng)
        assert classify_tail(data, k_min=2).verdict == "power-law"

    def test_geometric_data_classified(self):
        rng = random.Random(4)
        data = sample_geometric(3000, 0.8, 1, rng)
        assert classify_tail(data, k_min=1).verdict == "exponential"

    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError):
            classify_tail([])

    def test_default_k_min_is_computed(self):
        rng = random.Random(5)
        data = sample_geometric(2000, 0.7, 1, rng)
        result = classify_tail(data)
        assert result.power_law.k_min >= 1

    def test_log_likelihood_ratio_sign_matches_verdict(self):
        rng = random.Random(6)
        power = classify_tail(sample_power_law(3000, 2.2, 2, rng), k_min=2)
        geo = classify_tail(sample_geometric(3000, 0.8, 1, rng), k_min=1)
        assert power.log_likelihood_ratio > 0
        assert geo.log_likelihood_ratio < 0

    def test_high_threshold_gives_inconclusive(self):
        rng = random.Random(7)
        data = sample_geometric(200, 0.8, 1, rng)
        result = classify_tail(data, k_min=1, threshold=1e9)
        assert result.verdict == "inconclusive"


class TestCCDFLinearFit:
    def test_power_law_ccdf_fits_loglog(self):
        points = [(k, k ** -1.5) for k in range(1, 50)]
        assert ccdf_linear_fit_r2(points, log_x=True, log_y=True) > 0.99

    def test_exponential_ccdf_fits_loglinear(self):
        points = [(k, math.exp(-0.3 * k)) for k in range(1, 50)]
        assert ccdf_linear_fit_r2(points, log_x=False, log_y=True) > 0.99

    def test_too_few_points(self):
        assert ccdf_linear_fit_r2([(1, 0.5), (2, 0.2)], log_x=True, log_y=True) == 0.0

    def test_zero_probabilities_skipped(self):
        points = [(1, 0.5), (2, 0.0), (3, 0.1), (4, 0.05)]
        assert 0.0 <= ccdf_linear_fit_r2(points, log_x=True, log_y=True) <= 1.0
