"""Tests for repro.metrics.validation."""

import pytest

from repro.core import generate_fkp_tree, random_instance, solve_meyerson
from repro.generators import BarabasiAlbertGenerator, ErdosRenyiGenerator
from repro.metrics.comparison import evaluate_topology
from repro.metrics.validation import (
    BUILTIN_TARGETS,
    RangeCheck,
    ValidationTarget,
    as_graph_target,
    backbone_target,
    best_matching_target,
    router_access_target,
    validate_topology,
)


class TestRangeCheck:
    def test_inside_range_passes(self):
        assert RangeCheck("x", 0.0, 1.0).evaluate(0.5)

    def test_outside_range_fails(self):
        assert not RangeCheck("x", 0.0, 1.0).evaluate(1.5)

    def test_nan_fails(self):
        assert not RangeCheck("x", 0.0, 1.0).evaluate(float("nan"))

    def test_unbounded_sides(self):
        assert RangeCheck("x", minimum=2.0).evaluate(1e9)
        assert RangeCheck("x", maximum=2.0).evaluate(-1e9)


class TestBuiltinTargets:
    def test_registry_contains_all(self):
        assert set(BUILTIN_TARGETS) == {"as-graph", "router-access", "backbone"}

    def test_targets_have_checks(self):
        for target in (as_graph_target(), router_access_target(), backbone_target()):
            assert target.checks
            assert target.check_names()


class TestValidateTopology:
    def test_meyerson_tree_matches_router_access(self):
        solution = solve_meyerson(random_instance(200, seed=1), seed=1)
        report = validate_topology(solution.topology, router_access_target(), sample_size=30)
        assert report.passed
        assert report.pass_fraction == 1.0
        assert report.failures() == []

    def test_ba_graph_matches_as_graph_target(self):
        topology = BarabasiAlbertGenerator().generate(500, seed=2)
        report = validate_topology(topology, as_graph_target(), sample_size=30)
        assert report.pass_fraction >= 0.8

    def test_ba_graph_fails_router_access_target(self):
        topology = BarabasiAlbertGenerator().generate(500, seed=2)
        report = validate_topology(topology, router_access_target(), sample_size=30)
        assert not report.passed

    def test_precomputed_metrics_reused(self):
        topology = generate_fkp_tree(150, alpha=40.0, seed=3)
        metrics = evaluate_topology(topology, sample_size=20).metrics
        report = validate_topology(
            topology, router_access_target(), precomputed_metrics=metrics
        )
        assert len(report.results) == len(router_access_target().checks)

    def test_missing_metric_fails_its_check(self):
        topology = generate_fkp_tree(50, alpha=10.0, seed=4)
        target = ValidationTarget(
            name="custom", description="", checks=[RangeCheck("nonexistent", 0, 1)]
        )
        report = validate_topology(topology, target, sample_size=10)
        assert not report.passed

    def test_summary_lines_mention_every_check(self):
        topology = generate_fkp_tree(100, alpha=30.0, seed=5)
        report = validate_topology(topology, router_access_target(), sample_size=20)
        text = "\n".join(report.summary_lines())
        for check in router_access_target().checks:
            assert check.metric in text


class TestBestMatchingTarget:
    def test_access_tree_classified_as_router_access(self):
        solution = solve_meyerson(random_instance(200, seed=6), seed=6)
        name, report = best_matching_target(solution.topology, sample_size=30)
        assert name == "router-access"
        assert report.pass_fraction > 0.8

    def test_random_mesh_not_classified_as_router_access(self):
        topology = ErdosRenyiGenerator(target_mean_degree=6.0).generate(300, seed=7)
        name, _ = best_matching_target(topology, sample_size=30)
        assert name != "router-access"

    def test_empty_target_registry_rejected(self):
        topology = generate_fkp_tree(50, alpha=10.0, seed=8)
        with pytest.raises(ValueError):
            best_matching_target(topology, targets={})
