"""Tests for repro.visualization.svg."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.core import generate_fkp_tree, random_instance, solve_meyerson
from repro.topology.graph import Topology
from repro.visualization import (
    SVGCanvas,
    ccdf_to_svg,
    degree_ccdf_svg,
    save_ccdf_svg,
    save_topology_svg,
    topology_to_svg,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse_svg(document: str) -> ElementTree.Element:
    return ElementTree.fromstring(document)


class TestSVGCanvas:
    def test_render_is_valid_xml(self):
        canvas = SVGCanvas(width=100, height=50)
        canvas.line(0, 0, 10, 10)
        canvas.circle(5, 5, 2, title="hello & <world>")
        canvas.text(1, 1, "label <>&\"")
        root = parse_svg(canvas.render())
        assert root.tag == f"{SVG_NS}svg"

    def test_elements_present(self):
        canvas = SVGCanvas(width=100, height=50)
        canvas.line(0, 0, 10, 10)
        canvas.circle(5, 5, 2)
        canvas.text(1, 1, "label")
        root = parse_svg(canvas.render())
        tags = [child.tag for child in root]
        assert f"{SVG_NS}line" in tags
        assert f"{SVG_NS}circle" in tags
        assert f"{SVG_NS}text" in tags


class TestTopologySVG:
    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError):
            topology_to_svg(Topology())

    def test_node_and_link_counts(self, star_topology):
        root = parse_svg(topology_to_svg(star_topology))
        circles = root.findall(f".//{SVG_NS}circle")
        lines = root.findall(f".//{SVG_NS}line")
        assert len(circles) == star_topology.num_nodes
        assert len(lines) >= star_topology.num_links

    def test_nodes_without_locations_are_placed(self, path_topology):
        root = parse_svg(topology_to_svg(path_topology))
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == path_topology.num_nodes

    def test_provisioned_topology_renders_cable_legend(self):
        solution = solve_meyerson(random_instance(50, seed=1), seed=1)
        document = topology_to_svg(solution.topology)
        cables = {link.cable for link in solution.topology.links() if link.cable}
        for cable in cables:
            assert cable in document

    def test_title_defaults_to_topology_name(self, star_topology):
        assert star_topology.name in topology_to_svg(star_topology)

    def test_save_topology_svg(self, tmp_path, star_topology):
        path = tmp_path / "star.svg"
        save_topology_svg(star_topology, path)
        assert path.exists()
        parse_svg(path.read_text())

    def test_coordinates_within_canvas(self, triangle_topology):
        width, height = 400.0, 300.0
        root = parse_svg(topology_to_svg(triangle_topology, width=width, height=height))
        for circle in root.findall(f".//{SVG_NS}circle"):
            assert 0.0 <= float(circle.get("cx")) <= width
            assert 0.0 <= float(circle.get("cy")) <= height


class TestCCDFSVG:
    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ccdf_to_svg({})

    def test_zero_probability_series_rejected(self):
        with pytest.raises(ValueError):
            ccdf_to_svg({"empty": [(1, 0.0)]})

    def test_valid_chart(self):
        tree = generate_fkp_tree(120, alpha=4.0, seed=1)
        document = degree_ccdf_svg({"fkp": tree})
        root = parse_svg(document)
        assert root.findall(f".//{SVG_NS}circle")
        assert "fkp" in document

    def test_multiple_series_labels_present(self):
        trees = {
            "power-law": generate_fkp_tree(120, alpha=4.0, seed=1),
            "exponential": generate_fkp_tree(120, alpha=30.0, seed=1),
        }
        document = degree_ccdf_svg(trees)
        assert "power-law" in document and "exponential" in document

    def test_save_ccdf_svg(self, tmp_path):
        tree = generate_fkp_tree(80, alpha=4.0, seed=2)
        path = tmp_path / "ccdf.svg"
        save_ccdf_svg({"fkp": tree}, path, log_x=False)
        parse_svg(path.read_text())
