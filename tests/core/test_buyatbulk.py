"""Tests for repro.core.buyatbulk — problem definition and deterministic baselines."""

import pytest

from repro.core.buyatbulk import (
    BuyAtBulkInstance,
    Customer,
    core_node_id,
    random_instance,
    route_tree_flows,
    solve_direct_star,
    solve_greedy_aggregation,
    solve_mst_routing,
    trivial_lower_bound,
)
from repro.economics.cables import linear_catalog
from repro.topology.node import NodeRole


class TestCustomer:
    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            Customer("c", (0, 0), demand=-1.0)


class TestInstance:
    def test_requires_customers_and_cores(self):
        with pytest.raises(ValueError):
            BuyAtBulkInstance(customers=[], core_locations=[(0, 0)])
        with pytest.raises(ValueError):
            BuyAtBulkInstance(
                customers=[Customer("c", (0, 0))], core_locations=[]
            )

    def test_duplicate_customer_ids_rejected(self):
        customers = [Customer("c", (0, 0)), Customer("c", (1, 1))]
        with pytest.raises(ValueError):
            BuyAtBulkInstance(customers=customers)

    def test_total_demand(self, small_instance):
        assert small_instance.total_demand == pytest.approx(15.0)

    def test_nearest_core(self, small_instance):
        index, distance = small_instance.nearest_core((0.5, 0.6))
        assert index == 0
        assert distance == pytest.approx(0.1)

    def test_random_instance_reproducible(self):
        a = random_instance(30, seed=1)
        b = random_instance(30, seed=1)
        assert [c.location for c in a.customers] == [c.location for c in b.customers]

    def test_random_instance_clustered(self):
        instance = random_instance(30, seed=2, clustered=True)
        assert len(instance.customers) == 30

    def test_random_instance_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_instance(0)
        with pytest.raises(ValueError):
            random_instance(5, demand_range=(5.0, 1.0))


class TestBaselines:
    @pytest.mark.parametrize(
        "solver", [solve_direct_star, solve_mst_routing, solve_greedy_aggregation]
    )
    def test_solution_is_feasible_tree(self, medium_instance, solver):
        solution = solver(medium_instance)
        assert solution.is_feasible()
        assert solution.topology.is_tree()

    def test_star_connects_every_customer_directly_to_core(self, small_instance):
        solution = solve_direct_star(small_instance)
        core = core_node_id(0)
        assert solution.topology.degree(core) == len(small_instance.customers)

    def test_star_is_most_expensive_with_economies_of_scale(self, medium_instance):
        star_cost = solve_direct_star(medium_instance).total_cost()
        mst_cost = solve_mst_routing(medium_instance).total_cost()
        greedy_cost = solve_greedy_aggregation(medium_instance).total_cost()
        assert star_cost > mst_cost
        assert star_cost > greedy_cost

    def test_star_is_optimal_under_linear_costs(self):
        # Without economies of scale (pure linear costs), direct connection is
        # optimal, so the star must not be beaten by the aggregation baselines.
        instance = random_instance(40, seed=3, catalog=linear_catalog())
        star_cost = solve_direct_star(instance).total_cost()
        greedy_cost = solve_greedy_aggregation(instance).total_cost()
        assert star_cost <= greedy_cost + 1e-6

    def test_costs_exceed_lower_bound(self, medium_instance):
        bound = trivial_lower_bound(medium_instance)
        for solver in (solve_direct_star, solve_mst_routing, solve_greedy_aggregation):
            assert solver(medium_instance).total_cost() >= bound * 0.999

    def test_cost_breakdown_sums(self, medium_instance):
        solution = solve_mst_routing(medium_instance)
        breakdown = solution.cost_breakdown()
        assert breakdown["total"] == pytest.approx(breakdown["install"] + breakdown["usage"])


class TestRouting:
    def test_route_tree_flows_conserves_demand_at_core(self, small_instance):
        solution = solve_direct_star(small_instance)
        core = core_node_id(0)
        incoming = sum(link.load for link in solution.topology.incident_links(core))
        assert incoming == pytest.approx(small_instance.total_demand)

    def test_leaf_links_carry_exactly_leaf_demand(self, small_instance):
        solution = solve_mst_routing(small_instance)
        topo = solution.topology
        for customer in small_instance.customers:
            if topo.degree(customer.customer_id) == 1:
                link = topo.incident_links(customer.customer_id)[0]
                assert link.load >= customer.demand - 1e-9

    def test_every_link_has_cable_and_capacity(self, medium_instance):
        solution = solve_greedy_aggregation(medium_instance)
        for link in solution.topology.links():
            assert link.cable is not None
            assert link.capacity is not None
            assert link.capacity >= link.load - 1e-9

    def test_route_tree_flows_requires_core(self, small_instance):
        from repro.topology.graph import Topology

        topo = Topology()
        topo.add_node("cust0", role=NodeRole.CUSTOMER)
        with pytest.raises(ValueError):
            route_tree_flows(topo, small_instance)

    def test_validate_detects_missing_customer(self, small_instance):
        solution = solve_direct_star(small_instance)
        solution.topology.remove_node("c3")
        problems = solution.validate()
        assert any("c3" in p for p in problems)
        assert not solution.is_feasible()

    def test_validate_detects_disconnected_customer(self, small_instance):
        solution = solve_direct_star(small_instance)
        solution.topology.remove_link("c2", core_node_id(0))
        assert any("not connected" in p for p in solution.validate())


class TestLowerBound:
    def test_positive_and_below_star(self, medium_instance):
        bound = trivial_lower_bound(medium_instance)
        assert bound > 0
        assert bound <= solve_direct_star(medium_instance).total_cost()
