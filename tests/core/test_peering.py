"""Tests for repro.core.peering — multi-ISP internetworks and AS graphs (§2.3)."""

import pytest

from repro.core.peering import (
    DEFAULT_PROFILES,
    InternetGenerator,
    ISPProfile,
    PeeringPolicy,
    generate_internet,
)


@pytest.fixture(scope="module")
def small_internet():
    return generate_internet(num_isps=8, num_cities=12, seed=33)


class TestProfilesAndPolicy:
    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError):
            ISPProfile("x", coverage_fraction=0.0, customers_per_city_scale=1.0)
        with pytest.raises(ValueError):
            ISPProfile("x", coverage_fraction=0.5, customers_per_city_scale=-1.0)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            PeeringPolicy(min_shared_cities=0)
        with pytest.raises(ValueError):
            PeeringPolicy(probability=1.5)

    def test_default_profiles_weights_positive(self):
        assert all(weight > 0 for _, weight in DEFAULT_PROFILES)


class TestGenerator:
    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            InternetGenerator(num_isps=1)
        with pytest.raises(ValueError):
            InternetGenerator(num_isps=5, num_cities=1)
        with pytest.raises(ValueError):
            InternetGenerator(num_isps=5, profiles=[])

    def test_as_graph_has_one_node_per_isp(self, small_internet):
        assert small_internet.as_graph.num_nodes == small_internet.num_ases() == 8

    def test_peering_requires_shared_city(self, small_internet):
        for (a, b), cities in small_internet.peering_cities.items():
            shared = set(small_internet.isps[a].pop_cities) & set(
                small_internet.isps[b].pop_cities
            )
            # Transit links may be recorded with a fallback city list, but any
            # genuinely shared-city peering must list only shared cities.
            if shared:
                assert set(cities) <= shared or set(cities) <= set(
                    small_internet.isps[a].pop_cities
                )

    def test_as_degree_tracks_coverage(self):
        internet = generate_internet(num_isps=20, num_cities=20, seed=35)
        rows = [
            (internet.coverage(name), internet.as_degree(name))
            for name in internet.isps
        ]
        big = [degree for coverage, degree in rows if coverage >= 10]
        small = [degree for coverage, degree in rows if coverage <= 3]
        if big and small:
            assert sum(big) / len(big) >= sum(small) / len(small)

    def test_transit_keeps_non_nationals_connected(self):
        internet = generate_internet(num_isps=15, num_cities=15, seed=37)
        nationals = [name for name in internet.isps if name.endswith("national")]
        if nationals:
            for name in internet.isps:
                assert internet.as_graph.degree(name) > 0 or name in nationals

    def test_deterministic_with_seed(self):
        a = generate_internet(num_isps=6, num_cities=10, seed=39)
        b = generate_internet(num_isps=6, num_cities=10, seed=39)
        assert sorted(a.as_graph.link_keys()) == sorted(b.as_graph.link_keys())

    def test_as_nodes_annotated_with_pops(self, small_internet):
        for name in small_internet.isps:
            node = small_internet.as_graph.node(name)
            assert node.attributes["pops"] == small_internet.coverage(name)


class TestRouterLevelGraph:
    def test_router_level_graph_contains_all_isps(self, small_internet):
        merged = small_internet.router_level_graph()
        prefixes = {str(node.node_id).split("/")[0] for node in merged.nodes()}
        assert prefixes == set(small_internet.isps)

    def test_peering_links_connect_colocated_cores(self, small_internet):
        merged = small_internet.router_level_graph()
        peering_links = [
            link for link in merged.links() if link.attributes.get("peering")
        ]
        for link in peering_links:
            as_a, node_a = str(link.source).split("/", 1)
            as_b, node_b = str(link.target).split("/", 1)
            assert as_a != as_b
            assert node_a.split(":")[1] == node_b.split(":")[1]

    def test_customers_excluded_by_default(self, small_internet):
        merged = small_internet.router_level_graph(include_customers=False)
        from repro.topology.node import NodeRole

        assert all(node.role != NodeRole.CUSTOMER for node in merged.nodes())
