"""Tests for repro.core.meyerson — the randomized incremental buy-at-bulk solver."""

import pytest

from repro.core.buyatbulk import random_instance, solve_direct_star, trivial_lower_bound
from repro.core.meyerson import (
    MeyersonBuyAtBulk,
    MeyersonParameters,
    best_of_runs,
    expected_approximation_factor,
    solve_meyerson,
)
from repro.metrics.fits import classify_tail


class TestParameters:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MeyersonParameters(hub_probability_scale=0.0)
        with pytest.raises(ValueError):
            MeyersonParameters(arrival_order="alphabetical")


class TestSolve:
    def test_solution_is_feasible_tree(self, medium_instance):
        solution = solve_meyerson(medium_instance, seed=1)
        assert solution.is_feasible()
        assert solution.topology.is_tree()
        assert solution.algorithm == "meyerson-incremental"

    def test_deterministic_with_seed(self, medium_instance):
        a = solve_meyerson(medium_instance, seed=5)
        b = solve_meyerson(medium_instance, seed=5)
        assert sorted(a.topology.link_keys()) == sorted(b.topology.link_keys())

    def test_different_seeds_differ(self, medium_instance):
        a = solve_meyerson(medium_instance, seed=1)
        b = solve_meyerson(medium_instance, seed=2)
        assert sorted(a.topology.link_keys()) != sorted(b.topology.link_keys())

    def test_all_links_provisioned(self, medium_instance):
        solution = solve_meyerson(medium_instance, seed=1)
        for link in solution.topology.links():
            assert link.cable is not None
            assert link.capacity >= link.load - 1e-9

    def test_beats_direct_star_with_economies_of_scale(self, medium_instance):
        meyerson_cost = solve_meyerson(medium_instance, seed=3).total_cost()
        star_cost = solve_direct_star(medium_instance).total_cost()
        assert meyerson_cost < star_cost

    def test_cost_above_lower_bound(self, medium_instance):
        bound = trivial_lower_bound(medium_instance)
        assert solve_meyerson(medium_instance, seed=1).total_cost() >= 0.999 * bound

    def test_arrival_order_variants(self, medium_instance):
        for order in ("random", "demand", "given"):
            solver = MeyersonBuyAtBulk(
                medium_instance, MeyersonParameters(seed=1, arrival_order=order)
            )
            assert solver.solve().is_feasible()

    def test_hub_layers_recorded_in_metadata(self, medium_instance):
        solution = solve_meyerson(medium_instance, seed=1)
        layers = solution.topology.metadata["hub_layers"]
        assert len(layers) == len(medium_instance.customers)
        num_cables = len(medium_instance.catalog)
        assert all(0 <= layer < num_cables for layer in layers.values())


class TestPaperClaim:
    """Section 4.2: the approximation yields trees with exponential degree tails."""

    def test_exponential_degree_distribution(self):
        instance = random_instance(300, seed=11)
        solution = solve_meyerson(instance, seed=11)
        assert solution.topology.is_tree()
        verdict = classify_tail(solution.topology.degree_sequence()).verdict
        assert verdict in ("exponential", "inconclusive")

    def test_no_giant_hub(self):
        instance = random_instance(300, seed=13)
        solution = solve_meyerson(instance, seed=13)
        # Unlike the star baseline (degree 300), the incremental tree spreads
        # aggregation over many hubs.
        assert max(solution.topology.degree_sequence()) < 50


class TestBestOfRuns:
    def test_never_worse_than_single_run(self, medium_instance):
        single = solve_meyerson(medium_instance, seed=0).total_cost()
        best = best_of_runs(medium_instance, num_runs=4, seed=0).total_cost()
        assert best <= single + 1e-9

    def test_requires_positive_runs(self, medium_instance):
        with pytest.raises(ValueError):
            best_of_runs(medium_instance, num_runs=0)


class TestApproximationFactor:
    def test_monotone_in_layers(self):
        assert expected_approximation_factor(1) < expected_approximation_factor(8)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            expected_approximation_factor(0)

    def test_measured_ratio_within_indicative_bound(self, medium_instance):
        factor = expected_approximation_factor(len(medium_instance.catalog))
        cost = best_of_runs(medium_instance, num_runs=3, seed=1).total_cost()
        bound = trivial_lower_bound(medium_instance)
        # The trivial lower bound is loose, so allow a generous multiple.
        assert cost <= 5 * factor * bound


class TestSpatialIndexEquivalence:
    """The grid-backed nearest-member queries are exact: solutions are
    bit-identical to the seed's linear-scan implementation."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("clustered", [False, True])
    def test_solutions_bit_identical(self, seed, clustered):
        instance = random_instance(150, seed=seed, clustered=clustered)
        grid = MeyersonBuyAtBulk(
            instance, MeyersonParameters(seed=seed), use_spatial_index=True
        ).solve()
        scan = MeyersonBuyAtBulk(
            instance, MeyersonParameters(seed=seed), use_spatial_index=False
        ).solve()
        assert sorted(map(str, grid.topology.link_keys())) == sorted(
            map(str, scan.topology.link_keys())
        )
        assert grid.total_cost() == scan.total_cost()

    def test_default_uses_spatial_index(self, medium_instance):
        assert MeyersonBuyAtBulk(medium_instance).use_spatial_index

    def test_arrival_order_variants_identical(self, medium_instance):
        for order in ("random", "demand", "given"):
            grid = MeyersonBuyAtBulk(
                medium_instance,
                MeyersonParameters(seed=2, arrival_order=order),
                use_spatial_index=True,
            ).solve()
            scan = MeyersonBuyAtBulk(
                medium_instance,
                MeyersonParameters(seed=2, arrival_order=order),
                use_spatial_index=False,
            ).solve()
            assert sorted(map(str, grid.topology.link_keys())) == sorted(
                map(str, scan.topology.link_keys())
            )
