"""Tests for repro.core.isp — the single-ISP generator (paper §2.2)."""

import pytest

from repro.core.isp import ISPGenerator, ISPParameters, generate_isp
from repro.geography.population import synthetic_population
from repro.geography.regions import national_region
from repro.topology.hierarchy import summarize_hierarchy
from repro.topology.node import NodeRole


@pytest.fixture(scope="module")
def small_isp():
    """A small cost-driven ISP reused by several read-only tests."""
    return generate_isp(num_cities=8, seed=21, customers_per_city_scale=3.0)


class TestParameters:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ISPParameters(num_cities=1)
        with pytest.raises(ValueError):
            ISPParameters(coverage_fraction=0.0)
        with pytest.raises(ValueError):
            ISPParameters(coverage_fraction=1.5)
        with pytest.raises(ValueError):
            ISPParameters(customers_per_city_scale=-1.0)
        with pytest.raises(ValueError):
            ISPParameters(objective="fame")


class TestGeneratedTopology:
    def test_connected(self, small_isp):
        assert small_isp.topology.is_connected()

    def test_hierarchy_levels_present(self, small_isp):
        summary = summarize_hierarchy(small_isp.topology)
        assert summary.count("core") == small_isp.pop_count()
        assert summary.count("customer") > 0
        assert summary.count("distribution") + summary.count("access") > 0

    def test_pop_cities_are_largest(self, small_isp):
        population = small_isp.population
        largest_names = {c.name for c in population.largest(small_isp.pop_count())}
        assert set(small_isp.pop_cities) == largest_names

    def test_backbone_links_provisioned(self, small_isp):
        backbone = set(small_isp.backbone_nodes())
        backbone_links = [
            link
            for link in small_isp.topology.links()
            if link.source in backbone and link.target in backbone
        ]
        assert backbone_links
        assert all(link.cable is not None for link in backbone_links)
        assert all(
            link.capacity >= link.load - 1e-9 for link in backbone_links
        )

    def test_objective_value_recorded(self, small_isp):
        assert small_isp.objective_value == small_isp.topology.metadata["objective_value"]

    def test_customer_count_scales_with_population(self):
        small = generate_isp(num_cities=6, seed=3, customers_per_city_scale=2.0)
        large = generate_isp(num_cities=6, seed=3, customers_per_city_scale=6.0)
        assert len(large.customer_nodes()) > len(small.customer_nodes())

    def test_deterministic_with_seed(self):
        a = generate_isp(num_cities=6, seed=4, customers_per_city_scale=2.0)
        b = generate_isp(num_cities=6, seed=4, customers_per_city_scale=2.0)
        assert a.topology.num_nodes == b.topology.num_nodes
        assert a.topology.num_links == b.topology.num_links


class TestCoverageAndObjectives:
    def test_coverage_fraction_controls_pops(self):
        narrow = generate_isp(
            num_cities=10, seed=5, coverage_fraction=0.3, customers_per_city_scale=1.0
        )
        wide = generate_isp(
            num_cities=10, seed=5, coverage_fraction=0.9, customers_per_city_scale=1.0
        )
        assert wide.pop_count() > narrow.pop_count()

    def test_profit_objective_enters_at_most_as_many_cities(self):
        cost_driven = generate_isp(
            num_cities=10, seed=6, objective="cost", customers_per_city_scale=1.0
        )
        profit_driven = generate_isp(
            num_cities=10, seed=6, objective="profit", customers_per_city_scale=1.0
        )
        assert profit_driven.pop_count() <= cost_driven.pop_count()

    def test_backbone_only_isp(self):
        design = generate_isp(num_cities=8, seed=7, customers_per_city_scale=0.0)
        roles = {n.role for n in design.topology.nodes()}
        assert NodeRole.CORE in roles


class TestExternalPopulation:
    def test_generator_accepts_shared_population(self):
        population = synthetic_population(national_region(), 12, seed=8)
        generator = ISPGenerator(
            population=population,
            parameters=ISPParameters(num_cities=12, seed=8, customers_per_city_scale=1.0),
        )
        design = generator.generate(name="shared-pop-isp")
        assert design.topology.name == "shared-pop-isp"
        assert set(design.pop_cities) <= {c.name for c in population.cities}
