"""Tests for repro.core.fkp — the FKP tradeoff growth model (paper §3.1)."""

import math

import pytest

from repro.core.fkp import (
    FKPModel,
    FKPParameters,
    FKPState,
    alpha_regime,
    alpha_sweep,
    characteristic_alphas,
    euclidean_centrality,
    generate_fkp_tree,
    subtree_load_centrality,
)
from repro.topology.graph import Topology
from repro.metrics.degree import max_degree_share
from repro.metrics.fits import classify_tail
from repro.topology.node import NodeRole


class TestParameters:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            FKPParameters(num_nodes=0, alpha=1.0)
        with pytest.raises(ValueError):
            FKPParameters(num_nodes=10, alpha=-1.0)


class TestAlphaRegime:
    def test_star_regime(self):
        assert alpha_regime(0.1, 1000) == "star"
        assert alpha_regime(1.0 / math.sqrt(2.0) - 1e-9, 1000) == "star"

    def test_power_law_regime(self):
        assert alpha_regime(4.0, 1000) == "power-law"
        assert alpha_regime(10.0, 1000) == "power-law"

    def test_exponential_regime(self):
        assert alpha_regime(math.sqrt(1000), 1000) == "exponential"
        assert alpha_regime(1000.0, 1000) == "exponential"


class TestGrowth:
    def test_result_is_a_tree(self):
        topo = generate_fkp_tree(150, 4.0, seed=1)
        assert topo.is_tree()
        assert topo.num_nodes == 150
        assert topo.num_links == 149

    def test_root_is_core(self):
        topo = generate_fkp_tree(20, 4.0, seed=1)
        assert topo.node(0).role == NodeRole.CORE
        assert topo.node(5).role == NodeRole.CUSTOMER

    def test_deterministic_with_seed(self):
        a = generate_fkp_tree(80, 4.0, seed=9)
        b = generate_fkp_tree(80, 4.0, seed=9)
        assert sorted(a.link_keys()) == sorted(b.link_keys())

    def test_different_seed_changes_tree(self):
        a = generate_fkp_tree(80, 4.0, seed=1)
        b = generate_fkp_tree(80, 4.0, seed=2)
        assert sorted(a.link_keys()) != sorted(b.link_keys())

    def test_single_node(self):
        topo = generate_fkp_tree(1, 4.0, seed=1)
        assert topo.num_nodes == 1
        assert topo.num_links == 0

    def test_metadata_records_alpha_and_regime(self):
        topo = generate_fkp_tree(50, 0.1, seed=1)
        assert topo.metadata["alpha"] == 0.1
        assert topo.metadata["regime"] == "star"

    def test_all_nodes_have_locations_in_unit_square(self):
        topo = generate_fkp_tree(60, 4.0, seed=2)
        for node in topo.nodes():
            x, y = node.location
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0


class TestRegimeBehaviour:
    """The paper's §3.1 claims about the three alpha regimes."""

    def test_small_alpha_gives_star(self):
        topo = generate_fkp_tree(200, 0.1, seed=3)
        # The root connects (almost) everyone: it holds ~half of all endpoints.
        assert max_degree_share(topo) > 0.45

    def test_large_alpha_gives_bounded_degrees(self):
        n = 400
        topo = generate_fkp_tree(n, 2.0 * math.sqrt(n), seed=3)
        assert max(topo.degree_sequence()) < 30

    def test_intermediate_alpha_has_heavier_tail_than_large_alpha(self):
        n = 400
        intermediate = generate_fkp_tree(n, 4.0, seed=5)
        large = generate_fkp_tree(n, 3.0 * math.sqrt(n), seed=5)
        assert max(intermediate.degree_sequence()) > max(large.degree_sequence())

    def test_large_alpha_tail_classified_exponential(self):
        n = 500
        topo = generate_fkp_tree(n, 2.0 * math.sqrt(n), seed=7)
        verdict = classify_tail(topo.degree_sequence()).verdict
        assert verdict in ("exponential", "inconclusive")

    def test_intermediate_alpha_tail_not_exponential(self):
        topo = generate_fkp_tree(500, 4.0, seed=7)
        verdict = classify_tail(topo.degree_sequence()).verdict
        assert verdict in ("power-law", "inconclusive")


class TestSubtreePropagation:
    def test_parent_pointer_propagation_counts_descendants(self):
        """Subtree sizes follow the explicit parent pointers exactly."""
        topology = Topology()
        # Tree: 0 - 1 - 2, 1 - 3, 0 - 4
        parents = {1: 0, 2: 1, 3: 1, 4: 0}
        locations = [(0.0, 0.0)] * 5
        for node in range(5):
            topology.add_node(node)
        state = FKPState(
            topology=topology,
            locations=locations,
            hop_to_root={0: 0},
            subtree_size={0: 1},
        )
        model = FKPModel(FKPParameters(num_nodes=5, alpha=1.0, seed=0))
        for child, parent in parents.items():
            topology.add_link(parent, child)
            state.hop_to_root[child] = state.hop_to_root[parent] + 1
            state.subtree_size[child] = 1
            state.parent[child] = parent
            model._propagate_subtree_increment(state, parent)
        assert state.subtree_size == {0: 5, 1: 3, 2: 1, 3: 1, 4: 1}

    def test_generated_subtree_sizes_consistent(self):
        """End-to-end: every subtree size equals 1 + sum of child subtrees."""
        captured = {}

        def capturing_centrality(state, node_id):
            captured["state"] = state
            return float(state.hop_to_root[node_id])

        model = FKPModel(
            FKPParameters(num_nodes=80, alpha=4.0, seed=3),
            centrality=capturing_centrality,
        )
        topo = model.generate()
        state = captured["state"]
        children = {}
        for child, parent in state.parent.items():
            children.setdefault(parent, []).append(child)

        def count(node):
            return 1 + sum(count(c) for c in children.get(node, []))

        for node in topo.node_ids():
            assert state.subtree_size[node] == count(node)


class TestVariants:
    def test_alpha_sweep_returns_all_alphas(self):
        sweep = alpha_sweep(50, [0.1, 4.0, 50.0], seed=1)
        assert set(sweep) == {0.1, 4.0, 50.0}
        assert all(t.is_tree() for t in sweep.values())

    def test_characteristic_alphas_cover_regimes(self):
        alphas = characteristic_alphas(1000)
        assert alpha_regime(alphas["star"], 1000) == "star"
        assert alpha_regime(alphas["exponential"], 1000) == "exponential"

    def test_euclidean_centrality_variant(self):
        model = FKPModel(
            FKPParameters(num_nodes=60, alpha=4.0, seed=2),
            centrality=euclidean_centrality,
        )
        assert model.generate().is_tree()

    def test_subtree_load_centrality_variant(self):
        model = FKPModel(
            FKPParameters(num_nodes=60, alpha=4.0, seed=2),
            centrality=subtree_load_centrality,
        )
        assert model.generate().is_tree()
