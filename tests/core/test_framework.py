"""Tests for repro.core.framework.HOTGenerator — the unified API."""

import pytest

from repro.core.buyatbulk import random_instance
from repro.core.framework import BUY_AT_BULK_SOLVERS, HOTGenerator
from repro.core.objectives import ProfitObjective


@pytest.fixture(scope="module")
def generator():
    return HOTGenerator(seed=42)


class TestFKP:
    def test_generate_fkp_tree(self, generator):
        topo = generator.generate_fkp_tree(100, alpha=4.0)
        assert topo.is_tree()
        assert topo.num_nodes == 100

    def test_default_seed_applied(self):
        a = HOTGenerator(seed=1).generate_fkp_tree(60, alpha=4.0)
        b = HOTGenerator(seed=1).generate_fkp_tree(60, alpha=4.0)
        assert sorted(a.link_keys()) == sorted(b.link_keys())

    def test_explicit_seed_overrides_default(self):
        gen = HOTGenerator(seed=1)
        a = gen.generate_fkp_tree(60, alpha=4.0, seed=2)
        b = gen.generate_fkp_tree(60, alpha=4.0, seed=3)
        assert sorted(a.link_keys()) != sorted(b.link_keys())


class TestBuyAtBulk:
    def test_registry_contains_all_algorithms(self):
        assert set(BUY_AT_BULK_SOLVERS) == {"meyerson", "greedy", "mst", "star"}

    @pytest.mark.parametrize("algorithm", ["meyerson", "greedy", "mst", "star"])
    def test_generate_access_tree(self, generator, algorithm):
        solution = generator.generate_access_tree(40, algorithm=algorithm)
        assert solution.is_feasible()

    def test_unknown_algorithm_rejected(self, generator):
        instance = random_instance(10, seed=1)
        with pytest.raises(ValueError):
            generator.solve_buy_at_bulk(instance, algorithm="oracle")

    def test_best_of_not_worse_than_single(self, generator):
        instance = random_instance(50, seed=4)
        single = generator.solve_buy_at_bulk(instance, algorithm="meyerson", seed=1)
        best = generator.solve_buy_at_bulk(instance, algorithm="meyerson", seed=1, best_of=4)
        assert best.total_cost() <= single.total_cost() + 1e-9

    def test_compare_algorithms_returns_all(self, generator):
        instance = random_instance(30, seed=5)
        results = generator.compare_buy_at_bulk_algorithms(instance, seed=1)
        assert set(results) == {"meyerson", "greedy", "mst", "star"}
        assert all(solution.is_feasible() for solution in results.values())


class TestMetroAndISP:
    def test_generate_metro(self, generator):
        result = generator.generate_metro(30)
        assert result.topology.is_connected()

    def test_generate_isp(self, generator):
        design = generator.generate_isp(num_cities=6, customers_per_city_scale=2.0)
        assert design.topology.is_connected()
        assert design.pop_count() >= 2

    def test_profit_objective_propagates(self):
        generator = HOTGenerator(seed=2, objective=ProfitObjective())
        design = generator.generate_isp(num_cities=6, customers_per_city_scale=2.0)
        assert design.parameters.objective == "profit"

    def test_generate_internet(self, generator):
        internet = generator.generate_internet(num_isps=5, num_cities=8)
        assert internet.num_ases() == 5
