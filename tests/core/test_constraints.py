"""Tests for repro.core.constraints."""

import pytest

from repro.core.constraints import (
    BudgetConstraint,
    CapacityConstraint,
    ConstraintSet,
    DegreeConstraint,
    GeographicReachConstraint,
    default_router_constraints,
)
from repro.topology.graph import Topology
from repro.topology.node import NodeRole


def hub_topology(leaves: int = 5) -> Topology:
    topo = Topology()
    topo.add_node("hub", role=NodeRole.ACCESS, location=(0, 0))
    for i in range(leaves):
        topo.add_node(f"l{i}", role=NodeRole.CUSTOMER, location=(1, i))
        topo.add_link("hub", f"l{i}")
    return topo


class TestDegreeConstraint:
    def test_violation_detected(self):
        constraint = DegreeConstraint(max_degree=3)
        assert not constraint.is_satisfied(hub_topology(5))
        assert constraint.is_satisfied(hub_topology(3))

    def test_per_role_override(self):
        constraint = DegreeConstraint(max_degree=3, per_role={NodeRole.ACCESS: 10})
        assert constraint.is_satisfied(hub_topology(5))

    def test_allows_link(self):
        constraint = DegreeConstraint(max_degree=5)
        topo = hub_topology(5)
        topo.add_node("new", role=NodeRole.CUSTOMER, location=(2, 2))
        assert not constraint.allows_link(topo, "hub", "new")
        assert constraint.allows_link(topo, "l0", "new")

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            DegreeConstraint(max_degree=0)
        with pytest.raises(ValueError):
            DegreeConstraint(per_role={NodeRole.CORE: 0})


class TestCapacityConstraint:
    def test_overload_detected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        link = topo.add_link("a", "b", capacity=10.0)
        link.load = 20.0
        assert not CapacityConstraint().is_satisfied(topo)
        link.load = 5.0
        assert CapacityConstraint().is_satisfied(topo)

    def test_always_allows_new_links(self, triangle_topology):
        assert CapacityConstraint().allows_link(triangle_topology, "a", "b")


class TestBudgetConstraint:
    def test_budget_violation(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", install_cost=100.0)
        assert not BudgetConstraint(budget=50.0).is_satisfied(topo)
        assert BudgetConstraint(budget=150.0).is_satisfied(topo)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BudgetConstraint(budget=-1.0)


class TestGeographicReachConstraint:
    def test_long_link_detected(self):
        topo = Topology()
        topo.add_node("a", location=(0, 0))
        topo.add_node("b", location=(10, 0))
        topo.add_link("a", "b")
        assert not GeographicReachConstraint(max_link_length=5.0).is_satisfied(topo)
        assert GeographicReachConstraint(max_link_length=20.0).is_satisfied(topo)

    def test_allows_link_checks_distance(self):
        topo = Topology()
        topo.add_node("a", location=(0, 0))
        topo.add_node("b", location=(10, 0))
        constraint = GeographicReachConstraint(max_link_length=5.0)
        assert not constraint.allows_link(topo, "a", "b")

    def test_missing_locations_always_allowed(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        assert GeographicReachConstraint(max_link_length=1.0).allows_link(topo, "a", "b")

    def test_invalid_reach_rejected(self):
        with pytest.raises(ValueError):
            GeographicReachConstraint(max_link_length=0.0)


class TestConstraintSet:
    def test_combines_violations(self):
        topo = hub_topology(6)
        topo.add_node("far", location=(100, 100), role=NodeRole.CUSTOMER)
        topo.add_link("l0", "far")
        constraints = ConstraintSet(
            constraints=[
                DegreeConstraint(max_degree=3),
                GeographicReachConstraint(max_link_length=10.0),
            ]
        )
        violations = constraints.violations(topo)
        assert len(violations) >= 2
        assert not constraints.is_satisfied(topo)

    def test_allows_link_requires_all(self):
        topo = hub_topology(3)
        topo.add_node("far", location=(100, 100), role=NodeRole.CUSTOMER)
        constraints = ConstraintSet(
            constraints=[
                DegreeConstraint(max_degree=10),
                GeographicReachConstraint(max_link_length=10.0),
            ]
        )
        assert not constraints.allows_link(topo, "hub", "far")

    def test_default_router_constraints_accept_reasonable_designs(self, star_topology):
        assert default_router_constraints().is_satisfied(star_topology)
