"""Tests for repro.core.objectives."""

import pytest

from repro.core.objectives import (
    CostObjective,
    PerformanceCostObjective,
    ProfitObjective,
    mean_customer_hops,
    served_customers,
    unserved_demand,
)
from repro.topology.graph import Topology
from repro.topology.node import NodeRole


def served_star() -> Topology:
    topo = Topology()
    topo.add_node("core", role=NodeRole.CORE, location=(0, 0))
    for i in range(3):
        topo.add_node(f"c{i}", role=NodeRole.CUSTOMER, location=(1, i), demand=2.0)
        topo.add_link("core", f"c{i}", install_cost=5.0)
    return topo


def with_orphan(topology: Topology) -> Topology:
    topology.add_node("orphan", role=NodeRole.CUSTOMER, location=(9, 9), demand=4.0)
    return topology


class TestServedHelpers:
    def test_served_customers(self):
        topo = with_orphan(served_star())
        served = served_customers(topo)
        assert served == {"c0", "c1", "c2"}

    def test_unserved_demand(self):
        topo = with_orphan(served_star())
        assert unserved_demand(topo) == pytest.approx(4.0)

    def test_mean_customer_hops(self):
        assert mean_customer_hops(served_star()) == pytest.approx(1.0)

    def test_mean_customer_hops_no_core(self):
        topo = Topology()
        topo.add_node("c", role=NodeRole.CUSTOMER)
        assert mean_customer_hops(topo) == 0.0


class TestCostObjective:
    def test_counts_link_and_node_costs(self):
        objective = CostObjective(demand_penalty=0.0)
        value = objective.evaluate(served_star())
        assert value > 15.0  # 3 links at 5.0 plus equipment

    def test_unserved_demand_penalized(self):
        objective = CostObjective(demand_penalty=1000.0)
        base = objective.evaluate(served_star())
        with_missing = objective.evaluate(with_orphan(served_star()))
        assert with_missing >= base + 4000.0

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            CostObjective(demand_penalty=-1.0)

    def test_describe(self):
        description = CostObjective().describe()
        assert description["name"] == "cost"
        assert "cable_types" in description


class TestProfitObjective:
    def test_profit_is_negated_evaluation(self):
        objective = ProfitObjective()
        topo = served_star()
        assert objective.profit(topo) == pytest.approx(-objective.evaluate(topo))

    def test_more_customers_more_revenue(self):
        objective = ProfitObjective()
        small = served_star()
        large = served_star()
        large.add_node("extra", role=NodeRole.CUSTOMER, location=(0.5, 0.5), demand=2.0)
        large.add_link("core", "extra", install_cost=0.1)
        assert objective.profit(large) > objective.profit(small)

    def test_disconnected_customer_earns_nothing(self):
        objective = ProfitObjective()
        base = served_star()
        orphaned = with_orphan(served_star())
        # The orphan contributes no revenue and no cost, so profit is unchanged.
        assert objective.profit(orphaned) == pytest.approx(objective.profit(base))


class TestPerformanceCostObjective:
    def test_weight_penalizes_long_paths(self):
        star = served_star()

        chain = Topology()
        chain.add_node("core", role=NodeRole.CORE, location=(0, 0))
        previous = "core"
        for i in range(3):
            chain.add_node(f"c{i}", role=NodeRole.CUSTOMER, location=(1, i), demand=2.0)
            chain.add_link(previous, f"c{i}", install_cost=5.0)
            previous = f"c{i}"

        flat = PerformanceCostObjective(performance_weight=0.0)
        weighted = PerformanceCostObjective(performance_weight=100.0)
        # Without the performance term the two have identical link/node costs ...
        assert flat.evaluate(star) == pytest.approx(flat.evaluate(chain))
        # ... but the chain's longer customer paths cost more once delay matters.
        assert weighted.evaluate(chain) > weighted.evaluate(star)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            PerformanceCostObjective(performance_weight=-1.0)
