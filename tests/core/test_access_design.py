"""Tests for repro.core.access_design — metro concentrator + feeder design."""

import pytest

from repro.core.access_design import (
    AccessDesignParameters,
    AccessNetworkDesigner,
    design_access_network,
)
from repro.core.buyatbulk import Customer
from repro.geography.regions import metro_region
from repro.topology.node import NodeRole


class TestParameters:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AccessDesignParameters(concentrator_cost=-1.0)
        with pytest.raises(ValueError):
            AccessDesignParameters(clients_per_concentrator=0)
        with pytest.raises(ValueError):
            AccessDesignParameters(feeder_algorithm="quantum")


class TestDesigner:
    def build_customers(self, n=40, seed=1):
        region = metro_region()
        import random

        rng = random.Random(seed)
        locations = region.sample_clustered(n, 4, rng)
        return [
            Customer(f"c{i}", locations[i], demand=rng.uniform(1, 5)) for i in range(n)
        ], region

    def test_requires_customers(self):
        with pytest.raises(ValueError):
            AccessNetworkDesigner(customers=[], core_location=(0, 0))

    def test_design_is_connected_and_serves_all(self):
        customers, region = self.build_customers()
        designer = AccessNetworkDesigner(
            customers=customers,
            core_location=region.center,
            region=region,
            parameters=AccessDesignParameters(seed=1),
        )
        result = designer.design()
        topo = result.topology
        assert topo.is_connected()
        core = [n for n in topo.nodes() if n.role == NodeRole.CORE]
        assert len(core) == 1
        reachable = set(topo.bfs_order(core[0].node_id))
        for customer in customers:
            assert customer.customer_id in reachable

    def test_concentrator_count_follows_sizing_rule(self):
        customers, region = self.build_customers(n=50)
        designer = AccessNetworkDesigner(
            customers=customers,
            core_location=region.center,
            region=region,
            parameters=AccessDesignParameters(clients_per_concentrator=10, seed=2),
        )
        result = designer.design()
        assert len(result.concentrator_ids) == 5

    def test_equipment_cost(self):
        customers, region = self.build_customers(n=30)
        designer = AccessNetworkDesigner(
            customers=customers,
            core_location=region.center,
            region=region,
            parameters=AccessDesignParameters(
                concentrator_cost=100.0, clients_per_concentrator=10, seed=3
            ),
        )
        result = designer.design()
        assert result.equipment_cost == pytest.approx(100.0 * len(result.concentrator_ids))
        assert result.total_cost() > result.topology.total_cost()

    @pytest.mark.parametrize("algorithm", ["meyerson", "greedy", "mst", "star"])
    def test_all_feeder_algorithms_produce_connected_designs(self, algorithm):
        customers, region = self.build_customers(n=25)
        designer = AccessNetworkDesigner(
            customers=customers,
            core_location=region.center,
            region=region,
            parameters=AccessDesignParameters(feeder_algorithm=algorithm, seed=4),
        )
        assert designer.design().topology.is_connected()

    def test_redundancy_adds_links(self):
        customers, region = self.build_customers(n=60)
        base_params = AccessDesignParameters(seed=5, clients_per_concentrator=15)
        redundant_params = AccessDesignParameters(
            seed=5, clients_per_concentrator=15, redundancy=True
        )
        base = AccessNetworkDesigner(
            customers, region.center, region=region, parameters=base_params
        ).design()
        redundant = AccessNetworkDesigner(
            customers, region.center, region=region, parameters=redundant_params
        ).design()
        assert redundant.topology.num_links > base.topology.num_links
        assert not redundant.topology.is_tree()

    def test_customers_per_concentrator_accounts_for_everyone(self):
        customers, region = self.build_customers(n=30)
        designer = AccessNetworkDesigner(
            customers=customers,
            core_location=region.center,
            region=region,
            parameters=AccessDesignParameters(clients_per_concentrator=10, seed=6),
        )
        result = designer.design()
        counts = result.customers_per_concentrator()
        assert sum(counts.values()) <= len(customers)
        assert all(v >= 0 for v in counts.values())


class TestConvenienceHelper:
    def test_design_access_network(self):
        result = design_access_network(30, seed=7)
        assert result.topology.is_connected()
        assert result.total_cost() > 0

    def test_deterministic_with_seed(self):
        a = design_access_network(25, seed=9)
        b = design_access_network(25, seed=9)
        assert a.topology.num_links == b.topology.num_links
        assert a.total_cost() == pytest.approx(b.total_cost())
