"""Tests for repro.core.evolution — incremental multi-period growth."""

import pytest

from repro.core.evolution import (
    GrowthParameters,
    GrowthSimulator,
    GrowthTrace,
    simulate_growth,
)
from repro.metrics.fits import classify_tail
from repro.topology.node import NodeRole


@pytest.fixture(scope="module")
def small_trace() -> GrowthTrace:
    return simulate_growth(
        periods=4, initial_customers=20, customers_per_period=10, seed=3
    )


class TestParameters:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GrowthParameters(periods=0)
        with pytest.raises(ValueError):
            GrowthParameters(initial_customers=0)
        with pytest.raises(ValueError):
            GrowthParameters(customers_per_period=-1)
        with pytest.raises(ValueError):
            GrowthParameters(demand_growth_rate=-0.1)
        with pytest.raises(ValueError):
            GrowthParameters(budget_per_period=0.0)


class TestGrowthTrace:
    def test_one_record_per_period_plus_initial(self, small_trace):
        assert len(small_trace.records) == 5
        assert [r.period for r in small_trace.records] == [0, 1, 2, 3, 4]

    def test_customer_count_grows(self, small_trace):
        counts = [r.num_customers for r in small_trace.records]
        assert counts[0] == 20
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        assert counts[-1] == 20 + 4 * 10

    def test_network_stays_a_connected_tree(self, small_trace):
        assert small_trace.topology.is_tree()
        assert small_trace.topology.is_connected()

    def test_demand_grows_each_period(self, small_trace):
        demands = [r.total_demand for r in small_trace.records]
        assert all(a < b for a, b in zip(demands, demands[1:]))

    def test_cumulative_cost_monotone(self, small_trace):
        costs = [r.cumulative_cost for r in small_trace.records]
        assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))

    def test_total_capital_positive(self, small_trace):
        assert small_trace.total_capital() > 0

    def test_final_record(self, small_trace):
        assert small_trace.final().period == 4

    def test_as_rows_matches_records(self, small_trace):
        rows = small_trace.as_rows()
        assert len(rows) == len(small_trace.records)
        assert rows[0]["num_customers"] == 20

    def test_empty_trace_final_raises(self):
        from repro.topology.graph import Topology

        with pytest.raises(ValueError):
            GrowthTrace(topology=Topology()).final()


class TestGrowthBehaviour:
    def test_deterministic_with_seed(self):
        a = simulate_growth(periods=3, initial_customers=15, customers_per_period=5, seed=9)
        b = simulate_growth(periods=3, initial_customers=15, customers_per_period=5, seed=9)
        assert a.final().cumulative_cost == pytest.approx(b.final().cumulative_cost)
        assert a.topology.num_links == b.topology.num_links

    def test_budget_defers_customers(self):
        unconstrained = simulate_growth(
            periods=3, initial_customers=20, customers_per_period=15, seed=5
        )
        constrained = simulate_growth(
            periods=3,
            initial_customers=20,
            customers_per_period=15,
            seed=5,
            budget_per_period=30.0,
        )
        assert constrained.final().num_customers <= unconstrained.final().num_customers
        assert constrained.final().deferred_customers >= 0
        # Spending respects the budget each period (upgrades excluded from the cap).
        for record in constrained.records:
            assert record.capital_spent <= 30.0 + record.upgrade_count * 1e6  # upgrades tracked separately

    def test_exponential_tail_persists_through_growth(self):
        trace = simulate_growth(
            periods=6, initial_customers=40, customers_per_period=30, seed=7
        )
        verdict = classify_tail(trace.topology.degree_sequence()).verdict
        assert verdict in ("exponential", "inconclusive")
        assert trace.final().max_degree < trace.final().num_customers / 4

    def test_demand_growth_triggers_upgrades(self):
        trace = simulate_growth(
            periods=6,
            initial_customers=30,
            customers_per_period=0,
            seed=11,
            demand_growth_rate=0.6,
        )
        # With no new customers, all capital after period 0 comes from upgrades.
        upgrades = sum(r.upgrade_count for r in trace.records[1:])
        assert upgrades > 0

    def test_degree_constraint_respected(self):
        simulator = GrowthSimulator(
            GrowthParameters(periods=3, initial_customers=30, customers_per_period=20, seed=13)
        )
        trace = simulator.run()
        limit = simulator.constraints.constraints[0].limit_for(NodeRole.CUSTOMER)
        for node in trace.topology.nodes():
            if node.role == NodeRole.CUSTOMER:
                assert trace.topology.degree(node.node_id) <= limit

    def test_all_links_provisioned(self, small_trace):
        for link in small_trace.topology.links():
            assert link.cable is not None
            assert link.capacity >= link.load - 1e-9

    def test_state_backed_records_match_direct_rederivation(self, small_trace):
        """The IncrementalState-maintained period stats equal re-deriving
        them from the topology (bit-identical: the per-period rebuild sums
        in the same link/node insertion order as the direct sweeps)."""
        topo = small_trace.topology
        final = small_trace.final()
        assert final.cumulative_cost == topo.total_install_cost()
        assert final.total_demand == sum(
            n.demand for n in topo.nodes() if n.role == NodeRole.CUSTOMER
        )


class TestSpatialAttachment:
    """The grid-backed cheapest-attachment path must match the full scan."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_spatial_matches_scan_end_to_end(self, seed):
        params = GrowthParameters(
            periods=4,
            initial_customers=25,
            customers_per_period=12,
            seed=seed,
            budget_per_period=80.0,
        )
        spatial = GrowthSimulator(params, use_spatial_index=True).run()
        scan = GrowthSimulator(params, use_spatial_index=False).run()
        assert spatial.as_rows() == scan.as_rows()
        spatial_edges = sorted(map(repr, spatial.topology.link_keys()))
        scan_edges = sorted(map(repr, scan.topology.link_keys()))
        assert spatial_edges == scan_edges

    @pytest.mark.parametrize("seed", [5, 6])
    def test_per_query_brute_force_equivalence(self, seed):
        """Every single argmin answer equals the brute-force scan's answer."""
        from repro.core.buyatbulk import Customer

        simulator = GrowthSimulator(
            GrowthParameters(
                periods=2, initial_customers=30, customers_per_period=10, seed=seed
            )
        )
        trace = simulator.run()
        topology = trace.topology
        rng = __import__("random").Random(seed)
        for i in range(60):
            probe = Customer(
                customer_id=f"probe{i}",
                location=(rng.random(), rng.random()),
                demand=rng.uniform(1.0, 10.0),
            )
            fast = simulator._cheapest_attachment(topology, probe)
            slow = simulator._cheapest_attachment_scan(topology, probe)
            assert fast == slow

    def test_degree_limited_targets_are_excluded(self):
        from repro.core.buyatbulk import Customer
        from repro.topology.node import NodeRole as Role

        simulator = GrowthSimulator(
            GrowthParameters(periods=1, initial_customers=10, customers_per_period=5, seed=3)
        )
        trace = simulator.run()
        topology = trace.topology
        # Saturate one customer node artificially and re-register the block.
        victim = next(
            n.node_id for n in topology.nodes() if n.role == Role.CUSTOMER
        )
        limit = simulator._attachment_limit(Role.CUSTOMER)
        while topology.degree(victim) + 1 <= limit:
            extra = topology.add_node(
                f"pad{topology.degree(victim)}", role=Role.CUSTOMER,
                location=(0.0, 0.0), demand=1.0,
            )
            topology.add_link(victim, extra.node_id)
            simulator._register_attachment_target(extra)
            simulator._refresh_blocked(topology, victim)
            simulator._refresh_blocked(topology, extra.node_id)
        probe = Customer("probe", topology.node(victim).location, 2.0)
        fast = simulator._cheapest_attachment(topology, probe)
        slow = simulator._cheapest_attachment_scan(topology, probe)
        assert fast == slow
        assert fast is None or fast[0] != victim
