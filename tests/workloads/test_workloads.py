"""Tests for repro.workloads (cities, matrices, scenarios)."""

import pytest

from repro.workloads.cities import (
    REFERENCE_CITIES,
    metro_customers,
    reference_population,
    scaled_population,
)
from repro.workloads.matrices import (
    demand_locality_fraction,
    hub_and_spoke_matrix,
    national_gravity_matrix,
    national_uniform_matrix,
)
from repro.workloads.scenarios import all_scenarios, fkp_phase_scenario


class TestReferenceCities:
    def test_reference_population_size(self):
        population = reference_population()
        assert len(population.cities) == len(REFERENCE_CITIES)

    def test_reference_city_names_unique(self):
        names = [name for name, *_ in REFERENCE_CITIES]
        assert len(names) == len(set(names))

    def test_all_cities_inside_region(self):
        population = reference_population()
        assert all(population.region.contains(c.location) for c in population.cities)

    def test_scaled_population_small_uses_reference(self):
        population = scaled_population(5)
        reference_names = {name for name, *_ in REFERENCE_CITIES}
        assert all(c.name in reference_names for c in population.cities)
        assert len(population.cities) == 5

    def test_scaled_population_large_is_synthetic(self):
        population = scaled_population(40, seed=1)
        assert len(population.cities) == 40

    def test_scaled_population_invalid(self):
        with pytest.raises(ValueError):
            scaled_population(0)


class TestMetroCustomers:
    def test_count_and_region(self):
        customers, region = metro_customers(50, seed=1)
        assert len(customers) == 50
        assert all(region.contains(c.location) for c in customers)

    def test_deterministic(self):
        a, _ = metro_customers(20, seed=2)
        b, _ = metro_customers(20, seed=2)
        assert [c.location for c in a] == [c.location for c in b]

    def test_demand_range_respected(self):
        customers, _ = metro_customers(30, seed=3, demand_range=(2.0, 4.0))
        assert all(2.0 <= c.demand <= 4.0 for c in customers)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            metro_customers(0)
        with pytest.raises(ValueError):
            metro_customers(5, demand_range=(4.0, 2.0))


class TestMatrices:
    def test_gravity_matrix_total(self):
        population = reference_population()
        matrix = national_gravity_matrix(population, num_cities=10, total_volume=500.0)
        assert matrix.total() == pytest.approx(500.0)

    def test_uniform_matrix_total(self):
        population = reference_population()
        matrix = national_uniform_matrix(population, num_cities=6, total_volume=60.0)
        assert matrix.total() == pytest.approx(60.0)

    def test_hub_and_spoke(self):
        population = reference_population()
        cities = population.largest(5)
        matrix = hub_and_spoke_matrix(cities, hub_name=cities[0].name, total_volume=100.0)
        assert matrix.outgoing(cities[0].name) == pytest.approx(100.0)

    def test_hub_and_spoke_unknown_hub(self):
        cities = reference_population().largest(3)
        with pytest.raises(ValueError):
            hub_and_spoke_matrix(cities, hub_name="atlantis")

    def test_hub_skewed_blends_hub_and_gravity(self):
        from repro.workloads.matrices import hub_skewed_matrix

        cities = reference_population().largest(6)
        hub = cities[0].name
        matrix = hub_skewed_matrix(
            cities, hub, hub_fraction=0.6, total_volume=1000.0
        )
        assert matrix.total() == pytest.approx(1000.0)
        # The hub carries its dedicated 60% plus its gravity share.
        assert matrix.outgoing(hub) > 600.0
        # The gravity component keeps non-hub pairs non-empty.
        non_hub = [
            (a, b, v) for a, b, v in matrix.pairs() if hub not in (a, b)
        ]
        assert non_hub

    def test_hub_skewed_fraction_validated(self):
        from repro.workloads.matrices import hub_skewed_matrix

        cities = reference_population().largest(3)
        with pytest.raises(ValueError):
            hub_skewed_matrix(cities, cities[0].name, hub_fraction=1.5)

    def test_gravity_more_local_than_uniform(self):
        population = reference_population()
        cities = population.largest(12)
        gravity = national_gravity_matrix(population, num_cities=12)
        uniform = national_uniform_matrix(population, num_cities=12)
        radius = 0.3 * population.region.diagonal
        assert demand_locality_fraction(gravity, cities, radius) >= demand_locality_fraction(
            uniform, cities, radius
        )

    def test_locality_invalid_radius(self):
        population = reference_population()
        matrix = national_uniform_matrix(population, num_cities=4)
        with pytest.raises(ValueError):
            demand_locality_fraction(matrix, population.largest(4), radius=0.0)


class TestScenarios:
    def test_all_scenarios_have_unique_ids(self):
        scenarios = all_scenarios()
        ids = [s.experiment_id for s in scenarios]
        assert len(ids) == len(set(ids)) == 13
        assert ids == [f"E{i}" for i in range(1, 14)]

    def test_every_scenario_documents_a_claim(self):
        for scenario in all_scenarios():
            assert scenario.paper_claim
            assert scenario.parameters

    def test_fkp_scenario_alphas_cover_regimes(self):
        from repro.core.fkp import alpha_regime

        scenario = fkp_phase_scenario(num_nodes=1000)
        regimes = {alpha_regime(a, 1000) for a in scenario.parameters["alphas"]}
        assert regimes == {"star", "power-law", "exponential"}


class TestScenarioFor:
    def test_full_matches_factories(self):
        from repro.workloads.scenarios import SCENARIO_FACTORIES, scenario_for

        for experiment_id, factory in SCENARIO_FACTORIES.items():
            assert scenario_for(experiment_id).parameters == factory().parameters

    def test_smoke_variants_shrink_the_sweep(self):
        from repro.workloads.scenarios import scenario_for

        full = scenario_for("E1").parameters
        smoke = scenario_for("E1", smoke=True).parameters
        assert smoke["num_nodes"] < full["num_nodes"]
        assert smoke["seed"] == full["seed"]

    def test_unknown_experiment_rejected(self):
        from repro.workloads.scenarios import scenario_for

        with pytest.raises(KeyError):
            scenario_for("E42")

    def test_ablations_scenario_is_supplementary(self):
        from repro.workloads.scenarios import ablations_scenario, all_scenarios

        assert ablations_scenario().experiment_id == "E9"
        # Supplementary scenarios (E9+) list alongside the paper's E1-E8.
        assert sum(s.experiment_id == "E9" for s in all_scenarios()) == 1
