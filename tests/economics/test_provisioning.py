"""Tests for repro.economics.provisioning."""

import pytest

from repro.economics.cables import default_catalog
from repro.economics.provisioning import (
    capacity_violations,
    peak_utilization,
    provision_topology,
    provisioning_cost,
)
from repro.topology.graph import Topology


def loaded_topology() -> Topology:
    topo = Topology()
    topo.add_node("a", location=(0, 0))
    topo.add_node("b", location=(1, 0))
    topo.add_node("c", location=(2, 0))
    topo.add_link("a", "b", load=40.0)
    topo.add_link("b", "c", load=700.0)
    return topo


class TestProvisionTopology:
    def test_capacity_covers_load(self):
        topo = loaded_topology()
        provision_topology(topo, default_catalog())
        for link in topo.links():
            assert link.capacity >= link.load

    def test_cable_names_assigned(self):
        topo = loaded_topology()
        report = provision_topology(topo, default_catalog())
        names = {link.cable for link in topo.links()}
        assert names <= {c.name for c in default_catalog()}
        assert sum(report.cable_counts.values()) == topo.num_links

    def test_bigger_load_gets_bigger_cable(self):
        topo = loaded_topology()
        provision_topology(topo, default_catalog())
        catalog = default_catalog()
        small = catalog.by_name(topo.link("a", "b").cable)
        big = catalog.by_name(topo.link("b", "c").cable)
        assert big.capacity >= small.capacity

    def test_utilization_target_adds_headroom(self):
        topo = loaded_topology()
        provision_topology(topo, default_catalog(), utilization_target=0.5)
        for link in topo.links():
            assert link.capacity >= 2.0 * link.load - 1e-9

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            provision_topology(loaded_topology(), default_catalog(), utilization_target=0.0)
        with pytest.raises(ValueError):
            provision_topology(loaded_topology(), default_catalog(), headroom=-0.1)

    def test_unloaded_links_get_smallest_cable(self):
        topo = Topology()
        topo.add_node("a", location=(0, 0))
        topo.add_node("b", location=(1, 0))
        topo.add_link("a", "b")
        provision_topology(topo, default_catalog())
        assert topo.link("a", "b").cable == default_catalog().smallest.name

    def test_report_costs_match_topology(self):
        topo = loaded_topology()
        report = provision_topology(topo, default_catalog())
        assert report.total_install_cost == pytest.approx(topo.total_install_cost())
        assert report.total_usage_cost == pytest.approx(topo.total_usage_cost())
        assert report.total_cost == pytest.approx(topo.total_cost())

    def test_overprovisioning_at_least_one(self):
        report = provision_topology(loaded_topology(), default_catalog())
        assert report.overprovisioning >= 1.0


class TestProvisioningHelpers:
    def test_provisioning_cost_does_not_mutate(self):
        topo = loaded_topology()
        cost = provisioning_cost(topo, default_catalog())
        assert cost > 0
        assert all(link.capacity is None for link in topo.links())

    def test_capacity_violations(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        link = topo.add_link("a", "b", capacity=10.0)
        link.load = 15.0
        violations = capacity_violations(topo)
        assert link.key in violations
        assert violations[link.key] == pytest.approx(5.0)

    def test_peak_utilization(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_node("c")
        topo.add_link("a", "b", capacity=10.0, load=5.0)
        topo.add_link("b", "c", capacity=10.0, load=9.0)
        assert peak_utilization(topo) == pytest.approx(0.9)

    def test_peak_utilization_none_without_capacities(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b")
        assert peak_utilization(topo) is None
