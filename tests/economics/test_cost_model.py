"""Tests for repro.economics.cost_model."""

import pytest

from repro.economics.cables import default_catalog
from repro.economics.cost_model import DEFAULT_NODE_COSTS, CostBreakdown, CostModel
from repro.topology.graph import Topology
from repro.topology.node import NodeRole


class TestCostBreakdown:
    def test_total(self):
        breakdown = CostBreakdown(link_install=10.0, link_usage=5.0, node_equipment=2.0)
        assert breakdown.total == pytest.approx(17.0)

    def test_as_dict(self):
        data = CostBreakdown(link_install=1.0).as_dict()
        assert data["total"] == pytest.approx(1.0)
        assert set(data) == {"link_install", "link_usage", "node_equipment", "total"}


class TestCostModel:
    def test_annotated_links_use_their_costs(self):
        topo = Topology()
        topo.add_node("a", role=NodeRole.GENERIC)
        topo.add_node("b", role=NodeRole.GENERIC)
        topo.add_link("a", "b", install_cost=10.0, usage_cost=2.0, load=3.0)
        breakdown = CostModel().evaluate(topo)
        assert breakdown.link_install == pytest.approx(10.0)
        assert breakdown.link_usage == pytest.approx(6.0)

    def test_unannotated_links_priced_from_catalog(self):
        topo = Topology()
        topo.add_node("a", location=(0, 0), role=NodeRole.GENERIC)
        topo.add_node("b", location=(2, 0), role=NodeRole.GENERIC)
        link = topo.add_link("a", "b")
        link.load = 50.0
        catalog = default_catalog()
        breakdown = CostModel(catalog=catalog).evaluate(topo)
        assert breakdown.link_install == pytest.approx(catalog.link_cost(50.0, 2.0))

    def test_node_equipment_costs_by_role(self):
        topo = Topology()
        topo.add_node("core", role=NodeRole.CORE)
        topo.add_node("cust", role=NodeRole.CUSTOMER)
        breakdown = CostModel().evaluate(topo)
        assert breakdown.node_equipment == pytest.approx(
            DEFAULT_NODE_COSTS[NodeRole.CORE] + DEFAULT_NODE_COSTS[NodeRole.CUSTOMER]
        )

    def test_fiber_cost_per_length(self):
        topo = Topology()
        topo.add_node("a", location=(0, 0), role=NodeRole.GENERIC)
        topo.add_node("b", location=(3, 4), role=NodeRole.GENERIC)
        topo.add_link("a", "b", install_cost=1.0)
        model = CostModel(fiber_cost_per_length=2.0, node_costs={})
        breakdown = model.evaluate(topo)
        assert breakdown.link_install == pytest.approx(1.0 + 2.0 * 5.0)

    def test_link_cost_requires_catalog(self):
        with pytest.raises(ValueError):
            CostModel().link_cost(10.0, 1.0)

    def test_total_cost_matches_breakdown(self):
        topo = Topology()
        topo.add_node("a", role=NodeRole.CORE)
        topo.add_node("b", role=NodeRole.CUSTOMER)
        topo.add_link("a", "b", install_cost=4.0)
        model = CostModel()
        assert model.total_cost(topo) == pytest.approx(model.evaluate(topo).total)
