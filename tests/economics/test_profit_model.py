"""Tests for repro.economics.profit_model."""

import math

import pytest

from repro.economics.profit_model import (
    CustomerProspect,
    RevenueModel,
    analyze_prospects,
    breakeven_distance,
    marginal_profit,
)


class TestRevenueModel:
    def test_flat_plus_volume(self):
        model = RevenueModel(subscription=10.0, price_per_unit=2.0)
        assert model.revenue_for_demand(5.0) == pytest.approx(20.0)

    def test_discount_above_threshold(self):
        model = RevenueModel(
            subscription=0.0,
            price_per_unit=1.0,
            discount_threshold=10.0,
            discounted_price_per_unit=0.5,
        )
        assert model.revenue_for_demand(20.0) == pytest.approx(10.0 + 5.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            RevenueModel().revenue_for_demand(-1.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RevenueModel(subscription=-1.0)
        with pytest.raises(ValueError):
            RevenueModel(discount_threshold=0.0)


class TestProspects:
    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            CustomerProspect("c", demand=-1.0, connection_cost=0.0)
        with pytest.raises(ValueError):
            CustomerProspect("c", demand=1.0, connection_cost=-1.0)

    def test_marginal_profit(self):
        model = RevenueModel(subscription=10.0, price_per_unit=1.0)
        prospect = CustomerProspect("c", demand=5.0, connection_cost=12.0)
        assert marginal_profit(prospect, model) == pytest.approx(3.0)


class TestAnalyzeProspects:
    def model(self):
        return RevenueModel(subscription=10.0, price_per_unit=1.0)

    def test_accepts_profitable_rejects_unprofitable(self):
        prospects = [
            CustomerProspect("good", demand=10.0, connection_cost=5.0),
            CustomerProspect("bad", demand=1.0, connection_cost=100.0),
        ]
        analysis = analyze_prospects(prospects, self.model())
        assert [p.customer_id for p in analysis.accepted] == ["good"]
        assert [p.customer_id for p in analysis.rejected] == ["bad"]
        assert analysis.profit > 0

    def test_budget_limits_acceptance(self):
        prospects = [
            CustomerProspect("a", demand=10.0, connection_cost=8.0),
            CustomerProspect("b", demand=10.0, connection_cost=8.0),
        ]
        analysis = analyze_prospects(prospects, self.model(), budget=10.0)
        assert len(analysis.accepted) == 1
        assert analysis.total_cost <= 10.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            analyze_prospects([], self.model(), budget=-1.0)

    def test_acceptance_rate(self):
        prospects = [
            CustomerProspect("a", demand=10.0, connection_cost=1.0),
            CustomerProspect("b", demand=1.0, connection_cost=1000.0),
        ]
        analysis = analyze_prospects(prospects, self.model())
        assert analysis.acceptance_rate == pytest.approx(0.5)

    def test_empty_prospects(self):
        analysis = analyze_prospects([], self.model())
        assert analysis.profit == 0.0
        assert analysis.acceptance_rate == 0.0

    def test_profit_equals_revenue_minus_cost(self):
        prospects = [CustomerProspect("a", demand=4.0, connection_cost=3.0)]
        analysis = analyze_prospects(prospects, self.model())
        assert analysis.profit == pytest.approx(analysis.total_revenue - analysis.total_cost)


class TestBreakevenDistance:
    def test_finite(self):
        model = RevenueModel(subscription=10.0, price_per_unit=0.0)
        assert breakeven_distance(5.0, model, cost_per_unit_length=2.0) == pytest.approx(5.0)

    def test_zero_rate_is_infinite(self):
        assert math.isinf(breakeven_distance(1.0, RevenueModel(), 0.0))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            breakeven_distance(1.0, RevenueModel(), -1.0)
