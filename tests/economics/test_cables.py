"""Tests for repro.economics.cables."""

import pytest

from repro.economics.cables import (
    CableCatalog,
    CableType,
    default_catalog,
    flat_catalog,
    linear_catalog,
    scaled_catalog,
)


class TestCableType:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CableType("x", capacity=0.0, install_cost=1.0, usage_cost=0.1)
        with pytest.raises(ValueError):
            CableType("x", capacity=1.0, install_cost=-1.0, usage_cost=0.1)
        with pytest.raises(ValueError):
            CableType("x", capacity=1.0, install_cost=1.0, usage_cost=-0.1)

    def test_cost_for_flow_single_copy(self):
        cable = CableType("x", capacity=100.0, install_cost=5.0, usage_cost=0.1)
        assert cable.cost_for_flow(50.0) == pytest.approx(5.0 + 5.0)

    def test_cost_for_flow_multiple_copies(self):
        cable = CableType("x", capacity=100.0, install_cost=5.0, usage_cost=0.0)
        assert cable.cost_for_flow(250.0) == pytest.approx(15.0)

    def test_cost_for_zero_flow(self):
        cable = CableType("x", capacity=100.0, install_cost=5.0, usage_cost=0.1)
        assert cable.cost_for_flow(0.0) == 0.0

    def test_negative_flow_rejected(self):
        cable = CableType("x", capacity=100.0, install_cost=5.0, usage_cost=0.1)
        with pytest.raises(ValueError):
            cable.cost_for_flow(-1.0)

    def test_cost_per_unit_capacity(self):
        cable = CableType("x", capacity=200.0, install_cost=10.0, usage_cost=0.1)
        assert cable.cost_per_unit_capacity() == pytest.approx(0.05)


class TestCableCatalog:
    def test_default_catalog_satisfies_ordering(self):
        catalog = default_catalog()
        assert catalog.validate_economies_of_scale() == []
        capacities = [c.capacity for c in catalog]
        installs = [c.install_cost for c in catalog]
        usages = [c.usage_cost for c in catalog]
        assert capacities == sorted(capacities)
        assert installs == sorted(installs)
        assert usages == sorted(usages, reverse=True)

    def test_violating_catalog_rejected(self):
        bad = [
            CableType("small", capacity=10.0, install_cost=5.0, usage_cost=0.1),
            CableType("big", capacity=100.0, install_cost=1.0, usage_cost=0.2),
        ]
        with pytest.raises(ValueError):
            CableCatalog(bad)

    def test_violating_catalog_allowed_without_validation(self):
        bad = [
            CableType("small", capacity=10.0, install_cost=5.0, usage_cost=0.1),
            CableType("big", capacity=100.0, install_cost=1.0, usage_cost=0.2),
        ]
        catalog = CableCatalog(bad, validate=False)
        assert len(catalog.validate_economies_of_scale()) > 0

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            CableCatalog([])

    def test_duplicate_names_rejected(self):
        cables = [
            CableType("x", capacity=10.0, install_cost=1.0, usage_cost=0.2),
            CableType("x", capacity=20.0, install_cost=2.0, usage_cost=0.1),
        ]
        with pytest.raises(ValueError):
            CableCatalog(cables)

    def test_by_name(self):
        catalog = default_catalog()
        assert catalog.by_name("OC-12").capacity == pytest.approx(622.0)
        with pytest.raises(KeyError):
            catalog.by_name("OC-768")

    def test_smallest_and_largest(self):
        catalog = default_catalog()
        assert catalog.smallest.capacity <= catalog.largest.capacity

    def test_best_cable_small_flow_prefers_small_cable(self):
        catalog = default_catalog()
        assert catalog.best_cable_for_flow(1.0).name == catalog.smallest.name

    def test_best_cable_large_flow_prefers_large_cable(self):
        catalog = default_catalog()
        big_flow = catalog.largest.capacity * 0.9
        best = catalog.best_cable_for_flow(big_flow)
        assert best.capacity >= 2000.0

    def test_cost_envelope_monotone_in_flow(self):
        catalog = default_catalog()
        costs = [catalog.cost_per_unit_length(f) for f in [1, 10, 100, 1000, 5000]]
        assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))

    def test_cost_envelope_subadditive(self):
        catalog = default_catalog()
        assert catalog.is_subadditive([1, 5, 20, 100, 400, 1500])

    def test_zero_flow_costs_nothing(self):
        assert default_catalog().cost_per_unit_length(0.0) == 0.0

    def test_link_cost_scales_with_length(self):
        catalog = default_catalog()
        assert catalog.link_cost(10.0, 4.0) == pytest.approx(4.0 * catalog.cost_per_unit_length(10.0))

    def test_link_cost_negative_length_rejected(self):
        with pytest.raises(ValueError):
            default_catalog().link_cost(1.0, -1.0)

    def test_provision_returns_enough_capacity(self):
        catalog = default_catalog()
        cable, copies = catalog.provision(700.0)
        assert cable.capacity * copies >= 700.0

    def test_provision_zero_flow(self):
        cable, copies = default_catalog().provision(0.0)
        assert copies == 1


class TestSpecialCatalogs:
    def test_flat_catalog_single_type(self):
        assert len(flat_catalog()) == 1

    def test_linear_catalog_has_no_fixed_cost(self):
        catalog = linear_catalog(usage_cost=2.0)
        assert catalog.smallest.install_cost == 0.0
        assert catalog.cost_per_unit_length(10.0) == pytest.approx(20.0)

    def test_scaled_catalog(self):
        base = default_catalog()
        scaled = scaled_catalog(base, factor=2.0)
        assert scaled.smallest.install_cost == pytest.approx(2 * base.smallest.install_cost)

    def test_scaled_catalog_invalid_factor(self):
        with pytest.raises(ValueError):
            scaled_catalog(factor=0.0)
