"""Shared fixtures for the test suite."""

import pytest

from repro.core.buyatbulk import BuyAtBulkInstance, Customer, random_instance
from repro.economics.cables import default_catalog
from repro.topology.graph import Topology
from repro.topology.node import NodeRole


@pytest.fixture
def triangle_topology() -> Topology:
    """Three nodes forming a triangle, with locations."""
    topo = Topology(name="triangle")
    topo.add_node("a", role=NodeRole.CORE, location=(0.0, 0.0))
    topo.add_node("b", role=NodeRole.CUSTOMER, location=(1.0, 0.0), demand=2.0)
    topo.add_node("c", role=NodeRole.CUSTOMER, location=(0.0, 1.0), demand=3.0)
    topo.add_link("a", "b")
    topo.add_link("b", "c")
    topo.add_link("a", "c")
    return topo


@pytest.fixture
def star_topology() -> Topology:
    """A 1-core, 5-leaf star with unit demands."""
    topo = Topology(name="star")
    topo.add_node("hub", role=NodeRole.CORE, location=(0.5, 0.5))
    for i in range(5):
        topo.add_node(f"leaf{i}", role=NodeRole.CUSTOMER, location=(0.1 * i, 0.0), demand=1.0)
        topo.add_link("hub", f"leaf{i}")
    return topo


@pytest.fixture
def path_topology() -> Topology:
    """A 6-node path graph 0-1-2-3-4-5 without locations."""
    topo = Topology(name="path")
    for i in range(6):
        topo.add_node(i)
    for i in range(5):
        topo.add_link(i, i + 1)
    return topo


@pytest.fixture
def small_instance() -> BuyAtBulkInstance:
    """A deterministic 4-customer buy-at-bulk instance."""
    customers = [
        Customer("c0", (0.1, 0.1), demand=2.0),
        Customer("c1", (0.9, 0.1), demand=4.0),
        Customer("c2", (0.1, 0.9), demand=1.0),
        Customer("c3", (0.9, 0.9), demand=8.0),
    ]
    return BuyAtBulkInstance(
        customers=customers,
        core_locations=[(0.5, 0.5)],
        catalog=default_catalog(),
    )


@pytest.fixture
def medium_instance() -> BuyAtBulkInstance:
    """A seeded 60-customer random instance (metro scale)."""
    return random_instance(60, seed=42)
