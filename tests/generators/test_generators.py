"""Tests for the descriptive baseline generators (repro.generators)."""

import math
import random

import pytest

from repro.generators import (
    BarabasiAlbertGenerator,
    ErdosRenyiGenerator,
    GLPGenerator,
    InetGenerator,
    PLRGGenerator,
    TransitStubGenerator,
    WaxmanGenerator,
    available_generators,
    ensure_connected,
    generate_ensemble,
    make_generator,
)
from repro.generators.plrg import power_law_degree_sequence
from repro.metrics.fits import classify_tail
from repro.topology.graph import Topology, TopologyError

ALL_GENERATOR_NAMES = [
    "erdos-renyi",
    "waxman",
    "barabasi-albert",
    "glp",
    "plrg",
    "inet",
    "transit-stub",
]


class TestRegistry:
    def test_all_generators_registered(self):
        assert set(ALL_GENERATOR_NAMES) <= set(available_generators())

    def test_make_generator(self):
        generator = make_generator("barabasi-albert")
        assert isinstance(generator, BarabasiAlbertGenerator)

    def test_unknown_generator_raises(self):
        with pytest.raises(KeyError):
            make_generator("magic")


class TestCommonBehaviour:
    @pytest.mark.parametrize("name", ALL_GENERATOR_NAMES)
    def test_node_count_and_connectivity(self, name):
        topo = make_generator(name).generate(120, seed=1)
        assert topo.num_nodes == 120
        assert topo.is_connected()

    @pytest.mark.parametrize("name", ALL_GENERATOR_NAMES)
    def test_deterministic_with_seed(self, name):
        generator = make_generator(name)
        a = generator.generate(80, seed=5)
        b = generator.generate(80, seed=5)
        assert sorted(map(str, a.link_keys())) == sorted(map(str, b.link_keys()))

    @pytest.mark.parametrize("name", ALL_GENERATOR_NAMES)
    def test_describe_has_name(self, name):
        assert make_generator(name).describe()["name"] == name

    @pytest.mark.parametrize("name", ALL_GENERATOR_NAMES)
    def test_metadata_records_model(self, name):
        topo = make_generator(name).generate(60, seed=2)
        assert topo.metadata["model"] == name


class TestErdosRenyi:
    def test_mean_degree_close_to_target(self):
        topo = ErdosRenyiGenerator(target_mean_degree=6.0, connect=False).generate(400, seed=3)
        mean_degree = 2 * topo.num_links / topo.num_nodes
        assert 4.5 < mean_degree < 7.5

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            ErdosRenyiGenerator(edge_probability=1.5)

    def test_explicit_probability_used(self):
        topo = ErdosRenyiGenerator(edge_probability=0.0, connect=False).generate(20, seed=1)
        assert topo.num_links == 0


class TestWaxman:
    def test_locality_bias(self):
        topo = WaxmanGenerator(alpha_w=0.05, beta=0.8, connect=False).generate(200, seed=4)
        diag = 2 ** 0.5
        lengths = [link.length for link in topo.links()]
        assert lengths
        assert sum(lengths) / len(lengths) < 0.4 * diag

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WaxmanGenerator(alpha_w=0.0)
        with pytest.raises(ValueError):
            WaxmanGenerator(beta=0.0)

    def test_nodes_have_locations(self):
        topo = WaxmanGenerator().generate(50, seed=5)
        assert all(node.location is not None for node in topo.nodes())


class TestWaxmanStatistics:
    """Statistical gates for the grid-bucketed Waxman sampler.

    The grid method draws the exact Waxman edge distribution but with a
    different random stream than the seed's per-pair loop, so equivalence is
    gated statistically against the retained ``naive`` reference.
    """

    NUM_NODES = 250

    def _expected_links(self, topo, alpha_w, beta):
        """Analytic E[links] and Var[links] given the realized locations."""
        locations = [node.location for node in topo.nodes()]
        diagonal = 2**0.5
        expected = variance = 0.0
        for i in range(len(locations)):
            for j in range(i + 1, len(locations)):
                d = math.hypot(
                    locations[i][0] - locations[j][0],
                    locations[i][1] - locations[j][1],
                )
                p = beta * math.exp(-d / (alpha_w * diagonal))
                expected += p
                variance += p * (1 - p)
        return expected, variance

    def test_link_count_within_three_sigma(self):
        alpha_w, beta = 0.2, 0.4
        for seed in (1, 2, 3):
            topo = WaxmanGenerator(
                alpha_w=alpha_w, beta=beta, connect=False
            ).generate(self.NUM_NODES, seed=seed)
            expected, variance = self._expected_links(topo, alpha_w, beta)
            assert abs(topo.num_links - expected) <= 3.0 * math.sqrt(variance)

    def test_degree_distribution_ks_vs_naive(self):
        grid_degrees, naive_degrees = [], []
        for seed in (10, 11, 12):
            grid = WaxmanGenerator(connect=False, method="grid")
            naive = WaxmanGenerator(connect=False, method="naive")
            grid_degrees.extend(grid.generate(self.NUM_NODES, seed=seed).degree_sequence())
            naive_degrees.extend(
                naive.generate(self.NUM_NODES, seed=seed + 100).degree_sequence()
            )
        statistic = two_sample_ks_statistic(grid_degrees, naive_degrees)
        n1, n2 = len(grid_degrees), len(naive_degrees)
        critical = 1.63 * math.sqrt((n1 + n2) / (n1 * n2))  # alpha = 0.01
        assert statistic <= critical

    def test_naive_method_unchanged_from_seed(self):
        """The reference path still produces the seed's per-seed stream."""
        topo = WaxmanGenerator(method="naive", connect=False).generate(60, seed=3)
        rng = random.Random(3)
        locations = [(rng.random(), rng.random()) for _ in range(60)]
        expected = []
        diagonal = 2**0.5
        for u in range(60):
            for v in range(u + 1, 60):
                d = math.hypot(
                    locations[u][0] - locations[v][0],
                    locations[u][1] - locations[v][1],
                )
                if rng.random() < 0.4 * math.exp(-d / (0.2 * diagonal)):
                    expected.append((u, v))
        got = sorted(tuple(sorted(key)) for key in topo.link_keys())
        assert got == sorted(expected)

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            WaxmanGenerator(method="magic")


def two_sample_ks_statistic(a, b):
    """Two-sample Kolmogorov–Smirnov statistic (no scipy dependency).

    ECDFs are compared only at distinct values — both pointers advance past
    every element equal to the current value before the difference is taken —
    so heavily tied samples (integer degrees) are handled correctly.
    """
    a, b = sorted(a), sorted(b)
    ia = ib = 0
    statistic = 0.0
    while ia < len(a) or ib < len(b):
        if ib >= len(b) or (ia < len(a) and a[ia] <= b[ib]):
            value = a[ia]
        else:
            value = b[ib]
        while ia < len(a) and a[ia] == value:
            ia += 1
        while ib < len(b) and b[ib] == value:
            ib += 1
        statistic = max(statistic, abs(ia / len(a) - ib / len(b)))
    return statistic


def test_ks_statistic_handles_ties():
    assert two_sample_ks_statistic([5, 5, 5, 5], [5, 5, 5, 5]) == 0.0
    assert two_sample_ks_statistic([1, 1, 2, 2], [1, 1, 2, 2]) == 0.0
    assert two_sample_ks_statistic([0, 0, 0], [1, 1, 1]) == 1.0
    assert abs(two_sample_ks_statistic([1, 2, 3, 4], [1, 2, 3, 8]) - 0.25) < 1e-12


class TestBarabasiAlbert:
    def test_power_law_tail(self):
        topo = BarabasiAlbertGenerator(links_per_node=2).generate(800, seed=6)
        verdict = classify_tail(topo.degree_sequence()).verdict
        assert verdict == "power-law"

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            BarabasiAlbertGenerator(links_per_node=3).generate(3, seed=1)

    def test_link_count(self):
        m = 2
        topo = BarabasiAlbertGenerator(links_per_node=m).generate(100, seed=7)
        seed_links = (m + 1) * m // 2
        assert topo.num_links == seed_links + m * (100 - (m + 1))

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            BarabasiAlbertGenerator(links_per_node=0)


class TestGLP:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GLPGenerator(p_new=0.0)
        with pytest.raises(ValueError):
            GLPGenerator(beta_glp=1.5)

    def test_heavy_tailed_degrees(self):
        topo = GLPGenerator().generate(500, seed=8)
        degrees = topo.degree_sequence()
        assert max(degrees) > 10 * (sum(degrees) / len(degrees))

    def test_undershoot_raises_instead_of_silent_small_graph(self):
        # p_new so small that the step cap is reached long before the target
        # node count; the seed implementation silently returned a 3-node graph.
        generator = GLPGenerator(p_new=1e-9)
        with pytest.raises(TopologyError, match="undershoot"):
            generator.generate(20, seed=1)


class TestPLRG:
    def test_degree_sequence_sampler(self):
        rng = random.Random(9)
        degrees = power_law_degree_sequence(500, 2.2, 1, 100, rng)
        assert len(degrees) == 500
        assert sum(degrees) % 2 == 0
        assert min(degrees) >= 1
        assert max(degrees) <= 100

    def test_invalid_sampler_arguments(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 1.0, 1, 10, rng)
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 2.0, 0, 10, rng)
        with pytest.raises(ValueError):
            power_law_degree_sequence(10, 2.0, 5, 2, rng)

    def test_power_law_tail(self):
        topo = PLRGGenerator(exponent=2.1).generate(800, seed=10)
        verdict = classify_tail(topo.degree_sequence()).verdict
        assert verdict in ("power-law", "inconclusive")


class TestInet:
    def test_minimum_size(self):
        with pytest.raises(ValueError):
            InetGenerator().generate(2, seed=1)

    def test_high_degree_nodes_exist(self):
        topo = InetGenerator().generate(400, seed=11)
        assert max(topo.degree_sequence()) >= 10


class TestTransitStub:
    def test_domains_annotated(self):
        topo = TransitStubGenerator(num_stub_domains=4).generate(100, seed=12)
        domains = {node.attributes.get("domain") for node in topo.nodes()}
        assert "transit" in domains
        assert any(d and d.startswith("stub") for d in domains)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            TransitStubGenerator(num_stub_domains=8).generate(5, seed=1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TransitStubGenerator(transit_fraction=0.0)
        with pytest.raises(ValueError):
            TransitStubGenerator(num_stub_domains=0)


class TestEnsembleAndConnectivity:
    def test_generate_ensemble(self):
        ensemble = generate_ensemble(ErdosRenyiGenerator(), 50, 3, seed=1)
        assert len(ensemble) == 3
        assert ensemble.generator_name == "erdos-renyi"

    def test_generate_ensemble_invalid(self):
        with pytest.raises(ValueError):
            generate_ensemble(ErdosRenyiGenerator(), 50, 0)

    def test_ensure_connected_joins_components(self):
        topo = Topology()
        for i in range(6):
            topo.add_node(i)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        topo.add_link(4, 5)
        ensure_connected(topo, random.Random(1))
        assert topo.is_connected()
        synthetic = [link for link in topo.links() if link.attributes.get("synthetic")]
        assert len(synthetic) == 2
