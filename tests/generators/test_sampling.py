"""Property tests for the generation engine's samplers (repro.generators.sampling)."""

import random

import pytest

from repro.generators.sampling import (
    FenwickSampler,
    MultisetSampler,
    linear_weighted_index,
    skip_sampled_indices,
    skip_sampled_pairs,
)
from repro.topology.compiled import KERNEL_COUNTERS


class TestFenwickAgainstLinearReference:
    """The Fenwick select must agree with the naive inverse-CDF scan."""

    def test_integer_weights_exact_agreement(self):
        rng = random.Random(42)
        for _ in range(50):
            size = rng.randrange(1, 60)
            weights = [rng.randrange(0, 6) for _ in range(size)]
            if not any(weights):
                weights[rng.randrange(size)] = 1
            sampler = FenwickSampler(size)
            for index, weight in enumerate(weights):
                sampler.set_weight(index, weight)
            total = sum(weights)
            assert sampler.total() == total
            for _ in range(40):
                target = rng.random() * total
                assert sampler.select(target) == linear_weighted_index(weights, target)

    def test_integer_boundary_targets(self):
        """Exact integer targets sit on cumulative boundaries — the hard case."""
        weights = [2, 0, 3, 0, 0, 1, 4]
        sampler = FenwickSampler(len(weights))
        for index, weight in enumerate(weights):
            sampler.set_weight(index, weight)
        for target in range(0, sum(weights) + 1):
            assert sampler.select(target) == linear_weighted_index(weights, target)

    def test_float_weights_agreement(self):
        rng = random.Random(7)
        for _ in range(30):
            size = rng.randrange(1, 50)
            weights = [max(1e-9, rng.random() * 5 - 0.15) for _ in range(size)]
            sampler = FenwickSampler(size)
            for index, weight in enumerate(weights):
                sampler.set_weight(index, weight)
            for _ in range(40):
                target = rng.random() * sampler.total()
                assert sampler.select(target) == linear_weighted_index(weights, target)

    def test_agreement_after_dynamic_updates(self):
        rng = random.Random(11)
        size = 40
        weights = [1] * size
        sampler = FenwickSampler(size)
        for index in range(size):
            sampler.set_weight(index, 1)
        for _ in range(300):
            index = rng.randrange(size)
            weight = rng.randrange(0, 9)
            weights[index] = weight
            sampler.set_weight(index, weight)
            if not any(weights):
                weights[index] = 1
                sampler.set_weight(index, 1)
            target = rng.random() * sum(weights)
            assert sampler.select(target) == linear_weighted_index(weights, target)

    def test_zero_target_skips_leading_zero_weights(self):
        # rng.random() can return exactly 0.0; the draw must still land on an
        # active index, like a scan over only the positive-weight candidates.
        sampler = FenwickSampler(6)
        sampler.set_weight(2, 3)
        sampler.set_weight(5, 1)
        assert sampler.select(0.0) == 2
        assert sampler.select(-0.0) == 2

    def test_zero_weight_indices_never_selected(self):
        sampler = FenwickSampler(10)
        sampler.set_weight(3, 5)
        sampler.set_weight(8, 2)
        rng = random.Random(0)
        assert {sampler.sample(rng) for _ in range(200)} == {3, 8}

    def test_sampling_proportional_to_weight(self):
        sampler = FenwickSampler(3)
        sampler.set_weight(0, 1)
        sampler.set_weight(1, 8)
        sampler.set_weight(2, 1)
        rng = random.Random(123)
        draws = [sampler.sample(rng) for _ in range(4000)]
        share = draws.count(1) / len(draws)
        assert 0.75 < share < 0.85

    def test_active_count_tracking(self):
        sampler = FenwickSampler(5)
        assert sampler.active_count == 0
        sampler.set_weight(2, 1.5)
        sampler.set_weight(4, 2)
        assert sampler.active_count == 2
        sampler.set_weight(2, 0)
        assert sampler.active_count == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FenwickSampler(0)
        sampler = FenwickSampler(3)
        with pytest.raises(IndexError):
            sampler.set_weight(3, 1)
        with pytest.raises(ValueError):
            sampler.set_weight(0, -1)
        with pytest.raises(ValueError):
            sampler.sample(random.Random(0))

    def test_counters_increment(self):
        KERNEL_COUNTERS.reset()
        sampler = FenwickSampler(4)
        sampler.set_weight(1, 2)
        sampler.sample(random.Random(1))
        assert KERNEL_COUNTERS.sampler_updates == 1
        assert KERNEL_COUNTERS.sampler_draws == 1


class TestMultisetSampler:
    def test_matches_seed_idiom(self):
        """Same rng => same draws as indexing a plain list with randrange."""
        items = [0, 0, 1, 2, 2, 2]
        sampler = MultisetSampler(items)
        a, b = random.Random(5), random.Random(5)
        for _ in range(50):
            assert sampler.sample(a) == items[b.randrange(len(items))]

    def test_add_preserves_order(self):
        sampler = MultisetSampler([1])
        sampler.add(2)
        sampler.add(3, count=2)
        assert len(sampler) == 4
        assert sampler._items == [1, 2, 3, 3]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            MultisetSampler().sample(random.Random(0))


class TestSkipSampling:
    def test_probability_one_yields_everything(self):
        assert list(skip_sampled_indices(7, 1.0, random.Random(0))) == list(range(7))

    def test_probability_zero_yields_nothing(self):
        assert list(skip_sampled_indices(7, 0.0, random.Random(0))) == []

    def test_indices_strictly_increasing_and_in_range(self):
        rng = random.Random(3)
        out = list(skip_sampled_indices(1000, 0.2, rng))
        assert out == sorted(set(out))
        assert all(0 <= i < 1000 for i in out)

    def test_expected_count(self):
        rng = random.Random(9)
        counts = [len(list(skip_sampled_indices(500, 0.1, rng))) for _ in range(200)]
        mean = sum(counts) / len(counts)
        # E = 50, sigma of the mean ~ 6.7/sqrt(200) ~ 0.47
        assert 48 < mean < 52

    def test_pairs_cover_the_triangle(self):
        pairs = list(skip_sampled_pairs(6, 1.0, random.Random(0)))
        expected = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        assert pairs == expected

    def test_pairs_min_gap(self):
        pairs = list(skip_sampled_pairs(6, 1.0, random.Random(0), min_gap=2))
        expected = [(i, j) for i in range(6) for j in range(i + 2, 6)]
        assert pairs == expected

    def test_pairs_empty_cases(self):
        assert list(skip_sampled_pairs(1, 0.5, random.Random(0))) == []
        assert list(skip_sampled_pairs(2, 0.5, random.Random(0), min_gap=2)) == []
        with pytest.raises(ValueError):
            list(skip_sampled_pairs(5, 0.5, random.Random(0), min_gap=0))


class TestLinearReference:
    def test_overrun_returns_last_index(self):
        assert linear_weighted_index([1.0, 2.0], 100.0) == 1

    def test_boundary_inclusive(self):
        # target exactly on a cumulative boundary selects that index.
        assert linear_weighted_index([1.0, 2.0, 3.0], 1.0) == 0
        assert linear_weighted_index([1.0, 2.0, 3.0], 3.0) == 1
        assert linear_weighted_index([1.0, 2.0, 3.0], 3.0000001) == 2
