"""Seed-stability regression tests: the bit-identical-output contract.

The generation-engine rewrite (Fenwick sampling, spatial-grid attachment)
promises that BA/GLP/PLRG/INET/FKP produce **bit-identical** topologies per
seed.  These hashes were computed from the pre-rewrite pure-scan generators
and pin that contract: any change to draw order, weight semantics, or
tie-breaking shows up as a hash mismatch here.

Waxman and Erdős–Rényi intentionally changed their per-seed random streams
(grid-bucketed / skip sampling) and are gated statistically instead — see
``TestWaxmanStatistics`` in ``test_generators.py``.
"""

import hashlib

import pytest

from repro.core.fkp import (
    FKPModel,
    FKPParameters,
    generate_fkp_tree,
    subtree_load_centrality,
)
from repro.generators import (
    BarabasiAlbertGenerator,
    GLPGenerator,
    InetGenerator,
    PLRGGenerator,
)


def edge_hash(topo) -> str:
    """Order-independent hash of the topology's edge set (plus counts)."""
    lines = sorted(f"{u}|{v}" for (u, v) in topo.link_keys())
    payload = f"n={topo.num_nodes};m={topo.num_links};" + ";".join(lines)
    return hashlib.sha256(payload.encode()).hexdigest()


#: (case id, topology factory, hash of the seed implementation's output).
PINNED = [
    (
        "ba-m2-s1-n200",
        lambda: BarabasiAlbertGenerator().generate(200, seed=1),
        "77789322d731bcdaf1d484dc677236519349cffbeef99d158889158dd2bf9c7b",
    ),
    (
        "ba-m3-s7-n500",
        lambda: BarabasiAlbertGenerator(links_per_node=3).generate(500, seed=7),
        "400d9b24dc14dce4e28aab0d2777f4890e7726f5ca51df029b27c13ef74d2c8e",
    ),
    (
        "glp-s3-n200",
        lambda: GLPGenerator().generate(200, seed=3),
        "8002f23adb916c6057160dacf5078cd0fac7011e4194ee1011c3f2fa7fa2d9ed",
    ),
    (
        "glp-m2-s11-n400",
        lambda: GLPGenerator(links_per_step=2).generate(400, seed=11),
        "1b88af4b361d82acfb4b524f9fa5eb1805ca7743f89db797b69d76ee94f3d06f",
    ),
    (
        "plrg-s5-n300",
        lambda: PLRGGenerator().generate(300, seed=5),
        "83690e2fe2ef6bf4eb76127b845aa460ba1b34c5faedff17ee3320985f1b03b0",
    ),
    (
        "plrg-e2.1-s9-n800",
        lambda: PLRGGenerator(exponent=2.1).generate(800, seed=9),
        "851184af3b2f2f8fa237aea29fe80e3bc12395992bd93eb58e2d16c12ea8f49e",
    ),
    (
        "inet-s2-n300",
        lambda: InetGenerator().generate(300, seed=2),
        "a3294ac81289c877a9c5ccbf5cd6cbaf6f9c8996310dad4e3370bda1031ce38a",
    ),
    (
        "inet-s13-n600",
        lambda: InetGenerator().generate(600, seed=13),
        "79579d0cdbbb855d24b902b8e24e0d8b5776a74af1560136bb82750d7df49a96",
    ),
    (
        "fkp-a0.1-s1-n300",
        lambda: generate_fkp_tree(300, 0.1, seed=1),
        "63f657cf31982c3a838584f287be014886886ac6d651a68c557a714e2ada3a27",
    ),
    (
        "fkp-a4-s4-n400",
        lambda: generate_fkp_tree(400, 4.0, seed=4),
        "3804a5632f86155f1ed5ad300167279f38a269d92b695ff9b49c82bfb85dc8b0",
    ),
    (
        "fkp-a25-s8-n400",
        lambda: generate_fkp_tree(400, 25.0, seed=8),
        "ff8237337e3b077a4d908a64f5a2118425192d424893a220e55df5edb0b23785",
    ),
    (
        "fkp-subtree-a4-s6-n250",
        lambda: FKPModel(
            FKPParameters(num_nodes=250, alpha=4.0, seed=6),
            centrality=subtree_load_centrality,
        ).generate(),
        "88bb98f6ce884aa2b84ed7bc52221442b64314147cd9b5256b2ae68af5f28dd3",
    ),
]


@pytest.mark.parametrize("case_id,factory,expected", PINNED, ids=[c[0] for c in PINNED])
def test_seeded_output_matches_seed_implementation(case_id, factory, expected):
    assert edge_hash(factory()) == expected


def test_fkp_spatial_index_matches_full_scan():
    """The pruned spatial argmin and the exhaustive scan agree exactly."""
    for alpha in (0.1, 1.0, 4.0, 30.0):
        for seed in (0, 3):
            fast = FKPModel(FKPParameters(num_nodes=120, alpha=alpha, seed=seed))
            slow = FKPModel(
                FKPParameters(num_nodes=120, alpha=alpha, seed=seed),
                use_spatial_index=False,
            )
            assert edge_hash(fast.generate()) == edge_hash(slow.generate())
