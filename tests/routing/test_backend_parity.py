"""Backend-equivalence tests for the vectorized traffic engine.

The ``route_demand`` contract (see the ``repro.routing.engine`` docstring):

* **single mode, tie-free weights** (Euclidean lengths, unique shortest
  paths): both backends load the same predecessor tree, so with integral
  volumes the edge-load vectors are **bit-identical** — sums of integers
  are exact in any accumulation order;
* **ECMP mode**: per-edge loads agree to 1e-9 and total volume-hops are
  conserved exactly (to 1e-9) between backends even under hop-weight ties,
  because every tied shortest path has the same hop count;
* **single mode under ties** is the documented divergence: scipy's
  predecessor tree may pick a different (equally shortest) tied optimum
  than the canonical Python kernel, so per-edge loads may differ while
  conserved totals still match — the reason E11 pins ``backend="python"``;
* traffic counters are backend-independent; the batch counters additionally
  record the numpy dispatches (and stay zero under python);
* explicit ``backend="numpy"`` never falls back silently: nonpositive
  weights raise :class:`ValueError`.
"""

import random

import pytest

from repro.geography.demand import DemandMatrix
from repro.routing.engine import compile_demand, route_demand
from repro.routing.paths import WEIGHT_FUNCTIONS
from repro.topology.compiled import KERNEL_COUNTERS, have_numpy_backend
from repro.topology.graph import Topology

requires_numpy = pytest.mark.skipif(
    not have_numpy_backend(), reason="numpy/scipy backend unavailable or masked"
)


def build_instance(num_nodes: int = 220, num_hubs: int = 6, seed: int = 17):
    """Geometric tree + chords (Euclidean lengths) with integral volumes."""
    rng = random.Random(seed)
    topo = Topology()
    for i in range(num_nodes):
        topo.add_node(i, location=(rng.random(), rng.random()))
    for i in range(1, num_nodes):
        topo.add_link(i, rng.randrange(i))
    added = 0
    while added < num_nodes // 2:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v and not topo.has_link(u, v):
            topo.add_link(u, v)
            added += 1
    endpoints = list(range(num_nodes))
    sources, targets, volumes = [], [], []
    for hub in rng.sample(range(num_nodes), num_hubs):
        for other in range(num_nodes):
            if other != hub:
                sources.append(min(hub, other))
                targets.append(max(hub, other))
                volumes.append(float(rng.randint(1, 16)))
    demand = DemandMatrix.from_arrays(endpoints, sources, targets, volumes)
    return topo, compile_demand(topo, demand)


@requires_numpy
class TestLoadParity:
    def test_single_mode_bit_identical_on_tie_free_weights(self):
        _, compiled = build_instance()
        python_flow = route_demand(compiled, backend="python")
        numpy_flow = route_demand(compiled, backend="numpy")
        assert numpy_flow.loads_list() == python_flow.loads_list()
        assert numpy_flow.routed_volume == python_flow.routed_volume
        assert numpy_flow.routed_pairs == python_flow.routed_pairs
        assert not numpy_flow.unrouted and not python_flow.unrouted

    def test_ecmp_mode_within_tolerance_and_conserved(self):
        _, compiled = build_instance()
        python_flow = route_demand(compiled, weight="hops", mode="ecmp", backend="python")
        numpy_flow = route_demand(compiled, weight="hops", mode="ecmp", backend="numpy")
        python_loads = python_flow.loads_list()
        numpy_loads = numpy_flow.loads_list()
        scale = max(1.0, max(python_loads))
        assert max(
            abs(a - b) for a, b in zip(python_loads, numpy_loads)
        ) <= 1e-9 * scale
        # Equal-split shares conserve total volume-hops exactly.
        total_python = sum(python_loads)
        total_numpy = sum(numpy_loads)
        assert abs(total_python - total_numpy) <= 1e-9 * max(1.0, total_python)

    def test_single_mode_under_ties_conserves_totals(self):
        # The documented divergence: on unit hop weights the two backends may
        # route tied pairs over different (equally shortest) trees, so only
        # the conserved aggregates are comparable, not per-edge loads.
        _, compiled = build_instance(num_nodes=120, num_hubs=4, seed=23)
        python_flow = route_demand(compiled, weight="hops", backend="python")
        numpy_flow = route_demand(compiled, weight="hops", backend="numpy")
        assert numpy_flow.routed_volume == python_flow.routed_volume
        assert numpy_flow.routed_pairs == python_flow.routed_pairs
        # Same hop count on every tied path => identical volume-hops totals.
        total_python = sum(python_flow.loads_list())
        total_numpy = sum(numpy_flow.loads_list())
        assert abs(total_python - total_numpy) <= 1e-9 * max(1.0, total_python)


@requires_numpy
class TestEngineCounters:
    def test_traffic_counters_backend_independent(self):
        _, compiled = build_instance()
        results = {}
        for backend in ("python", "numpy"):
            KERNEL_COUNTERS.reset()
            route_demand(compiled, backend=backend)
            results[backend] = KERNEL_COUNTERS.snapshot()
        for key in (
            "single_source",
            "traffic_batched_sources",
            "traffic_assigned_pairs",
            "traffic_ecmp_splits",
        ):
            assert results["python"][key] == results["numpy"][key], key
        assert results["python"]["batch_dijkstra_calls"] == 0
        assert results["numpy"]["batch_dijkstra_calls"] >= 1
        unique_sources = len(set(compiled.sources))
        assert results["numpy"]["batch_sources_total"] == unique_sources

    def test_ecmp_split_counts_match(self):
        _, compiled = build_instance()
        splits = {}
        for backend in ("python", "numpy"):
            KERNEL_COUNTERS.reset()
            route_demand(compiled, weight="hops", mode="ecmp", backend=backend)
            splits[backend] = KERNEL_COUNTERS.snapshot()["traffic_ecmp_splits"]
        assert splits["python"] == splits["numpy"] > 0


class TestExplicitBackendGuards:
    @requires_numpy
    def test_numpy_rejects_nonpositive_weights(self, monkeypatch):
        monkeypatch.setitem(WEIGHT_FUNCTIONS, "zero-test", lambda link: 0.0)
        _, compiled = build_instance(num_nodes=30, num_hubs=2)
        with pytest.raises(ValueError, match="strictly positive"):
            route_demand(compiled, weight="zero-test", backend="numpy")
        # auto mode falls back to the reference kernel instead of raising.
        flow = route_demand(compiled, weight="zero-test")
        assert flow.routed_pairs > 0

    @pytest.mark.skipif(
        have_numpy_backend(), reason="covered only when scipy is masked"
    )
    def test_numpy_request_raises_when_masked(self):
        _, compiled = build_instance(num_nodes=30, num_hubs=2)
        with pytest.raises(RuntimeError, match="numpy backend requested"):
            route_demand(compiled, backend="numpy")
