"""Tests for repro.routing.utilization."""

import pytest

from repro.routing.utilization import (
    load_concentration,
    most_loaded_links,
    utilization_bin,
    utilization_report,
)
from repro.topology.graph import Topology


def loaded_topology() -> Topology:
    topo = Topology()
    for n in "abcd":
        topo.add_node(n)
    topo.add_link("a", "b", capacity=100.0, load=50.0)
    topo.add_link("b", "c", capacity=100.0, load=90.0)
    topo.add_link("c", "d", capacity=10.0, load=20.0)  # overloaded
    topo.add_link("a", "d", load=5.0)  # no capacity annotation
    return topo


class TestUtilizationReport:
    def test_mean_and_peak(self):
        report = utilization_report(loaded_topology())
        assert report.mean_utilization == pytest.approx((0.5 + 0.9 + 2.0) / 3)
        assert report.peak_utilization == pytest.approx(2.0)

    def test_overloaded_links_detected(self):
        report = utilization_report(loaded_topology())
        assert len(report.overloaded_links) == 1

    def test_totals(self):
        report = utilization_report(loaded_topology())
        assert report.total_load == pytest.approx(165.0)
        assert report.total_capacity == pytest.approx(210.0)

    def test_histogram_counts_links_with_capacity(self):
        report = utilization_report(loaded_topology())
        assert sum(report.utilization_histogram.values()) == 3

    def test_empty_topology(self):
        report = utilization_report(Topology())
        assert report.mean_utilization == 0.0
        assert report.peak_utilization == 0.0

    def test_loaded_zero_capacity_link_counts_as_overloaded(self):
        """A loaded link with zero installed capacity is an overload, not a
        link to skip silently; it stays out of the ratio statistics."""
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        # Link construction rejects capacity<=0; a zero-capacity link arises
        # from later annotation (e.g. decommissioning a cable).
        topo.add_link("a", "b", load=5.0).capacity = 0.0
        report = utilization_report(topo)
        assert report.overloaded_links == [("a", "b")]
        assert report.mean_utilization == 0.0
        assert report.total_capacity == 0.0
        assert sum(report.utilization_histogram.values()) == 0

    def test_idle_zero_capacity_link_not_overloaded(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", load=0.0).capacity = 0.0
        report = utilization_report(topo)
        assert report.overloaded_links == []


class TestUtilizationBin:
    def test_bin_lower_edges_are_half_open(self):
        assert utilization_bin(0.0) == 0.0
        assert utilization_bin(0.0999) == 0.0
        assert utilization_bin(0.1) == 0.1
        assert utilization_bin(0.85) == 0.8

    def test_overflow_lands_in_last_bin(self):
        assert utilization_bin(0.9) == 0.9
        assert utilization_bin(1.0) == 0.9
        assert utilization_bin(2.5) == 0.9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            utilization_bin(-0.1)

    def test_histogram_uses_the_bin_keys(self):
        topo = Topology()
        for name in "abc":
            topo.add_node(name)
        topo.add_link("a", "b", capacity=100.0, load=15.0)  # 0.1 bin
        topo.add_link("b", "c", capacity=10.0, load=25.0)  # overflow bin
        histogram = utilization_report(topo).utilization_histogram
        assert histogram[0.1] == 1
        assert histogram[0.9] == 1
        assert sum(histogram.values()) == 2


class TestLoadHelpers:
    def test_most_loaded_links(self):
        ranked = most_loaded_links(loaded_topology(), k=2)
        assert len(ranked) == 2
        assert ranked[0][1] >= ranked[1][1]
        assert ranked[0][1] == pytest.approx(90.0)

    def test_most_loaded_invalid_k(self):
        with pytest.raises(ValueError):
            most_loaded_links(loaded_topology(), k=-1)

    def test_load_concentration(self):
        concentration = load_concentration(loaded_topology(), top_fraction=0.25)
        assert concentration == pytest.approx(90.0 / 165.0)

    def test_load_concentration_no_traffic(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b")
        assert load_concentration(topo) == 0.0

    def test_load_concentration_invalid_fraction(self):
        with pytest.raises(ValueError):
            load_concentration(loaded_topology(), top_fraction=0.0)
