"""Tests for the hierarchical overlay routing engine.

The ``repro.routing.hierarchical`` contract (see its module docstring):

* **flat equivalence on tie-free weights**: Euclidean lengths make shortest
  paths unique almost surely, so the overlay joins pick the same paths as
  flat routing and integral volumes keep the edge-load vectors
  **bit-identical** — on both backends;
* with float volumes the loads agree to 1e-9 relative tolerance (sums
  associate differently across the up/across/down decomposition);
* the overlay is cached on the compiled snapshot per weight name and dies
  with it on the next ``Topology.version`` bump — mutations are never
  served stale tables;
* counters: one ``hier_overlay_builds`` per construction, one
  ``hier_table_joins`` per pair, ``hier_region_sweeps`` backend-independent;
* guards: single-path mode only, strictly positive weights only, unknown
  ``method`` values rejected, ``OverlayTooLarge`` under a mesh cap;
* ``method="auto"`` engages the overlay only past the size/unique-source
  thresholds, and falls back to flat when the mesh exceeds its budget.

Every equivalence test runs on the pure-Python path too (it is the no-scipy
CI leg's only implementation), so nothing here silently requires scipy.
"""

import random

import pytest

import repro.routing.hierarchical as hierarchical
from repro.geography.demand import DemandMatrix
from repro.routing.engine import compile_demand, route_demand
from repro.routing.hierarchical import (
    OverlayTooLarge,
    build_overlay,
    overlay_for,
    route_demand_hierarchical,
)
from repro.routing.paths import WEIGHT_FUNCTIONS, resolve_weight
from repro.topology.compiled import KERNEL_COUNTERS, have_numpy_backend
from repro.topology.graph import Topology
from repro.topology.node import NodeRole

requires_numpy = pytest.mark.skipif(
    not have_numpy_backend(), reason="numpy/scipy backend unavailable or masked"
)

BACKENDS = ("python", "numpy") if have_numpy_backend() else ("python",)


def build_instance(
    num_nodes: int = 240,
    num_hubs: int = 6,
    seed: int = 17,
    integral_volumes: bool = True,
    annotate: bool = True,
):
    """Geometric tree + chords with an annotated two-level core.

    Euclidean lengths (the ``add_link`` default) make shortest paths unique
    almost surely; integral volumes then make the flat-vs-hierarchical load
    comparison exact in any accumulation order.  ``annotate=False`` leaves
    every node a customer, exercising the elected-core fallback.
    """
    rng = random.Random(seed)
    topo = Topology()
    for i in range(num_nodes):
        topo.add_node(i, location=(rng.random(), rng.random()))
    for i in range(1, num_nodes):
        topo.add_link(i, rng.randrange(i))
    added = 0
    while added < num_nodes // 3:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v and not topo.has_link(u, v):
            topo.add_link(u, v)
            added += 1
    if annotate:
        # Top-degree nodes become the core/backbone cell, like a real ISP.
        ranked = sorted(range(num_nodes), key=lambda i: -topo.degree(i))
        for node_id in ranked[:2]:
            topo.node(node_id).role = NodeRole.CORE
        for node_id in ranked[2:8]:
            topo.node(node_id).role = NodeRole.BACKBONE
    endpoints = list(range(num_nodes))
    sources, targets, volumes = [], [], []
    for hub in rng.sample(range(num_nodes), num_hubs):
        for other in range(num_nodes):
            if other != hub:
                sources.append(min(hub, other))
                targets.append(max(hub, other))
                volumes.append(
                    float(rng.randint(1, 16)) if integral_volumes else rng.uniform(0.1, 9.0)
                )
    demand = DemandMatrix.from_arrays(endpoints, sources, targets, volumes)
    return topo, compile_demand(topo, demand)


class TestFlatEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("annotate", [True, False])
    def test_bit_identical_loads_on_tie_free_weights(self, backend, annotate):
        _, compiled = build_instance(annotate=annotate)
        flat = route_demand(compiled, backend=backend, method="flat")
        hier = route_demand_hierarchical(compiled, backend=backend)
        assert hier.loads_list() == flat.loads_list()
        assert hier.routed_pairs == flat.routed_pairs
        assert hier.routed_volume == flat.routed_volume
        assert not hier.unrouted and not flat.unrouted

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_float_volumes_within_tolerance(self, backend):
        _, compiled = build_instance(integral_volumes=False, seed=29)
        flat = route_demand(compiled, backend=backend, method="flat")
        hier = route_demand_hierarchical(compiled, backend=backend)
        flat_loads = flat.loads_list()
        hier_loads = hier.loads_list()
        scale = max(1.0, max(flat_loads))
        assert max(
            abs(a - b) for a, b in zip(flat_loads, hier_loads)
        ) <= 1e-9 * scale

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bit_identical_loads_on_integral_weights(self, backend, monkeypatch):
        # Tie-free *integral* weights: huge random integers make exact ties
        # vanishingly unlikely and every distance sum exact, so loads must be
        # bitwise equal, not merely close.
        topo, compiled = build_instance(seed=41)
        rng = random.Random(97)
        for link in topo.links():
            link.attributes["int-weight"] = float(rng.randint(1, 2**40))
        monkeypatch.setitem(
            WEIGHT_FUNCTIONS, "int-test", lambda link: link.attributes["int-weight"]
        )
        flat = route_demand(compiled, weight="int-test", backend=backend, method="flat")
        hier = route_demand_hierarchical(compiled, weight="int-test", backend=backend)
        assert hier.loads_list() == flat.loads_list()

    @pytest.mark.parametrize("seed", [3, 11, 47])
    def test_randomized_instances_python_backend(self, seed):
        _, compiled = build_instance(num_nodes=150, num_hubs=4, seed=seed)
        flat = route_demand(compiled, backend="python", method="flat")
        hier = route_demand_hierarchical(compiled, backend="python")
        assert hier.loads_list() == flat.loads_list()

    @requires_numpy
    def test_backends_agree_hierarchically(self):
        _, compiled = build_instance(seed=53)
        python_flow = route_demand_hierarchical(compiled, backend="python")
        numpy_flow = route_demand_hierarchical(compiled, backend="numpy")
        assert numpy_flow.loads_list() == python_flow.loads_list()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cross_component_pairs_unrouted(self, backend):
        topo, _ = build_instance(num_nodes=60, num_hubs=2, seed=5)
        # An island disconnected from the core: intra-island pairs route on
        # the region-restricted path, cross-component pairs do not route.
        topo.add_node(1000, location=(5.0, 5.0))
        topo.add_node(1001, location=(5.0, 6.0))
        topo.add_link(1000, 1001)
        demand = DemandMatrix.from_arrays(
            [1000, 1001, 0],
            [0, 0, 1],
            [1, 2, 2],
            [3.0, 2.0, 4.0],
        )
        compiled = compile_demand(topo, demand)
        flow = route_demand_hierarchical(compiled, backend=backend)
        flat = route_demand(compiled, backend=backend, method="flat")
        assert flow.routed_pairs == flat.routed_pairs == 1
        assert len(flow.unrouted) == len(flat.unrouted) == 2
        assert flow.loads_list() == flat.loads_list()


class TestOverlayCache:
    def test_overlay_cached_per_snapshot_and_invalidated_by_version_bump(self):
        topo, compiled = build_instance(num_nodes=120, num_hubs=3, seed=7)
        KERNEL_COUNTERS.reset()
        first = route_demand_hierarchical(compiled)
        assert KERNEL_COUNTERS.hier_overlay_builds == 1
        route_demand_hierarchical(compiled)
        # Second route on the same snapshot reuses the cached overlay.
        assert KERNEL_COUNTERS.hier_overlay_builds == 1

        # A structural mutation bumps Topology.version; the next compile
        # produces a fresh snapshot and the overlay rebuilds against it.
        version = topo.version
        topo.add_link(0, 57)
        assert topo.version > version
        recompiled = compile_demand(
            topo, DemandMatrix.from_arrays([0, 57], [0], [1], [10.0])
        )
        flow = route_demand_hierarchical(recompiled)
        assert KERNEL_COUNTERS.hier_overlay_builds == 2
        # The new shortcut edge carries the demand: loads reflect the
        # mutation instead of the stale tables.
        flat = route_demand(recompiled, method="flat")
        assert flow.loads_list() == flat.loads_list()

    def test_overlay_for_returns_same_object(self):
        topo, _ = build_instance(num_nodes=80, num_hubs=2)
        graph = topo.compiled()
        weights = graph.edge_weight_column(None, resolve_weight(None))
        first = overlay_for(graph, None, weights)
        second = overlay_for(graph, None, weights)
        assert first is second

    def test_overlay_stats_shape(self):
        topo, _ = build_instance(num_nodes=80, num_hubs=2)
        graph = topo.compiled()
        weights = graph.edge_weight_column(None, resolve_weight(None))
        stats = overlay_for(graph, None, weights).stats()
        assert stats["core_nodes"] >= 1
        assert stats["regions"] >= 1
        assert stats["overlay_nodes"] == stats["core_nodes"] + stats["border_nodes"]
        assert not stats["elected_core"]


class TestCounters:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_joins_count_pairs_and_sweeps_engage(self, backend):
        _, compiled = build_instance(num_nodes=140, num_hubs=3, seed=13)
        KERNEL_COUNTERS.reset()
        route_demand_hierarchical(compiled, backend=backend)
        counters = KERNEL_COUNTERS.snapshot()
        assert counters["hier_overlay_builds"] == 1
        assert counters["hier_table_joins"] == compiled.num_pairs
        assert counters["hier_region_sweeps"] >= 1
        assert counters["traffic_assigned_pairs"] == compiled.num_pairs
        # The overlay never batches per-source full-graph searches.
        assert counters["traffic_batched_sources"] == 0

    @requires_numpy
    def test_hier_counters_backend_independent(self):
        _, compiled = build_instance(num_nodes=140, num_hubs=3, seed=19)
        results = {}
        for backend in ("python", "numpy"):
            KERNEL_COUNTERS.reset()
            route_demand_hierarchical(compiled, backend=backend)
            results[backend] = KERNEL_COUNTERS.snapshot()
        for key in ("hier_overlay_builds", "hier_region_sweeps", "hier_table_joins"):
            assert results["python"][key] == results["numpy"][key], key


class TestGuards:
    def test_ecmp_mode_rejected(self):
        _, compiled = build_instance(num_nodes=40, num_hubs=2)
        with pytest.raises(ValueError, match="single-path"):
            route_demand_hierarchical(compiled, mode="ecmp")

    def test_nonpositive_weights_rejected(self, monkeypatch):
        monkeypatch.setitem(WEIGHT_FUNCTIONS, "zero-test", lambda link: 0.0)
        _, compiled = build_instance(num_nodes=40, num_hubs=2)
        with pytest.raises(ValueError, match="strictly positive"):
            route_demand_hierarchical(compiled, weight="zero-test")

    def test_unknown_method_rejected(self):
        _, compiled = build_instance(num_nodes=40, num_hubs=2)
        with pytest.raises(ValueError, match="unknown routing method"):
            route_demand(compiled, method="bogus")

    def test_mesh_cap_raises_overlay_too_large(self):
        topo, compiled = build_instance(num_nodes=60, num_hubs=2)
        graph = topo.compiled()
        weights = graph.edge_weight_column(None, resolve_weight(None))
        with pytest.raises(OverlayTooLarge):
            build_overlay(graph, weights, "length", mesh_cap=1)
        with pytest.raises(OverlayTooLarge):
            route_demand_hierarchical(compiled, mesh_cap=1)


class TestAutoDispatch:
    def test_small_graphs_stay_flat(self):
        _, compiled = build_instance(num_nodes=120, num_hubs=3)
        KERNEL_COUNTERS.reset()
        route_demand(compiled)
        assert KERNEL_COUNTERS.hier_table_joins == 0

    def test_auto_engages_past_thresholds(self, monkeypatch):
        # Shrink the thresholds instead of building a 20k-node instance.
        monkeypatch.setattr(hierarchical, "AUTO_MIN_NODES", 50)
        monkeypatch.setattr(hierarchical, "AUTO_MIN_UNIQUE_SOURCES", 4)
        _, compiled = build_instance(num_nodes=140, num_hubs=5, seed=31)
        KERNEL_COUNTERS.reset()
        auto = route_demand(compiled)
        counters = KERNEL_COUNTERS.snapshot()
        assert counters["hier_table_joins"] == compiled.num_pairs
        assert counters["traffic_batched_sources"] == 0
        flat = route_demand(compiled, method="flat")
        assert auto.loads_list() == flat.loads_list()

    def test_auto_falls_back_when_mesh_over_budget(self, monkeypatch):
        monkeypatch.setattr(hierarchical, "AUTO_MIN_NODES", 50)
        monkeypatch.setattr(hierarchical, "AUTO_MIN_UNIQUE_SOURCES", 4)
        monkeypatch.setattr(hierarchical, "AUTO_MESH_CELLS", 1)
        _, compiled = build_instance(num_nodes=140, num_hubs=5, seed=31)
        KERNEL_COUNTERS.reset()
        flow = route_demand(compiled)
        counters = KERNEL_COUNTERS.snapshot()
        # The cap rejects the overlay before any sweep; flat routing serves.
        assert counters["hier_table_joins"] == 0
        assert counters["hier_region_sweeps"] == 0
        assert counters["traffic_batched_sources"] > 0
        assert not flow.unrouted
