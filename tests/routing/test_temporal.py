"""Tests for repro.routing.temporal — series routing, diffs, and cascades."""

import random

import pytest

from repro.economics.cables import default_catalog
from repro.economics.provisioning import provision_topology
from repro.geography.demand import DemandMatrix
from repro.core.objectives import CostObjective
from repro.optimization.incremental import IncrementalState, RemoveLinks
from repro.routing.engine import route_demand
from repro.routing.options import RoutingOptions
from repro.routing.temporal import (
    DemandSeries,
    compile_series,
    diurnal_series,
    failure_cascade,
    flash_crowd,
    route_series,
)
from repro.topology.compiled import KERNEL_COUNTERS, have_numpy_backend
from repro.topology.graph import Topology, TopologyError

# Fixed point of the pinned 24-node cascade below (backend="python"; loads
# are bit-identical across backends on tie-free weights + integral volumes,
# so this hash is backend-independent — see the module docstring).
PINNED_CASCADE_HASH = "ff0604d4259ad7b5e538b46cd6a91365cf22589fe68226a05e68a70d4e357c87"
PINNED_CASCADE_ROUNDS = 6
PINNED_CASCADE_TRIPS = 16


def random_instance(num_nodes, num_pairs, seed):
    """Random tree + chords with Euclidean lengths and integral volumes.

    Tie-free weights with integral volumes make routed load columns exact in
    any accumulation order — the precondition for every bit-identity gate.
    """
    rng = random.Random(seed)
    topo = Topology(name=f"temporal-test-{num_nodes}-{seed}")
    for i in range(num_nodes):
        topo.add_node(i, location=(rng.random(), rng.random()))
    for i in range(1, num_nodes):
        topo.add_link(i, rng.randrange(i))
    added = 0
    while added < num_nodes // 2:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v and not topo.has_link(u, v):
            topo.add_link(u, v)
            added += 1
    endpoints = [str(i) for i in range(num_nodes)]
    chosen = set()
    while len(chosen) < num_pairs:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v:
            chosen.add((min(u, v), max(u, v)))
    sources, targets, volumes = [], [], []
    for u, v in sorted(chosen):
        sources.append(u)
        targets.append(v)
        volumes.append(float(rng.randint(1, 9)))
    demand = DemandMatrix.from_arrays(endpoints, sources, targets, volumes)
    endpoint_map = {str(i): i for i in range(num_nodes)}
    return topo, demand, endpoint_map


def base_matrix():
    demand = DemandMatrix(endpoints=["a", "b", "c"])
    demand.set_demand("a", "b", 4.0)
    demand.set_demand("b", "c", 2.0)
    return demand


class TestDemandSeries:
    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="at least one step"):
            DemandSeries(steps=[])

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            DemandSeries(steps=[base_matrix()], labels=["t0", "t1"])

    def test_default_labels_and_sequence_protocol(self):
        series = DemandSeries(steps=[base_matrix(), base_matrix()])
        assert series.labels == ["t00", "t01"]
        assert len(series) == 2
        assert list(series)[1] is series[1]


class TestGenerators:
    def test_diurnal_validation(self):
        with pytest.raises(ValueError, match="num_steps"):
            diurnal_series(base_matrix(), num_steps=0)
        with pytest.raises(ValueError, match="amplitude"):
            diurnal_series(base_matrix(), amplitude=1.0)

    def test_diurnal_cycle_conserves_mean_volume(self):
        base = base_matrix()
        series = diurnal_series(base, num_steps=8, amplitude=0.5)
        # The sinusoid sums to zero over one full cycle.
        total = sum(step.demand("a", "b") for step in series.steps)
        assert total == pytest.approx(8 * 4.0)
        for step in series.steps:
            assert 2.0 <= step.demand("a", "b") <= 6.0

    def test_flash_crowd_deterministic_and_sparse(self):
        base = base_matrix()
        first = flash_crowd(base, num_steps=6, num_hotspots=1, duration=2, seed=3)
        second = flash_crowd(base, num_steps=6, num_hotspots=1, duration=2, seed=3)
        for s1, s2 in zip(first.steps, second.steps):
            assert s1.demand("a", "b") == s2.demand("a", "b")
            assert s1.demand("b", "c") == s2.demand("b", "c")
        # Quiet steps reuse the base matrix *object* (diffs to zero for free).
        assert any(step is base for step in first.steps)
        # Some step actually spikes.
        assert any(
            step.demand("a", "b") > 4.0 or step.demand("b", "c") > 2.0
            for step in first.steps
        )


class TestRouteSeries:
    def test_diurnal_steps_match_from_scratch_route_demand(self):
        topo, demand, emap = random_instance(30, 25, 5)
        series = diurnal_series(demand, num_steps=6, amplitude=0.4)
        result = route_series(topo, series, endpoint_map=emap, backend="python")
        assert result.num_steps == 6
        for step, matrix in zip(result.steps, series.steps):
            flat = route_demand(topo, matrix, endpoint_map=emap, backend="python")
            diff = max(
                abs(a - b) for a, b in zip(step.loads_list(), flat.loads_list())
            )
            assert diff <= 1e-9
            assert step.served_fraction == 1.0

    def test_flash_diff_bit_identical_to_full_reroute(self):
        topo, demand, emap = random_instance(40, 30, 7)
        series = flash_crowd(demand, num_steps=8, num_hotspots=2, seed=9)
        compiled = compile_series(topo, series, emap)
        KERNEL_COUNTERS.reset()
        diffed = route_series(compiled, backend="python", reuse=True)
        resolved_diff = KERNEL_COUNTERS.snapshot()["temporal_resolved_sources"]
        KERNEL_COUNTERS.reset()
        full = route_series(compiled, backend="python", reuse=False)
        resolved_full = KERNEL_COUNTERS.snapshot()["temporal_resolved_sources"]
        assert diffed.step_hashes() == full.step_hashes()
        assert resolved_diff < resolved_full
        assert resolved_full == len(series) * compiled.unique_sources
        assert resolved_diff == diffed.resolved_sources_total

    def test_quiet_step_resolves_nothing(self):
        topo, demand, emap = random_instance(20, 15, 2)
        # Two identical steps: the second must re-resolve zero sources.
        series = DemandSeries(steps=[demand, demand])
        result = route_series(topo, series, endpoint_map=emap, backend="python")
        assert result.steps[0].resolved_sources > 0
        assert result.steps[1].resolved_sources == 0
        assert result.steps[0].load_hash() == result.steps[1].load_hash()

    def test_ecmp_diff_matches_full(self):
        topo, demand, emap = random_instance(25, 20, 13)
        series = flash_crowd(demand, num_steps=5, seed=4)
        # Hop weights create equal-cost ties; the retained ECMP column must
        # still make the diff path exact.
        options = RoutingOptions(weight="hops", mode="ecmp", backend="python")
        diffed = route_series(topo, series, endpoint_map=emap, options=options)
        full = route_series(
            topo, series, endpoint_map=emap, options=options, reuse=False
        )
        assert diffed.step_hashes() == full.step_hashes()

    @pytest.mark.skipif(not have_numpy_backend(), reason="scipy not available")
    def test_backend_parity_bit_identical(self):
        topo, demand, emap = random_instance(35, 30, 17)
        series = flash_crowd(demand, num_steps=6, seed=8)
        compiled = compile_series(topo, series, emap)
        python = route_series(compiled, backend="python")
        numpy = route_series(compiled, backend="numpy")
        assert python.step_hashes() == numpy.step_hashes()

    def test_stale_compiled_series_rejected(self):
        topo, demand, emap = random_instance(12, 8, 1)
        series = DemandSeries(steps=[demand])
        compiled = compile_series(topo, series, emap)
        topo.add_node("extra", location=(2.0, 2.0))
        topo.add_link(0, "extra")
        with pytest.raises(TopologyError, match="stale CompiledSeries"):
            route_series(topo, compiled)

    def test_stale_step_result_rejected(self):
        topo, demand, emap = random_instance(12, 8, 1)
        result = route_series(
            topo, DemandSeries(steps=[demand]), endpoint_map=emap
        )
        step = result.steps[0]
        assert step.loads_for(topo) is not None
        topo.remove_link(*next(iter(topo.link_keys())))
        with pytest.raises(TopologyError, match="stale step result"):
            step.loads_for(topo)

    def test_hierarchical_method_rejected(self):
        topo, demand, emap = random_instance(12, 8, 1)
        series = DemandSeries(steps=[demand])
        with pytest.raises(ValueError, match="method='flat' only"):
            route_series(
                topo,
                series,
                endpoint_map=emap,
                options=RoutingOptions(method="hierarchical"),
            )

    def test_unreachable_demand_is_shed(self):
        topo, demand, emap = random_instance(10, 6, 3)
        topo.add_node("island", location=(5.0, 5.0))
        stranded = DemandMatrix(endpoints=["0", "island"])
        stranded.set_demand("0", "island", 5.0)
        emap = dict(emap, island="island")
        result = route_series(
            topo, DemandSeries(steps=[stranded]), endpoint_map=emap
        )
        step = result.steps[0]
        assert step.served_fraction == 0.0
        assert step.unrouted_volume == 5.0
        assert step.unrouted


class TestFailureCascade:
    def cascade_instance(self, num_nodes=24, num_pairs=40, seed=11, surge=3.0):
        topo, demand, emap = random_instance(num_nodes, num_pairs, seed)
        base = route_demand(topo, demand, endpoint_map=emap, backend="python")
        provision_topology(topo, default_catalog(), flow=base)
        return topo, demand.scaled(surge), emap

    def test_pinned_regression(self):
        topo, surge, emap = self.cascade_instance()
        cascade = failure_cascade(
            topo, surge, endpoint_map=emap, backend="python"
        )
        assert cascade.fixed_point
        assert cascade.num_rounds == PINNED_CASCADE_ROUNDS
        assert cascade.total_trips == PINNED_CASCADE_TRIPS
        assert cascade.step_hashes()[-1] == PINNED_CASCADE_HASH

    def test_repeat_and_restore_determinism(self):
        topo, surge, emap = self.cascade_instance()
        keys_before = list(topo.link_keys())
        first = failure_cascade(topo, surge, endpoint_map=emap, backend="python")
        # restore=True rewinds the topology — including dict iteration order,
        # so the next compile sees the identical edge ordering.
        assert list(topo.link_keys()) == keys_before
        second = failure_cascade(topo, surge, endpoint_map=emap, backend="python")
        assert first.step_hashes() == second.step_hashes()
        assert first.tripped_keys == second.tripped_keys

    @pytest.mark.skipif(not have_numpy_backend(), reason="scipy not available")
    @pytest.mark.parametrize("seed", [21, 22, 23, 24, 25])
    def test_fixed_points_identical_across_backends(self, seed):
        """Randomized property: the cascade fixed point is backend-invariant."""
        topo, surge, emap = self.cascade_instance(
            num_nodes=20 + seed % 7, num_pairs=30, seed=seed
        )
        python = failure_cascade(topo, surge, endpoint_map=emap, backend="python")
        numpy = failure_cascade(topo, surge, endpoint_map=emap, backend="numpy")
        assert python.step_hashes() == numpy.step_hashes()
        assert python.tripped_keys == numpy.tripped_keys
        assert python.served_fraction == numpy.served_fraction
        assert python.fixed_point and numpy.fixed_point

    def test_generous_headroom_never_trips(self):
        topo, surge, emap = self.cascade_instance(surge=3.0)
        # capacity >= base load, so headroom >= surge - 1 is trip-free.
        cascade = failure_cascade(
            topo, surge, endpoint_map=emap, backend="python", headroom=2.0
        )
        assert cascade.total_trips == 0
        assert cascade.num_rounds == 1
        assert cascade.served_fraction == 1.0

    def test_max_rounds_cuts_cascade_short(self):
        topo, surge, emap = self.cascade_instance()
        cascade = failure_cascade(
            topo, surge, endpoint_map=emap, backend="python", max_rounds=1
        )
        assert not cascade.fixed_point
        assert cascade.num_rounds == 1
        assert len(cascade.rounds[0].tripped) > 0

    def test_engine_swap_preserves_round_hashes(self, monkeypatch):
        """The dynamic-connectivity engine is a pure accounting swap: every
        per-round load hash (and the pinned fixed point) is byte-identical to
        the legacy sweep engine, and only the legacy engine ever rebuilds."""
        topo, surge, emap = self.cascade_instance()
        KERNEL_COUNTERS.reset()
        dynconn = failure_cascade(topo, surge, endpoint_map=emap, backend="python")
        assert KERNEL_COUNTERS.snapshot()["reachability_rebuilds"] == 0
        monkeypatch.setenv("REPRO_DYNCONN", "0")
        legacy = failure_cascade(topo, surge, endpoint_map=emap, backend="python")
        assert KERNEL_COUNTERS.snapshot()["reachability_rebuilds"] > 0
        assert dynconn.step_hashes() == legacy.step_hashes()
        assert dynconn.tripped_keys == legacy.tripped_keys
        assert dynconn.served_fraction == legacy.served_fraction
        assert dynconn.step_hashes()[-1] == PINNED_CASCADE_HASH

    def test_cascade_trip_counter(self):
        topo, surge, emap = self.cascade_instance()
        KERNEL_COUNTERS.reset()
        cascade = failure_cascade(topo, surge, endpoint_map=emap, backend="python")
        assert KERNEL_COUNTERS.snapshot()["cascade_trips"] == cascade.total_trips

    def test_validation_errors(self):
        topo, surge, emap = self.cascade_instance(num_nodes=12, num_pairs=8)
        with pytest.raises(ValueError, match="headroom"):
            failure_cascade(topo, surge, endpoint_map=emap, headroom=-0.1)
        with pytest.raises(ValueError, match="max_rounds"):
            failure_cascade(topo, surge, endpoint_map=emap, max_rounds=0)
        with pytest.raises(TypeError, match="Topology first"):
            failure_cascade(surge, surge)


class TestRemoveLinksMove:
    def build_state(self):
        topo, _, _ = random_instance(15, 8, 31)
        return topo, IncrementalState(topo, CostObjective())

    def test_batch_revert_restores_edge_order(self):
        topo, state = self.build_state()
        edge_keys_before = list(topo.compiled().edge_keys)
        keys = list(topo.link_keys())[:3]
        depth = state.undo_depth
        state.apply(RemoveLinks(tuple(keys)))
        assert topo.num_links == len(edge_keys_before) - 3
        state.revert_to(depth)
        # Not just the same link set: the same *iteration order*, so the
        # recompiled edge space is identical (cascade determinism needs it).
        assert list(topo.compiled().edge_keys) == edge_keys_before

    def test_duplicate_link_in_batch_rejected(self):
        topo, state = self.build_state()
        key = next(iter(topo.link_keys()))
        links_before = topo.num_links
        with pytest.raises(TopologyError, match="duplicate link"):
            state.apply(RemoveLinks((key, key)))
        assert topo.num_links == links_before

    def test_missing_link_rejected_before_mutation(self):
        topo, state = self.build_state()
        key = next(iter(topo.link_keys()))
        links_before = topo.num_links
        with pytest.raises(TopologyError):
            state.apply(RemoveLinks((key, ("no-such", "link"))))
        assert topo.num_links == links_before


class TestSuiteDeterminism:
    def test_e13_smoke_serial_parallel_identical(self, tmp_path):
        from repro.experiments.runner import run_experiment

        serial = run_experiment(
            "E13", smoke=True, jobs=1, results_dir=tmp_path / "serial"
        )
        parallel = run_experiment(
            "E13", smoke=True, jobs=2, results_dir=tmp_path / "parallel"
        )
        assert serial.gates_checked and parallel.gates_checked
        assert [r.payload for r in serial.records] == [
            r.payload for r in parallel.records
        ]
        # Per-round SHA-256 fingerprints of every cascade fixed point agree.
        serial_hashes = [row["final_hash"] for row in serial.tables["cascade"]]
        parallel_hashes = [row["final_hash"] for row in parallel.tables["cascade"]]
        assert serial_hashes == parallel_hashes
