"""Tests for repro.routing.engine — the vectorized traffic engine."""

import random

import pytest

from repro.economics.cables import default_catalog
from repro.economics.provisioning import provision_topology
from repro.geography.demand import DemandMatrix
from repro.routing.assignment import assign_demand
from repro.routing.engine import compile_demand, route_demand
from repro.routing.utilization import utilization_report
from repro.topology.compiled import KERNEL_COUNTERS
from repro.topology.graph import Topology


def line_topology() -> Topology:
    topo = Topology()
    for name, loc in [("x", (0, 0)), ("y", (1, 0)), ("z", (2, 0))]:
        topo.add_node(name, location=loc)
    topo.add_link("x", "y")
    topo.add_link("y", "z")
    return topo


def grid_topology(size: int = 4) -> Topology:
    """A size x size grid: abundant equal-hop-count shortest paths."""
    topo = Topology()
    for x in range(size):
        for y in range(size):
            topo.add_node((x, y))
    for x in range(size):
        for y in range(size):
            if x < size - 1:
                topo.add_link((x, y), (x + 1, y))
            if y < size - 1:
                topo.add_link((x, y), (x, y + 1))
    return topo


class TestCompileDemand:
    def test_pairs_and_volumes(self):
        topo = line_topology()
        demand = DemandMatrix(endpoints=["x", "y", "z"])
        demand.set_demand("x", "z", 7.0)
        demand.set_demand("x", "y", 3.0)
        compiled = compile_demand(topo, demand)
        assert compiled.num_pairs == 2
        assert compiled.total_volume() == pytest.approx(10.0)
        assert compiled.unmatched == []

    def test_unmatched_endpoints_recorded(self):
        topo = line_topology()
        demand = DemandMatrix(endpoints=["x", "ghost"])
        demand.set_demand("x", "ghost", 4.0)
        compiled = compile_demand(topo, demand)
        assert compiled.num_pairs == 0
        assert compiled.unmatched == [("ghost", "x", 4.0)]

    def test_endpoint_map_resolution(self):
        topo = line_topology()
        demand = DemandMatrix(endpoints=["alpha", "omega"])
        demand.set_demand("alpha", "omega", 1.0)
        compiled = compile_demand(topo, demand, {"alpha": "x", "omega": "z"})
        assert compiled.num_pairs == 1

    def test_hub_orientation_minimizes_sources(self):
        """A hub-to-all matrix must compile to one search source: the hub."""
        topo = Topology()
        names = [f"n{i}" for i in range(8)]
        for i, name in enumerate(names):
            topo.add_node(name, location=(i, 0))
        for name in names[1:]:
            topo.add_link(names[0], name)
        demand = DemandMatrix(endpoints=names)
        # "n0" is not the string-minimum of every pair, but it is the hub.
        for name in names[1:]:
            demand.set_demand(name, names[0], 2.0)
        compiled = compile_demand(topo, demand)
        hub = compiled.graph.index_of["n0"]
        assert set(compiled.sources) == {hub}

    def test_demand_matrix_compile_delegates(self):
        topo = line_topology()
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 5.0)
        compiled = demand.compile(topo)
        assert compiled.num_pairs == 1
        assert compiled.graph is topo.compiled()


class TestRouteDemandSingle:
    def test_matches_per_pair_loads(self):
        topo = line_topology()
        demand = DemandMatrix(endpoints=["x", "y", "z"])
        demand.set_demand("x", "z", 7.0)
        demand.set_demand("y", "z", 2.0)
        reference = assign_demand(topo, demand, method="per-pair")
        flow = route_demand(compile_demand(topo, demand))
        assert flow.link_loads() == reference.link_loads
        assert flow.routed_volume == reference.routed_volume
        assert flow.routed_pairs == 2

    def test_disconnected_pairs_unrouted(self):
        topo = line_topology()
        topo.add_node("island", location=(9, 9))
        demand = DemandMatrix(endpoints=["x", "island"])
        demand.set_demand("x", "island", 5.0)
        flow = route_demand(compile_demand(topo, demand))
        assert flow.routed_volume == 0.0
        assert flow.unrouted_volume == pytest.approx(5.0)
        assert flow.max_load() == 0.0

    def test_flush_reset_and_accumulate(self):
        topo = line_topology()
        for link in topo.links():
            link.load = 100.0
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 3.0)
        flow = route_demand(compile_demand(topo, demand))
        flow.flush(reset=False)
        assert topo.link("x", "y").load == pytest.approx(103.0)
        flow.flush(reset=True)
        assert topo.link("x", "y").load == pytest.approx(3.0)

    def test_unknown_mode_rejected(self):
        topo = line_topology()
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 1.0)
        with pytest.raises(ValueError):
            route_demand(compile_demand(topo, demand), mode="multicast")


class TestRouteDemandECMP:
    def test_split_is_deterministic_and_conserving(self):
        topo = grid_topology(4)
        demand = DemandMatrix(endpoints=["s", "t"])
        demand.set_demand("s", "t", 12.0)
        compiled = compile_demand(topo, demand, {"s": (0, 0), "t": (3, 3)})
        KERNEL_COUNTERS.reset()
        flow = route_demand(compiled, weight="hops", mode="ecmp")
        assert KERNEL_COUNTERS.traffic_ecmp_splits > 0
        again = route_demand(compiled, weight="hops", mode="ecmp")
        assert list(flow.edge_loads) == list(again.edge_loads)
        graph = compiled.graph
        source = graph.index_of[(0, 0)]
        target = graph.index_of[(3, 3)]
        out_of_source = sum(
            flow.edge_loads[e]
            for e in range(graph.num_edges)
            if source in (graph.edge_u[e], graph.edge_v[e])
        )
        into_target = sum(
            flow.edge_loads[e]
            for e in range(graph.num_edges)
            if target in (graph.edge_u[e], graph.edge_v[e])
        )
        assert out_of_source == pytest.approx(12.0, rel=1e-12)
        assert into_target == pytest.approx(12.0, rel=1e-12)
        # Every shortest (0,0)->(3,3) path has 6 hops: volume-hops conserved.
        assert sum(flow.edge_loads) == pytest.approx(12.0 * 6, rel=1e-12)

    def test_two_tied_paths_split_evenly(self):
        topo = Topology()
        for name in "sabt":
            topo.add_node(name)
        topo.add_link("s", "a")
        topo.add_link("a", "t")
        topo.add_link("s", "b")
        topo.add_link("b", "t")
        demand = DemandMatrix(endpoints=["s", "t"])
        demand.set_demand("s", "t", 8.0)
        flow = route_demand(compile_demand(topo, demand), weight="hops", mode="ecmp")
        loads = flow.link_loads()
        for key in loads:
            assert loads[key] == pytest.approx(4.0)

    def test_single_path_carries_everything(self):
        topo = line_topology()
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 5.0)
        flow = route_demand(compile_demand(topo, demand), weight="hops", mode="ecmp")
        assert sorted(flow.edge_loads) == [5.0, 5.0]

    def test_zero_weights_rejected(self):
        topo = line_topology()
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 1.0)
        from repro.routing.paths import WEIGHT_FUNCTIONS

        WEIGHT_FUNCTIONS["zero-test"] = lambda link: 0.0
        try:
            with pytest.raises(ValueError):
                route_demand(compile_demand(topo, demand), weight="zero-test", mode="ecmp")
        finally:
            del WEIGHT_FUNCTIONS["zero-test"]


class TestArrayBoundary:
    def test_provision_from_edge_column_matches_flush_then_provision(self):
        rng = random.Random(7)
        topo = Topology()
        n = 30
        for i in range(n):
            topo.add_node(i, location=(rng.random(), rng.random()))
        for i in range(1, n):
            topo.add_link(i, rng.randrange(i))
        demand = DemandMatrix(endpoints=[str(i) for i in range(n)])
        for _ in range(40):
            a, b = rng.sample(range(n), 2)
            demand.set_demand(str(a), str(b), float(rng.randint(1, 9)))
        endpoint_map = {str(i): i for i in range(n)}
        flow = route_demand(compile_demand(topo, demand, endpoint_map))

        column_report = provision_topology(
            topo, default_catalog(), loads=flow.edge_loads
        )
        column_state = [
            (link.load, link.capacity, link.cable, link.install_cost)
            for link in topo.links()
        ]
        flow.flush()
        flushed_report = provision_topology(topo, default_catalog())
        flushed_state = [
            (link.load, link.capacity, link.cable, link.install_cost)
            for link in topo.links()
        ]
        assert column_state == flushed_state
        assert column_report.total_install_cost == flushed_report.total_install_cost
        assert column_report.cable_counts == flushed_report.cable_counts

    def test_utilization_report_from_loads_column(self):
        topo = line_topology()
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 6.0)
        flow = route_demand(compile_demand(topo, demand))
        provision_topology(topo, default_catalog(), loads=flow.edge_loads)
        from_column = utilization_report(topo, loads=flow.edge_loads)
        from_links = utilization_report(topo)
        assert from_column == from_links

    def test_loads_column_length_mismatch_rejected(self):
        topo = line_topology()
        with pytest.raises(ValueError):
            provision_topology(topo, default_catalog(), loads=[1.0])
        with pytest.raises(ValueError):
            utilization_report(topo, loads=[1.0, 2.0, 3.0])
