"""Tests for repro.routing.paths."""

import pytest

from repro.routing.paths import (
    PathCache,
    WEIGHT_FUNCTIONS,
    k_shortest_node_disjoint_paths,
    resolve_weight,
    shortest_path_between,
)
from repro.topology.graph import Topology


def diamond() -> Topology:
    """a connected to d by two disjoint 2-hop paths and one direct long link."""
    topo = Topology()
    for n in "abcd":
        topo.add_node(n)
    topo.add_link("a", "b", length=1.0)
    topo.add_link("b", "d", length=1.0)
    topo.add_link("a", "c", length=1.0)
    topo.add_link("c", "d", length=1.0)
    topo.add_link("a", "d", length=10.0)
    return topo


class TestWeights:
    def test_named_weights_resolve(self):
        for name in WEIGHT_FUNCTIONS:
            assert callable(resolve_weight(name))

    def test_default_weight_is_length(self):
        assert resolve_weight(None) is WEIGHT_FUNCTIONS["length"]

    def test_unknown_weight_raises(self):
        with pytest.raises(KeyError):
            resolve_weight("congestion")


class TestPathCache:
    def test_path_and_distance(self):
        topo = diamond()
        cache = PathCache(topo, resolve_weight("length"))
        assert cache.distance("a", "d") == pytest.approx(2.0)
        path = cache.path("a", "d")
        assert path[0] == "a" and path[-1] == "d" and len(path) == 3

    def test_unreachable(self):
        topo = Topology()
        topo.add_node("x")
        topo.add_node("y")
        cache = PathCache(topo, resolve_weight("length"))
        assert cache.path("x", "y") is None
        assert cache.distance("x", "y") == float("inf")

    def test_invalidate(self):
        topo = diamond()
        cache = PathCache(topo, resolve_weight("length"))
        assert cache.distance("a", "d") == pytest.approx(2.0)
        topo.remove_link("a", "b")
        topo.remove_link("a", "c")
        cache.invalidate()
        assert cache.distance("a", "d") == pytest.approx(10.0)

    def test_shortest_path_between_hops_weight(self):
        path = shortest_path_between(diamond(), "a", "d", weight="hops")
        assert path == ["a", "d"]


class TestDisjointPaths:
    def test_finds_disjoint_paths(self):
        paths = k_shortest_node_disjoint_paths(diamond(), "a", "d", k=3)
        assert len(paths) == 3
        interiors = [tuple(p[1:-1]) for p in paths]
        assert len(set(interiors)) == len(interiors)

    def test_limited_by_graph(self, path_topology):
        paths = k_shortest_node_disjoint_paths(path_topology, 0, 5, k=3)
        assert len(paths) == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_shortest_node_disjoint_paths(diamond(), "a", "d", k=0)

    def test_does_not_mutate_topology(self):
        topo = diamond()
        k_shortest_node_disjoint_paths(topo, "a", "d", k=3)
        assert topo.num_links == 5


class TestPathCacheVersionedInvalidation:
    """Structural mutations invalidate the cache without calling invalidate()."""

    def test_mutation_auto_invalidates(self):
        topo = diamond()
        cache = PathCache(topo, resolve_weight("length"))
        assert cache.distance("a", "d") == pytest.approx(2.0)
        topo.remove_link("a", "b")
        topo.remove_link("a", "c")
        # No manual invalidate(): the version check must catch the mutation.
        assert cache.distance("a", "d") == pytest.approx(10.0)
        assert cache.path("a", "d") == ["a", "d"]

    def test_added_shortcut_used_immediately(self):
        topo = diamond()
        cache = PathCache(topo, resolve_weight("length"))
        assert cache.distance("a", "d") == pytest.approx(2.0)
        topo.add_link("b", "c", length=0.1)
        assert cache.distance("b", "c") == pytest.approx(0.1)

    def test_route_resolves_links_and_keys(self):
        topo = diamond()
        cache = PathCache(topo, resolve_weight("length"))
        routed = cache.route("a", "d")
        assert routed.nodes[0] == "a" and routed.nodes[-1] == "d"
        assert len(routed.links) == len(routed.nodes) - 1
        for (u, v), link, key in zip(
            zip(routed.nodes, routed.nodes[1:]), routed.links, routed.keys
        ):
            assert link is topo.link(u, v)
            assert key == link.key

    def test_route_source_equals_target(self):
        topo = diamond()
        cache = PathCache(topo, resolve_weight("length"))
        routed = cache.route("a", "a")
        assert routed.nodes == ["a"]
        assert routed.links == [] and routed.keys == []
