"""Tests for the routing façade: one entry point, one options vocabulary.

Covers the API-redesign contract of the routing package: every public
routing symbol is importable from ``repro.routing``, analysis entry points
consume :class:`~repro.routing.engine.FlowResult` uniformly (the legacy
``loads=`` column kwarg warns), stale results raise
:class:`~repro.topology.graph.TopologyError` instead of silently repricing,
and :class:`~repro.routing.options.RoutingOptions` validation names the bad
field.
"""

import importlib

import pytest

import repro.routing
from repro.economics.cables import default_catalog
from repro.economics.provisioning import provision_topology
from repro.geography.demand import DemandMatrix
from repro.routing.engine import route_demand
from repro.routing.options import (
    ROUTING_BACKENDS,
    ROUTING_METHODS,
    ROUTING_MODES,
    RoutingOptions,
)
from repro.routing.utilization import load_concentration, utilization_report
from repro.topology.graph import Topology, TopologyError


def small_instance():
    topo = Topology()
    for name, loc in [("a", (0, 0)), ("b", (1, 0)), ("c", (2, 0)), ("d", (1, 1))]:
        topo.add_node(name, location=loc)
    for u, v in [("a", "b"), ("b", "c"), ("a", "d"), ("d", "c")]:
        topo.add_link(u, v)
    demand = DemandMatrix(endpoints=["a", "b", "c"])
    demand.set_demand("a", "c", 6.0)
    demand.set_demand("a", "b", 2.0)
    return topo, demand


class TestPublicSurface:
    def test_every_public_routing_symbol_reachable_from_package(self):
        """The façade contract: ``repro.routing`` re-exports the public API."""
        for module_name in ("engine", "temporal", "options", "hierarchical"):
            module = importlib.import_module(f"repro.routing.{module_name}")
            for symbol in module.__all__:
                if symbol.startswith("AUTO_"):
                    continue  # hierarchical tuning knobs stay module-level
                assert hasattr(repro.routing, symbol), (module_name, symbol)
                assert symbol in repro.routing.__all__, (module_name, symbol)

    def test_package_all_is_importable(self):
        for symbol in repro.routing.__all__:
            assert hasattr(repro.routing, symbol), symbol


class TestRoutingOptions:
    def test_bad_field_values_name_the_field(self):
        with pytest.raises(ValueError, match="RoutingOptions.mode"):
            RoutingOptions(mode="all-paths")
        with pytest.raises(ValueError, match="RoutingOptions.method"):
            RoutingOptions(method="magic")
        with pytest.raises(ValueError, match="RoutingOptions.backend"):
            RoutingOptions(backend="fortran")
        with pytest.raises(ValueError, match="RoutingOptions.weight"):
            RoutingOptions(weight=3)

    def test_vocabulary_constants(self):
        assert RoutingOptions().mode in ROUTING_MODES
        assert RoutingOptions().method in ROUTING_METHODS
        assert RoutingOptions().backend in ROUTING_BACKENDS

    def test_options_and_kwargs_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            RoutingOptions.normalize(RoutingOptions(), mode="ecmp")
        with pytest.raises(TypeError, match="RoutingOptions"):
            RoutingOptions.normalize({"mode": "ecmp"})

    def test_normalize_maps_legacy_none_defaults(self):
        opts = RoutingOptions.normalize(None, weight="hops", mode=None)
        assert opts == RoutingOptions(weight="hops")

    def test_with_revalidates(self):
        opts = RoutingOptions()
        assert opts.with_(mode="ecmp").mode == "ecmp"
        with pytest.raises(ValueError, match="RoutingOptions.mode"):
            opts.with_(mode="bogus")

    def test_facade_accepts_options_object(self):
        topo, demand = small_instance()
        via_options = route_demand(
            topo, demand, options=RoutingOptions(weight="hops", backend="python")
        )
        via_kwargs = route_demand(topo, demand, weight="hops", backend="python")
        assert via_options.loads_list() == via_kwargs.loads_list()
        with pytest.raises(ValueError, match="not both"):
            route_demand(
                topo, demand, weight="hops", options=RoutingOptions()
            )


class TestFlowResultConsumers:
    def test_utilization_report_accepts_flow_result(self):
        topo, demand = small_instance()
        flow = route_demand(topo, demand)
        provision_topology(topo, default_catalog(), flow=flow)
        report = utilization_report(topo, flow)
        assert report.total_load == pytest.approx(sum(flow.loads_list()))
        assert not report.overloaded_links

    def test_legacy_loads_kwarg_warns_and_matches(self):
        topo, demand = small_instance()
        flow = route_demand(topo, demand)
        provision_topology(topo, default_catalog(), flow=flow)
        via_flow = utilization_report(topo, flow)
        with pytest.warns(DeprecationWarning, match="utilization_report"):
            via_loads = utilization_report(topo, loads=flow.loads_list())
        assert via_loads == via_flow
        with pytest.warns(DeprecationWarning, match="load_concentration"):
            concentration = load_concentration(topo, loads=flow.loads_list())
        assert concentration == load_concentration(topo, flow=flow)

    def test_provision_topology_legacy_loads_warns(self):
        topo, demand = small_instance()
        flow = route_demand(topo, demand)
        with pytest.warns(DeprecationWarning, match="provision_topology"):
            provision_topology(topo, default_catalog(), loads=flow.loads_list())

    def test_flow_and_loads_together_rejected(self):
        topo, demand = small_instance()
        flow = route_demand(topo, demand)
        with pytest.raises(TypeError, match="not both"):
            utilization_report(topo, flow, loads=flow.loads_list())

    def test_stale_flow_result_rejected(self):
        topo, demand = small_instance()
        flow = route_demand(topo, demand)
        topo.add_link("b", "d")
        with pytest.raises(TopologyError, match="stale"):
            utilization_report(topo, flow)
        with pytest.raises(TopologyError, match="stale"):
            load_concentration(topo, flow=flow)
        with pytest.raises(TopologyError, match="stale"):
            provision_topology(topo, default_catalog(), flow=flow)
