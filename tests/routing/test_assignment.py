"""Tests for repro.routing.assignment."""

import pytest

from repro.geography.demand import DemandMatrix
from repro.routing.assignment import assign_demand, route_customer_demand_to_core
from repro.topology.graph import Topology
from repro.topology.node import NodeRole


def backbone() -> Topology:
    topo = Topology()
    for name, loc in [("x", (0, 0)), ("y", (1, 0)), ("z", (2, 0))]:
        topo.add_node(name, location=loc)
    topo.add_link("x", "y")
    topo.add_link("y", "z")
    return topo


class TestAssignDemand:
    def test_loads_accumulate_along_path(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 7.0)
        result = assign_demand(topo, demand)
        assert result.routed_volume == pytest.approx(7.0)
        assert topo.link("x", "y").load == pytest.approx(7.0)
        assert topo.link("y", "z").load == pytest.approx(7.0)

    def test_multiple_pairs_sum(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "y", "z"])
        demand.set_demand("x", "y", 2.0)
        demand.set_demand("x", "z", 3.0)
        assign_demand(topo, demand)
        assert topo.link("x", "y").load == pytest.approx(5.0)
        assert topo.link("y", "z").load == pytest.approx(3.0)

    def test_unrouted_missing_node(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "ghost"])
        demand.set_demand("x", "ghost", 4.0)
        result = assign_demand(topo, demand)
        assert result.unrouted_volume == pytest.approx(4.0)
        assert result.routed_volume == 0.0

    def test_endpoint_map(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["alpha", "omega"])
        demand.set_demand("alpha", "omega", 1.0)
        result = assign_demand(topo, demand, endpoint_map={"alpha": "x", "omega": "z"})
        assert result.routed_volume == pytest.approx(1.0)

    def test_reset_loads(self):
        topo = backbone()
        topo.link("x", "y").load = 99.0
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 1.0)
        assign_demand(topo, demand, reset_loads=True)
        assert topo.link("x", "y").load == pytest.approx(1.0)

    def test_paths_recorded(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 1.0)
        result = assign_demand(topo, demand)
        assert result.paths[("x", "z")] == ["x", "y", "z"]


class TestCustomerToCore:
    def build(self) -> Topology:
        topo = Topology()
        topo.add_node("core", role=NodeRole.CORE, location=(0, 0))
        topo.add_node("agg", role=NodeRole.ACCESS, location=(1, 0))
        topo.add_node("c1", role=NodeRole.CUSTOMER, location=(2, 0), demand=3.0)
        topo.add_node("c2", role=NodeRole.CUSTOMER, location=(2, 1), demand=5.0)
        topo.add_link("core", "agg")
        topo.add_link("agg", "c1")
        topo.add_link("agg", "c2")
        return topo

    def test_all_demand_routed(self):
        topo = self.build()
        result = route_customer_demand_to_core(topo)
        assert result.routed_volume == pytest.approx(8.0)
        assert topo.link("core", "agg").load == pytest.approx(8.0)

    def test_no_core_reports_unrouted(self):
        topo = self.build()
        topo.remove_node("core")
        result = route_customer_demand_to_core(topo)
        assert result.routed_volume == 0.0
        assert result.unrouted_volume == pytest.approx(8.0)

    def test_disconnected_customer_reported(self):
        topo = self.build()
        topo.remove_link("agg", "c2")
        result = route_customer_demand_to_core(topo)
        assert result.routed_volume == pytest.approx(3.0)
        assert result.unrouted_volume == pytest.approx(5.0)
