"""Tests for repro.routing.assignment."""

import pytest

from repro.geography.demand import DemandMatrix
from repro.routing.assignment import assign_demand, route_customer_demand_to_core
from repro.topology.graph import Topology
from repro.topology.node import NodeRole


def backbone() -> Topology:
    topo = Topology()
    for name, loc in [("x", (0, 0)), ("y", (1, 0)), ("z", (2, 0))]:
        topo.add_node(name, location=loc)
    topo.add_link("x", "y")
    topo.add_link("y", "z")
    return topo


class TestAssignDemand:
    def test_loads_accumulate_along_path(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 7.0)
        result = assign_demand(topo, demand)
        assert result.routed_volume == pytest.approx(7.0)
        assert topo.link("x", "y").load == pytest.approx(7.0)
        assert topo.link("y", "z").load == pytest.approx(7.0)

    def test_multiple_pairs_sum(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "y", "z"])
        demand.set_demand("x", "y", 2.0)
        demand.set_demand("x", "z", 3.0)
        assign_demand(topo, demand)
        assert topo.link("x", "y").load == pytest.approx(5.0)
        assert topo.link("y", "z").load == pytest.approx(3.0)

    def test_unrouted_missing_node(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "ghost"])
        demand.set_demand("x", "ghost", 4.0)
        result = assign_demand(topo, demand)
        assert result.unrouted_volume == pytest.approx(4.0)
        assert result.routed_volume == 0.0

    def test_endpoint_map(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["alpha", "omega"])
        demand.set_demand("alpha", "omega", 1.0)
        result = assign_demand(topo, demand, endpoint_map={"alpha": "x", "omega": "z"})
        assert result.routed_volume == pytest.approx(1.0)

    def test_reset_loads(self):
        topo = backbone()
        topo.link("x", "y").load = 99.0
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 1.0)
        assign_demand(topo, demand, reset_loads=True)
        assert topo.link("x", "y").load == pytest.approx(1.0)

    def test_paths_recorded_by_per_pair_reference(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 1.0)
        result = assign_demand(topo, demand, method="per-pair")
        assert result.paths[("x", "z")] == ["x", "y", "z"]
        # The batched engine never resolves per-pair paths.
        batched = assign_demand(topo, demand)
        assert batched.paths == {}
        assert batched.link_loads == result.link_loads

    def test_unknown_method_and_mode_rejected(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "z"])
        demand.set_demand("x", "z", 1.0)
        with pytest.raises(ValueError):
            assign_demand(topo, demand, method="mystery")
        with pytest.raises(ValueError):
            assign_demand(topo, demand, method="per-pair", mode="ecmp")

    def test_batched_matches_per_pair_on_loads(self):
        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "y", "z"])
        demand.set_demand("x", "y", 2.0)
        demand.set_demand("x", "z", 3.0)
        demand.set_demand("y", "z", 5.0)
        reference = assign_demand(topo, demand, method="per-pair")
        reference_loads = {link.key: link.load for link in topo.links()}
        batched = assign_demand(topo, demand, method="batched")
        assert {link.key: link.load for link in topo.links()} == reference_loads
        assert batched.routed_volume == reference.routed_volume
        assert batched.link_loads == reference.link_loads


class TestCustomerToCore:
    def build(self) -> Topology:
        topo = Topology()
        topo.add_node("core", role=NodeRole.CORE, location=(0, 0))
        topo.add_node("agg", role=NodeRole.ACCESS, location=(1, 0))
        topo.add_node("c1", role=NodeRole.CUSTOMER, location=(2, 0), demand=3.0)
        topo.add_node("c2", role=NodeRole.CUSTOMER, location=(2, 1), demand=5.0)
        topo.add_link("core", "agg")
        topo.add_link("agg", "c1")
        topo.add_link("agg", "c2")
        return topo

    def test_all_demand_routed(self):
        topo = self.build()
        result = route_customer_demand_to_core(topo)
        assert result.routed_volume == pytest.approx(8.0)
        assert topo.link("core", "agg").load == pytest.approx(8.0)

    def test_no_core_reports_unrouted(self):
        topo = self.build()
        topo.remove_node("core")
        result = route_customer_demand_to_core(topo)
        assert result.routed_volume == 0.0
        assert result.unrouted_volume == pytest.approx(8.0)

    def test_disconnected_customer_reported(self):
        topo = self.build()
        topo.remove_link("agg", "c2")
        result = route_customer_demand_to_core(topo)
        assert result.routed_volume == pytest.approx(3.0)
        assert result.unrouted_volume == pytest.approx(5.0)


class TestSearchCounts:
    def test_customer_to_core_uses_one_multi_source_search(self):
        from repro.topology.compiled import KERNEL_COUNTERS

        topo = Topology()
        topo.add_node("core0", role=NodeRole.CORE, location=(0, 0))
        topo.add_node("core1", role=NodeRole.CORE, location=(9, 0))
        previous = "core0"
        for i in range(6):
            name = f"c{i}"
            topo.add_node(name, role=NodeRole.CUSTOMER, location=(i + 1, 0), demand=1.0)
            topo.add_link(previous, name)
            previous = name
        topo.add_link(previous, "core1")
        topo.compiled()  # compile outside the measured window
        KERNEL_COUNTERS.reset()
        result = route_customer_demand_to_core(topo)
        assert result.routed_volume == pytest.approx(6.0)
        assert KERNEL_COUNTERS.multi_source == 1
        assert KERNEL_COUNTERS.single_source == 0

    def test_assign_demand_one_search_per_source(self):
        from repro.geography.demand import DemandMatrix
        from repro.topology.compiled import KERNEL_COUNTERS

        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "y", "z"])
        demand.set_demand("x", "y", 1.0)
        demand.set_demand("x", "z", 2.0)
        demand.set_demand("y", "z", 3.0)
        topo.compiled()
        KERNEL_COUNTERS.reset()
        assign_demand(topo, demand, method="per-pair")
        # Two distinct sources (x, y) — the x search is reused for both x pairs.
        assert KERNEL_COUNTERS.single_source == 2

    def test_batched_assignment_counters(self):
        from repro.geography.demand import DemandMatrix
        from repro.topology.compiled import KERNEL_COUNTERS

        topo = backbone()
        demand = DemandMatrix(endpoints=["x", "y", "z"])
        demand.set_demand("x", "y", 1.0)
        demand.set_demand("x", "z", 2.0)
        demand.set_demand("y", "z", 3.0)
        topo.compiled()
        KERNEL_COUNTERS.reset()
        assign_demand(topo, demand, method="batched")
        assert KERNEL_COUNTERS.traffic_batched_sources == 2
        assert KERNEL_COUNTERS.single_source == 2
        assert KERNEL_COUNTERS.traffic_assigned_pairs == 3
        assert KERNEL_COUNTERS.traffic_ecmp_splits == 0
