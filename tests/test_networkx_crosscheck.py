"""Cross-validation of our graph algorithms and metrics against networkx.

networkx is a test-only dependency: the library implements its own substrate,
and these tests confirm the implementations agree with the reference library
on randomly generated topologies.
"""

import random

import pytest

networkx = pytest.importorskip("networkx")

from repro.generators import ErdosRenyiGenerator, WaxmanGenerator
from repro.metrics.clustering import average_clustering, transitivity
from repro.metrics.degree import degree_histogram
from repro.metrics.distance import average_shortest_path_hops, hop_diameter
from repro.optimization.mst import minimum_spanning_tree
from repro.optimization.shortest_path import dijkstra
from repro.topology.serialization import to_networkx


@pytest.fixture(scope="module", params=[0, 1, 2])
def random_topology(request):
    generator = ErdosRenyiGenerator(target_mean_degree=5.0)
    return generator.generate(80, seed=request.param)


class TestStructuralAgreement:
    def test_node_and_edge_counts(self, random_topology):
        graph = to_networkx(random_topology)
        assert graph.number_of_nodes() == random_topology.num_nodes
        assert graph.number_of_edges() == random_topology.num_links

    def test_degree_histogram_matches(self, random_topology):
        graph = to_networkx(random_topology)
        ours = degree_histogram(random_topology)
        theirs = {}
        for _, degree in graph.degree():
            theirs[degree] = theirs.get(degree, 0) + 1
        assert ours == theirs

    def test_connectivity_agrees(self, random_topology):
        graph = to_networkx(random_topology)
        assert random_topology.is_connected() == networkx.is_connected(graph)


class TestMetricAgreement:
    def test_average_clustering_matches(self, random_topology):
        graph = to_networkx(random_topology)
        assert average_clustering(random_topology) == pytest.approx(
            networkx.average_clustering(graph), abs=1e-9
        )

    def test_transitivity_matches(self, random_topology):
        graph = to_networkx(random_topology)
        assert transitivity(random_topology) == pytest.approx(
            networkx.transitivity(graph), abs=1e-9
        )

    def test_average_path_length_matches(self, random_topology):
        graph = to_networkx(random_topology)
        ours = average_shortest_path_hops(random_topology)
        theirs = networkx.average_shortest_path_length(graph)
        assert ours == pytest.approx(theirs, rel=1e-9)

    def test_diameter_matches(self, random_topology):
        graph = to_networkx(random_topology)
        assert hop_diameter(random_topology) == networkx.diameter(graph)


class TestAlgorithmAgreement:
    def test_dijkstra_matches_networkx(self):
        topology = WaxmanGenerator(alpha_w=0.3, beta=0.6).generate(60, seed=3)
        graph = to_networkx(topology)
        source = 0
        ours, _ = dijkstra(topology, source)
        theirs = networkx.single_source_dijkstra_path_length(
            graph, source, weight=lambda u, v, data: data["length"] or 1.0
        )
        assert set(ours) == set(theirs)
        for node, distance in theirs.items():
            assert ours[node] == pytest.approx(distance, rel=1e-9)

    def test_mst_total_weight_matches_networkx(self):
        topology = WaxmanGenerator(alpha_w=0.3, beta=0.6).generate(60, seed=4)
        graph = to_networkx(topology)
        ours = minimum_spanning_tree(topology)
        theirs = networkx.minimum_spanning_tree(graph, weight="length")
        our_weight = sum(link.length for link in ours.links())
        their_weight = sum(data["length"] for _, _, data in theirs.edges(data=True))
        assert our_weight == pytest.approx(their_weight, rel=1e-9)

    def test_random_tree_is_tree_for_both(self):
        rng = random.Random(5)
        from repro.topology.graph import Topology

        topology = Topology()
        for i in range(30):
            topology.add_node(i)
        for i in range(1, 30):
            topology.add_link(i, rng.randrange(i))
        graph = to_networkx(topology)
        assert topology.is_tree()
        assert networkx.is_tree(graph)
