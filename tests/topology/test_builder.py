"""Tests for repro.topology.builder.TopologyBuilder."""

from repro.topology.builder import TopologyBuilder
from repro.topology.node import NodeRole


class TestTopologyBuilder:
    def test_auto_ids_are_unique(self):
        builder = TopologyBuilder()
        ids = [builder.add_customer((0, 0)) for _ in range(5)]
        assert len(set(ids)) == 5

    def test_role_specific_helpers(self):
        builder = TopologyBuilder()
        core = builder.add_core((0.5, 0.5))
        backbone = builder.add_backbone((0.2, 0.2))
        dist = builder.add_distribution((0.1, 0.1))
        access = builder.add_access((0.05, 0.05))
        customer = builder.add_customer((0.0, 0.0), demand=4.0)
        peering = builder.add_peering((0.9, 0.9))
        topo = builder.build()
        assert topo.node(core).role == NodeRole.CORE
        assert topo.node(backbone).role == NodeRole.BACKBONE
        assert topo.node(dist).role == NodeRole.DISTRIBUTION
        assert topo.node(access).role == NodeRole.ACCESS
        assert topo.node(customer).role == NodeRole.CUSTOMER
        assert topo.node(customer).demand == 4.0
        assert topo.node(peering).role == NodeRole.PEERING

    def test_explicit_node_id(self):
        builder = TopologyBuilder()
        node_id = builder.add(NodeRole.CORE, node_id="my-core")
        assert node_id == "my-core"
        assert builder.topology.has_node("my-core")

    def test_connect(self):
        builder = TopologyBuilder()
        a = builder.add_core((0, 0))
        b = builder.add_customer((1, 0))
        link = builder.connect(a, b, capacity=100.0)
        assert link.capacity == 100.0
        assert builder.topology.num_links == 1

    def test_connect_if_absent(self):
        builder = TopologyBuilder()
        a = builder.add_core((0, 0))
        b = builder.add_customer((1, 0))
        assert builder.connect_if_absent(a, b) is not None
        assert builder.connect_if_absent(a, b) is None
        assert builder.topology.num_links == 1
