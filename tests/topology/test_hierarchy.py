"""Tests for repro.topology.hierarchy."""

import math
import random
from collections import deque

import pytest

from repro.topology.graph import Topology
from repro.topology.hierarchy import (
    LEVEL_NAMES,
    LEVEL_RANKS,
    assign_levels_by_distance,
    compiled_level_ranks,
    is_downward_tree,
    level_of,
    relabel_roles_from_levels,
    summarize_hierarchy,
)
from repro.topology.node import NodeRole


def build_isp_like_tree() -> Topology:
    """core - backbone - distribution - customer chain plus an extra customer."""
    topo = Topology()
    topo.add_node("core", role=NodeRole.CORE)
    topo.add_node("bb", role=NodeRole.BACKBONE)
    topo.add_node("dist", role=NodeRole.DISTRIBUTION)
    topo.add_node("cust1", role=NodeRole.CUSTOMER, demand=1.0)
    topo.add_node("cust2", role=NodeRole.CUSTOMER, demand=2.0)
    topo.add_link("core", "bb")
    topo.add_link("bb", "dist")
    topo.add_link("dist", "cust1")
    topo.add_link("dist", "cust2")
    return topo


class TestLevelOf:
    def test_every_role_maps_to_a_level(self):
        for role in NodeRole:
            assert isinstance(level_of(role), str)

    def test_peering_maps_to_backbone(self):
        assert level_of(NodeRole.PEERING) == "backbone"


class TestSummarizeHierarchy:
    def test_level_counts(self):
        summary = summarize_hierarchy(build_isp_like_tree())
        assert summary.count("core") == 1
        assert summary.count("backbone") == 1
        assert summary.count("distribution") == 1
        assert summary.count("customer") == 2

    def test_inter_vs_intra_links(self):
        summary = summarize_hierarchy(build_isp_like_tree())
        assert summary.inter_level_links == 4
        assert summary.intra_level_links == 0

    def test_backbone_fraction(self):
        summary = summarize_hierarchy(build_isp_like_tree())
        assert summary.backbone_fraction == pytest.approx(2 / 5)

    def test_mean_customer_depth(self):
        summary = summarize_hierarchy(build_isp_like_tree())
        assert summary.mean_customer_depth == pytest.approx(3.0)

    def test_mean_customer_depth_nan_without_core(self):
        topo = Topology()
        topo.add_node("x", role=NodeRole.CUSTOMER)
        summary = summarize_hierarchy(topo)
        assert math.isnan(summary.mean_customer_depth)

    def test_level_link_matrix(self):
        summary = summarize_hierarchy(build_isp_like_tree())
        assert summary.level_link_matrix[("customer", "distribution")] == 2


class TestAssignLevels:
    def test_levels_follow_distance(self, path_topology):
        assignment = assign_levels_by_distance(path_topology, [0])
        assert assignment[0] == "core"
        assert assignment[1] == "backbone"
        assert assignment[2] == "distribution"
        assert assignment[3] == "access"
        assert assignment[4] == "customer"
        assert assignment[5] == "customer"

    def test_unknown_core_raises(self, path_topology):
        with pytest.raises(ValueError):
            assign_levels_by_distance(path_topology, ["nope"])

    def test_unreachable_nodes_are_customers(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        assignment = assign_levels_by_distance(topo, ["a"])
        assert assignment["b"] == "customer"

    def test_relabel_roles(self, path_topology):
        assignment = assign_levels_by_distance(path_topology, [0])
        relabel_roles_from_levels(path_topology, assignment)
        assert path_topology.node(0).role == NodeRole.CORE
        assert path_topology.node(5).role == NodeRole.CUSTOMER


def build_random_topology(num_nodes: int, seed: int, extra_links: int = 0) -> Topology:
    """Random tree plus chords with random roles (plus a detached island)."""
    rng = random.Random(seed)
    roles = list(NodeRole)
    topo = Topology()
    for i in range(num_nodes):
        topo.add_node(i, role=rng.choice(roles))
    for i in range(1, num_nodes):
        topo.add_link(i, rng.randrange(i))
    added = 0
    while added < extra_links:
        u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if u != v and not topo.has_link(u, v):
            topo.add_link(u, v)
            added += 1
    topo.add_node("island", role=NodeRole.CUSTOMER)
    return topo


def bfs_hops(topology: Topology, source) -> dict:
    """Plain per-source BFS hop distances over the object graph."""
    dist = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in topology.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


class TestAgainstPerCoreReference:
    """The single multi-source-BFS rewrites are bit-identical to the
    per-core-minimum loops they replaced."""

    @pytest.mark.parametrize("seed", [1, 7, 23, 61])
    def test_assign_levels_matches_per_core_minimum(self, seed):
        topo = build_random_topology(80, seed, extra_links=25)
        rng = random.Random(seed + 1)
        cores = rng.sample(range(80), rng.randint(1, 5))
        assignment = assign_levels_by_distance(topo, cores)
        per_core = [bfs_hops(topo, core) for core in cores]
        deepest = len(LEVEL_NAMES) - 1
        for node in topo.nodes():
            best = min(
                (dist[node.node_id] for dist in per_core if node.node_id in dist),
                default=None,
            )
            expected = "customer" if best is None else LEVEL_NAMES[min(best, deepest)]
            assert assignment[node.node_id] == expected, node.node_id

    @pytest.mark.parametrize("seed", [2, 13, 47])
    def test_mean_customer_depth_matches_per_core_minimum(self, seed):
        topo = build_random_topology(70, seed, extra_links=15)
        summary = summarize_hierarchy(topo)
        cores = [n.node_id for n in topo.nodes() if n.role == NodeRole.CORE]
        customers = [n.node_id for n in topo.nodes() if n.role == NodeRole.CUSTOMER]
        per_core = [bfs_hops(topo, core) for core in cores]
        depths = []
        for customer in customers:
            best = min(
                (dist[customer] for dist in per_core if customer in dist),
                default=None,
            )
            if best is not None:
                depths.append(best)
        if not cores or not depths:
            assert math.isnan(summary.mean_customer_depth)
        else:
            assert summary.mean_customer_depth == sum(depths) / len(depths)

    @pytest.mark.parametrize("seed", [3, 31])
    def test_summary_link_classification_matches_object_graph_loop(self, seed):
        topo = build_random_topology(60, seed, extra_links=20)
        summary = summarize_hierarchy(topo)
        intra = inter = 0
        matrix = {}
        for link in topo.links():
            lu = level_of(topo.node(link.source).role)
            lv = level_of(topo.node(link.target).role)
            key = (lu, lv) if lu <= lv else (lv, lu)
            matrix[key] = matrix.get(key, 0) + 1
            if lu == lv:
                intra += 1
            else:
                inter += 1
        assert summary.intra_level_links == intra
        assert summary.inter_level_links == inter
        assert summary.level_link_matrix == matrix

    def test_compiled_level_ranks_align_with_roles(self):
        topo = build_random_topology(40, seed=9)
        graph = topo.compiled()
        ranks = compiled_level_ranks(graph)
        assert len(ranks) == graph.num_nodes
        for node, rank in zip(graph.nodes, ranks):
            assert rank == LEVEL_RANKS[level_of(node.role)]


class TestDownwardTree:
    def test_clean_hierarchy_is_downward(self):
        assert is_downward_tree(build_isp_like_tree())

    def test_double_uplink_is_not_downward(self):
        topo = build_isp_like_tree()
        topo.add_node("bb2", role=NodeRole.BACKBONE)
        topo.add_link("core", "bb2")
        topo.add_link("bb2", "dist")  # dist now has two uplinks
        assert not is_downward_tree(topo)
