"""Tests for repro.topology.hierarchy."""

import math

import pytest

from repro.topology.graph import Topology
from repro.topology.hierarchy import (
    assign_levels_by_distance,
    is_downward_tree,
    level_of,
    relabel_roles_from_levels,
    summarize_hierarchy,
)
from repro.topology.node import NodeRole


def build_isp_like_tree() -> Topology:
    """core - backbone - distribution - customer chain plus an extra customer."""
    topo = Topology()
    topo.add_node("core", role=NodeRole.CORE)
    topo.add_node("bb", role=NodeRole.BACKBONE)
    topo.add_node("dist", role=NodeRole.DISTRIBUTION)
    topo.add_node("cust1", role=NodeRole.CUSTOMER, demand=1.0)
    topo.add_node("cust2", role=NodeRole.CUSTOMER, demand=2.0)
    topo.add_link("core", "bb")
    topo.add_link("bb", "dist")
    topo.add_link("dist", "cust1")
    topo.add_link("dist", "cust2")
    return topo


class TestLevelOf:
    def test_every_role_maps_to_a_level(self):
        for role in NodeRole:
            assert isinstance(level_of(role), str)

    def test_peering_maps_to_backbone(self):
        assert level_of(NodeRole.PEERING) == "backbone"


class TestSummarizeHierarchy:
    def test_level_counts(self):
        summary = summarize_hierarchy(build_isp_like_tree())
        assert summary.count("core") == 1
        assert summary.count("backbone") == 1
        assert summary.count("distribution") == 1
        assert summary.count("customer") == 2

    def test_inter_vs_intra_links(self):
        summary = summarize_hierarchy(build_isp_like_tree())
        assert summary.inter_level_links == 4
        assert summary.intra_level_links == 0

    def test_backbone_fraction(self):
        summary = summarize_hierarchy(build_isp_like_tree())
        assert summary.backbone_fraction == pytest.approx(2 / 5)

    def test_mean_customer_depth(self):
        summary = summarize_hierarchy(build_isp_like_tree())
        assert summary.mean_customer_depth == pytest.approx(3.0)

    def test_mean_customer_depth_nan_without_core(self):
        topo = Topology()
        topo.add_node("x", role=NodeRole.CUSTOMER)
        summary = summarize_hierarchy(topo)
        assert math.isnan(summary.mean_customer_depth)

    def test_level_link_matrix(self):
        summary = summarize_hierarchy(build_isp_like_tree())
        assert summary.level_link_matrix[("customer", "distribution")] == 2


class TestAssignLevels:
    def test_levels_follow_distance(self, path_topology):
        assignment = assign_levels_by_distance(path_topology, [0])
        assert assignment[0] == "core"
        assert assignment[1] == "backbone"
        assert assignment[2] == "distribution"
        assert assignment[3] == "access"
        assert assignment[4] == "customer"
        assert assignment[5] == "customer"

    def test_unknown_core_raises(self, path_topology):
        with pytest.raises(ValueError):
            assign_levels_by_distance(path_topology, ["nope"])

    def test_unreachable_nodes_are_customers(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        assignment = assign_levels_by_distance(topo, ["a"])
        assert assignment["b"] == "customer"

    def test_relabel_roles(self, path_topology):
        assignment = assign_levels_by_distance(path_topology, [0])
        relabel_roles_from_levels(path_topology, assignment)
        assert path_topology.node(0).role == NodeRole.CORE
        assert path_topology.node(5).role == NodeRole.CUSTOMER


class TestDownwardTree:
    def test_clean_hierarchy_is_downward(self):
        assert is_downward_tree(build_isp_like_tree())

    def test_double_uplink_is_not_downward(self):
        topo = build_isp_like_tree()
        topo.add_node("bb2", role=NodeRole.BACKBONE)
        topo.add_link("core", "bb2")
        topo.add_link("bb2", "dist")  # dist now has two uplinks
        assert not is_downward_tree(topo)
