"""Property tests for repro.topology.dynconn (HDT dynamic connectivity).

The structure is driven through randomized interleavings of insert/delete/
undo and checked against :func:`repro.topology.compiled.components_indices`
— the canonical connectivity oracle — on a Topology mirror kept in
lockstep.  Aggregates are cross-checked against exact :class:`~fractions`
sums (the fixed-point representation promises correctly-rounded,
shape-independent component sums), and rollback is checked *bit*-identical
(``struct``-packed doubles, not ``==``) after arbitrary revert depths.
"""

import random
import struct
from fractions import Fraction

import pytest

from repro.core.objectives import CostObjective
from repro.optimization.incremental import (
    AddLink,
    IncrementalState,
    RemoveLink,
    Rewire,
)
from repro.topology.compiled import KERNEL_COUNTERS, components_indices
from repro.topology.dynconn import ComponentSummary, DynamicConnectivity
from repro.topology.graph import Topology
from repro.topology.link import edge_key
from repro.topology.node import NodeRole


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


def _pack_summary(summary: ComponentSummary):
    """Bit-exact snapshot of one component summary."""
    return (
        summary.size,
        summary.has_core,
        _bits(summary.demand),
        _bits(summary.revenue),
    )


class Mirror:
    """A DynamicConnectivity kept in lockstep with a plain Topology.

    Every mutation pushes an (undo-token, inverse-topology-op) pair so the
    pair of structures can be rolled back together and re-compared against
    the oracle at any depth.
    """

    def __init__(self, num_vertices: int, seed: int):
        rng = random.Random(seed)
        self.topology = Topology(name=f"dynconn-mirror-{seed}")
        self.dyn = DynamicConnectivity()
        self.payload = {}
        self.vertices = [f"n{i}" for i in range(num_vertices)]
        for i, vertex in enumerate(self.vertices):
            is_core = rng.random() < 0.15
            demand = rng.uniform(0.5, 9.5) if not is_core else 0.0
            revenue = demand * rng.uniform(0.1, 2.0)
            self.payload[vertex] = (is_core, demand, revenue)
            self.topology.add_node(
                vertex,
                role=NodeRole.CORE if is_core else NodeRole.CUSTOMER,
                demand=demand,
            )
            self.dyn.add_vertex(vertex, is_core=is_core, demand=demand, revenue=revenue)
        self.stack = []

    # -- lockstep mutation ---------------------------------------------
    def insert(self, u, v):
        self.topology.add_link(u, v)
        token = self.dyn.insert(u, v)
        self.stack.append((token, ("remove", u, v)))

    def delete(self, u, v):
        self.topology.remove_link(u, v)
        token = self.dyn.delete(u, v)
        self.stack.append((token, ("add", u, v)))

    def undo(self):
        token, (op, u, v) = self.stack.pop()
        self.dyn.undo(token)
        if op == "add":
            self.topology.add_link(u, v)
        else:
            self.topology.remove_link(u, v)

    # -- oracle comparison ---------------------------------------------
    def oracle_components(self, backend):
        graph = self.topology.compiled()
        labels, count = components_indices(graph, backend=backend)
        members = [[] for _ in range(count)]
        for index, label in enumerate(labels):
            members[label].append(graph.ids[index])
        return members

    def check_against_oracle(self, backend="python"):
        oracle = self.oracle_components(backend)
        # components() reproduces the oracle's canonical first-node order.
        assert list(self.dyn.components().values()) == oracle
        for members in oracle:
            exact_demand = sum(
                (Fraction(self.payload[v][1]) for v in members), Fraction(0)
            )
            exact_revenue = sum(
                (Fraction(self.payload[v][2]) for v in members), Fraction(0)
            )
            expected = ComponentSummary(
                size=len(members),
                has_core=any(self.payload[v][0] for v in members),
                demand=float(exact_demand),
                revenue=float(exact_revenue),
            )
            for vertex in members:
                assert self.dyn.summary(vertex) == expected
                assert self.dyn.component_size(vertex) == expected.size
                assert self.dyn.has_core_component(vertex) == expected.has_core
        for u, v in (random.Random(len(oracle)).sample(self.vertices, 2),):
            label = {m: i for i, ms in enumerate(oracle) for m in ms}
            assert self.dyn.connected(u, v) == (label[u] == label[v])

    def snapshot(self):
        """Bit-exact observable state: partition plus every component summary."""
        return (
            tuple(tuple(ms) for ms in self.dyn.components().values()),
            tuple(_pack_summary(self.dyn.summary(v)) for v in self.vertices),
        )


def _random_step(mirror: Mirror, rng: random.Random) -> bool:
    roll = rng.random()
    if roll < 0.25 and mirror.stack:
        mirror.undo()
        return True
    if roll < 0.6 and mirror.dyn.num_edges:
        key = rng.choice(sorted(mirror.dyn._edges))
        mirror.delete(*key)
        return True
    u, v = rng.sample(mirror.vertices, 2)
    if mirror.dyn.has_edge(u, v):
        return False
    mirror.insert(u, v)
    return True


class TestAgainstOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("backend", ["python", None])
    def test_interleaved_mutations_match_components_indices(self, seed, backend):
        """insert/delete/undo interleavings track the canonical oracle."""
        rng = random.Random(seed)
        mirror = Mirror(num_vertices=rng.randrange(20, 40), seed=seed)
        steps = 0
        for _ in range(220):
            if _random_step(mirror, rng):
                steps += 1
            if steps % 17 == 0:
                mirror.check_against_oracle(backend=backend)
        mirror.check_against_oracle(backend=backend)
        assert steps > 150

    @pytest.mark.parametrize("seed", [0, 1])
    def test_bulk_build_matches_incremental(self, seed):
        """build() and one-edge-at-a-time insertion agree on every observable."""
        rng = random.Random(seed)
        mirror = Mirror(num_vertices=30, seed=seed)
        edges = set()
        while len(edges) < 45:
            u, v = rng.sample(mirror.vertices, 2)
            key = edge_key(u, v)
            if key not in edges:
                edges.add(key)
                mirror.insert(u, v)
        bulk = DynamicConnectivity()
        bulk.build(
            (
                (v, mirror.payload[v][0], mirror.payload[v][1], mirror.payload[v][2])
                for v in mirror.vertices
            ),
            sorted(edges),
        )
        assert bulk.components() == mirror.dyn.components()
        for vertex in mirror.vertices:
            assert bulk.summary(vertex) == mirror.dyn.summary(vertex)
        mirror.check_against_oracle()


class TestUndo:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rollback_is_bit_identical_at_arbitrary_depths(self, seed):
        """Snapshots taken mid-sequence are restored bit-exactly by undo."""
        rng = random.Random(100 + seed)
        mirror = Mirror(num_vertices=25, seed=seed)
        snapshots = [(len(mirror.stack), mirror.snapshot())]
        for _ in range(160):
            _random_step(mirror, rng)
            # A snapshot dies once the walk undoes *below* its depth — the
            # operations later re-pushed at that depth are different ones.
            while snapshots and len(mirror.stack) < snapshots[-1][0]:
                snapshots.pop()
            if rng.random() < 0.2:
                snapshots.append((len(mirror.stack), mirror.snapshot()))
        # Unwind to each recorded depth in turn (strict LIFO) and compare.
        for depth, snapshot in reversed(snapshots):
            while len(mirror.stack) > depth:
                mirror.undo()
            assert mirror.snapshot() == snapshot
        mirror.check_against_oracle()

    def test_delete_all_then_undo_all_restores_summaries(self):
        mirror = Mirror(num_vertices=40, seed=7)
        rng = random.Random(7)
        while mirror.dyn.num_edges < 60:
            u, v = rng.sample(mirror.vertices, 2)
            if not mirror.dyn.has_edge(u, v):
                mirror.insert(u, v)
        before = mirror.snapshot()
        depth = len(mirror.stack)
        for key in sorted(mirror.dyn._edges):
            mirror.delete(*key)
        assert mirror.dyn.num_edges == 0
        assert all(mirror.dyn.component_size(v) == 1 for v in mirror.vertices)
        while len(mirror.stack) > depth:
            mirror.undo()
        assert mirror.snapshot() == before
        mirror.check_against_oracle()

    def test_double_undo_raises(self):
        dyn = DynamicConnectivity()
        for v in "ab":
            dyn.add_vertex(v)
        token = dyn.insert("a", "b")
        dyn.undo(token)
        with pytest.raises(AssertionError):
            dyn.undo(token)  # arc pair already freed: the ETT cut detects it


class TestVertices:
    def test_remove_vertex_requires_isolation(self):
        dyn = DynamicConnectivity()
        dyn.add_vertex("a")
        dyn.add_vertex("b", demand=3.0)
        dyn.insert("a", "b")
        with pytest.raises(ValueError):
            dyn.remove_vertex("a")
        dyn.delete("a", "b")
        dyn.remove_vertex("a")
        assert "a" not in dyn
        assert len(dyn) == 1

    def test_duplicate_vertex_and_edge_rejected(self):
        dyn = DynamicConnectivity()
        dyn.add_vertex("a")
        dyn.add_vertex("b")
        with pytest.raises(ValueError):
            dyn.add_vertex("a")
        dyn.insert("a", "b")
        with pytest.raises(ValueError):
            dyn.insert("b", "a")
        with pytest.raises(ValueError):
            dyn.delete("a", "c")


def _engine_fixture(seed: int, size: int = 30) -> Topology:
    """An access tree with *integral* demands (exact in float, so the
    dynconn engine's correctly-rounded component sums coincide bitwise with
    the fallback's accumulated floats)."""
    rng = random.Random(seed)
    topology = Topology(name=f"engine-eq-{seed}")
    topology.add_node("core0", role=NodeRole.CORE, location=(0.5, 0.5))
    for i in range(size):
        topology.add_node(
            f"c{i}",
            role=NodeRole.CUSTOMER,
            location=(rng.random(), rng.random()),
            demand=float(rng.randint(1, 9)),
        )
        target = "core0" if i == 0 else f"c{rng.randrange(i)}"
        topology.add_link(f"c{i}", target, install_cost=2.0, usage_cost=0.1)
    return topology


def _engine_moves(topology: Topology, rng: random.Random):
    """A deletion-heavy move (≥50% RemoveLink/Rewire by construction)."""
    node_ids = [n.node_id for n in topology.nodes()]
    roll = rng.random()
    if roll < 0.35:
        link = rng.choice(list(topology.links()))
        return RemoveLink(link.source, link.target)
    if roll < 0.55:
        leaves = [n for n in node_ids if topology.degree(n) == 1]
        if not leaves:
            return None
        node = rng.choice(leaves)
        old = topology.neighbors(node)[0]
        new = rng.choice([x for x in node_ids if x not in (node, old)])
        if topology.has_link(node, new):
            return None
        return Rewire(node, old, new)
    u, v = rng.sample(node_ids, 2)
    if topology.has_link(u, v):
        return None
    return AddLink(u, v, install_cost=2.0, usage_cost=0.05)


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_dynconn_and_fallback_trajectories_bitwise_identical(self, seed):
        """Same moves, both engines: every delta and score agrees bit-for-bit,
        and only the fallback ever rebuilds reachability."""
        dyn_state = IncrementalState(_engine_fixture(seed), CostObjective())
        fb_state = IncrementalState(
            _engine_fixture(seed), CostObjective(), use_dynconn=False
        )
        assert dyn_state._dyn is not None
        assert fb_state._dyn is None
        assert _bits(dyn_state.score) == _bits(fb_state.score)
        before = KERNEL_COUNTERS.snapshot()
        rng_moves = random.Random(200 + seed)
        rng_mirror = random.Random(200 + seed)
        applied = deletions = 0
        for _ in range(120):
            move = _engine_moves(dyn_state.topology, rng_moves)
            mirror_move = _engine_moves(fb_state.topology, rng_mirror)
            assert type(move) is type(mirror_move)
            if move is None:
                continue
            try:
                delta = dyn_state.apply(move)
            except Exception:
                with pytest.raises(Exception):
                    fb_state.apply(mirror_move)
                continue
            assert _bits(delta) == _bits(fb_state.apply(mirror_move))
            assert _bits(dyn_state.score) == _bits(fb_state.score)
            applied += 1
            deletions += isinstance(move, (RemoveLink, Rewire))
            dyn_state.verify()
            rng_mirror.random()  # keep the streams in lockstep
            if rng_moves.random() < 0.4:
                dyn_state.revert()
                fb_state.revert()
                assert _bits(dyn_state.score) == _bits(fb_state.score)
        assert applied > 30 and deletions > 10
        dyn_state.revert_to(0)
        fb_state.revert_to(0)
        assert _bits(dyn_state.score) == _bits(fb_state.score)
        after = KERNEL_COUNTERS.snapshot()
        spent = {k: after[k] - before[k] for k in after}
        # The dynconn engine never swept; the fallback swept on every deletion.
        assert spent["reachability_rebuilds"] >= deletions
        assert spent["dynconn_replacement_searches"] > 0
        only_dyn = IncrementalState(_engine_fixture(seed), CostObjective())
        mark = KERNEL_COUNTERS.snapshot()["reachability_rebuilds"]
        rng_moves = random.Random(200 + seed)
        for _ in range(120):
            move = _engine_moves(only_dyn.topology, rng_moves)
            if move is None:
                continue
            try:
                only_dyn.apply(move)
            except Exception:
                continue
            if rng_moves.random() < 0.4:
                only_dyn.revert()
        assert KERNEL_COUNTERS.snapshot()["reachability_rebuilds"] == mark

    def test_env_variable_selects_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_DYNCONN", "0")
        state = IncrementalState(_engine_fixture(0), CostObjective())
        assert state._dyn is None
        monkeypatch.setenv("REPRO_DYNCONN", "1")
        state = IncrementalState(_engine_fixture(0), CostObjective())
        assert state._dyn is not None
