"""Tests for repro.topology.graph.Topology."""

import pytest

from repro.topology.graph import Topology, TopologyError, union
from repro.topology.node import NodeRole


class TestNodeOperations:
    def test_add_and_lookup(self):
        topo = Topology()
        topo.add_node("a", role=NodeRole.CORE, location=(0, 0))
        assert topo.has_node("a")
        assert topo.node("a").role == NodeRole.CORE
        assert topo.num_nodes == 1

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_node("a")

    def test_ensure_node_idempotent(self):
        topo = Topology()
        first = topo.ensure_node("a", role=NodeRole.CORE)
        second = topo.ensure_node("a", role=NodeRole.CUSTOMER)
        assert first is second
        assert topo.node("a").role == NodeRole.CORE

    def test_missing_node_raises(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.node("ghost")

    def test_remove_node_removes_incident_links(self, triangle_topology):
        triangle_topology.remove_node("b")
        assert not triangle_topology.has_node("b")
        assert triangle_topology.num_links == 1
        assert triangle_topology.has_link("a", "c")

    def test_nodes_by_role(self, triangle_topology):
        customers = triangle_topology.nodes_by_role(NodeRole.CUSTOMER)
        assert {n.node_id for n in customers} == {"b", "c"}

    def test_contains_and_len(self, triangle_topology):
        assert "a" in triangle_topology
        assert "zzz" not in triangle_topology
        assert len(triangle_topology) == 3


class TestLinkOperations:
    def test_add_link_requires_nodes(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "missing")

    def test_duplicate_link_rejected(self, triangle_topology):
        with pytest.raises(TopologyError):
            triangle_topology.add_link("a", "b")

    def test_duplicate_link_reversed_rejected(self, triangle_topology):
        with pytest.raises(TopologyError):
            triangle_topology.add_link("b", "a")

    def test_length_defaults_to_euclidean(self, triangle_topology):
        assert triangle_topology.link("a", "b").length == pytest.approx(1.0)
        assert triangle_topology.link("b", "c").length == pytest.approx(2 ** 0.5)

    def test_length_zero_without_locations(self, path_topology):
        assert path_topology.link(0, 1).length == 0.0

    def test_remove_link(self, triangle_topology):
        triangle_topology.remove_link("a", "b")
        assert not triangle_topology.has_link("a", "b")
        assert triangle_topology.num_links == 2

    def test_remove_missing_link_raises(self, path_topology):
        with pytest.raises(TopologyError):
            path_topology.remove_link(0, 5)

    def test_max_degree_enforced_on_add(self):
        topo = Topology()
        topo.add_node("hub", max_degree=1)
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("hub", "a")
        with pytest.raises(TopologyError):
            topo.add_link("hub", "b")

    def test_has_link_self(self, triangle_topology):
        assert not triangle_topology.has_link("a", "a")


class TestStructure:
    def test_degree_and_sequence(self, star_topology):
        assert star_topology.degree("hub") == 5
        assert sorted(star_topology.degree_sequence()) == [1, 1, 1, 1, 1, 5]

    def test_max_degree_node(self, star_topology):
        assert star_topology.max_degree_node() == "hub"

    def test_neighbors(self, path_topology):
        assert set(path_topology.neighbors(2)) == {1, 3}

    def test_bfs_order_reaches_all(self, path_topology):
        assert set(path_topology.bfs_order(0)) == set(range(6))

    def test_hop_distances(self, path_topology):
        distances = path_topology.hop_distances(0)
        assert distances[5] == 5
        assert distances[0] == 0

    def test_connected_components_single(self, path_topology):
        assert len(path_topology.connected_components()) == 1

    def test_connected_components_multiple(self):
        topo = Topology()
        for i in range(4):
            topo.add_node(i)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        assert len(topo.connected_components()) == 2
        assert not topo.is_connected()

    def test_is_tree(self, path_topology, triangle_topology):
        assert path_topology.is_tree()
        assert not triangle_topology.is_tree()

    def test_is_forest(self):
        topo = Topology()
        for i in range(4):
            topo.add_node(i)
        topo.add_link(0, 1)
        topo.add_link(2, 3)
        assert topo.is_forest()
        topo.add_link(1, 2)
        topo.add_link(3, 0)
        assert not topo.is_forest()

    def test_empty_topology_not_connected(self):
        assert not Topology().is_connected()
        assert not Topology().is_tree()

    def test_subgraph(self, triangle_topology):
        sub = triangle_topology.subgraph(["a", "b"])
        assert sub.num_nodes == 2
        assert sub.num_links == 1
        assert sub.node("b").demand == 2.0

    def test_subgraph_missing_node_raises(self, triangle_topology):
        with pytest.raises(TopologyError):
            triangle_topology.subgraph(["a", "zzz"])

    def test_copy_is_independent(self, triangle_topology):
        duplicate = triangle_topology.copy()
        duplicate.remove_node("a")
        assert triangle_topology.has_node("a")
        assert duplicate.num_nodes == 2


class TestAggregates:
    def test_costs(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", install_cost=10.0, usage_cost=2.0, load=3.0)
        assert topo.total_install_cost() == pytest.approx(10.0)
        assert topo.total_usage_cost() == pytest.approx(6.0)
        assert topo.total_cost() == pytest.approx(16.0)

    def test_total_demand(self, triangle_topology):
        assert triangle_topology.total_demand() == pytest.approx(5.0)

    def test_role_counts(self, star_topology):
        counts = star_topology.role_counts()
        assert counts[NodeRole.CORE] == 1
        assert counts[NodeRole.CUSTOMER] == 5

    def test_total_length(self, triangle_topology):
        assert triangle_topology.total_length() == pytest.approx(2 + 2 ** 0.5)


class TestValidation:
    def test_valid_topology_has_no_problems(self, triangle_topology):
        assert triangle_topology.validate() == []

    def test_overloaded_link_detected(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        link = topo.add_link("a", "b", capacity=10.0)
        link.load = 20.0
        problems = topo.validate()
        assert any("overloaded" in p for p in problems)


class TestUnion:
    def test_union_merges_disjoint(self, path_topology, star_topology):
        merged = union([path_topology, star_topology])
        assert merged.num_nodes == path_topology.num_nodes + star_topology.num_nodes
        assert merged.num_links == path_topology.num_links + star_topology.num_links

    def test_union_deduplicates_shared_nodes(self):
        t1 = Topology()
        t1.add_node("x", demand=1.0)
        t1.add_node("y")
        t1.add_link("x", "y")
        t2 = Topology()
        t2.add_node("x", demand=99.0)
        t2.add_node("z")
        t2.add_link("x", "z")
        merged = union([t1, t2])
        assert merged.num_nodes == 3
        assert merged.node("x").demand == 1.0
        assert merged.num_links == 2


class TestSelfLoopErrors:
    """Self-loop attempts raise TopologyError everywhere, never bare ValueError."""

    def build(self) -> Topology:
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b")
        return topo

    def test_add_link_self_loop_raises_topology_error(self):
        topo = self.build()
        with pytest.raises(TopologyError, match="self-loop"):
            topo.add_link("a", "a")

    def test_link_lookup_self_loop_raises_topology_error(self):
        topo = self.build()
        with pytest.raises(TopologyError, match="self-loop"):
            topo.link("a", "a")

    def test_remove_link_self_loop_raises_topology_error(self):
        topo = self.build()
        with pytest.raises(TopologyError, match="self-loop"):
            topo.remove_link("a", "a")

    def test_has_link_self_loop_is_false_not_error(self):
        topo = self.build()
        assert topo.has_link("a", "a") is False

    def test_missing_link_still_topology_error(self):
        topo = self.build()
        with pytest.raises(TopologyError, match="does not exist"):
            topo.link("a", "ghost")
        with pytest.raises(TopologyError, match="does not exist"):
            topo.remove_link("a", "ghost")
