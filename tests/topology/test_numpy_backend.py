"""Property tests for the numpy batch backend of the compiled kernels.

The contract under test (see the ``repro.topology.compiled`` docstring):

* distances are **bit-identical** between backends on integral weight
  columns and agree to 1e-9 otherwise (in practice they are bit-identical
  there too — both backends take float minima over the same relaxation
  sums — so the tolerance is slack, not an expected error);
* hop counts, component labels, and nearest-source maps are exact integers
  and must match exactly, including the canonical first-node-order
  component labelling;
* the batch counters (``batch_dijkstra_calls``/``batch_sources_total``)
  prove which path ran: engaged under the numpy backend, untouched under
  the python backend — so CI can assert no silent fallback;
* the named weight columns and their derived ``csr_matrix`` are cached per
  snapshot, while annotation-dependent columns bypass the cache.

Every numpy-path test skips (visibly) when scipy is masked — the
``REPRO_BACKEND=python`` CI leg runs only the backend-selection tests plus
the pure-Python sides of the parity pairs.
"""

import math
import random

import pytest

from repro.topology.compiled import (
    DEFAULT_BACKEND,
    KERNEL_COUNTERS,
    SMALL_GRAPH_NODES,
    CompiledGraph,
    batch_hop_lengths,
    batch_shortest_lengths,
    components_indices,
    have_numpy_backend,
    multi_source_bfs_indices,
    multi_source_distances,
    resolve_backend,
)
from repro.topology.graph import Topology

requires_numpy = pytest.mark.skipif(
    not have_numpy_backend(), reason="numpy/scipy backend unavailable or masked"
)

#: Large enough that every SMALL_GRAPH_NODES-gated kernel takes its numpy path.
LARGE = SMALL_GRAPH_NODES + 88


def random_topology(
    num_nodes: int,
    seed: int = 7,
    integral: bool = False,
    isolated: int = 0,
) -> Topology:
    """Random tree + chords; optionally integral lengths / isolated tail nodes."""
    rng = random.Random(seed)
    topo = Topology()
    for i in range(num_nodes):
        topo.add_node(i)
    connected = num_nodes - isolated

    def length() -> float:
        return float(rng.randint(1, 9)) if integral else rng.uniform(0.1, 2.0)

    for i in range(1, connected):
        topo.add_link(i, rng.randrange(i), length=length())
    added = 0
    while added < connected // 3:
        u, v = rng.randrange(connected), rng.randrange(connected)
        if u != v and not topo.has_link(u, v):
            topo.add_link(u, v, length=length())
            added += 1
    return topo


def sample_sources(graph: CompiledGraph, count: int, seed: int = 13):
    return random.Random(seed).sample(range(graph.num_nodes), count)


class TestBackendSelection:
    def test_auto_resolves_to_default(self):
        assert resolve_backend(None) == DEFAULT_BACKEND
        assert resolve_backend("auto") == DEFAULT_BACKEND

    def test_python_always_available(self):
        assert resolve_backend("python") == "python"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("fortran")

    def test_default_matches_availability(self):
        assert DEFAULT_BACKEND == ("numpy" if have_numpy_backend() else "python")

    @pytest.mark.skipif(
        have_numpy_backend(), reason="covered only when scipy is masked"
    )
    def test_numpy_request_raises_when_masked(self):
        # No silent fallback: an explicit backend="numpy" must fail loudly
        # on the no-scipy leg, not quietly run the pure-Python kernel.
        with pytest.raises(RuntimeError, match="numpy backend requested"):
            resolve_backend("numpy")


@requires_numpy
class TestNativeBuffers:
    def test_csr_buffer_dtypes(self):
        import numpy as np

        graph = random_topology(40).compiled()
        assert isinstance(graph.indptr, np.ndarray) and graph.indptr.dtype == np.int32
        assert isinstance(graph.indices, np.ndarray) and graph.indices.dtype == np.int32
        assert graph.half_edge_ids.dtype == np.int64
        assert graph.edge_u.dtype == np.int32
        assert graph.edge_v.dtype == np.int32

    def test_weight_columns_are_float64(self):
        import numpy as np

        graph = random_topology(40).compiled()
        for name in (None, "length", "hops"):
            column = graph.edge_weight_column(name)
            assert isinstance(column, np.ndarray) and column.dtype == np.float64
            assert len(column) == graph.num_edges


@requires_numpy
class TestColumnAndCsrCaching:
    def test_named_columns_cached_per_snapshot(self):
        graph = random_topology(40).compiled()
        assert graph.edge_weight_column("length") is graph.edge_weight_column("length")
        assert graph.edge_weight_column("hops") is graph.edge_weight_column("hops")
        # None aliases the default length column.
        assert graph.edge_weight_column(None) is graph.edge_weight_column("length")

    def test_annotation_dependent_columns_bypass_cache(self):
        # "inverse-capacity" depends on link annotations, which mutate
        # without bumping Topology.version — caching it would serve stale
        # weights after provisioning.
        topo = random_topology(40)
        graph = topo.compiled()
        weight = lambda link: 1.0 / link.capacity if link.capacity else 1.0  # noqa: E731
        first = graph.edge_weight_column("inverse-capacity", weight)
        next(iter(topo.links())).capacity = 1024.0
        second = graph.edge_weight_column("inverse-capacity", weight)
        assert first is not second
        assert list(first) != list(second)

    def test_csr_cached_by_column_identity(self):
        graph = random_topology(40).compiled()
        column = graph.edge_weight_column("length")
        assert graph.scipy_csr(column) is graph.scipy_csr(column)
        # A fresh (equal-valued) column object is a cache miss by design.
        other = graph.edge_weights(None)
        assert graph.scipy_csr(other) is not graph.scipy_csr(column)

    def test_csr_values_match_links(self):
        topo = random_topology(30, integral=True)
        graph = topo.compiled()
        matrix = graph.scipy_csr(graph.edge_weight_column("length"))
        for link in topo.links():
            u = graph.index_of[link.source]
            v = graph.index_of[link.target]
            assert matrix[u, v] == link.length
            assert matrix[v, u] == link.length


@requires_numpy
class TestDistanceParity:
    def test_integral_weights_bit_identical(self):
        graph = random_topology(LARGE, integral=True).compiled()
        weights = graph.edge_weight_column("length")
        sources = sample_sources(graph, 24)
        python_rows = batch_shortest_lengths(graph, sources, weights, backend="python")
        numpy_rows = batch_shortest_lengths(graph, sources, weights, backend="numpy")
        assert numpy_rows == python_rows

    def test_float_weights_within_tolerance(self):
        graph = random_topology(LARGE).compiled()
        weights = graph.edge_weight_column("length")
        sources = sample_sources(graph, 24)
        python_rows = batch_shortest_lengths(graph, sources, weights, backend="python")
        numpy_rows = batch_shortest_lengths(graph, sources, weights, backend="numpy")
        for py_row, np_row in zip(python_rows, numpy_rows):
            for a, b in zip(py_row, np_row):
                assert a == b or abs(a - b) <= 1e-9

    def test_unreachable_nodes_are_inf_in_both(self):
        graph = random_topology(LARGE, isolated=5).compiled()
        weights = graph.edge_weight_column("length")
        for backend in ("python", "numpy"):
            row = batch_shortest_lengths(graph, [0], weights, backend=backend)[0]
            assert sum(1 for d in row if math.isinf(d)) == 5

    def test_multi_source_distances_parity(self):
        graph = random_topology(LARGE, isolated=3).compiled()
        weights = graph.edge_weight_column("length")
        sources = sample_sources(graph, 9)
        python_dist = multi_source_distances(graph, sources, weights, backend="python")
        numpy_dist = multi_source_distances(graph, sources, weights, backend="numpy")
        for a, b in zip(python_dist, numpy_dist):
            assert a == b or abs(a - b) <= 1e-9

    def test_hop_rows_exact(self):
        graph = random_topology(LARGE, isolated=4).compiled()
        sources = sample_sources(graph, 16)
        assert batch_hop_lengths(graph, sources, backend="numpy") == batch_hop_lengths(
            graph, sources, backend="python"
        )

    def test_multi_source_bfs_exact(self):
        graph = random_topology(LARGE, isolated=4).compiled()
        sources = sample_sources(graph, 7)
        assert multi_source_bfs_indices(
            graph, sources, backend="numpy"
        ) == multi_source_bfs_indices(graph, sources, backend="python")

    def test_components_exact_and_canonical(self):
        # 3 isolated tail nodes -> 4 components; labels must be assigned in
        # first-node order under both backends (scipy's arbitrary labels are
        # re-canonicalized).
        graph = random_topology(LARGE, isolated=3).compiled()
        python_labels, python_count = components_indices(graph, backend="python")
        numpy_labels, numpy_count = components_indices(graph, backend="numpy")
        assert numpy_count == python_count == 4
        assert numpy_labels == python_labels
        assert python_labels[0] == 0  # first node carries the first label


@requires_numpy
class TestBatchCounters:
    def test_numpy_batch_engages_and_counts_sources(self):
        graph = random_topology(LARGE, integral=True).compiled()
        weights = graph.edge_weight_column("length")
        sources = sample_sources(graph, 12)
        KERNEL_COUNTERS.reset()
        batch_shortest_lengths(graph, sources, weights, backend="numpy")
        counters = KERNEL_COUNTERS.snapshot()
        assert counters["batch_dijkstra_calls"] >= 1
        assert counters["batch_sources_total"] == len(sources)
        # The algorithm-count contract is backend-independent.
        assert counters["single_source"] == len(sources)

    def test_python_backend_never_touches_batch_counters(self):
        graph = random_topology(LARGE, integral=True).compiled()
        weights = graph.edge_weight_column("length")
        sources = sample_sources(graph, 12)
        KERNEL_COUNTERS.reset()
        batch_shortest_lengths(graph, sources, weights, backend="python")
        multi_source_distances(graph, sources, weights, backend="python")
        batch_hop_lengths(graph, sources, backend="python")
        counters = KERNEL_COUNTERS.snapshot()
        assert counters["batch_dijkstra_calls"] == 0
        assert counters["batch_sources_total"] == 0
        assert counters["single_source"] == len(sources)

    def test_small_graphs_stay_python_for_integer_kernels(self):
        # Below SMALL_GRAPH_NODES the exact-integer kernels skip scipy:
        # dispatch overhead exceeds the work saved, results identical.
        graph = random_topology(SMALL_GRAPH_NODES // 4).compiled()
        KERNEL_COUNTERS.reset()
        batch_hop_lengths(graph, [0, 1, 2], backend="numpy")
        multi_source_bfs_indices(graph, [0, 1], backend="numpy")
        components_indices(graph, backend="numpy")
        assert KERNEL_COUNTERS.snapshot()["batch_dijkstra_calls"] == 0

    def test_counter_slots_include_batch_counters(self):
        snapshot = KERNEL_COUNTERS.snapshot()
        assert "batch_dijkstra_calls" in snapshot
        assert "batch_sources_total" in snapshot
