"""Tests for repro.topology.node."""

import pytest

from repro.topology.node import Node, NodeRole, ROLE_RANK


class TestNodeRole:
    def test_all_roles_have_rank(self):
        for role in NodeRole:
            assert role in ROLE_RANK

    def test_core_has_lowest_rank(self):
        assert ROLE_RANK[NodeRole.CORE] == 0
        assert all(ROLE_RANK[r] >= 0 for r in NodeRole)

    def test_customer_is_not_infrastructure(self):
        assert not NodeRole.CUSTOMER.is_infrastructure()
        assert not NodeRole.GENERIC.is_infrastructure()

    def test_core_is_infrastructure(self):
        assert NodeRole.CORE.is_infrastructure()
        assert NodeRole.BACKBONE.is_infrastructure()
        assert NodeRole.ACCESS.is_infrastructure()


class TestNode:
    def test_basic_construction(self):
        node = Node(node_id="r1", role=NodeRole.CORE, location=(1, 2))
        assert node.node_id == "r1"
        assert node.role == NodeRole.CORE
        assert node.location == (1.0, 2.0)

    def test_location_coerced_to_floats(self):
        node = Node(node_id=1, location=(3, 4))
        assert isinstance(node.location[0], float)
        assert isinstance(node.location[1], float)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            Node(node_id=1, demand=-1.0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Node(node_id=1, capacity=-5.0)

    def test_zero_max_degree_rejected(self):
        with pytest.raises(ValueError):
            Node(node_id=1, max_degree=0)

    def test_rank_follows_role(self):
        assert Node(node_id=1, role=NodeRole.CORE).rank < Node(node_id=2, role=NodeRole.CUSTOMER).rank

    def test_is_customer(self):
        assert Node(node_id=1, role=NodeRole.CUSTOMER).is_customer()
        assert not Node(node_id=2, role=NodeRole.CORE).is_customer()

    def test_with_role_preserves_other_fields(self):
        node = Node(node_id="x", role=NodeRole.CUSTOMER, demand=3.0, city="metro")
        promoted = node.with_role(NodeRole.ACCESS)
        assert promoted.role == NodeRole.ACCESS
        assert promoted.demand == 3.0
        assert promoted.city == "metro"
        assert node.role == NodeRole.CUSTOMER

    def test_round_trip_dict(self):
        node = Node(
            node_id="n1",
            role=NodeRole.DISTRIBUTION,
            location=(0.5, 0.25),
            capacity=100.0,
            demand=2.5,
            max_degree=8,
            city="gotham",
            attributes={"vendor": "acme"},
        )
        restored = Node.from_dict(node.to_dict())
        assert restored == node

    def test_from_dict_defaults(self):
        restored = Node.from_dict({"node_id": 7})
        assert restored.role == NodeRole.GENERIC
        assert restored.location is None
        assert restored.demand == 0.0
