"""Tests for repro.topology.serialization."""

import pytest

from repro.topology.graph import Topology
from repro.topology.node import NodeRole
from repro.topology.serialization import (
    from_networkx,
    load_json,
    save_edge_list,
    save_json,
    to_edge_list,
    to_networkx,
    topology_from_dict,
    topology_to_dict,
)


class TestDictRoundTrip:
    def test_round_trip_preserves_structure(self, triangle_topology):
        triangle_topology.metadata["note"] = "test"
        restored = topology_from_dict(topology_to_dict(triangle_topology))
        assert restored.num_nodes == 3
        assert restored.num_links == 3
        assert restored.metadata["note"] == "test"
        assert restored.node("b").demand == 2.0
        assert restored.node("a").role == NodeRole.CORE

    def test_round_trip_preserves_link_annotations(self):
        topo = Topology()
        topo.add_node("a")
        topo.add_node("b")
        topo.add_link("a", "b", capacity=155.0, cable="OC-3", install_cost=3.0)
        restored = topology_from_dict(topology_to_dict(topo))
        link = restored.link("a", "b")
        assert link.capacity == 155.0
        assert link.cable == "OC-3"


class TestJson:
    def test_save_and_load(self, tmp_path, star_topology):
        path = tmp_path / "star.json"
        save_json(star_topology, path)
        restored = load_json(path)
        assert restored.num_nodes == star_topology.num_nodes
        assert restored.num_links == star_topology.num_links
        assert restored.node("hub").role == NodeRole.CORE


class TestEdgeList:
    def test_edge_list_lines(self, triangle_topology):
        lines = to_edge_list(triangle_topology)
        assert len(lines) == 3
        assert all(len(line.split()) == 4 for line in lines)

    def test_unbounded_capacity_rendered_as_inf(self, path_topology):
        lines = to_edge_list(path_topology)
        assert all(line.endswith("inf") for line in lines)

    def test_save_edge_list(self, tmp_path, triangle_topology):
        path = tmp_path / "edges.txt"
        save_edge_list(triangle_topology, path)
        assert len(path.read_text().strip().splitlines()) == 3


class TestNetworkx:
    def test_to_networkx(self, triangle_topology):
        pytest.importorskip("networkx")
        graph = to_networkx(triangle_topology)
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3
        assert graph.nodes["a"]["role"] == "core"

    def test_round_trip_via_networkx(self, triangle_topology):
        pytest.importorskip("networkx")
        graph = to_networkx(triangle_topology)
        restored = from_networkx(graph)
        assert restored.num_nodes == 3
        assert restored.num_links == 3
        assert restored.node("a").role == NodeRole.CORE
        assert restored.node("c").demand == 3.0

    def test_from_networkx_skips_self_loops(self):
        nx = pytest.importorskip("networkx")
        graph = nx.Graph()
        graph.add_edge("a", "a")
        graph.add_edge("a", "b")
        restored = from_networkx(graph)
        assert restored.num_links == 1
