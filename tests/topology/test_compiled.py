"""Tests for repro.topology.compiled (CSR view + versioned invalidation)."""

import pytest

from repro.topology.compiled import (
    KERNEL_COUNTERS,
    bfs_indices,
    components_indices,
    dijkstra_indices,
    multi_source_bfs_indices,
    multi_source_dijkstra_indices,
)
from repro.topology.graph import Topology
from repro.topology.link import Link
from repro.topology.node import Node


def diamond() -> Topology:
    topo = Topology()
    for n in "abcd":
        topo.add_node(n)
    topo.add_link("a", "b", length=1.0)
    topo.add_link("b", "d", length=1.0)
    topo.add_link("a", "c", length=2.0)
    topo.add_link("c", "d", length=2.0)
    return topo


class TestVersioning:
    def test_new_topology_starts_at_zero(self):
        assert Topology().version == 0

    def test_every_mutator_bumps_version(self):
        topo = Topology()
        seen = {topo.version}

        def check(action):
            action()
            assert topo.version not in seen, "mutation did not bump version"
            seen.add(topo.version)

        check(lambda: topo.add_node("a"))
        check(lambda: topo.add_node_object(Node(node_id="b")))
        check(lambda: topo.add_link("a", "b"))
        check(lambda: topo.remove_link("a", "b"))
        check(lambda: topo.add_link_object(Link(source="a", target="b")))
        check(lambda: topo.remove_node("b"))
        check(topo.touch)

    def test_ensure_node_bumps_only_when_adding(self):
        topo = Topology()
        topo.ensure_node("a")
        version = topo.version
        topo.ensure_node("a")
        assert topo.version == version
        topo.ensure_node("b")
        assert topo.version > version

    def test_compiled_cached_until_mutation(self):
        topo = diamond()
        first = topo.compiled()
        assert topo.compiled() is first
        topo.add_node("e")
        second = topo.compiled()
        assert second is not first
        assert second.version == topo.version


class TestCompiledStructure:
    def test_shape(self):
        graph = diamond().compiled()
        assert graph.num_nodes == 4
        assert graph.num_edges == 4
        assert len(graph.indptr) == 5
        assert len(graph.indices) == 8
        assert graph.indptr[-1] == 8

    def test_id_index_round_trip(self):
        graph = diamond().compiled()
        for node_id, index in graph.index_of.items():
            assert graph.ids[index] == node_id

    def test_degrees_match_topology(self):
        topo = diamond()
        graph = topo.compiled()
        degrees = graph.degrees()
        for node_id, index in graph.index_of.items():
            assert degrees[index] == topo.degree(node_id)
            assert graph.degree(index) == topo.degree(node_id)

    def test_edge_columns_align_with_links(self):
        topo = diamond()
        graph = topo.compiled()
        for e, link in enumerate(graph.links):
            assert graph.ids[graph.edge_u[e]] == link.source
            assert graph.ids[graph.edge_v[e]] == link.target
            assert graph.edge_keys[e] == link.key

    def test_edge_weights_default_and_negative(self):
        topo = diamond()
        graph = topo.compiled()
        weights = graph.edge_weights()
        assert sorted(weights) == [1.0, 1.0, 2.0, 2.0]
        with pytest.raises(ValueError):
            graph.edge_weights(lambda link: -1.0)


class TestKernels:
    def test_dijkstra_distances_and_predecessor_edges(self):
        topo = diamond()
        graph = topo.compiled()
        weights = graph.edge_weights()
        dist, pred, pred_edge = dijkstra_indices(graph, graph.index_of["a"], weights)
        assert dist[graph.index_of["d"]] == pytest.approx(2.0)
        d = graph.index_of["d"]
        assert graph.ids[pred[d]] == "b"
        assert graph.edge_keys[pred_edge[d]] == ("b", "d")

    def test_multi_source_origin_and_tie_break(self):
        topo = Topology()
        for n in "sabt":
            topo.add_node(n)
        topo.add_link("s", "a", length=1.0)
        topo.add_link("b", "t", length=1.0)
        graph = topo.compiled()
        weights = graph.edge_weights()
        sources = [graph.index_of["s"], graph.index_of["t"]]
        dist, _, _, origin = multi_source_dijkstra_indices(graph, sources, weights)
        assert dist[graph.index_of["a"]] == pytest.approx(1.0)
        assert graph.ids[origin[graph.index_of["a"]]] == "s"
        assert graph.ids[origin[graph.index_of["b"]]] == "t"

    def test_multi_source_exact_tie_goes_to_earlier_source(self):
        # v is exactly 2.0 from both A (via y, reaching v later in the sweep)
        # and B (via x): the earlier-listed source must win the attribution,
        # regardless of which frontier relaxes v first.
        topo = Topology()
        for n in ("A", "B", "x", "y", "v"):
            topo.add_node(n)
        topo.add_link("A", "y", length=1.5)
        topo.add_link("y", "v", length=0.5)
        topo.add_link("B", "x", length=1.0)
        topo.add_link("x", "v", length=1.0)
        graph = topo.compiled()
        weights = graph.edge_weights()
        for sources, winner in ((["A", "B"], "A"), (["B", "A"], "B")):
            indices = [graph.index_of[s] for s in sources]
            dist, pred, _, origin = multi_source_dijkstra_indices(
                graph, indices, weights
            )
            v = graph.index_of["v"]
            assert dist[v] == pytest.approx(2.0)
            assert graph.ids[origin[v]] == winner
            # The predecessor tree must be consistent with the attribution.
            hop = "y" if winner == "A" else "x"
            assert graph.ids[pred[v]] == hop

    def test_bfs_mask_blocks_traversal(self):
        topo = Topology()
        for i in range(4):
            topo.add_node(i)
        for i in range(3):
            topo.add_link(i, i + 1)
        graph = topo.compiled()
        mask = graph.full_mask()
        mask[graph.index_of[1]] = 0
        dist, order = bfs_indices(graph, graph.index_of[0], mask)
        assert dist[graph.index_of[3]] == -1
        assert order == [graph.index_of[0]]

    def test_multi_source_bfs_nearest_distance(self):
        topo = Topology()
        for i in range(5):
            topo.add_node(i)
        for i in range(4):
            topo.add_link(i, i + 1)
        graph = topo.compiled()
        dist = multi_source_bfs_indices(graph, [graph.index_of[0], graph.index_of[4]])
        assert dist[graph.index_of[2]] == 2
        assert dist[graph.index_of[3]] == 1

    def test_components_with_mask(self):
        topo = Topology()
        for i in range(4):
            topo.add_node(i)
        topo.add_link(0, 1)
        topo.add_link(1, 2)
        graph = topo.compiled()
        labels, count = components_indices(graph)
        assert count == 2
        mask = graph.full_mask()
        mask[graph.index_of[1]] = 0
        labels, count = components_indices(graph, mask)
        assert count == 3
        assert labels[graph.index_of[1]] == -1


class TestCounters:
    def test_counters_track_invocations(self):
        topo = diamond()
        KERNEL_COUNTERS.reset()
        graph = topo.compiled()
        weights = graph.edge_weights()
        dijkstra_indices(graph, 0, weights)
        multi_source_dijkstra_indices(graph, [0, 1], weights)
        bfs_indices(graph, 0)
        components_indices(graph)
        snapshot = KERNEL_COUNTERS.snapshot()
        assert snapshot["compilations"] == 1
        assert snapshot["single_source"] == 1
        assert snapshot["multi_source"] == 1
        assert snapshot["bfs"] == 1
        assert snapshot["components"] == 1
