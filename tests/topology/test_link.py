"""Tests for repro.topology.link."""

import math

import pytest

from repro.topology.link import Link, edge_key


class TestEdgeKey:
    def test_symmetric(self):
        assert edge_key("a", "b") == edge_key("b", "a")

    def test_mixed_types(self):
        assert edge_key(1, "a") == edge_key("a", 1)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            edge_key("a", "a")


class TestLink:
    def test_basic_construction(self):
        link = Link(source="a", target="b", capacity=100.0, length=2.0)
        assert link.capacity == 100.0
        assert link.length == 2.0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(source="a", target="a")

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError):
            Link(source="a", target="b", capacity=0.0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Link(source="a", target="b", length=-1.0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            Link(source="a", target="b", install_cost=-1.0)
        with pytest.raises(ValueError):
            Link(source="a", target="b", usage_cost=-0.5)

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            Link(source="a", target="b", load=-2.0)

    def test_key_matches_edge_key(self):
        link = Link(source="z", target="a")
        assert link.key == edge_key("z", "a")

    def test_other_end(self):
        link = Link(source="a", target="b")
        assert link.other_end("a") == "b"
        assert link.other_end("b") == "a"

    def test_other_end_unknown_node(self):
        link = Link(source="a", target="b")
        with pytest.raises(ValueError):
            link.other_end("c")

    def test_utilization(self):
        link = Link(source="a", target="b", capacity=100.0, load=25.0)
        assert link.utilization == pytest.approx(0.25)

    def test_utilization_unbounded_capacity(self):
        link = Link(source="a", target="b", load=25.0)
        assert link.utilization == 0.0

    def test_residual_capacity(self):
        link = Link(source="a", target="b", capacity=100.0, load=30.0)
        assert link.residual_capacity == pytest.approx(70.0)

    def test_residual_capacity_unbounded(self):
        link = Link(source="a", target="b")
        assert math.isinf(link.residual_capacity)

    def test_total_cost(self):
        link = Link(source="a", target="b", install_cost=10.0, usage_cost=0.5, load=4.0)
        assert link.total_cost() == pytest.approx(12.0)

    def test_round_trip_dict(self):
        link = Link(
            source="a",
            target="b",
            capacity=155.0,
            length=3.5,
            cable="OC-3",
            install_cost=7.0,
            usage_cost=0.1,
            load=20.0,
            attributes={"fiber": "dark"},
        )
        restored = Link.from_dict(link.to_dict())
        assert restored == link
