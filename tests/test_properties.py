"""Property-based tests (hypothesis) on the core data structures and invariants."""

import math
import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.buyatbulk import (
    BuyAtBulkInstance,
    Customer,
    solve_direct_star,
    solve_greedy_aggregation,
    trivial_lower_bound,
)
from repro.core.fkp import generate_fkp_tree
from repro.core.meyerson import solve_meyerson
from repro.economics.cables import CableCatalog, CableType, default_catalog
from repro.geography.demand import gravity_demand
from repro.geography.points import euclidean
from repro.geography.population import City
from repro.metrics.degree import degree_ccdf
from repro.metrics.fits import fit_exponential, fit_power_law
from repro.optimization.mst import euclidean_mst_length, prim_mst_points
from repro.topology.graph import Topology


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
coordinates = st.tuples(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)

point_lists = st.lists(coordinates, min_size=2, max_size=25)

degree_sequences = st.lists(st.integers(min_value=1, max_value=60), min_size=5, max_size=200)


def customers_strategy(min_size=2, max_size=15):
    return st.lists(
        st.tuples(coordinates, st.floats(min_value=0.1, max_value=50.0, allow_nan=False)),
        min_size=min_size,
        max_size=max_size,
    )


# ----------------------------------------------------------------------
# Geometry / MST invariants
# ----------------------------------------------------------------------
class TestGeometryProperties:
    @given(point_lists)
    @settings(max_examples=50, deadline=None)
    def test_mst_has_n_minus_1_edges(self, points):
        edges = prim_mst_points(points)
        assert len(edges) == len(points) - 1

    @given(point_lists)
    @settings(max_examples=50, deadline=None)
    def test_mst_length_bounded_by_any_spanning_path(self, points):
        mst_length = euclidean_mst_length(points)
        path_length = sum(
            euclidean(points[i], points[i + 1]) for i in range(len(points) - 1)
        )
        assert mst_length <= path_length + 1e-9

    @given(coordinates, coordinates)
    @settings(max_examples=100, deadline=None)
    def test_euclidean_symmetry_and_nonnegativity(self, a, b):
        assert euclidean(a, b) == euclidean(b, a)
        assert euclidean(a, b) >= 0.0
        assert euclidean(a, a) == 0.0

    @given(coordinates, coordinates, coordinates)
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert euclidean(a, c) <= euclidean(a, b) + euclidean(b, c) + 1e-9


# ----------------------------------------------------------------------
# Cable catalog invariants
# ----------------------------------------------------------------------
class TestCatalogProperties:
    @given(st.floats(min_value=0.0, max_value=20000.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_cost_envelope_nonnegative_and_zero_at_zero(self, flow):
        catalog = default_catalog()
        cost = catalog.cost_per_unit_length(flow)
        assert cost >= 0.0
        if flow == 0.0:
            assert cost == 0.0

    @given(
        st.floats(min_value=0.1, max_value=5000.0, allow_nan=False),
        st.floats(min_value=0.1, max_value=5000.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_cost_envelope_subadditive(self, a, b):
        # Universal mixed-cable subadditivity of the envelope is FALSE at
        # exact capacity boundaries (e.g. a=1, b=2488: one extra unit on a
        # full OC-48 forces a second install or a jump to OC-192, costing
        # more than pricing the flows separately).  The property the cost
        # model actually guarantees, and the one that rewards aggregation,
        # is subadditivity *per cable type* — ceil((a+b)/u) <= ceil(a/u) +
        # ceil(b/u) — which also bounds the envelope of the combined flow
        # by any single cable's split cost.
        catalog = default_catalog()
        combined = catalog.cost_per_unit_length(a + b)
        for cable in catalog:
            split = cable.cost_for_flow(a) + cable.cost_for_flow(b)
            assert cable.cost_for_flow(a + b) <= split + 1e-9
            assert combined <= split + 1e-9

    @given(st.floats(min_value=0.1, max_value=20000.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_provision_covers_flow(self, flow):
        cable, copies = default_catalog().provision(flow)
        assert cable.capacity * copies >= flow - 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=10000.0),
                st.floats(min_value=0.1, max_value=100.0),
                st.floats(min_value=0.001, max_value=10.0),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_unvalidated_catalog_envelope_still_monotone_flows(self, triples):
        cables = [
            CableType(name=f"c{i}", capacity=cap, install_cost=inst, usage_cost=use)
            for i, (cap, inst, use) in enumerate(triples)
        ]
        catalog = CableCatalog(cables, validate=False)
        small = catalog.cost_per_unit_length(1.0)
        large = catalog.cost_per_unit_length(1.0 + 5000.0)
        assert large >= small - 1e-9


# ----------------------------------------------------------------------
# FKP growth invariants
# ----------------------------------------------------------------------
class TestFKPProperties:
    @given(
        st.integers(min_value=2, max_value=80),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=30, deadline=None)
    def test_always_produces_a_spanning_tree(self, n, alpha, seed):
        topo = generate_fkp_tree(n, alpha, seed=seed)
        assert topo.num_nodes == n
        assert topo.is_tree()

    @given(st.integers(min_value=5, max_value=60), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_degree_sum_is_twice_links(self, n, seed):
        topo = generate_fkp_tree(n, 4.0, seed=seed)
        assert sum(topo.degree_sequence()) == 2 * topo.num_links


# ----------------------------------------------------------------------
# Buy-at-bulk invariants
# ----------------------------------------------------------------------
class TestBuyAtBulkProperties:
    @given(customers_strategy(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_meyerson_always_feasible_tree(self, raw_customers, seed):
        customers = [
            Customer(f"c{i}", location, demand)
            for i, (location, demand) in enumerate(raw_customers)
        ]
        instance = BuyAtBulkInstance(customers=customers, core_locations=[(0.5, 0.5)])
        solution = solve_meyerson(instance, seed=seed)
        assert solution.is_feasible()
        assert solution.topology.is_tree()
        # Flow conservation at the core: the core receives all customer demand.
        core_in = sum(link.load for link in solution.topology.incident_links("core0"))
        assert math.isclose(core_in, instance.total_demand, rel_tol=1e-9)

    @given(customers_strategy(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_solutions_respect_lower_bound(self, raw_customers, seed):
        customers = [
            Customer(f"c{i}", location, demand)
            for i, (location, demand) in enumerate(raw_customers)
        ]
        instance = BuyAtBulkInstance(customers=customers, core_locations=[(0.5, 0.5)])
        bound = trivial_lower_bound(instance)
        for solution in (
            solve_meyerson(instance, seed=seed),
            solve_greedy_aggregation(instance),
            solve_direct_star(instance),
        ):
            assert solution.total_cost() >= bound * (1 - 1e-9)

    @given(customers_strategy())
    @settings(max_examples=25, deadline=None)
    def test_provisioned_capacity_covers_load(self, raw_customers):
        customers = [
            Customer(f"c{i}", location, demand)
            for i, (location, demand) in enumerate(raw_customers)
        ]
        instance = BuyAtBulkInstance(customers=customers, core_locations=[(0.5, 0.5)])
        solution = solve_greedy_aggregation(instance)
        for link in solution.topology.links():
            assert link.capacity >= link.load - 1e-9


# ----------------------------------------------------------------------
# Metric invariants
# ----------------------------------------------------------------------
class TestMetricProperties:
    @given(degree_sequences)
    @settings(max_examples=100, deadline=None)
    def test_ccdf_is_monotone_and_bounded(self, degrees):
        ccdf = degree_ccdf(degrees)
        values = [v for _, v in ccdf]
        assert values[0] == 1.0
        assert all(0.0 < v <= 1.0 for v in values)
        assert all(a >= b for a, b in zip(values, values[1:]))

    @given(degree_sequences)
    @settings(max_examples=100, deadline=None)
    def test_fits_produce_finite_or_inf_parameters(self, degrees):
        power = fit_power_law(degrees, k_min=1)
        expo = fit_exponential(degrees, k_min=1)
        assert power.exponent > 1.0
        assert expo.rate > 0.0

    @given(st.lists(coordinates, min_size=2, max_size=10))
    @settings(max_examples=50, deadline=None)
    def test_gravity_demand_nonnegative_and_normalized(self, locations):
        cities = [
            City(name=f"city{i}", location=location, population=float(i + 1) * 100.0)
            for i, location in enumerate(locations)
        ]
        matrix = gravity_demand(cities, total_volume=100.0)
        assert matrix.total() <= 100.0 + 1e-6
        assert all(volume >= 0 for _, _, volume in matrix.pairs())


# ----------------------------------------------------------------------
# Topology invariants under random edits
# ----------------------------------------------------------------------
class TestTopologyEditProperties:
    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_random_graph_degree_sum(self, n, seed):
        rng = random.Random(seed)
        topo = Topology()
        for i in range(n):
            topo.add_node(i)
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.3:
                    topo.add_link(i, j)
        assert sum(topo.degree_sequence()) == 2 * topo.num_links
        assert topo.validate() == []

    @given(st.integers(min_value=3, max_value=25), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_removing_node_preserves_consistency(self, n, seed):
        rng = random.Random(seed)
        topo = Topology()
        for i in range(n):
            topo.add_node(i)
        for i in range(1, n):
            topo.add_link(i, rng.randrange(i))
        victim = rng.randrange(n)
        degree = topo.degree(victim)
        links_before = topo.num_links
        topo.remove_node(victim)
        assert topo.num_links == links_before - degree
        assert topo.validate() == []
