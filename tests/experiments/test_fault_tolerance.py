"""Chaos suite for the fault-tolerant runner (repro.experiments.runner/faults).

The convergence contract under test: because every task carries its own
SHA-256-derived seed, a retried or resumed task is bit-identical to a
first-run task, so *any* injected fault schedule that ends without
quarantines must converge to the byte-identical manifest of a clean serial
run — and a quarantining schedule must flag the manifest degraded while
keeping the surviving entries byte-identical.
"""

import json
import multiprocessing
import random

import pytest

from repro.experiments import (
    DegradedSweepError,
    ExperimentSuite,
    Fault,
    FaultPlan,
    InjectedFault,
    ResultStore,
    register_suite,
    run_experiment,
    run_tasks,
)
from repro.experiments.faults import FAULTS_ENV, active_fault_plan
from repro.experiments.task import expand_grid

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAS_FORK, reason="parallel workers need fork start method")

SUITE_ID = "TX-chaos"
FAST = dict(retry_backoff=0.01)  # keep injected-failure tests quick


def _expand(smoke):
    sizes = [3, 5] if smoke else [3, 5, 7, 9, 11, 13]
    return expand_grid(SUITE_ID, 11, {"n": sizes})


def _run_point(point, seed):
    rng = random.Random(seed)
    return {"n": point["n"], "draws": [rng.randrange(1000) for _ in range(point["n"])]}


def _aggregate(records):
    return {"main": [record.payload for record in records]}


register_suite(
    ExperimentSuite(
        scenario_id=SUITE_ID,
        title="synthetic chaos test suite",
        expand=_expand,
        run_point=_run_point,
        aggregate=_aggregate,
        base_seed=11,
    )
)

TASKS = _expand(False)


def _clean_manifest(tmp_path):
    """The reference: a clean serial run's manifest bytes."""
    clean_dir = tmp_path / "clean"
    run_experiment(SUITE_ID, jobs=1, results_dir=clean_dir)
    return (clean_dir / SUITE_ID / "manifest.json").read_bytes()


class TestFaultPlan:
    def test_schedule_indexed_by_attempt(self):
        plan = FaultPlan({"d": [Fault("raise"), None, Fault("sleep", seconds=1.0)]})
        assert plan.fault_for("d", 1).kind == "raise"
        assert plan.fault_for("d", 2) is None
        assert plan.fault_for("d", 3).kind == "sleep"
        assert plan.fault_for("d", 4) is None
        assert plan.fault_for("other", 1) is None
        with pytest.raises(ValueError):
            plan.fault_for("d", 0)

    def test_json_round_trip(self):
        plan = FaultPlan({"a": [Fault("kill"), None], "b": [Fault("corrupt", keep_bytes=3)]})
        rebuilt = FaultPlan.from_json(plan.to_json())
        assert rebuilt.to_json() == plan.to_json()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("explode")

    def test_env_activation_inline_json(self, monkeypatch):
        plan = FaultPlan({"d": [Fault("raise", message="from env")]})
        monkeypatch.setenv(FAULTS_ENV, json.dumps(plan.to_json()))
        active = active_fault_plan()
        assert active is not None and active.fault_for("d", 1).message == "from env"

    def test_env_activation_plan_file(self, monkeypatch, tmp_path):
        plan_file = tmp_path / "plan.json"
        plan_file.write_text(json.dumps(FaultPlan({"d": [Fault("kill")]}).to_json()))
        monkeypatch.setenv(FAULTS_ENV, str(plan_file))
        active = active_fault_plan()
        assert active is not None and active.fault_for("d", 1).kind == "kill"

    def test_no_env_no_plan(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV, raising=False)
        assert active_fault_plan() is None


class TestWorkerDeath:
    @needs_fork
    def test_sigkill_mid_sweep_converges(self, tmp_path):
        # Two workers die mid-task; their tasks are re-dispatched to fresh
        # workers and the manifest is byte-identical to the clean serial run.
        plan = FaultPlan(
            {TASKS[1].digest: [Fault("kill")], TASKS[4].digest: [Fault("kill")]}
        )
        chaos_dir = tmp_path / "chaos"
        result = run_experiment(
            SUITE_ID, jobs=3, results_dir=chaos_dir, fault_plan=plan, **FAST
        )
        assert result.report.retries >= 2
        assert not result.report.quarantined
        chaos = (chaos_dir / SUITE_ID / "manifest.json").read_bytes()
        assert chaos == _clean_manifest(tmp_path)

    @needs_fork
    def test_repeated_kill_quarantines_degraded(self, tmp_path):
        # A task whose worker dies on every attempt exhausts its retries; the
        # sweep still completes, flagged degraded, with the surviving entries
        # byte-identical to the clean manifest's.
        victim = TASKS[2]
        plan = FaultPlan({victim.digest: [Fault("kill")] * 3})
        chaos_dir = tmp_path / "chaos"
        result = run_experiment(
            SUITE_ID,
            jobs=2,
            results_dir=chaos_dir,
            fault_plan=plan,
            max_retries=2,
            strict=False,
            **FAST,
        )
        assert result.degraded and set(result.report.quarantined) == {victim.digest}
        assert "worker died" in result.report.quarantined[victim.digest]
        assert result.tables == {} and not result.gates_checked
        manifest = json.loads((chaos_dir / SUITE_ID / "manifest.json").read_text())
        clean = json.loads(_clean_manifest(tmp_path))
        assert manifest["degraded"] is True
        assert [e["digest"] for e in manifest["quarantined"]] == [victim.digest]
        surviving = [e for e in clean["tasks"] if e["digest"] != victim.digest]
        assert manifest["tasks"] == surviving
        # The quarantine marker survives for post-mortem and names the error.
        marker = ResultStore(chaos_dir).quarantine_marker_path(SUITE_ID, victim.digest)
        assert "worker died" in json.loads(marker.read_text())["error"]


class TestRetries:
    @pytest.mark.parametrize("jobs", [1, pytest.param(2, marks=needs_fork)])
    def test_flaky_task_retries_until_success(self, tmp_path, jobs):
        # Fails twice, succeeds on the third attempt — within the default
        # retry budget, so the sweep converges with no quarantine.
        flaky = TASKS[3]
        plan = FaultPlan({flaky.digest: [Fault("raise"), Fault("raise")]})
        chaos_dir = tmp_path / "chaos"
        result = run_experiment(
            SUITE_ID, jobs=jobs, results_dir=chaos_dir, fault_plan=plan, max_retries=2, **FAST
        )
        assert result.report.retries == 2
        assert not result.report.quarantined
        chaos = (chaos_dir / SUITE_ID / "manifest.json").read_bytes()
        assert chaos == _clean_manifest(tmp_path)

    def test_exhausted_retries_quarantine_serial(self, tmp_path):
        always = TASKS[0]
        plan = FaultPlan({always.digest: [Fault("raise", message="still broken")] * 3})
        report = run_tasks(
            TASKS, store=ResultStore(tmp_path), fault_plan=plan, max_retries=2, **FAST
        )
        assert report.degraded
        assert report.quarantined[always.digest] == "InjectedFault: still broken"
        assert report.retries == 2
        assert len(report.records) == len(TASKS) - 1
        # Once the fault clears, a resume run completes the sweep and the
        # successful store clears the quarantine marker.
        store = ResultStore(tmp_path)
        resumed = run_tasks(TASKS, store=store, resume=True)
        assert resumed.resumed == len(TASKS) - 1 and resumed.executed == 1
        assert not resumed.degraded
        assert not store.quarantine_marker_path(SUITE_ID, always.digest).exists()

    def test_strict_run_experiment_raises_degraded(self, tmp_path):
        plan = FaultPlan({TASKS[5].digest: [Fault("raise")] * 2})
        with pytest.raises(DegradedSweepError) as excinfo:
            run_experiment(
                SUITE_ID, results_dir=tmp_path, fault_plan=plan, max_retries=1, **FAST
            )
        # The partial manifest was written before the raise.
        result = excinfo.value.result
        assert result.manifest_path is not None and result.manifest_path.exists()
        assert json.loads(result.manifest_path.read_text())["degraded"] is True


class TestTimeouts:
    @needs_fork
    def test_timeout_quarantine_degraded_parallel(self, tmp_path):
        sleeper = TASKS[2]
        plan = FaultPlan({sleeper.digest: [Fault("sleep", seconds=30.0)] * 2})
        result = run_experiment(
            SUITE_ID,
            jobs=2,
            results_dir=tmp_path,
            fault_plan=plan,
            max_retries=1,
            task_timeout=0.4,
            strict=False,
            **FAST,
        )
        assert result.report.timeouts == 2
        assert set(result.report.quarantined) == {sleeper.digest}
        assert "timeout after 0.4s" in result.report.quarantined[sleeper.digest]

    def test_timeout_serial_via_sigalrm(self, tmp_path):
        sleeper = TASKS[1]
        plan = FaultPlan({sleeper.digest: [Fault("sleep", seconds=30.0)] * 2})
        report = run_tasks(
            TASKS,
            store=ResultStore(tmp_path),
            fault_plan=plan,
            max_retries=1,
            task_timeout=0.3,
            **FAST,
        )
        assert report.timeouts == 2
        assert set(report.quarantined) == {sleeper.digest}

    @needs_fork
    def test_slow_task_within_budget_completes(self, tmp_path):
        plan = FaultPlan({TASKS[0].digest: [Fault("sleep", seconds=0.1)]})
        result = run_experiment(
            SUITE_ID, jobs=2, results_dir=tmp_path, fault_plan=plan, task_timeout=10.0, **FAST
        )
        assert result.report.timeouts == 0 and not result.report.quarantined


class TestStoreCorruption:
    def test_truncated_cache_entry_quarantined_and_recomputed(self, tmp_path):
        clean = _clean_manifest(tmp_path)
        store_dir = tmp_path / "clean"
        victim = ResultStore(store_dir).record_path(SUITE_ID, TASKS[4].digest)
        victim.write_bytes(victim.read_bytes()[:17])  # torn write
        result = run_experiment(SUITE_ID, results_dir=store_dir, resume=True)
        assert result.report.corrupt_quarantined == 1
        assert result.report.executed == 1
        assert result.report.cache_hits == len(TASKS) - 1
        corrupt = victim.with_name(victim.name + ".corrupt")
        assert corrupt.exists() and victim.exists()  # quarantined + recomputed
        assert (store_dir / SUITE_ID / "manifest.json").read_bytes() == clean

    def test_corrupt_fault_kind_truncates_store_file(self, tmp_path):
        plan = FaultPlan({TASKS[0].digest: [Fault("corrupt", keep_bytes=9)]})
        report = run_tasks(TASKS, store=ResultStore(tmp_path), fault_plan=plan)
        assert not report.degraded  # execution itself is clean
        path = ResultStore(tmp_path).record_path(SUITE_ID, TASKS[0].digest)
        assert path.stat().st_size == 9
        # The next run quarantines the torn file and recomputes the point.
        rerun = run_tasks(TASKS, store=ResultStore(tmp_path))
        assert rerun.corrupt_quarantined == 1 and rerun.executed == 1


class TestInterruptResume:
    def test_interrupted_serial_sweep_resumes_to_identical_manifest(self, tmp_path):
        # Ctrl-C (deterministically injected) at task index 3: the serial
        # runner propagates the interrupt, but tasks 0-2 were streamed into
        # the store per task, so the resumed sweep is 3 cache hits + 3 fresh
        # tasks and its manifest is byte-identical to a clean serial run.
        clean = _clean_manifest(tmp_path)
        plan = FaultPlan({TASKS[3].digest: [Fault("interrupt")]})
        interrupted_dir = tmp_path / "interrupted"
        with pytest.raises(KeyboardInterrupt):
            run_experiment(SUITE_ID, jobs=1, results_dir=interrupted_dir, fault_plan=plan)
        store = ResultStore(interrupted_dir)
        stored = [p for p in store.scenario_dir(SUITE_ID).glob("*.json")]
        assert len(stored) == 3  # streamed per task, no manifest yet
        result = run_experiment(SUITE_ID, jobs=1, results_dir=interrupted_dir, resume=True)
        assert result.report.resumed == 3 and result.report.executed == 3
        assert (interrupted_dir / SUITE_ID / "manifest.json").read_bytes() == clean

    @needs_fork
    def test_interrupted_parallel_resume_with_more_jobs(self, tmp_path):
        # Resuming under a different job count must not change a byte either.
        clean = _clean_manifest(tmp_path)
        plan = FaultPlan({TASKS[5].digest: [Fault("interrupt")]})
        interrupted_dir = tmp_path / "interrupted"
        with pytest.raises(KeyboardInterrupt):
            run_experiment(SUITE_ID, jobs=1, results_dir=interrupted_dir, fault_plan=plan)
        result = run_experiment(SUITE_ID, jobs=3, results_dir=interrupted_dir, resume=True)
        assert result.report.resumed == 5 and result.report.executed == 1
        assert (interrupted_dir / SUITE_ID / "manifest.json").read_bytes() == clean

    def test_resume_and_force_are_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            run_experiment(SUITE_ID, results_dir=tmp_path, resume=True, force=True)


class TestCliDegraded:
    def test_cli_reports_degraded_exit_code(self, tmp_path, monkeypatch, capsys):
        # End-to-end through REPRO_FAULTS: an E1 smoke point that always
        # raises exhausts its (zero) retries and the CLI exits with the
        # distinct degraded code 3.
        from repro.cli import main
        from repro.experiments import get_suite

        victim = get_suite("E1").expand(True)[0]
        plan = FaultPlan({victim.digest: [Fault("raise", message="chaos")]})
        monkeypatch.setenv(FAULTS_ENV, json.dumps(plan.to_json()))
        code = main(
            [
                "run",
                "E1",
                "--smoke",
                "--max-retries",
                "0",
                "--results-dir",
                str(tmp_path),
            ]
        )
        assert code == 3
        err = capsys.readouterr().err
        assert "DEGRADED" in err and "chaos" in err
        manifest = json.loads((tmp_path / "E1" / "manifest.json").read_text())
        assert manifest["degraded"] is True

    def test_cli_resume_force_conflict(self):
        from repro.cli import main

        assert main(["run", "E1", "--resume", "--force"]) == 2


class TestInjectedFaultKinds:
    def test_raise_fault_is_injected_fault(self):
        from repro.experiments.faults import apply_execution_fault

        plan = FaultPlan({"d": [Fault("raise", message="boom")]})
        with pytest.raises(InjectedFault, match="boom"):
            apply_execution_fault(plan, "d", 1)
        apply_execution_fault(plan, "d", 2)  # clean attempt: no-op
        apply_execution_fault(None, "d", 1)  # no plan: no-op
