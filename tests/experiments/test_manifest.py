"""Tests for repro.experiments.manifest — records, store, manifests."""

import json

import pytest

from repro.experiments.manifest import (
    ResultStore,
    TaskRecord,
    identity_view,
    json_safe,
    payload_sha256,
)
from repro.experiments.task import SCHEMA_VERSION, Task


def make_record(index: int = 0, seconds: float = 0.5) -> TaskRecord:
    task = Task.make("EX", index, {"n": 10 + index}, 3)
    return TaskRecord(
        scenario_id=task.scenario_id,
        index=task.index,
        point=task.point_dict,
        seed=task.seed,
        digest=task.digest,
        payload={"value": index * 2},
        counters={"sampler_draws": 4},
        timing={"seconds": seconds},
    )


class TestRecordRoundTrip:
    def test_json_round_trip(self):
        record = make_record()
        rebuilt = TaskRecord.from_json(record.to_json())
        assert rebuilt.to_json() == record.to_json()

    def test_schema_field_written(self):
        assert make_record().to_json()["schema"] == SCHEMA_VERSION

    def test_schema_mismatch_rejected(self):
        data = make_record().to_json()
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            TaskRecord.from_json(data)

    def test_identity_view_strips_timing_only(self):
        data = make_record(seconds=1.0).to_json()
        other = make_record(seconds=2.0).to_json()
        assert data != other
        assert identity_view(data) == identity_view(other)
        assert "timing" not in identity_view(data)


class TestJsonSafe:
    def test_non_finite_floats_become_strings(self):
        assert json_safe(float("nan")) == "NaN"
        assert json_safe(float("inf")) == "Infinity"
        assert json_safe(float("-inf")) == "-Infinity"

    def test_nested_structures(self):
        value = {"a": (1, 2), "b": [float("nan"), 3.5]}
        assert json_safe(value) == {"a": [1, 2], "b": ["NaN", 3.5]}

    def test_payload_hash_accepts_sanitized(self):
        payload = json_safe({"x": float("inf"), "y": 1})
        assert len(payload_sha256(payload)) == 64


class TestResultStore:
    def test_store_then_load(self, tmp_path):
        store = ResultStore(tmp_path)
        record = make_record()
        path = store.store(record)
        assert path.name == f"{record.digest}.json"
        task = Task.make("EX", 0, {"n": 10}, 3)
        loaded = store.load(task)
        assert loaded is not None and loaded.cached
        assert loaded.payload == record.payload

    def test_miss_on_absent_record(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load(Task.make("EX", 0, {"n": 999}, 3)) is None

    def test_miss_on_stale_schema(self, tmp_path):
        store = ResultStore(tmp_path)
        record = make_record()
        path = store.store(record)
        data = json.loads(path.read_text())
        data["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        assert store.load(Task.make("EX", 0, {"n": 10}, 3)) is None

    def test_corrupt_record_quarantined_not_silently_missed(self, tmp_path):
        store = ResultStore(tmp_path)
        record = make_record()
        path = store.store(record)
        path.write_text("{not json")
        assert store.load(Task.make("EX", 0, {"n": 10}, 3)) is None
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.exists() and not path.exists()
        assert store.corrupt_count == 1 and store.corrupt_quarantined == [corrupt]

    def test_truncated_record_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(make_record())
        path.write_bytes(path.read_bytes()[:20])
        assert store.load(Task.make("EX", 0, {"n": 10}, 3)) is None
        assert store.corrupt_count == 1

    def test_stale_schema_is_miss_not_corruption(self, tmp_path):
        store = ResultStore(tmp_path)
        record = make_record()
        path = store.store(record)
        data = json.loads(path.read_text())
        data["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(data))
        assert store.load(Task.make("EX", 0, {"n": 10}, 3)) is None
        assert store.corrupt_count == 0 and path.exists()  # versioning, not a fault

    def test_store_write_is_atomic_no_tmp_left(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.store(make_record())
        leftovers = [p for p in path.parent.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_store_clears_quarantine_marker(self, tmp_path):
        store = ResultStore(tmp_path)
        record = make_record()
        marker = store.quarantine_task("EX", 0, {"n": 10}, record.digest, "RuntimeError: x")
        assert marker.exists()
        assert json.loads(marker.read_text())["error"] == "RuntimeError: x"
        store.store(record)
        assert not marker.exists()

    def test_manifest_has_no_timing_and_is_ordered(self, tmp_path):
        store = ResultStore(tmp_path)
        records = [make_record(1, seconds=9.0), make_record(0, seconds=1.0)]
        path = store.write_manifest("EX", records, title="t", mode="smoke", base_seed=3)
        manifest = json.loads(path.read_text())
        assert "timing" not in json.dumps(manifest)
        assert [entry["index"] for entry in manifest["tasks"]] == [0, 1]
        assert manifest["num_tasks"] == 2
        for entry, record in zip(manifest["tasks"], sorted(records, key=lambda r: r.index)):
            assert entry["payload_sha256"] == payload_sha256(record.payload)

    def test_manifest_environment_fingerprint_is_non_identity(self, tmp_path):
        import platform

        store = ResultStore(tmp_path)
        path = store.write_manifest("EX", [make_record()], title="t", base_seed=3)
        manifest = json.loads(path.read_text())
        environment = manifest["environment"]
        assert environment["python"] == platform.python_version()
        assert "scipy" in environment
        # Non-identity: the fingerprint enters no digest or payload hash, so
        # a toolchain upgrade cannot invalidate cached records.
        record = make_record()
        assert "environment" not in record.to_json()
        assert "environment" not in json.dumps(manifest["tasks"])

    def test_quarantined_entries_flag_manifest_degraded(self, tmp_path):
        store = ResultStore(tmp_path)
        clean_path = store.write_manifest("EX", [make_record()], title="t", base_seed=3)
        clean = clean_path.read_bytes()
        assert b"degraded" not in clean  # quarantine-free manifests are unchanged
        entry = {"index": 1, "point": {"n": 11}, "digest": "ff" * 32, "error": "E: boom"}
        store.write_manifest("EX", [make_record()], title="t", base_seed=3, quarantined=[entry])
        manifest = json.loads(clean_path.read_text())
        assert manifest["degraded"] is True
        assert manifest["quarantined"] == [entry]
        # Writing quarantine-free again restores the clean bytes exactly.
        store.write_manifest("EX", [make_record()], title="t", base_seed=3)
        assert clean_path.read_bytes() == clean

    def test_environment_fingerprint_fields(self):
        from repro.experiments.manifest import environment_fingerprint

        fingerprint = environment_fingerprint()
        assert set(fingerprint) == {"python", "implementation", "scipy"}
        assert fingerprint["implementation"]
