"""Tests for repro.experiments.runner — parallel/serial bit-identity, caching.

A tiny synthetic suite is registered at import time; its ``run_point`` is a
module-level function so worker processes (fork start method) can execute it.
"""

import json
import multiprocessing
import random

import pytest

from repro.experiments import (
    ExperimentSuite,
    available_experiments,
    identity_view,
    register_suite,
    run_experiment,
    run_tasks,
)
from repro.experiments.manifest import ResultStore
from repro.experiments.task import expand_grid

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

SUITE_ID = "TX-runner"


def _expand(smoke):
    sizes = [4, 8] if smoke else [4, 8, 12, 16]
    return expand_grid(SUITE_ID, 3, {"n": sizes})


def _run_point(point, seed):
    rng = random.Random(seed)
    return {"n": point["n"], "draws": [rng.randrange(1000) for _ in range(point["n"])]}


def _aggregate(records):
    return {"main": [record.payload for record in records]}


register_suite(
    ExperimentSuite(
        scenario_id=SUITE_ID,
        title="synthetic runner test suite",
        expand=_expand,
        run_point=_run_point,
        aggregate=_aggregate,
        base_seed=3,
    )
)


class TestBitIdentity:
    @pytest.mark.skipif(not HAS_FORK, reason="parallel workers need fork start method")
    def test_parallel_and_serial_manifests_byte_identical(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_experiment(SUITE_ID, jobs=1, results_dir=serial_dir)
        run_experiment(SUITE_ID, jobs=2, results_dir=parallel_dir)
        serial = (serial_dir / SUITE_ID / "manifest.json").read_bytes()
        parallel = (parallel_dir / SUITE_ID / "manifest.json").read_bytes()
        assert serial == parallel

    @pytest.mark.skipif(not HAS_FORK, reason="parallel workers need fork start method")
    def test_records_identical_modulo_timing(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_experiment(SUITE_ID, jobs=1, results_dir=serial_dir)
        run_experiment(SUITE_ID, jobs=3, results_dir=parallel_dir)
        serial_files = sorted((serial_dir / SUITE_ID).glob("*.json"))
        parallel_files = sorted((parallel_dir / SUITE_ID).glob("*.json"))
        assert [p.name for p in serial_files] == [p.name for p in parallel_files]
        for a, b in zip(serial_files, parallel_files):
            if a.name == "manifest.json":
                continue
            assert identity_view(json.loads(a.read_text())) == identity_view(
                json.loads(b.read_text())
            )

    def test_rerun_payloads_identical(self, tmp_path):
        first = run_experiment(SUITE_ID, results_dir=tmp_path, force=True)
        second = run_experiment(SUITE_ID, results_dir=tmp_path, force=True)
        assert [r.payload for r in first.records] == [r.payload for r in second.records]


class TestCache:
    def test_hit_after_run_and_force_bypass(self, tmp_path):
        first = run_experiment(SUITE_ID, results_dir=tmp_path)
        assert first.report.executed == 4 and first.report.cache_hits == 0
        second = run_experiment(SUITE_ID, results_dir=tmp_path)
        assert second.report.executed == 0 and second.report.cache_hits == 4
        assert [r.cached for r in second.records] == [True] * 4
        forced = run_experiment(SUITE_ID, results_dir=tmp_path, force=True)
        assert forced.report.executed == 4 and forced.report.cache_hits == 0

    def test_smoke_and_full_do_not_share_entries(self, tmp_path):
        run_experiment(SUITE_ID, smoke=True, results_dir=tmp_path)
        full = run_experiment(SUITE_ID, smoke=False, results_dir=tmp_path)
        # The two smoke points are also full points (same point dict, same
        # base seed) and therefore legitimately shared; the others are not.
        assert full.report.cache_hits == 2
        assert full.report.executed == 2

    def test_no_store_always_executes(self):
        result = run_experiment(SUITE_ID, results_dir=None)
        assert result.report.executed == 4
        assert result.manifest_path is None


class TestRunTasks:
    def test_records_ordered_by_index_regardless_of_input_order(self, tmp_path):
        tasks = _expand(False)
        shuffled = [tasks[2], tasks[0], tasks[3], tasks[1]]
        report = run_tasks(shuffled, store=ResultStore(tmp_path))
        assert [r.index for r in report.records] == [0, 1, 2, 3]

    def test_rejects_invalid_jobs(self):
        with pytest.raises(ValueError):
            run_tasks(_expand(True), jobs=0)


class TestBuiltinSuites:
    def test_all_experiments_registered(self):
        known = available_experiments()
        expected = sorted(f"E{i}" for i in range(1, 14))
        assert expected == [e for e in known if e.startswith("E")]

    def test_e1_smoke_end_to_end(self, tmp_path):
        result = run_experiment("E1", smoke=True, jobs=1, results_dir=tmp_path)
        assert result.gates_checked
        assert len(result.records) == 6
        manifest = json.loads((tmp_path / "E1" / "manifest.json").read_text())
        assert manifest["mode"] == "smoke"
        assert manifest["num_tasks"] == 6


class TestCacheIndexRemap:
    def test_cached_records_rekeyed_after_grid_reorder(self, tmp_path):
        # Warm the cache, then serve the same points in reversed order: every
        # hit must carry the *new* sweep position, so the manifest matches a
        # forced recomputation of the reordered sweep byte for byte.
        store_dir = tmp_path / "store"
        tasks = _expand(False)
        run_tasks(tasks, store=ResultStore(store_dir))
        reordered = [
            t.__class__(t.scenario_id, i, t.point, t.base_seed)
            for i, t in enumerate(reversed(tasks))
        ]
        store = ResultStore(store_dir)
        cached_report = run_tasks(reordered, store=store)
        assert cached_report.cache_hits == len(tasks)
        assert [r.index for r in cached_report.records] == [0, 1, 2, 3]
        assert [r.point["n"] for r in cached_report.records] == [16, 12, 8, 4]
        cached_manifest = store.write_manifest("TX-reordered", cached_report.records)
        forced_report = run_tasks(reordered, store=store, force=True)
        forced_manifest = store.write_manifest("TX-reordered", forced_report.records)
        assert cached_manifest.read_bytes() == forced_manifest.read_bytes()
