"""Tests for repro.experiments.task — seeds, digests, grid expansion."""

import pytest

from repro.experiments.task import (
    Task,
    canonical_json,
    derive_seed,
    expand_grid,
    expand_points,
    task_digest,
)


class TestCanonicalJson:
    def test_key_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_rejects_non_serializable(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("E1", {"alpha": 4.0}, 7) == derive_seed("E1", {"alpha": 4.0}, 7)

    def test_stable_across_releases(self):
        # Pinned value: changing the derivation would silently re-seed every
        # experiment and invalidate all published manifests.
        assert derive_seed("E1", {"alpha": 4.0}, 7) == 493101409576572066

    def test_point_key_order_irrelevant(self):
        assert derive_seed("E1", {"a": 1, "b": 2}, 0) == derive_seed("E1", {"b": 2, "a": 1}, 0)

    def test_sensitive_to_every_component(self):
        base = derive_seed("E1", {"alpha": 4.0}, 7)
        assert derive_seed("E2", {"alpha": 4.0}, 7) != base
        assert derive_seed("E1", {"alpha": 4.5}, 7) != base
        assert derive_seed("E1", {"alpha": 4.0}, 8) != base


class TestTaskDigest:
    def test_stable_across_releases(self):
        assert (
            task_digest("E1", {"alpha": 4.0}, 7)
            == "844c450153027239310d15eb8cf508451d8c7ee776b8783ec3da3eda939228eb"
        )

    def test_task_properties_match_functions(self):
        task = Task.make("E3", 2, {"customers": 100, "table": "algorithms"}, 13)
        assert task.seed == derive_seed("E3", task.point_dict, 13)
        assert task.digest == task_digest("E3", task.point_dict, 13)

    def test_non_serializable_point_rejected_up_front(self):
        with pytest.raises(TypeError):
            Task.make("E1", 0, {"bad": object()}, 0)


class TestExpandGrid:
    def test_cartesian_product_order(self):
        tasks = expand_grid("X", 0, {"a": [1, 2], "b": ["u", "v"]})
        points = [t.point_dict for t in tasks]
        assert points == [
            {"a": 1, "b": "u"},
            {"a": 1, "b": "v"},
            {"a": 2, "b": "u"},
            {"a": 2, "b": "v"},
        ]
        assert [t.index for t in tasks] == [0, 1, 2, 3]

    def test_constants_merged_into_every_point(self):
        tasks = expand_grid("X", 0, {"a": [1, 2]}, constants={"c": 9})
        assert all(t.point_dict["c"] == 9 for t in tasks)

    def test_expand_points_preserves_order(self):
        tasks = expand_points("X", 5, [{"p": 3}, {"p": 1}])
        assert [t.point_dict["p"] for t in tasks] == [3, 1]
        assert all(t.base_seed == 5 for t in tasks)
