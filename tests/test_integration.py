"""End-to-end integration tests across subpackages.

These tests exercise the same pipelines the examples and benchmarks use:
generate with the optimization-driven models, route and provision traffic,
evaluate with the metric suite, serialize, and compare against baselines.
"""

import pytest

from repro import HOTGenerator
from repro.core import (
    generate_fkp_tree,
    generate_internet,
    generate_isp,
    random_instance,
    solve_direct_star,
    solve_meyerson,
)
from repro.core.constraints import CapacityConstraint, default_router_constraints
from repro.economics import CostModel, default_catalog, provision_topology
from repro.generators import BarabasiAlbertGenerator
from repro.metrics import classify_tail, compare_topologies, evaluate_topology, report_table
from repro.routing import route_customer_demand_to_core, utilization_report
from repro.topology import summarize_hierarchy, topology_from_dict, topology_to_dict
from repro.workloads import metro_customers


class TestAccessDesignPipeline:
    """Instance → Meyerson solve → provision → validate → serialize."""

    def test_full_pipeline(self):
        instance = random_instance(120, seed=10)
        solution = solve_meyerson(instance, seed=10)
        assert solution.is_feasible()
        assert solution.topology.is_tree()

        # Cables cover the routed flows.
        assert CapacityConstraint().is_satisfied(solution.topology)

        # The degree tail is exponential (the paper's §4.2 claim).
        verdict = classify_tail(solution.topology.degree_sequence()).verdict
        assert verdict in ("exponential", "inconclusive")

        # The solution beats the naive star and survives serialization.
        assert solution.total_cost() < solve_direct_star(instance).total_cost()
        restored = topology_from_dict(topology_to_dict(solution.topology))
        assert restored.num_links == solution.topology.num_links

    def test_metro_workload_roundtrip(self):
        customers, region = metro_customers(80, seed=4)
        generator = HOTGenerator(seed=4)
        from repro.core import BuyAtBulkInstance

        instance = BuyAtBulkInstance(
            customers=customers, core_locations=[region.center], catalog=generator.catalog
        )
        results = generator.compare_buy_at_bulk_algorithms(instance, seed=4)
        costs = {name: sol.total_cost() for name, sol in results.items()}
        assert costs["star"] == max(costs.values())


class TestISPDesignPipeline:
    """Population → ISP design → routing → utilization → metrics."""

    def test_isp_metrics_and_hierarchy(self):
        design = generate_isp(num_cities=8, seed=12, customers_per_city_scale=3.0)
        topo = design.topology
        assert topo.is_connected()

        summary = summarize_hierarchy(topo)
        assert summary.count("core") > 0
        assert summary.count("customer") > 0

        report = evaluate_topology(topo, sample_size=20, seed=1)
        assert report.get("num_nodes") == topo.num_nodes
        assert report.get("mean_degree") > 1.0

        cost = CostModel(catalog=default_catalog()).total_cost(topo)
        assert cost > 0

    def test_access_traffic_fits_provisioned_capacity(self):
        design = generate_isp(num_cities=6, seed=14, customers_per_city_scale=3.0)
        topo = design.topology
        result = route_customer_demand_to_core(topo)
        assert result.unrouted_volume == pytest.approx(0.0)
        # Re-provision for the routed access traffic and confirm no overloads remain.
        provision_topology(topo, default_catalog())
        report = utilization_report(topo)
        assert report.peak_utilization <= 1.0 + 1e-9
        assert default_router_constraints().is_satisfied(topo) or True  # degree info only

    def test_internet_pipeline(self):
        internet = generate_internet(num_isps=6, num_cities=10, seed=16)
        as_graph = internet.as_graph
        assert as_graph.num_nodes == 6
        merged = internet.router_level_graph()
        assert merged.num_nodes > as_graph.num_nodes
        # AS graph and router-level graph are structurally different objects.
        assert merged.num_links >= as_graph.num_links


class TestGeneratorComparisonPipeline:
    def test_hot_vs_descriptive_report(self):
        topologies = {
            "fkp": generate_fkp_tree(200, alpha=4.0, seed=2),
            "meyerson": solve_meyerson(random_instance(200, seed=2), seed=2).topology,
            "ba": BarabasiAlbertGenerator().generate(200, seed=2),
        }
        reports = compare_topologies(topologies, sample_size=25, seed=2)
        table = report_table(reports)
        assert all(name in table for name in topologies)
        by_name = {r.name: r for r in reports}
        # Both optimization-driven designs are trees; BA is not.
        assert by_name["fkp"].get("cycle_edge_fraction") == pytest.approx(0.0)
        assert by_name["meyerson"].get("cycle_edge_fraction") == pytest.approx(0.0)
        assert by_name["ba"].get("cycle_edge_fraction") > 0.0
