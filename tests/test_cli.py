"""Tests for the repro.cli command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.topology.serialization import load_json


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_fkp_arguments(self):
        args = build_parser().parse_args(
            ["generate", "fkp", "--nodes", "50", "--alpha", "2.5", "-o", "x.json"]
        )
        assert args.command == "generate"
        assert args.model == "fkp"
        assert args.nodes == 50
        assert args.alpha == 2.5

    def test_unknown_baseline_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "baseline", "--generator", "magic", "-o", "x.json"]
            )


class TestGenerateCommands:
    def test_generate_fkp_writes_json(self, tmp_path, capsys):
        output = tmp_path / "fkp.json"
        code = main(
            ["generate", "fkp", "--nodes", "60", "--alpha", "4.0", "--seed", "1", "-o", str(output)]
        )
        assert code == 0
        topology = load_json(output)
        assert topology.num_nodes == 60
        assert "wrote 60 nodes" in capsys.readouterr().out

    def test_generate_access(self, tmp_path):
        output = tmp_path / "access.json"
        code = main(
            ["generate", "access", "--customers", "40", "--algorithm", "greedy",
             "--seed", "2", "-o", str(output)]
        )
        assert code == 0
        topology = load_json(output)
        assert topology.num_nodes == 41

    def test_generate_baseline(self, tmp_path):
        output = tmp_path / "ba.json"
        code = main(
            ["generate", "baseline", "--generator", "barabasi-albert", "--nodes", "80",
             "--seed", "3", "-o", str(output)]
        )
        assert code == 0
        assert load_json(output).num_nodes == 80

    def test_generate_isp(self, tmp_path):
        output = tmp_path / "isp.json"
        code = main(
            ["generate", "isp", "--cities", "6", "--customers-per-city", "2",
             "--seed", "4", "-o", str(output)]
        )
        assert code == 0
        assert load_json(output).num_nodes > 6

    def test_generate_internet(self, tmp_path):
        output = tmp_path / "as.json"
        code = main(
            ["generate", "internet", "--isps", "5", "--cities", "8", "--seed", "5",
             "-o", str(output)]
        )
        assert code == 0
        assert load_json(output).num_nodes == 5

    def test_output_is_valid_json(self, tmp_path):
        output = tmp_path / "fkp.json"
        main(["generate", "fkp", "--nodes", "30", "--seed", "1", "-o", str(output)])
        data = json.loads(output.read_text())
        assert "nodes" in data and "links" in data


class TestAnalysisCommands:
    def test_metrics_table(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        main(["generate", "fkp", "--nodes", "50", "--seed", "1", "-o", str(first)])
        main(["generate", "baseline", "--generator", "erdos-renyi", "--nodes", "50",
              "--seed", "1", "-o", str(second)])
        code = main(["metrics", str(first), str(second), "--sample-size", "15"])
        assert code == 0
        out = capsys.readouterr().out
        assert str(first) in out and str(second) in out
        assert "mean_degree" in out

    def test_validate_pass(self, tmp_path, capsys):
        path = tmp_path / "access.json"
        main(["generate", "access", "--customers", "120", "--seed", "6", "-o", str(path)])
        code = main(["validate", str(path), "--target", "router-access", "--sample-size", "20"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_validate_fail_exit_code(self, tmp_path, capsys):
        path = tmp_path / "mesh.json"
        main(["generate", "baseline", "--generator", "waxman", "--nodes", "120",
              "--seed", "7", "-o", str(path)])
        code = main(["validate", str(path), "--target", "router-access", "--sample-size", "20"])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_growth_prints_periods_and_saves_topology(self, tmp_path, capsys):
        output = tmp_path / "grown.json"
        code = main(
            ["growth", "--periods", "3", "--initial-customers", "15",
             "--customers-per-period", "5", "--seed", "9", "-o", str(output)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total capital spent" in out
        assert load_json(output).num_nodes >= 16

    def test_render_layout_and_ccdf(self, tmp_path):
        import xml.etree.ElementTree as ElementTree

        topo_path = tmp_path / "fkp.json"
        main(["generate", "fkp", "--nodes", "60", "--seed", "8", "-o", str(topo_path)])
        layout = tmp_path / "layout.svg"
        ccdf = tmp_path / "ccdf.svg"
        assert main(["render", str(topo_path), "-o", str(layout)]) == 0
        assert main(["render", str(topo_path), "--ccdf", "-o", str(ccdf)]) == 0
        ElementTree.fromstring(layout.read_text())
        ElementTree.fromstring(ccdf.read_text())

    def test_scenarios_lists_all_experiments(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for experiment in (f"E{i}" for i in range(1, 9)):
            assert experiment in out


class TestRunCommand:
    def test_run_list(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        for experiment in (f"E{i}" for i in range(1, 10)):
            assert experiment in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "E42"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_requires_experiments(self, capsys):
        assert main(["run"]) == 2

    def test_run_smoke_writes_manifest_and_passes_gates(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BENCH_RESULTS", str(tmp_path / "text"))
        results = tmp_path / "RESULTS"
        code = main(["run", "E1", "--smoke", "--results-dir", str(results)])
        assert code == 0
        out = capsys.readouterr().out
        assert "gates: PASS" in out
        assert (results / "E1" / "manifest.json").exists()
        # Cached second run executes nothing.
        code = main(["run", "E1", "--smoke", "--results-dir", str(results)])
        assert code == 0
        assert "6 cached" in capsys.readouterr().out
