"""Economic substrate: cable catalogs, cost and profit models, provisioning."""

from .cables import (
    CableCatalog,
    CableType,
    default_catalog,
    flat_catalog,
    linear_catalog,
    scaled_catalog,
)
from .cost_model import DEFAULT_NODE_COSTS, CostBreakdown, CostModel
from .profit_model import (
    CustomerProspect,
    ProfitAnalysis,
    RevenueModel,
    analyze_prospects,
    breakeven_distance,
    marginal_profit,
)
from .provisioning import (
    ProvisioningReport,
    capacity_violations,
    peak_utilization,
    provision_topology,
    provisioning_cost,
)

__all__ = [
    "CableCatalog",
    "CableType",
    "default_catalog",
    "flat_catalog",
    "linear_catalog",
    "scaled_catalog",
    "DEFAULT_NODE_COSTS",
    "CostBreakdown",
    "CostModel",
    "CustomerProspect",
    "ProfitAnalysis",
    "RevenueModel",
    "analyze_prospects",
    "breakeven_distance",
    "marginal_profit",
    "ProvisioningReport",
    "capacity_violations",
    "peak_utilization",
    "provision_topology",
    "provisioning_cost",
]
