"""Capacity provisioning: turn routed flows into installed cables and costs.

Given a topology whose links carry loads (from routing or from a tree-flow
computation), choose for each link the cheapest cable installation from a
:class:`~repro.economics.cables.CableCatalog` and annotate the link with the
resulting capacity and cost.  This is the step that converts a pure
connectivity solution into the "connectivity plus resource capacity" object
the paper calls a topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from ..routing.utilization import _resolve_flow_loads
from ..topology.graph import Topology
from .cables import CableCatalog


@dataclass
class ProvisioningReport:
    """Summary of a provisioning pass over a topology.

    Attributes:
        total_install_cost: Sum of installation costs over all links.
        total_usage_cost: Sum of usage costs (marginal rate times load).
        cable_counts: Number of links provisioned with each cable type.
        overprovisioning: Installed capacity divided by carried load (>= 1),
            averaged over loaded links.
    """

    total_install_cost: float
    total_usage_cost: float
    cable_counts: Dict[str, int]
    overprovisioning: float

    @property
    def total_cost(self) -> float:
        """Total provisioning cost."""
        return self.total_install_cost + self.total_usage_cost


def provision_topology(
    topology: Topology,
    catalog: CableCatalog,
    utilization_target: float = 1.0,
    headroom: float = 0.0,
    flow: Any = None,
    *,
    loads: Optional[Sequence[float]] = None,
) -> ProvisioningReport:
    """Install cables on every loaded link of ``topology`` in place.

    For each link the required capacity is ``load * (1 + headroom) /
    utilization_target``; the cheapest cable installation covering it is
    selected from the catalog, and the link's ``capacity``, ``cable``,
    ``install_cost``, and ``usage_cost`` fields are updated.

    Args:
        topology: Topology whose links carry ``load`` values.
        catalog: Cable catalog to provision from.
        utilization_target: Maximum allowed utilization of installed capacity
            (values below 1 force spare capacity).
        headroom: Additional fractional headroom on top of the current load.
        flow: Optional routing result (e.g. a
            :class:`~repro.routing.engine.FlowResult`) whose edge-load column
            drives provisioning: each link is provisioned for — and annotated
            with — the column's load in the same pass, so the array pipeline
            flushes loads and installs cables in one sweep.  The result is
            validated against the topology's current compiled snapshot; a
            stale one raises :class:`~repro.topology.graph.TopologyError`.
        loads: Deprecated — a bare per-edge load column aligned with
            ``topology.compiled()``; pass the routing result as ``flow``
            instead.

    Returns:
        A :class:`ProvisioningReport` with aggregate statistics.
    """
    if not 0 < utilization_target <= 1:
        raise ValueError("utilization_target must be in (0, 1]")
    if headroom < 0:
        raise ValueError("headroom must be non-negative")

    loads = _resolve_flow_loads(topology, flow, loads, "provision_topology")
    if loads is None:
        links = list(topology.links())
    else:
        links = topology.compiled().links
        if len(loads) != len(links):
            raise ValueError(
                f"loads column has {len(loads)} entries for {len(links)} links"
            )
        for link, load in zip(links, loads):
            link.load = load

    total_install = 0.0
    total_usage = 0.0
    cable_counts: Dict[str, int] = {}
    ratios = []
    for link in links:
        required = link.load * (1.0 + headroom) / utilization_target
        if required <= 0:
            # Unloaded links get the smallest cable so the topology stays connected.
            cable, copies = catalog.smallest, 1
        else:
            cable, copies = catalog.provision(required)
        capacity = cable.capacity * copies
        install_cost = cable.install_cost * copies * link.length
        usage_cost_rate = cable.usage_cost * link.length
        link.capacity = capacity
        link.cable = cable.name
        link.install_cost = install_cost
        link.usage_cost = usage_cost_rate
        total_install += install_cost
        total_usage += usage_cost_rate * link.load
        cable_counts[cable.name] = cable_counts.get(cable.name, 0) + 1
        if link.load > 0:
            ratios.append(capacity / link.load)

    overprovisioning = sum(ratios) / len(ratios) if ratios else float("inf")
    return ProvisioningReport(
        total_install_cost=total_install,
        total_usage_cost=total_usage,
        cable_counts=cable_counts,
        overprovisioning=overprovisioning,
    )


def provisioning_cost(
    topology: Topology, catalog: CableCatalog, utilization_target: float = 1.0
) -> float:
    """Provisioning cost of a topology without mutating it.

    Evaluates the same cable selection as :func:`provision_topology` but on a
    copy, leaving the input untouched; used when comparing candidate designs.
    """
    copy = topology.copy()
    report = provision_topology(copy, catalog, utilization_target=utilization_target)
    return report.total_cost


def capacity_violations(topology: Topology) -> Dict[tuple, float]:
    """Links whose load exceeds their installed capacity, with the excess."""
    violations = {}
    for link in topology.links():
        if link.capacity is not None and link.load > link.capacity + 1e-9:
            violations[link.key] = link.load - link.capacity
    return violations


def peak_utilization(topology: Topology) -> Optional[float]:
    """Maximum link utilization, or ``None`` when no link has finite capacity."""
    utilizations = [
        link.load / link.capacity
        for link in topology.links()
        if link.capacity is not None and link.capacity > 0
    ]
    if not utilizations:
        return None
    return max(utilizations)
