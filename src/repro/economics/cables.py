"""Cable types and buy-at-bulk cable catalogs.

Section 4.1 of the paper defines the buy-at-bulk setting precisely: the ISP
chooses among cable types ``k in {1..K}`` with capacity ``u_k``, fixed
installation cost ``sigma_k``, and marginal usage cost ``delta_k``, where

    u_1 <= u_2 <= ... <= u_K,
    sigma_1 <= sigma_2 <= ... <= sigma_K,
    delta_1 >  delta_2 >  ... >  delta_K.

"Larger capacity cables have higher overhead costs, but lower per-bandwidth
usage costs" — i.e. economies of scale.  :class:`CableCatalog` encodes such a
set of cable types and provides the per-unit-length cost of provisioning a
given flow, which is what every buy-at-bulk algorithm in :mod:`repro.core`
optimizes against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CableType:
    """A single cable type (one {capacity, cost} combination).

    Attributes:
        name: Identifier (e.g. ``"OC-12"``).
        capacity: Capacity ``u_k`` (e.g. Mbps).
        install_cost: Fixed overhead cost ``sigma_k`` per unit length.
        usage_cost: Marginal cost ``delta_k`` per unit of flow per unit length.
    """

    name: str
    capacity: float
    install_cost: float
    usage_cost: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"cable capacity must be positive, got {self.capacity}")
        if self.install_cost < 0:
            raise ValueError(f"install cost must be non-negative, got {self.install_cost}")
        if self.usage_cost < 0:
            raise ValueError(f"usage cost must be non-negative, got {self.usage_cost}")

    def cost_for_flow(self, flow: float) -> float:
        """Cost per unit length of carrying ``flow`` over enough copies of this cable.

        Multiple parallel copies are installed when the flow exceeds a single
        cable's capacity (each copy pays its installation cost).
        """
        if flow < 0:
            raise ValueError(f"flow must be non-negative, got {flow}")
        if flow == 0:
            return 0.0
        copies = math.ceil(flow / self.capacity)
        return copies * self.install_cost + flow * self.usage_cost

    def cost_per_unit_capacity(self) -> float:
        """Installation cost per unit of capacity (a measure of bulk discount)."""
        return self.install_cost / self.capacity


class CableCatalog:
    """An ordered set of cable types exhibiting economies of scale.

    The catalog validates the paper's ordering constraints at construction
    time (monotone capacities and installation costs, strictly decreasing
    marginal costs) unless ``validate=False`` is passed — the unvalidated mode
    exists only to support the "no economies of scale" ablation in E3.
    """

    def __init__(self, cable_types: Sequence[CableType], validate: bool = True) -> None:
        if not cable_types:
            raise ValueError("catalog must contain at least one cable type")
        names = [c.name for c in cable_types]
        if len(names) != len(set(names)):
            raise ValueError("cable type names must be unique")
        self._cables = sorted(cable_types, key=lambda c: c.capacity)
        if validate:
            problems = self.validate_economies_of_scale()
            if problems:
                raise ValueError(
                    "catalog violates economies-of-scale ordering: " + "; ".join(problems)
                )

    # ------------------------------------------------------------------
    def validate_economies_of_scale(self) -> List[str]:
        """Return violations of the u/sigma/delta ordering (empty when valid)."""
        problems = []
        for a, b in zip(self._cables, self._cables[1:]):
            if b.capacity < a.capacity:
                problems.append(f"capacity of {b.name} < {a.name}")
            if b.install_cost < a.install_cost:
                problems.append(
                    f"install cost of {b.name} ({b.install_cost}) < {a.name} ({a.install_cost})"
                )
            if b.usage_cost >= a.usage_cost:
                problems.append(
                    f"usage cost of {b.name} ({b.usage_cost}) >= {a.name} ({a.usage_cost})"
                )
        return problems

    # ------------------------------------------------------------------
    @property
    def cables(self) -> Tuple[CableType, ...]:
        """Cable types ordered by increasing capacity."""
        return tuple(self._cables)

    def __len__(self) -> int:
        return len(self._cables)

    def __iter__(self):
        return iter(self._cables)

    def by_name(self, name: str) -> CableType:
        """Look up a cable type by name."""
        for cable in self._cables:
            if cable.name == name:
                return cable
        raise KeyError(f"no cable type named {name!r}")

    @property
    def smallest(self) -> CableType:
        """The lowest-capacity cable type."""
        return self._cables[0]

    @property
    def largest(self) -> CableType:
        """The highest-capacity cable type."""
        return self._cables[-1]

    # ------------------------------------------------------------------
    def best_cable_for_flow(self, flow: float) -> CableType:
        """The cable type minimizing cost per unit length for a given flow."""
        if flow < 0:
            raise ValueError(f"flow must be non-negative, got {flow}")
        if flow == 0:
            return self.smallest
        return min(self._cables, key=lambda c: c.cost_for_flow(flow))

    def cost_per_unit_length(self, flow: float) -> float:
        """Minimum cost per unit length of carrying ``flow`` (the cost envelope).

        This is the lower envelope of the per-cable cost functions — the
        sub-additive, concave-like function whose shape is what makes traffic
        aggregation (and hence tree-like topologies) economical.
        """
        if flow < 0:
            raise ValueError(f"flow must be non-negative, got {flow}")
        if flow == 0:
            return 0.0
        return min(cable.cost_for_flow(flow) for cable in self._cables)

    def link_cost(self, flow: float, length: float) -> float:
        """Minimum total cost of carrying ``flow`` over a link of given ``length``."""
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        return self.cost_per_unit_length(flow) * length

    def provision(self, flow: float) -> Tuple[CableType, int]:
        """Cheapest (cable type, number of parallel copies) carrying ``flow``."""
        cable = self.best_cable_for_flow(flow)
        copies = max(1, math.ceil(flow / cable.capacity)) if flow > 0 else 1
        return cable, copies

    def is_subadditive(self, flows: Iterable[float]) -> bool:
        """Check sub-additivity of the cost envelope on a sample of flows.

        Sub-additivity (cost(a + b) <= cost(a) + cost(b)) is the property that
        rewards aggregating traffic onto shared links.
        """
        sample = [f for f in flows if f > 0]
        for a in sample:
            for b in sample:
                if self.cost_per_unit_length(a + b) > (
                    self.cost_per_unit_length(a) + self.cost_per_unit_length(b) + 1e-9
                ):
                    return False
        return True


def default_catalog() -> CableCatalog:
    """The "fictitious, yet realistic" catalog used throughout the experiments.

    Capacities follow the SONET OC-3 / OC-12 / OC-48 / OC-192 ladder (in
    Mbps); installation and usage costs are synthetic but satisfy the paper's
    economies-of-scale ordering (footnote 8: "parameters were chosen to be
    consistent with the assumptions of the algorithm and the current
    marketplace").
    """
    return CableCatalog(
        [
            CableType(name="DS-3", capacity=45.0, install_cost=1.0, usage_cost=0.200),
            CableType(name="OC-3", capacity=155.0, install_cost=2.2, usage_cost=0.060),
            CableType(name="OC-12", capacity=622.0, install_cost=5.0, usage_cost=0.018),
            CableType(name="OC-48", capacity=2488.0, install_cost=11.0, usage_cost=0.005),
            CableType(name="OC-192", capacity=9953.0, install_cost=24.0, usage_cost=0.0015),
        ]
    )


def flat_catalog(capacity: float = 1e12, unit_cost: float = 1.0) -> CableCatalog:
    """A single-cable catalog with no economies of scale (ablation baseline).

    With one cable type whose installation cost dominates, the buy-at-bulk
    problem degenerates toward a Steiner-tree / shortest-path structure; this
    catalog isolates the effect of the economies of scale present in
    :func:`default_catalog`.
    """
    return CableCatalog(
        [CableType(name="flat", capacity=capacity, install_cost=unit_cost, usage_cost=0.0)]
    )


def linear_catalog(usage_cost: float = 1.0) -> CableCatalog:
    """A catalog with zero fixed cost and purely linear usage cost.

    Under purely linear costs there is no reward for aggregation, so optimal
    access networks collapse to direct customer-to-core stars; used by the E3
    ablation to show that economies of scale are what produce tree structure.
    """
    return CableCatalog(
        [CableType(name="linear", capacity=1e12, install_cost=0.0, usage_cost=usage_cost)]
    )


def scaled_catalog(base: Optional[CableCatalog] = None, factor: float = 1.0) -> CableCatalog:
    """Return a copy of ``base`` with all costs multiplied by ``factor``."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    base = base or default_catalog()
    return CableCatalog(
        [
            CableType(
                name=c.name,
                capacity=c.capacity,
                install_cost=c.install_cost * factor,
                usage_cost=c.usage_cost * factor,
            )
            for c in base
        ]
    )
