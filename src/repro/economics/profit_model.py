"""Profit-based objective: build out only to the point of profitability.

The paper's alternative formulation (Section 2.2): "a profit-based formulation
seeks to build a network that satisfies demand only up to the point of
profitability — that is, economically speaking where marginal revenue meets
marginal cost."  This module models per-customer revenue and provides the
marginal analysis used by the ISP generator to decide which customers are
worth connecting at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class RevenueModel:
    """Revenue earned from a connected customer.

    Revenue has a flat subscription component plus a volume component, with
    diminishing per-unit price above a volume threshold (bulk customers
    negotiate discounts).

    Attributes:
        subscription: Flat revenue per connected customer.
        price_per_unit: Revenue per unit of demand up to ``discount_threshold``.
        discount_threshold: Demand volume above which the discounted price applies.
        discounted_price_per_unit: Revenue per unit of demand beyond the threshold.
    """

    subscription: float = 10.0
    price_per_unit: float = 1.0
    discount_threshold: float = float("inf")
    discounted_price_per_unit: float = 0.5

    def __post_init__(self) -> None:
        if self.subscription < 0 or self.price_per_unit < 0 or self.discounted_price_per_unit < 0:
            raise ValueError("revenue components must be non-negative")
        if self.discount_threshold <= 0:
            raise ValueError("discount_threshold must be positive")

    def revenue_for_demand(self, demand: float) -> float:
        """Revenue earned by serving a customer with the given demand."""
        if demand < 0:
            raise ValueError(f"demand must be non-negative, got {demand}")
        if demand <= self.discount_threshold:
            volume_revenue = demand * self.price_per_unit
        else:
            volume_revenue = (
                self.discount_threshold * self.price_per_unit
                + (demand - self.discount_threshold) * self.discounted_price_per_unit
            )
        return self.subscription + volume_revenue

    def revenue_for_demands(self, demands: Sequence[float]) -> float:
        """Total revenue over a demand column in one pass.

        The array-pipeline companion of :meth:`revenue_for_demand`: pricing a
        routed demand matrix (one volume per pair, e.g.
        ``CompiledDemand.volumes``) charges the whole column without a Python
        call per customer.  Below the discount threshold the tariff is affine,
        so the column reduces to ``count * subscription + sum * price``;
        discounted volumes fall back to the scalar rule.
        """
        total_volume = 0.0
        discounted = 0.0
        count = 0
        threshold = self.discount_threshold
        for demand in demands:
            if demand < 0:
                raise ValueError(f"demand must be non-negative, got {demand}")
            if demand > threshold:
                discounted += self.revenue_for_demand(demand)
            else:
                total_volume += demand
                count += 1
        return count * self.subscription + total_volume * self.price_per_unit + discounted


@dataclass(frozen=True)
class CustomerProspect:
    """A candidate customer evaluated by the profit formulation.

    Attributes:
        customer_id: Identifier of the customer (matches the topology node id).
        demand: Traffic demand of the customer.
        connection_cost: Incremental cost of connecting the customer to the
            existing network (cable, equipment).
    """

    customer_id: object
    demand: float
    connection_cost: float

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError("demand must be non-negative")
        if self.connection_cost < 0:
            raise ValueError("connection cost must be non-negative")


@dataclass
class ProfitAnalysis:
    """Result of a marginal profit analysis over a set of prospects.

    Attributes:
        accepted: Prospects worth connecting (marginal revenue >= marginal cost).
        rejected: Prospects not worth connecting.
        total_revenue: Revenue from accepted prospects.
        total_cost: Connection cost of accepted prospects.
    """

    accepted: List[CustomerProspect]
    rejected: List[CustomerProspect]
    total_revenue: float
    total_cost: float

    @property
    def profit(self) -> float:
        """Net profit of the accepted set."""
        return self.total_revenue - self.total_cost

    @property
    def acceptance_rate(self) -> float:
        """Fraction of prospects accepted."""
        total = len(self.accepted) + len(self.rejected)
        return len(self.accepted) / total if total else 0.0


def marginal_profit(prospect: CustomerProspect, revenue_model: RevenueModel) -> float:
    """Marginal profit of connecting a single prospect."""
    return revenue_model.revenue_for_demand(prospect.demand) - prospect.connection_cost


def analyze_prospects(
    prospects: Sequence[CustomerProspect],
    revenue_model: RevenueModel,
    budget: float = float("inf"),
) -> ProfitAnalysis:
    """Greedy marginal-profit analysis: accept customers while profitable.

    Prospects are considered in decreasing order of marginal profit and
    accepted while (a) their marginal revenue is at least their marginal cost
    and (b) the cumulative connection cost stays within ``budget``.  This is
    the point "where marginal revenue meets marginal cost".

    Args:
        prospects: Candidate customers with their incremental connection costs.
        revenue_model: Revenue earned per connected customer.
        budget: Optional capital-expenditure cap.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    ranked = sorted(
        prospects, key=lambda p: marginal_profit(p, revenue_model), reverse=True
    )
    accepted: List[CustomerProspect] = []
    rejected: List[CustomerProspect] = []
    total_revenue = 0.0
    total_cost = 0.0
    for prospect in ranked:
        gain = marginal_profit(prospect, revenue_model)
        if gain >= 0 and total_cost + prospect.connection_cost <= budget:
            accepted.append(prospect)
            total_revenue += revenue_model.revenue_for_demand(prospect.demand)
            total_cost += prospect.connection_cost
        else:
            rejected.append(prospect)
    return ProfitAnalysis(
        accepted=accepted,
        rejected=rejected,
        total_revenue=total_revenue,
        total_cost=total_cost,
    )


def breakeven_distance(
    demand: float,
    revenue_model: RevenueModel,
    cost_per_unit_length: float,
) -> float:
    """Maximum connection distance at which a customer is still profitable.

    Solves ``revenue(demand) = cost_per_unit_length * distance`` for distance;
    returns ``inf`` when the connection cost rate is zero.
    """
    if cost_per_unit_length < 0:
        raise ValueError("cost_per_unit_length must be non-negative")
    revenue = revenue_model.revenue_for_demand(demand)
    if cost_per_unit_length == 0:
        return float("inf")
    return revenue / cost_per_unit_length
