"""Cost-based objective accounting for annotated topologies.

The paper's cost-based formulation (Section 2.2) "builds a network that
minimizes cost subject to satisfying traffic demand".  This module provides
the cost accounting used by that formulation: per-link cost built from fixed
installation and marginal usage components, plus equipment costs per node
role, aggregated over a topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..topology.graph import Topology
from ..topology.node import NodeRole
from .cables import CableCatalog


#: Default equipment cost charged per node, by role (synthetic but ordered:
#: core routers are the most expensive, customer equipment is not paid by the ISP).
DEFAULT_NODE_COSTS: Dict[NodeRole, float] = {
    NodeRole.CORE: 500.0,
    NodeRole.BACKBONE: 250.0,
    NodeRole.PEERING: 250.0,
    NodeRole.DISTRIBUTION: 80.0,
    NodeRole.ACCESS: 25.0,
    NodeRole.CUSTOMER: 0.0,
    NodeRole.GENERIC: 0.0,
}


@dataclass
class CostBreakdown:
    """Cost of a topology broken into its components.

    Attributes:
        link_install: Total fixed installation cost over links.
        link_usage: Total marginal usage cost (cost rate times carried load).
        node_equipment: Total equipment cost over nodes.
    """

    link_install: float = 0.0
    link_usage: float = 0.0
    node_equipment: float = 0.0

    @property
    def total(self) -> float:
        """Grand total cost."""
        return self.link_install + self.link_usage + self.node_equipment

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a plain dictionary (for reports and benchmarks)."""
        return {
            "link_install": self.link_install,
            "link_usage": self.link_usage,
            "node_equipment": self.node_equipment,
            "total": self.total,
        }


@dataclass
class CostModel:
    """Computes the cost of an annotated topology.

    Args:
        catalog: Optional cable catalog; when provided and a link carries no
            explicit installation cost, the catalog's cost envelope for the
            link's load and length is used instead.
        node_costs: Equipment cost per node role; defaults to
            :data:`DEFAULT_NODE_COSTS`.
        fiber_cost_per_length: Right-of-way cost per unit length added to
            every link regardless of cable choice.
    """

    catalog: Optional[CableCatalog] = None
    node_costs: Dict[NodeRole, float] = field(
        default_factory=lambda: dict(DEFAULT_NODE_COSTS)
    )
    fiber_cost_per_length: float = 0.0

    def link_cost(self, load: float, length: float) -> float:
        """Cost of a link carrying ``load`` over ``length`` using the catalog."""
        if self.catalog is None:
            raise ValueError("link_cost requires a cable catalog")
        return self.catalog.link_cost(load, length) + self.fiber_cost_per_length * length

    def link_contribution(self, link) -> Tuple[float, float]:
        """One link's ``(install, usage)`` contribution to the breakdown.

        Links that already carry explicit ``install_cost``/``usage_cost``
        annotations are charged exactly those; links without annotations fall
        back to the catalog envelope applied to their current load and length.
        This is the single source of truth for per-link pricing — both the
        full :meth:`evaluate` sweep and the incremental objective engine
        (:mod:`repro.optimization.incremental`) charge links through it, so
        delta and full evaluations can never disagree on a link's price.
        """
        annotated = link.install_cost > 0 or link.usage_cost > 0
        if annotated or self.catalog is None:
            install = link.install_cost
            usage = link.usage_cost * link.load
        else:
            install = self.catalog.link_cost(link.load, link.length)
            usage = 0.0
        return install + self.fiber_cost_per_length * link.length, usage

    def node_contribution(self, node) -> float:
        """One node's equipment cost contribution to the breakdown."""
        return self.node_costs.get(node.role, 0.0)

    def evaluate(self, topology: Topology) -> CostBreakdown:
        """Compute the cost breakdown of a topology.

        Per-link charging rules live in :meth:`link_contribution`.
        """
        breakdown = CostBreakdown()
        for link in topology.links():
            install, usage = self.link_contribution(link)
            breakdown.link_install += install
            breakdown.link_usage += usage
        for node in topology.nodes():
            breakdown.node_equipment += self.node_contribution(node)
        return breakdown

    def total_cost(self, topology: Topology) -> float:
        """Total cost of a topology (convenience wrapper over :meth:`evaluate`)."""
        return self.evaluate(topology).total
