"""Common interface and registry for descriptive topology generators.

The paper contrasts its optimization-driven approach with "descriptive or
evocative" generators that match chosen statistics (degree distributions,
hierarchy).  To reproduce that comparison (experiment E5) we implement the
standard families referenced in the paper's introduction and Section 3.2 —
degree-based (Barabási–Albert, GLP, PLRG/Aiello–Chung–Lu, Inet-style) and
structural (Erdős–Rényi, Waxman, transit-stub) — behind a single interface.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..topology.graph import Topology


class TopologyGenerator(abc.ABC):
    """Interface implemented by every descriptive generator."""

    #: Short identifier used in registries, reports, and benchmark tables.
    name: str = "generator"

    @abc.abstractmethod
    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        """Generate a topology with (approximately) ``num_nodes`` nodes."""

    def describe(self) -> Dict[str, object]:
        """Parameters of the generator, for experiment reports."""
        return {"name": self.name}


#: Global registry: generator name -> factory producing a default-configured instance.
_REGISTRY: Dict[str, Callable[[], TopologyGenerator]] = {}


def register_generator(name: str, factory: Callable[[], TopologyGenerator]) -> None:
    """Register a generator factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_generators() -> List[str]:
    """Names of all registered generators, sorted."""
    return sorted(_REGISTRY)


def make_generator(name: str) -> TopologyGenerator:
    """Instantiate a registered generator by name."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown generator {name!r}; available: {', '.join(available_generators())}"
        )
    return _REGISTRY[name]()


def ensure_connected(topology: Topology, rng: random.Random) -> Topology:
    """Connect a possibly disconnected topology by linking components.

    Random-graph baselines (Erdős–Rényi, Waxman, PLRG) can produce
    disconnected graphs; metrics such as average path length need a connected
    graph, so we follow the common practice of joining components with a
    minimal number of random links.  The patch links carry an attribute
    ``synthetic=True`` so analyses can exclude them if desired.
    """
    components = topology.connected_components()
    if len(components) <= 1:
        return topology
    anchor_component = max(components, key=len)
    anchor_nodes = sorted(anchor_component, key=repr)
    for component in components:
        if component is anchor_component:
            continue
        u = sorted(component, key=repr)[rng.randrange(len(component))]
        v = anchor_nodes[rng.randrange(len(anchor_nodes))]
        if not topology.has_link(u, v):
            topology.add_link(u, v, synthetic=True)
    return topology


@dataclass
class GeneratedEnsemble:
    """A batch of topologies produced by one generator (for ensemble statistics)."""

    generator_name: str
    topologies: List[Topology]

    def __len__(self) -> int:
        return len(self.topologies)


def generate_ensemble(
    generator: TopologyGenerator,
    num_nodes: int,
    num_samples: int,
    seed: Optional[int] = None,
) -> GeneratedEnsemble:
    """Generate ``num_samples`` independent topologies from one generator."""
    if num_samples < 1:
        raise ValueError("num_samples must be >= 1")
    base = seed if seed is not None else 0
    topologies = [
        generator.generate(num_nodes, seed=base + index) for index in range(num_samples)
    ]
    return GeneratedEnsemble(generator_name=generator.name, topologies=topologies)
