"""Erdős–Rényi random graphs (the null-model baseline).

Edges are drawn by geometric skip-sampling over the flattened pair order
(:func:`~repro.generators.sampling.skip_sampled_pairs`): the per-pair edge
distribution is exactly Bernoulli(p), but the cost is O(n + expected_links)
instead of the seed's O(n^2) per-pair loop.  The random stream differs from
the seed's, so per-seed outputs changed with the generation-engine rewrite;
G(n, p) itself is unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..topology.graph import Topology
from .base import TopologyGenerator, ensure_connected
from .sampling import skip_sampled_pairs


@dataclass
class ErdosRenyiGenerator(TopologyGenerator):
    """G(n, p) random graph.

    Attributes:
        edge_probability: Probability of each possible edge; when ``None`` it
            is chosen as ``target_mean_degree / (n - 1)``.
        target_mean_degree: Mean degree used to derive ``p`` when
            ``edge_probability`` is not given.
        connect: Patch the graph into a single connected component.
    """

    edge_probability: Optional[float] = None
    target_mean_degree: float = 4.0
    connect: bool = True
    name: str = "erdos-renyi"

    def __post_init__(self) -> None:
        if self.edge_probability is not None and not 0 <= self.edge_probability <= 1:
            raise ValueError("edge_probability must be in [0, 1]")
        if self.target_mean_degree <= 0:
            raise ValueError("target_mean_degree must be positive")

    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        rng = random.Random(seed)
        p = self.edge_probability
        if p is None:
            p = min(1.0, self.target_mean_degree / max(1, num_nodes - 1))
        topology = Topology(name=f"erdos-renyi-n{num_nodes}")
        topology.metadata["model"] = self.name
        topology.metadata["p"] = p
        for node_id in range(num_nodes):
            topology.add_node(node_id)
        for u, v in skip_sampled_pairs(num_nodes, p, rng):
            topology.add_link(u, v)
        if self.connect:
            ensure_connected(topology, rng)
        return topology

    def describe(self):
        return {
            "name": self.name,
            "edge_probability": self.edge_probability,
            "target_mean_degree": self.target_mean_degree,
        }
