"""Power-Law Random Graph (PLRG / Aiello–Chung–Lu) generator.

Reference [1] in the paper: assign each node a target degree drawn from a
power law, create that many "stubs" per node, and match stubs uniformly at
random.  The result matches the prescribed degree distribution but has no
geography, no hierarchy, and no cost structure — a pure degree-based
comparator for experiment E5.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from typing import List, Optional

from ..topology.graph import Topology
from .base import TopologyGenerator, ensure_connected


def power_law_degree_sequence(
    num_nodes: int,
    exponent: float,
    min_degree: int,
    max_degree: Optional[int],
    rng: random.Random,
) -> List[int]:
    """Sample a degree sequence from a discrete power law via inverse transform.

    The sequence is adjusted to have an even sum (required for stub matching).
    """
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    if exponent <= 1:
        raise ValueError("exponent must be > 1")
    if min_degree < 1:
        raise ValueError("min_degree must be >= 1")
    max_degree = max_degree or max(min_degree, num_nodes - 1)
    if max_degree < min_degree:
        raise ValueError("max_degree must be >= min_degree")

    # Discrete power law P(k) ∝ k^-exponent on [min_degree, max_degree].
    weights = [k ** (-exponent) for k in range(min_degree, max_degree + 1)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)

    # Inverse transform via bisect on the cumulative table: the first index
    # with cumulative >= u, capped at the last entry — the same comparisons
    # against the same floats as a linear scan, in O(log k) per draw.
    degrees = []
    last = len(cumulative) - 1
    for _ in range(num_nodes):
        u = rng.random()
        index = bisect_left(cumulative, u)
        if index > last:
            index = last
        degrees.append(min_degree + index)
    if sum(degrees) % 2 == 1:
        degrees[rng.randrange(num_nodes)] += 1
    return degrees


@dataclass
class PLRGGenerator(TopologyGenerator):
    """Aiello–Chung–Lu stub-matching power-law generator.

    Attributes:
        exponent: Power-law exponent of the target degree distribution
            (measured AS graphs have roughly 2.1–2.7).
        min_degree: Minimum target degree.
        max_degree: Optional cap on the target degree.
        connect: Patch the result into one connected component.
    """

    exponent: float = 2.2
    min_degree: int = 1
    max_degree: Optional[int] = None
    connect: bool = True
    name: str = "plrg"

    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        if num_nodes < 2:
            raise ValueError("num_nodes must be >= 2")
        rng = random.Random(seed)
        degrees = power_law_degree_sequence(
            num_nodes, self.exponent, self.min_degree, self.max_degree, rng
        )
        topology = Topology(name=f"plrg-n{num_nodes}")
        topology.metadata["model"] = self.name
        topology.metadata["exponent"] = self.exponent
        for node_id in range(num_nodes):
            topology.add_node(node_id, target_degree=degrees[node_id])

        stubs: List[int] = []
        for node_id, degree in enumerate(degrees):
            stubs.extend([node_id] * degree)
        rng.shuffle(stubs)
        # Pair consecutive stubs; self-loops and duplicate edges are dropped,
        # which slightly lowers realized degrees (standard for stub matching).
        for index in range(0, len(stubs) - 1, 2):
            u, v = stubs[index], stubs[index + 1]
            if u != v and not topology.has_link(u, v):
                topology.add_link(u, v)
        if self.connect:
            ensure_connected(topology, rng)
        return topology

    def describe(self):
        return {
            "name": self.name,
            "exponent": self.exponent,
            "min_degree": self.min_degree,
            "max_degree": self.max_degree,
        }
