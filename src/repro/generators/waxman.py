"""Waxman random geometric graphs (structural baseline).

The Waxman model places nodes uniformly in a region and connects each pair
with probability ``beta * exp(-d / (alpha_w * L))`` where ``d`` is their
distance and ``L`` the region diagonal.  It is the classic "structural"
generator the paper's reference [33] (Zegura et al.) compares against.

Instead of testing all ``n*(n-1)/2`` pairs, the default ``grid`` method
buckets the nodes into a uniform grid
(:class:`~repro.geography.spatial_index.GridBuckets`) and, for every pair of
cells, draws candidate pairs by geometric skip-sampling at the cell pair's
probability *upper bound* ``p_max = beta * exp(-d_min(cells) / (alpha_w *
L))``, then accepts each candidate with ``p(d) / p_max`` (rejection).  The
resulting edge distribution is exactly the Waxman distribution, but the
random stream differs from the seed's pair loop, so per-seed outputs change;
the equivalence is gated statistically (expected link count within 3 sigma,
degree-distribution KS test) in ``tests/generators/test_generators.py``.
The ``naive`` method keeps the seed's exact per-pair stream as the reference.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..geography.points import euclidean
from ..geography.regions import Region, unit_square
from ..geography.spatial_index import GridBuckets
from ..topology.graph import Topology
from .base import TopologyGenerator, ensure_connected
from .sampling import skip_sampled_indices, skip_sampled_pairs


@dataclass
class WaxmanGenerator(TopologyGenerator):
    """Waxman (1988) random geometric graph generator.

    Attributes:
        alpha_w: Distance decay scale (larger = longer links more likely).
        beta: Overall link probability scale.
        region: Placement region (unit square by default).
        connect: Patch the result into one connected component.
        method: ``"grid"`` (bucketed skip/rejection sampling, near-linear in
            the number of realized links) or ``"naive"`` (the seed's O(n^2)
            pair loop, kept as the statistical reference).
    """

    alpha_w: float = 0.2
    beta: float = 0.4
    region: Optional[Region] = None
    connect: bool = True
    method: str = "grid"
    name: str = "waxman"

    def __post_init__(self) -> None:
        if self.alpha_w <= 0:
            raise ValueError("alpha_w must be positive")
        if not 0 < self.beta <= 1:
            raise ValueError("beta must be in (0, 1]")
        if self.method not in ("grid", "naive"):
            raise ValueError(f"method must be 'grid' or 'naive', got {self.method!r}")

    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        rng = random.Random(seed)
        region = self.region or unit_square()
        locations = region.sample_uniform(num_nodes, rng)
        diagonal = region.diagonal

        topology = Topology(name=f"waxman-n{num_nodes}")
        topology.metadata["model"] = self.name
        topology.metadata["alpha_w"] = self.alpha_w
        topology.metadata["beta"] = self.beta
        topology.metadata["method"] = self.method
        for node_id in range(num_nodes):
            topology.add_node(node_id, location=locations[node_id])

        scale = self.alpha_w * diagonal
        if self.method == "naive":
            for u in range(num_nodes):
                for v in range(u + 1, num_nodes):
                    distance = euclidean(locations[u], locations[v])
                    probability = self.beta * math.exp(-distance / scale)
                    if rng.random() < probability:
                        topology.add_link(u, v)
        else:
            self._generate_links_grid(topology, locations, region, scale, rng)
        if self.connect:
            ensure_connected(topology, rng)
        return topology

    def _generate_links_grid(
        self,
        topology: Topology,
        locations: Sequence[Tuple[float, float]],
        region: Region,
        scale: float,
        rng: random.Random,
    ) -> None:
        """Grid-bucketed pair sampling; every unordered pair is covered once."""
        beta = self.beta
        cells_per_side = max(1, int(round(len(locations) ** 0.25)))
        buckets = GridBuckets(locations, region, cells_per_side)
        cells = buckets.cells
        for a in range(len(cells)):
            key_a, members_a = cells[a]
            for b in range(a, len(cells)):
                key_b, members_b = cells[b]
                p_max = beta * math.exp(-buckets.min_distance(key_a, key_b) / scale)
                if a == b:
                    pair_iter = self._same_cell_pairs(members_a, p_max, rng)
                else:
                    pair_iter = self._cross_cell_pairs(members_a, members_b, p_max, rng)
                for u, v in pair_iter:
                    distance = euclidean(locations[u], locations[v])
                    probability = beta * math.exp(-distance / scale)
                    # Accept with probability p(d) / p_max  (p(d) <= p_max
                    # because d >= d_min between the two cells).
                    if rng.random() * p_max < probability:
                        topology.add_link(u, v)

    @staticmethod
    def _same_cell_pairs(
        members: List[int], p_max: float, rng: random.Random
    ) -> Iterator[Tuple[int, int]]:
        """Skip-sampled candidate pairs (i < j) within one cell."""
        for i, j in skip_sampled_pairs(len(members), p_max, rng):
            yield members[i], members[j]

    @staticmethod
    def _cross_cell_pairs(
        members_a: List[int], members_b: List[int], p_max: float, rng: random.Random
    ) -> Iterator[Tuple[int, int]]:
        """Skip-sampled candidate pairs across two distinct cells."""
        width = len(members_b)
        total_pairs = len(members_a) * width
        for flat in skip_sampled_indices(total_pairs, p_max, rng):
            yield members_a[flat // width], members_b[flat % width]

    def describe(self):
        return {
            "name": self.name,
            "alpha_w": self.alpha_w,
            "beta": self.beta,
            "method": self.method,
        }
