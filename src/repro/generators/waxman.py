"""Waxman random geometric graphs (structural baseline).

The Waxman model places nodes uniformly in a region and connects each pair
with probability ``beta * exp(-d / (alpha_w * L))`` where ``d`` is their
distance and ``L`` the region diagonal.  It is the classic "structural"
generator the paper's reference [33] (Zegura et al.) compares against.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from ..geography.points import euclidean
from ..geography.regions import Region, unit_square
from ..topology.graph import Topology
from .base import TopologyGenerator, ensure_connected


@dataclass
class WaxmanGenerator(TopologyGenerator):
    """Waxman (1988) random geometric graph generator.

    Attributes:
        alpha_w: Distance decay scale (larger = longer links more likely).
        beta: Overall link probability scale.
        region: Placement region (unit square by default).
        connect: Patch the result into one connected component.
    """

    alpha_w: float = 0.2
    beta: float = 0.4
    region: Optional[Region] = None
    connect: bool = True
    name: str = "waxman"

    def __post_init__(self) -> None:
        if self.alpha_w <= 0:
            raise ValueError("alpha_w must be positive")
        if not 0 < self.beta <= 1:
            raise ValueError("beta must be in (0, 1]")

    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        rng = random.Random(seed)
        region = self.region or unit_square()
        locations = region.sample_uniform(num_nodes, rng)
        diagonal = region.diagonal

        topology = Topology(name=f"waxman-n{num_nodes}")
        topology.metadata["model"] = self.name
        topology.metadata["alpha_w"] = self.alpha_w
        topology.metadata["beta"] = self.beta
        for node_id in range(num_nodes):
            topology.add_node(node_id, location=locations[node_id])
        for u in range(num_nodes):
            for v in range(u + 1, num_nodes):
                distance = euclidean(locations[u], locations[v])
                probability = self.beta * math.exp(-distance / (self.alpha_w * diagonal))
                if rng.random() < probability:
                    topology.add_link(u, v)
        if self.connect:
            ensure_connected(topology, rng)
        return topology

    def describe(self):
        return {"name": self.name, "alpha_w": self.alpha_w, "beta": self.beta}
