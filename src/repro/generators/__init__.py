"""Descriptive baseline generators (degree-based and structural).

These are the comparators the paper critiques: they match chosen statistics
(degree distributions, imposed hierarchy) rather than modeling the economic
and technical forces that produce them.  Experiment E5 runs all of them
against the optimization-driven generators through the common
:class:`~repro.generators.base.TopologyGenerator` interface.
"""

from .base import (
    GeneratedEnsemble,
    TopologyGenerator,
    available_generators,
    ensure_connected,
    generate_ensemble,
    make_generator,
    register_generator,
)
from .sampling import (
    FenwickSampler,
    MultisetSampler,
    linear_weighted_index,
    skip_sampled_indices,
    skip_sampled_pairs,
)
from .erdos_renyi import ErdosRenyiGenerator
from .waxman import WaxmanGenerator
from .barabasi_albert import BarabasiAlbertGenerator
from .glp import GLPGenerator
from .plrg import PLRGGenerator, power_law_degree_sequence
from .inet import InetGenerator
from .transit_stub import TransitStubGenerator

# Register the default-configured generators so callers (and the comparison
# harness) can instantiate them by name.
register_generator("erdos-renyi", ErdosRenyiGenerator)
register_generator("waxman", WaxmanGenerator)
register_generator("barabasi-albert", BarabasiAlbertGenerator)
register_generator("glp", GLPGenerator)
register_generator("plrg", PLRGGenerator)
register_generator("inet", InetGenerator)
register_generator("transit-stub", TransitStubGenerator)

__all__ = [
    "FenwickSampler",
    "MultisetSampler",
    "linear_weighted_index",
    "skip_sampled_indices",
    "skip_sampled_pairs",
    "GeneratedEnsemble",
    "TopologyGenerator",
    "available_generators",
    "ensure_connected",
    "generate_ensemble",
    "make_generator",
    "register_generator",
    "ErdosRenyiGenerator",
    "WaxmanGenerator",
    "BarabasiAlbertGenerator",
    "GLPGenerator",
    "PLRGGenerator",
    "power_law_degree_sequence",
    "InetGenerator",
    "TransitStubGenerator",
]
