"""Generalized Linear Preference (GLP) generator (degree-based baseline).

Bu and Towsley [8 in the paper] proposed GLP to better match Internet
clustering than plain preferential attachment: attachment probability is
proportional to ``degree - beta_glp`` (with ``beta_glp < 1``), and each step
either adds a new node with ``m`` links (probability ``p_new``) or adds ``m``
extra links between existing nodes (probability ``1 - p_new``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..topology.graph import Topology
from .base import TopologyGenerator


@dataclass
class GLPGenerator(TopologyGenerator):
    """Generalized Linear Preference generator.

    Attributes:
        links_per_step: Number of links added per step (``m``).
        p_new: Probability that a step adds a new node (vs. only new links).
        beta_glp: Preference shift; smaller values bias attachment more
            strongly toward high-degree nodes.
    """

    links_per_step: int = 1
    p_new: float = 0.66
    beta_glp: float = 0.15
    name: str = "glp"

    def __post_init__(self) -> None:
        if self.links_per_step < 1:
            raise ValueError("links_per_step must be >= 1")
        if not 0 < self.p_new <= 1:
            raise ValueError("p_new must be in (0, 1]")
        if self.beta_glp >= 1:
            raise ValueError("beta_glp must be < 1")

    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        m = self.links_per_step
        if num_nodes < m + 2:
            raise ValueError(f"num_nodes must be at least links_per_step + 2 = {m + 2}")
        rng = random.Random(seed)
        topology = Topology(name=f"glp-n{num_nodes}")
        topology.metadata["model"] = self.name
        topology.metadata["p_new"] = self.p_new
        topology.metadata["beta_glp"] = self.beta_glp

        # Small seed path graph.
        for node_id in range(m + 2):
            topology.add_node(node_id)
        for node_id in range(m + 1):
            topology.add_link(node_id, node_id + 1)

        next_id = m + 2
        max_steps = 50 * num_nodes
        steps = 0
        while topology.num_nodes < num_nodes and steps < max_steps:
            steps += 1
            if rng.random() < self.p_new:
                new_id = next_id
                next_id += 1
                topology.add_node(new_id)
                targets = self._preferential_targets(topology, rng, m, exclude={new_id})
                for target in targets:
                    if not topology.has_link(new_id, target):
                        topology.add_link(new_id, target)
            else:
                for _ in range(m):
                    pair = self._preferential_targets(topology, rng, 2, exclude=set())
                    if len(pair) == 2 and not topology.has_link(pair[0], pair[1]):
                        topology.add_link(pair[0], pair[1])
        return topology

    def _preferential_targets(
        self, topology: Topology, rng: random.Random, count: int, exclude: set
    ) -> List[int]:
        """Sample ``count`` distinct nodes with probability ∝ (degree - beta)."""
        candidates = [n for n in topology.node_ids() if n not in exclude]
        weights = [max(1e-9, topology.degree(n) - self.beta_glp) for n in candidates]
        total = sum(weights)
        chosen: List[int] = []
        attempts = 0
        while len(chosen) < min(count, len(candidates)) and attempts < 100 * count:
            attempts += 1
            target_weight = rng.random() * total
            cumulative = 0.0
            for candidate, weight in zip(candidates, weights):
                cumulative += weight
                if target_weight <= cumulative:
                    if candidate not in chosen:
                        chosen.append(candidate)
                    break
        return chosen

    def describe(self):
        return {
            "name": self.name,
            "links_per_step": self.links_per_step,
            "p_new": self.p_new,
            "beta_glp": self.beta_glp,
        }
