"""Generalized Linear Preference (GLP) generator (degree-based baseline).

Bu and Towsley [8 in the paper] proposed GLP to better match Internet
clustering than plain preferential attachment: attachment probability is
proportional to ``degree - beta_glp`` (with ``beta_glp < 1``), and each step
either adds a new node with ``m`` links (probability ``p_new``) or adds ``m``
extra links between existing nodes (probability ``1 - p_new``).

The growth loop runs against the shared generation engine
(:mod:`repro.generators.sampling`): node degrees are maintained incrementally
in a :class:`~repro.generators.sampling.FenwickSampler` keyed by node id, so
each preferential draw costs O(log n) instead of rebuilding the candidate and
weight lists (with one ``Topology.degree`` call per candidate) and scanning
them linearly, as the seed implementation did.  The sampler reproduces the
seed's inverse-CDF semantics — one ``rng.random()`` per attempt, mapped to
the smallest node whose cumulative ``max(1e-9, degree - beta)`` weight
reaches ``u * total`` — so seeded outputs are bit-identical (pinned by the
hash regression tests in ``tests/generators/test_seed_stability.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..topology.graph import Topology, TopologyError
from .base import TopologyGenerator
from .sampling import FenwickSampler


@dataclass
class GLPGenerator(TopologyGenerator):
    """Generalized Linear Preference generator.

    Attributes:
        links_per_step: Number of links added per step (``m``).
        p_new: Probability that a step adds a new node (vs. only new links).
        beta_glp: Preference shift; smaller values bias attachment more
            strongly toward high-degree nodes.
    """

    links_per_step: int = 1
    p_new: float = 0.66
    beta_glp: float = 0.15
    name: str = "glp"

    def __post_init__(self) -> None:
        if self.links_per_step < 1:
            raise ValueError("links_per_step must be >= 1")
        if not 0 < self.p_new <= 1:
            raise ValueError("p_new must be in (0, 1]")
        if self.beta_glp >= 1:
            raise ValueError("beta_glp must be < 1")

    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        m = self.links_per_step
        if num_nodes < m + 2:
            raise ValueError(f"num_nodes must be at least links_per_step + 2 = {m + 2}")
        rng = random.Random(seed)
        topology = Topology(name=f"glp-n{num_nodes}")
        topology.metadata["model"] = self.name
        topology.metadata["p_new"] = self.p_new
        topology.metadata["beta_glp"] = self.beta_glp

        # Small seed path graph.
        for node_id in range(m + 2):
            topology.add_node(node_id)
        for node_id in range(m + 1):
            topology.add_link(node_id, node_id + 1)

        # New nodes get ids m+2 .. num_nodes-1, so num_nodes bounds every id.
        degrees = [0] * num_nodes
        sampler = FenwickSampler(num_nodes)
        beta = self.beta_glp
        for node_id in range(m + 2):
            degrees[node_id] = topology.degree(node_id)
            sampler.set_weight(node_id, max(1e-9, degrees[node_id] - beta))

        next_id = m + 2
        max_steps = 50 * num_nodes
        steps = 0
        while topology.num_nodes < num_nodes and steps < max_steps:
            steps += 1
            if rng.random() < self.p_new:
                new_id = next_id
                next_id += 1
                # The new node enters the sampler only after its links exist,
                # which is exactly the seed's ``exclude={new_id}``.
                topology.add_node(new_id)
                targets = self._sample_distinct(sampler, rng, m)
                for target in targets:
                    if not topology.has_link(new_id, target):
                        topology.add_link(new_id, target)
                        degrees[new_id] += 1
                        degrees[target] += 1
                        sampler.set_weight(target, max(1e-9, degrees[target] - beta))
                sampler.set_weight(new_id, max(1e-9, degrees[new_id] - beta))
            else:
                for _ in range(m):
                    pair = self._sample_distinct(sampler, rng, 2)
                    if len(pair) == 2 and not topology.has_link(pair[0], pair[1]):
                        topology.add_link(pair[0], pair[1])
                        for endpoint in pair:
                            degrees[endpoint] += 1
                            sampler.set_weight(
                                endpoint, max(1e-9, degrees[endpoint] - beta)
                            )
        if topology.num_nodes < num_nodes:
            raise TopologyError(
                f"GLP undershoot: step cap {max_steps} reached with only "
                f"{topology.num_nodes} of {num_nodes} nodes (p_new={self.p_new}); "
                "raise p_new or the step budget"
            )
        return topology

    @staticmethod
    def _sample_distinct(
        sampler: FenwickSampler, rng: random.Random, count: int
    ) -> List[int]:
        """Sample ``count`` distinct nodes with probability ∝ (degree - beta).

        Mirrors the seed's retry loop: one ``rng.random()`` per attempt, a
        draw that lands on an already-chosen node is discarded, and at most
        ``100 * count`` attempts are made.
        """
        wanted = min(count, sampler.active_count)
        chosen: List[int] = []
        attempts = 0
        while len(chosen) < wanted and attempts < 100 * count:
            attempts += 1
            candidate = sampler.sample(rng)
            if candidate not in chosen:
                chosen.append(candidate)
        return chosen

    def describe(self):
        return {
            "name": self.name,
            "links_per_step": self.links_per_step,
            "p_new": self.p_new,
            "beta_glp": self.beta_glp,
        }
