"""Barabási–Albert preferential attachment (degree-based baseline).

The BA model [7 in the paper] is the archetypal degree-based generator: new
nodes attach to ``m`` existing nodes with probability proportional to degree,
producing a power-law degree distribution with exponent ~3 regardless of any
economic or geographic input — exactly the kind of "evocative" model the paper
argues against, and therefore the most important comparator in E5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..topology.graph import Topology
from .base import TopologyGenerator
from .sampling import MultisetSampler


@dataclass
class BarabasiAlbertGenerator(TopologyGenerator):
    """Preferential attachment generator.

    Attributes:
        links_per_node: Number of links each arriving node creates (``m``).
    """

    links_per_node: int = 2
    name: str = "barabasi-albert"

    def __post_init__(self) -> None:
        if self.links_per_node < 1:
            raise ValueError("links_per_node must be >= 1")

    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        m = self.links_per_node
        if num_nodes < m + 1:
            raise ValueError(f"num_nodes must be at least links_per_node + 1 = {m + 1}")
        rng = random.Random(seed)
        topology = Topology(name=f"barabasi-albert-n{num_nodes}-m{m}")
        topology.metadata["model"] = self.name
        topology.metadata["m"] = m

        # Seed clique of m + 1 nodes so the first arrival has m distinct targets.
        for node_id in range(m + 1):
            topology.add_node(node_id)
        for u in range(m + 1):
            for v in range(u + 1, m + 1):
                topology.add_link(u, v)

        # The sampler holds each node once per unit of degree, so its uniform
        # O(1) draw is a draw proportional to degree.
        sampler = MultisetSampler()
        for node_id in range(m + 1):
            sampler.add(node_id, topology.degree(node_id))

        for new_id in range(m + 1, num_nodes):
            targets = set()
            while len(targets) < m:
                targets.add(sampler.sample(rng))
            topology.add_node(new_id)
            for target in targets:
                topology.add_link(new_id, target)
                sampler.add(target)
            sampler.add(new_id, m)
        return topology

    def describe(self):
        return {"name": self.name, "links_per_node": self.links_per_node}
