"""Transit-stub structural generator (GT-ITM style).

Zegura, Calvert, and Donahoo [33 in the paper] generate Internet-like graphs
by imposing a two-level hierarchy explicitly: a small random "transit" core,
several "stub" domains attached to transit nodes, and random extra edges.
This is the canonical *structural* generator the paper's critique targets —
hierarchy is imposed rather than emerging from economic forces — and serves as
the structural comparator in experiment E5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..topology.graph import Topology
from ..topology.node import NodeRole
from .base import TopologyGenerator, ensure_connected
from .sampling import skip_sampled_pairs


@dataclass
class TransitStubGenerator(TopologyGenerator):
    """GT-ITM-style transit-stub generator.

    The target node count is split between one transit domain and
    ``num_stub_domains`` stub domains attached to transit nodes.

    Attributes:
        num_stub_domains: Number of stub domains.
        transit_fraction: Fraction of nodes placed in the transit domain.
        transit_edge_probability: Edge probability inside the transit domain.
        stub_edge_probability: Edge probability inside each stub domain.
        extra_transit_stub_links: Additional random transit-to-stub links
            beyond the one mandatory uplink per stub domain.
    """

    num_stub_domains: int = 8
    transit_fraction: float = 0.1
    transit_edge_probability: float = 0.6
    stub_edge_probability: float = 0.3
    extra_transit_stub_links: int = 2
    name: str = "transit-stub"

    def __post_init__(self) -> None:
        if self.num_stub_domains < 1:
            raise ValueError("num_stub_domains must be >= 1")
        if not 0 < self.transit_fraction < 1:
            raise ValueError("transit_fraction must be in (0, 1)")
        for probability in (self.transit_edge_probability, self.stub_edge_probability):
            if not 0 <= probability <= 1:
                raise ValueError("edge probabilities must be in [0, 1]")
        if self.extra_transit_stub_links < 0:
            raise ValueError("extra_transit_stub_links must be non-negative")

    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        if num_nodes < self.num_stub_domains + 2:
            raise ValueError(
                f"num_nodes must be at least num_stub_domains + 2 = {self.num_stub_domains + 2}"
            )
        rng = random.Random(seed)
        topology = Topology(name=f"transit-stub-n{num_nodes}")
        topology.metadata["model"] = self.name

        num_transit = max(2, int(round(self.transit_fraction * num_nodes)))
        num_stub_nodes = num_nodes - num_transit

        transit_nodes = self._build_transit(topology, num_transit, rng)
        self._build_stubs(topology, transit_nodes, num_stub_nodes, rng)
        ensure_connected(topology, rng)
        return topology

    def _build_transit(
        self, topology: Topology, num_transit: int, rng: random.Random
    ) -> List[str]:
        transit_nodes = []
        for index in range(num_transit):
            node_id = f"t{index}"
            topology.add_node(node_id, role=NodeRole.BACKBONE, domain="transit")
            transit_nodes.append(node_id)
        # Ring for guaranteed transit connectivity, then random chords.
        for index in range(num_transit):
            a = transit_nodes[index]
            b = transit_nodes[(index + 1) % num_transit]
            if not topology.has_link(a, b):
                topology.add_link(a, b)
        for i, j in skip_sampled_pairs(num_transit, self.transit_edge_probability, rng):
            if not topology.has_link(transit_nodes[i], transit_nodes[j]):
                topology.add_link(transit_nodes[i], transit_nodes[j])
        return transit_nodes

    def _build_stubs(
        self,
        topology: Topology,
        transit_nodes: List[str],
        num_stub_nodes: int,
        rng: random.Random,
    ) -> None:
        base_size = num_stub_nodes // self.num_stub_domains
        leftover = num_stub_nodes % self.num_stub_domains
        for domain in range(self.num_stub_domains):
            size = base_size + (1 if domain < leftover else 0)
            if size == 0:
                continue
            stub_nodes = []
            for index in range(size):
                node_id = f"s{domain}.{index}"
                topology.add_node(
                    node_id, role=NodeRole.DISTRIBUTION, domain=f"stub{domain}"
                )
                stub_nodes.append(node_id)
            # Path backbone within the stub, plus random chords.
            for a, b in zip(stub_nodes, stub_nodes[1:]):
                topology.add_link(a, b)
            # min_gap=2 skips the path-adjacent pairs already linked above.
            for i, j in skip_sampled_pairs(size, self.stub_edge_probability, rng, min_gap=2):
                if not topology.has_link(stub_nodes[i], stub_nodes[j]):
                    topology.add_link(stub_nodes[i], stub_nodes[j])
            # One mandatory uplink plus optional extra transit-stub links.
            gateway = stub_nodes[rng.randrange(size)]
            transit_anchor = transit_nodes[rng.randrange(len(transit_nodes))]
            if not topology.has_link(gateway, transit_anchor):
                topology.add_link(gateway, transit_anchor)
            for _ in range(self.extra_transit_stub_links):
                if rng.random() < 0.5:
                    extra_stub = stub_nodes[rng.randrange(size)]
                    extra_transit = transit_nodes[rng.randrange(len(transit_nodes))]
                    if not topology.has_link(extra_stub, extra_transit):
                        topology.add_link(extra_stub, extra_transit)

    def describe(self):
        return {
            "name": self.name,
            "num_stub_domains": self.num_stub_domains,
            "transit_fraction": self.transit_fraction,
        }
