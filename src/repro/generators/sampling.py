"""Dynamic weighted sampling for the generation engine.

Every degree-based generator in :mod:`repro.generators` draws nodes with
probability proportional to a per-node weight (degree, degree-minus-beta,
remaining stub count, ...) via inverse-CDF sampling: draw ``u = rng.random()``,
set ``target = u * total_weight``, and pick the first node whose cumulative
weight reaches ``target``.  The seed implementations realized that with an
O(n) linear scan per draw, which made topology *generation* quadratic and the
dominant cost of every experiment once the analysis kernels were compiled.

This module provides the shared O(log n) replacements:

* :class:`FenwickSampler` — a Fenwick (binary indexed) tree over per-index
  weights with O(log n) draw and O(log n) weight update.  Its selection
  predicate is exactly the linear scan's (*smallest index whose cumulative
  weight is >= target*), so a draw maps the same ``rng.random()`` value to the
  same index.  With integer weights (Inet's remaining-degree preference) the
  prefix sums are exact and selection is *provably* bit-identical to the scan;
  with float weights (GLP's ``degree - beta``) prefix sums can differ from the
  sequential scan's by ULPs, which is verified empirically by the seed-hash
  regression tests in ``tests/generators/test_seed_stability.py``.
* :class:`MultisetSampler` — the Barabási–Albert "repeated targets" idiom
  (one list entry per unit of weight, uniform O(1) draws via
  ``rng.randrange``) behind the same small API, so BA participates in the
  shared engine without changing a single random draw.
* :func:`linear_weighted_index` — the naive reference scan, kept as the
  executable specification for the property tests.

All samplers count their operations in
:data:`repro.topology.compiled.KERNEL_COUNTERS` (``sampler_draws`` /
``sampler_updates``) so benchmarks can assert the O(log n) claim.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, List, Sequence, Tuple

from ..topology.compiled import KERNEL_COUNTERS

__all__ = [
    "FenwickSampler",
    "MultisetSampler",
    "linear_weighted_index",
    "skip_sampled_indices",
    "skip_sampled_pairs",
]


def linear_weighted_index(weights: Sequence[float], target: float) -> int:
    """Reference inverse-CDF scan: smallest index with cumulative >= target.

    This is the seed generators' selection loop, kept as the executable
    specification the Fenwick sampler is property-tested against.  Returns
    ``len(weights) - 1`` if ``target`` exceeds the total (float edge case).
    """
    cumulative = 0.0
    for index, weight in enumerate(weights):
        cumulative += weight
        if target <= cumulative:
            return index
    return len(weights) - 1


def skip_sampled_indices(count: int, probability: float, rng: random.Random) -> Iterator[int]:
    """Indices of successes in ``count`` Bernoulli(probability) trials.

    The Batagelj–Brandes geometric-jump technique: instead of one uniform
    draw per trial, jump straight to the next success, so the expected cost
    is ``O(count * probability)`` draws.  The per-index success distribution
    is exactly Bernoulli — only the random stream differs from a naive
    per-trial loop.
    """
    if probability <= 0.0 or count <= 0:
        return
    if probability >= 1.0:
        yield from range(count)
        return
    log_fail = math.log1p(-probability)
    position = -1
    while True:
        u = rng.random()
        position += 1 + int(math.log(1.0 - u) / log_fail)
        if position >= count:
            return
        yield position


def skip_sampled_pairs(
    count: int, probability: float, rng: random.Random, min_gap: int = 1
) -> Iterator[Tuple[int, int]]:
    """Skip-sampled index pairs ``(i, j)`` with ``i < j`` and ``j - i >= min_gap``.

    Pairs are enumerated row-major (all partners of 0, then of 1, ...), each
    kept independently with ``probability`` — the O(pairs * probability)
    replacement for the generators' nested ``for u: for v`` Bernoulli loops.
    ``min_gap=2`` skips path-adjacent pairs (the transit-stub chord loops).
    """
    if min_gap < 1:
        raise ValueError("min_gap must be >= 1")
    rows = count - min_gap
    if rows <= 0:
        return
    total_pairs = rows * (rows + 1) // 2
    row = 0
    row_start = 0  # flat index of the first pair in the current row
    for flat in skip_sampled_indices(total_pairs, probability, rng):
        while flat >= row_start + (count - min_gap - row):
            row_start += count - min_gap - row
            row += 1
        yield row, row + min_gap + (flat - row_start)


class FenwickSampler:
    """Dynamic weighted sampler over indices ``0..capacity-1``.

    Weights default to zero; an index with zero weight is never selected.
    Integer weights are kept as Python ints throughout (exact prefix sums);
    float weights follow the tree's summation order.

    Example:
        >>> sampler = FenwickSampler(4)
        >>> sampler.set_weight(1, 3)
        >>> sampler.set_weight(3, 1)
        >>> sampler.total()
        4
        >>> sampler.select(3.5)
        3
    """

    __slots__ = ("_size", "_tree", "_weights", "_top", "active_count")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._size = capacity
        self._tree: List[float] = [0] * (capacity + 1)
        self._weights: List[float] = [0] * capacity
        top = 1
        while top * 2 <= capacity:
            top *= 2
        self._top = top
        #: Number of indices with a positive weight.
        self.active_count = 0

    def __len__(self) -> int:
        return self._size

    def weight(self, index: int) -> float:
        """Current weight of ``index``."""
        return self._weights[index]

    def set_weight(self, index: int, weight: float) -> None:
        """Set the weight of ``index`` (O(log n))."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range [0, {self._size})")
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
        old = self._weights[index]
        if weight == old:
            return
        if (old > 0) != (weight > 0):
            self.active_count += 1 if weight > 0 else -1
        self._weights[index] = weight
        delta = weight - old
        tree = self._tree
        position = index + 1
        size = self._size
        while position <= size:
            tree[position] += delta
            position += position & -position
        KERNEL_COUNTERS.sampler_updates += 1

    def total(self):
        """Sum of all weights (O(log n), summed in tree order)."""
        return self._prefix(self._size)

    def _prefix(self, count: int):
        """Sum of the first ``count`` weights."""
        tree = self._tree
        acc = 0
        while count > 0:
            acc += tree[count]
            count -= count & -count
        return acc

    def select(self, target: float) -> int:
        """Smallest index whose cumulative weight is >= ``target``.

        Matches :func:`linear_weighted_index` over the positive-weight
        entries: the returned index always has a positive weight (zero-weight
        indices contribute nothing to the cumulative sum and can never be
        first to reach a positive ``target``; a ``target <= 0`` — e.g. from a
        ``rng.random()`` draw of exactly 0.0 — selects the first active
        index, as a scan over only the active entries would).  If ``target``
        exceeds the total, the last positive-weight index is returned,
        mirroring the scan's fall-through.
        """
        if target <= 0:
            KERNEL_COUNTERS.sampler_draws += 1
            return self._first_active()
        tree = self._tree
        size = self._size
        position = 0
        acc = 0
        step = self._top
        while step:
            candidate = position + step
            if candidate <= size:
                reached = acc + tree[candidate]
                if reached < target:
                    acc = reached
                    position = candidate
            step >>= 1
        KERNEL_COUNTERS.sampler_draws += 1
        if position >= size:  # target beyond total: fall back like the scan
            position = self._last_active()
        return position

    def sample(self, rng: random.Random) -> int:
        """Draw one index with probability proportional to its weight.

        Consumes exactly one ``rng.random()`` call, multiplied by the current
        total — the same draw-to-target mapping as the seed generators.
        """
        if self.active_count == 0:
            raise ValueError("cannot sample from an all-zero sampler")
        return self.select(rng.random() * self.total())

    def _first_active(self) -> int:
        weights = self._weights
        for index in range(self._size):
            if weights[index] > 0:
                return index
        raise ValueError("cannot select from an all-zero sampler")

    def _last_active(self) -> int:
        weights = self._weights
        for index in range(self._size - 1, -1, -1):
            if weights[index] > 0:
                return index
        raise ValueError("cannot select from an all-zero sampler")


class MultisetSampler:
    """Uniform sampler over a growable multiset (the BA repeated-targets idiom).

    Each item appears once per unit of weight; a uniform O(1) draw over the
    backing list is then a draw proportional to weight.  Item order is
    preserved exactly, so the ``rng.randrange(len)`` index-to-item mapping of
    the seed Barabási–Albert implementation is unchanged.
    """

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[int] = ()) -> None:
        self._items: List[int] = list(items)

    def __len__(self) -> int:
        return len(self._items)

    def add(self, item: int, count: int = 1) -> None:
        """Append ``count`` copies of ``item`` (O(count))."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 1:
            self._items.append(item)
        else:
            self._items.extend([item] * count)
        KERNEL_COUNTERS.sampler_updates += 1

    def sample(self, rng: random.Random) -> int:
        """Draw one item uniformly (one ``rng.randrange(len)`` call)."""
        if not self._items:
            raise ValueError("cannot sample from an empty multiset")
        KERNEL_COUNTERS.sampler_draws += 1
        return self._items[rng.randrange(len(self._items))]
