"""Inet-style degree-sequence generator (degree-based baseline).

Inet [21 in the paper] generates AS-level topologies by (1) prescribing a
power-law degree sequence, (2) building a spanning tree among nodes of degree
at least two to guarantee connectivity, and (3) matching the remaining degree
"stubs" preferentially by remaining degree.  This implementation follows that
three-phase structure.

All three phases draw through :class:`~repro.generators.sampling.FenwickSampler`
instances that mirror the seed's candidate lists — the growing core prefix in
phase 1, the full core in phase 2, and the open (positive-remaining) nodes in
phase 3 — with weights updated incrementally as stubs are consumed, replacing
the seed's O(n) candidate rebuild and linear scan per draw with O(log n)
updates and draws.  All weights are integers, so the sampler's prefix sums
are exact and every draw is provably bit-identical to the seed's scan.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..topology.graph import Topology
from .base import TopologyGenerator
from .plrg import power_law_degree_sequence
from .sampling import FenwickSampler


@dataclass
class InetGenerator(TopologyGenerator):
    """Inet-style generator: power-law degrees + spanning tree + preferential fill.

    Attributes:
        exponent: Power-law exponent of the prescribed degree sequence.
        min_degree: Minimum prescribed degree.
        max_degree_fraction: Cap on the maximum degree as a fraction of n.
    """

    exponent: float = 2.2
    min_degree: int = 1
    max_degree_fraction: float = 0.3
    name: str = "inet"

    def __post_init__(self) -> None:
        if not 0 < self.max_degree_fraction <= 1:
            raise ValueError("max_degree_fraction must be in (0, 1]")

    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        if num_nodes < 3:
            raise ValueError("num_nodes must be >= 3")
        rng = random.Random(seed)
        max_degree = max(self.min_degree, int(self.max_degree_fraction * num_nodes))
        degrees = power_law_degree_sequence(
            num_nodes, self.exponent, self.min_degree, max_degree, rng
        )
        degrees.sort(reverse=True)

        topology = Topology(name=f"inet-n{num_nodes}")
        topology.metadata["model"] = self.name
        topology.metadata["exponent"] = self.exponent
        for node_id in range(num_nodes):
            topology.add_node(node_id, target_degree=degrees[node_id])

        remaining = list(degrees)

        # Phases 1 and 2 sample over the core with weight max(remaining, 1):
        # a Fenwick tree in core order, grown one position per phase-1 step so
        # its prefix always equals the seed's ``core_nodes[:position]`` list.
        core_nodes = [n for n in range(num_nodes) if degrees[n] >= 2] or [0, 1]
        core_position = {node: pos for pos, node in enumerate(core_nodes)}
        core_sampler = FenwickSampler(len(core_nodes))

        def core_weight_changed(node: int) -> None:
            pos = core_position.get(node)
            if pos is not None and pos < inserted:
                core_sampler.set_weight(pos, max(remaining[node], 1))

        # Phase 1: spanning tree over nodes with prescribed degree >= 2,
        # attaching each new node to a preferentially chosen earlier node.
        core_sampler.set_weight(0, max(remaining[core_nodes[0]], 1))
        inserted = 1
        for position in range(1, len(core_nodes)):
            node = core_nodes[position]
            target = core_nodes[core_sampler.sample(rng)]
            if not topology.has_link(node, target):
                topology.add_link(node, target)
                remaining[node] -= 1
                remaining[target] -= 1
                core_weight_changed(target)
            core_sampler.set_weight(position, max(remaining[node], 1))
            inserted = position + 1

        # Phase 2: attach degree-1 nodes to the core preferentially.
        leaf_nodes = [n for n in range(num_nodes) if degrees[n] < 2 and n not in core_position]
        for node in leaf_nodes:
            target = core_nodes[core_sampler.sample(rng)]
            if not topology.has_link(node, target):
                topology.add_link(node, target)
                remaining[node] -= 1
                remaining[target] -= 1
                core_weight_changed(target)

        # Phase 3: consume remaining stubs by preferential matching over the
        # open nodes (remaining > 0), weight = remaining.
        open_sampler = FenwickSampler(num_nodes)
        for node in range(num_nodes):
            if remaining[node] > 0:
                open_sampler.set_weight(node, remaining[node])

        def open_weight_changed(node: int) -> None:
            open_sampler.set_weight(node, remaining[node] if remaining[node] > 0 else 0)

        attempts = 0
        max_attempts = 20 * num_nodes
        while attempts < max_attempts:
            attempts += 1
            if open_sampler.active_count < 2:
                break
            u = open_sampler.sample(rng)
            # Exclude u for the second draw by zeroing its weight, exactly the
            # seed's ``[n for n in open_nodes if n != u]`` candidate list.
            u_weight = open_sampler.weight(u)
            open_sampler.set_weight(u, 0)
            v = open_sampler.sample(rng)
            open_sampler.set_weight(u, u_weight)
            if not topology.has_link(u, v):
                topology.add_link(u, v)
                remaining[u] -= 1
                remaining[v] -= 1
                open_weight_changed(u)
                open_weight_changed(v)
        return topology

    def describe(self):
        return {
            "name": self.name,
            "exponent": self.exponent,
            "min_degree": self.min_degree,
            "max_degree_fraction": self.max_degree_fraction,
        }
