"""Inet-style degree-sequence generator (degree-based baseline).

Inet [21 in the paper] generates AS-level topologies by (1) prescribing a
power-law degree sequence, (2) building a spanning tree among nodes of degree
at least two to guarantee connectivity, and (3) matching the remaining degree
"stubs" preferentially by remaining degree.  This implementation follows that
three-phase structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..topology.graph import Topology
from .base import TopologyGenerator
from .plrg import power_law_degree_sequence


@dataclass
class InetGenerator(TopologyGenerator):
    """Inet-style generator: power-law degrees + spanning tree + preferential fill.

    Attributes:
        exponent: Power-law exponent of the prescribed degree sequence.
        min_degree: Minimum prescribed degree.
        max_degree_fraction: Cap on the maximum degree as a fraction of n.
    """

    exponent: float = 2.2
    min_degree: int = 1
    max_degree_fraction: float = 0.3
    name: str = "inet"

    def __post_init__(self) -> None:
        if not 0 < self.max_degree_fraction <= 1:
            raise ValueError("max_degree_fraction must be in (0, 1]")

    def generate(self, num_nodes: int, seed: Optional[int] = None) -> Topology:
        if num_nodes < 3:
            raise ValueError("num_nodes must be >= 3")
        rng = random.Random(seed)
        max_degree = max(self.min_degree, int(self.max_degree_fraction * num_nodes))
        degrees = power_law_degree_sequence(
            num_nodes, self.exponent, self.min_degree, max_degree, rng
        )
        degrees.sort(reverse=True)

        topology = Topology(name=f"inet-n{num_nodes}")
        topology.metadata["model"] = self.name
        topology.metadata["exponent"] = self.exponent
        for node_id in range(num_nodes):
            topology.add_node(node_id, target_degree=degrees[node_id])

        remaining = list(degrees)

        # Phase 1: spanning tree over nodes with prescribed degree >= 2,
        # attaching each new node to a preferentially chosen earlier node.
        core_nodes = [n for n in range(num_nodes) if degrees[n] >= 2] or [0, 1]
        for position in range(1, len(core_nodes)):
            node = core_nodes[position]
            target = self._preferential_choice(core_nodes[:position], remaining, rng)
            if target is not None and not topology.has_link(node, target):
                topology.add_link(node, target)
                remaining[node] -= 1
                remaining[target] -= 1

        # Phase 2: attach degree-1 nodes to the core preferentially.
        leaf_nodes = [n for n in range(num_nodes) if degrees[n] < 2 and n not in core_nodes]
        for node in leaf_nodes:
            target = self._preferential_choice(core_nodes, remaining, rng)
            if target is not None and not topology.has_link(node, target):
                topology.add_link(node, target)
                remaining[node] -= 1
                remaining[target] -= 1

        # Phase 3: consume remaining stubs by preferential matching.
        attempts = 0
        max_attempts = 20 * num_nodes
        while attempts < max_attempts:
            attempts += 1
            open_nodes = [n for n in range(num_nodes) if remaining[n] > 0]
            if len(open_nodes) < 2:
                break
            u = self._preferential_choice(open_nodes, remaining, rng)
            v = self._preferential_choice([n for n in open_nodes if n != u], remaining, rng)
            if u is None or v is None:
                break
            if not topology.has_link(u, v):
                topology.add_link(u, v)
                remaining[u] -= 1
                remaining[v] -= 1
        return topology

    @staticmethod
    def _preferential_choice(
        candidates: List[int], remaining: List[int], rng: random.Random
    ) -> Optional[int]:
        """Pick a candidate with probability proportional to its remaining degree."""
        if not candidates:
            return None
        weights = [max(remaining[c], 1) for c in candidates]
        total = sum(weights)
        target = rng.random() * total
        cumulative = 0.0
        for candidate, weight in zip(candidates, weights):
            cumulative += weight
            if target <= cumulative:
                return candidate
        return candidates[-1]

    def describe(self):
        return {
            "name": self.name,
            "exponent": self.exponent,
            "min_degree": self.min_degree,
            "max_degree_fraction": self.max_degree_fraction,
        }
