"""Population centers (cities) and synthetic national populations.

Section 2.2 of the paper proposes deriving ISP topology from "population
centers dispersed over a geographic region".  This module models cities with
Zipf-distributed populations placed in a region, which feed both the traffic
demand model (:mod:`repro.geography.demand`) and the ISP generator
(:mod:`repro.core.isp`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .points import euclidean
from .regions import Region


@dataclass
class City:
    """A population center.

    Attributes:
        name: City name (unique within a :class:`PopulationModel`).
        location: ``(x, y)`` coordinates inside the region.
        population: Number of inhabitants (drives traffic demand).
        is_major: Whether the city counts as a "big city" (peering/backbone
            candidate; paper Section 2.1).
    """

    name: str
    location: Tuple[float, float]
    population: float
    is_major: bool = False

    def __post_init__(self) -> None:
        if self.population <= 0:
            raise ValueError(f"population must be positive, got {self.population}")

    def distance_to(self, other: "City") -> float:
        """Euclidean distance to another city."""
        return euclidean(self.location, other.location)


@dataclass
class PopulationModel:
    """A set of cities in a region, with population-proportional sampling."""

    region: Region
    cities: List[City] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [c.name for c in self.cities]
        if len(names) != len(set(names)):
            raise ValueError("city names must be unique")

    @property
    def total_population(self) -> float:
        """Sum of city populations."""
        return sum(c.population for c in self.cities)

    def city(self, name: str) -> City:
        """Look up a city by name."""
        for c in self.cities:
            if c.name == name:
                return c
        raise KeyError(f"no city named {name!r}")

    def major_cities(self) -> List[City]:
        """Cities flagged as major (backbone/peering candidates)."""
        return [c for c in self.cities if c.is_major]

    def largest(self, k: int) -> List[City]:
        """The ``k`` most populous cities, largest first."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return sorted(self.cities, key=lambda c: c.population, reverse=True)[:k]

    def nearest_city(self, point: Tuple[float, float]) -> City:
        """The city closest to a point."""
        if not self.cities:
            raise ValueError("population model has no cities")
        return min(self.cities, key=lambda c: euclidean(c.location, point))

    def sample_city(self, rng: random.Random) -> City:
        """Sample a city with probability proportional to its population."""
        if not self.cities:
            raise ValueError("population model has no cities")
        total = self.total_population
        target = rng.random() * total
        cumulative = 0.0
        for c in self.cities:
            cumulative += c.population
            if target <= cumulative:
                return c
        return self.cities[-1]

    def sample_customer_locations(
        self,
        n: int,
        rng: Optional[random.Random] = None,
        spread_fraction: float = 0.02,
    ) -> List[Tuple[float, float]]:
        """Sample customer sites clustered around cities.

        Each customer picks a city with probability proportional to its
        population and is then placed with Gaussian scatter around the city
        center; the result is clamped into the region.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        rng = rng or random.Random()
        spread = spread_fraction * max(self.region.width, self.region.height)
        locations = []
        for _ in range(n):
            city = self.sample_city(rng)
            cx, cy = city.location
            point = (rng.gauss(cx, spread), rng.gauss(cy, spread))
            locations.append(self.region.clamp(point))
        return locations


def zipf_populations(
    num_cities: int, largest_population: float = 8_000_000.0, exponent: float = 1.0
) -> List[float]:
    """Zipf's-law city sizes: the k-th largest city has population ~ largest / k^exponent.

    Zipf's law for city sizes is the standard empirical model of urban
    populations and underpins the paper's observation that "most customers
    reside in the big cities".
    """
    if num_cities < 1:
        raise ValueError(f"num_cities must be >= 1, got {num_cities}")
    if largest_population <= 0:
        raise ValueError("largest_population must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    return [largest_population / (k**exponent) for k in range(1, num_cities + 1)]


def synthetic_population(
    region: Region,
    num_cities: int,
    seed: Optional[int] = None,
    largest_population: float = 8_000_000.0,
    zipf_exponent: float = 1.0,
    major_fraction: float = 0.25,
    min_separation_fraction: float = 0.03,
) -> PopulationModel:
    """Generate a synthetic national population: Zipf sizes, scattered locations.

    Args:
        region: Region in which the cities are placed.
        num_cities: Number of cities to create.
        seed: Random seed (``None`` for nondeterministic placement).
        largest_population: Population of the largest city.
        zipf_exponent: Zipf exponent for the rank-size rule.
        major_fraction: Fraction of the largest cities flagged as major.
        min_separation_fraction: Minimum pairwise distance between cities as a
            fraction of the region diagonal (keeps cities from overlapping).

    Returns:
        A :class:`PopulationModel` with ``num_cities`` cities named
        ``"city00"``, ``"city01"``, ... in decreasing population order.
    """
    rng = random.Random(seed)
    populations = zipf_populations(num_cities, largest_population, zipf_exponent)
    min_separation = min_separation_fraction * region.diagonal
    locations: List[Tuple[float, float]] = []
    attempts_per_city = 200
    for _ in range(num_cities):
        placed = None
        for _ in range(attempts_per_city):
            candidate = region.sample_uniform(1, rng)[0]
            if all(euclidean(candidate, other) >= min_separation for other in locations):
                placed = candidate
                break
        if placed is None:
            placed = region.sample_uniform(1, rng)[0]
        locations.append(placed)

    num_major = max(1, int(round(major_fraction * num_cities)))
    width = max(2, len(str(num_cities - 1)))
    cities = [
        City(
            name=f"city{index:0{width}d}",
            location=locations[index],
            population=populations[index],
            is_major=index < num_major,
        )
        for index in range(num_cities)
    ]
    return PopulationModel(region=region, cities=cities)


def population_weights(cities: Sequence[City]) -> List[float]:
    """Normalized population shares of a list of cities (sums to 1)."""
    total = sum(c.population for c in cities)
    if total <= 0:
        raise ValueError("total population must be positive")
    return [c.population / total for c in cities]
