"""Geometric primitives: points, distances, and random point placement.

The optimization-driven generators place customers, routers, and population
centers in a two-dimensional region; this module provides the geometric
substrate they share.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Point:
    """An immutable point in the plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 (street-grid) distance to another point."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def midpoint(self, other: "Point") -> "Point":
        """Midpoint of the segment between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def translated(self, dx: float, dy: float) -> "Point":
        """Point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """The point as an ``(x, y)`` tuple."""
        return (self.x, self.y)


def euclidean(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Euclidean distance between two ``(x, y)`` tuples."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def manhattan(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Manhattan (L1) distance between two ``(x, y)`` tuples."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def centroid(points: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
    """Arithmetic centroid of a non-empty sequence of points."""
    if not points:
        raise ValueError("cannot compute the centroid of an empty point set")
    sx = sum(p[0] for p in points)
    sy = sum(p[1] for p in points)
    return (sx / len(points), sy / len(points))


def bounding_box(
    points: Sequence[Tuple[float, float]],
) -> Tuple[float, float, float, float]:
    """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)``."""
    if not points:
        raise ValueError("cannot compute the bounding box of an empty point set")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (min(xs), min(ys), max(xs), max(ys))


def nearest_point_index(
    target: Tuple[float, float], candidates: Sequence[Tuple[float, float]]
) -> int:
    """Index of the candidate closest (Euclidean) to ``target``."""
    if not candidates:
        raise ValueError("candidates must be non-empty")
    best_index = 0
    best_distance = euclidean(target, candidates[0])
    for index in range(1, len(candidates)):
        distance = euclidean(target, candidates[index])
        if distance < best_distance:
            best_distance = distance
            best_index = index
    return best_index


def pairwise_distances(
    points: Sequence[Tuple[float, float]],
) -> List[List[float]]:
    """Full symmetric Euclidean distance matrix for a point list."""
    n = len(points)
    matrix = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            distance = euclidean(points[i], points[j])
            matrix[i][j] = distance
            matrix[j][i] = distance
    return matrix


def random_points(
    n: int,
    rng: Optional[random.Random] = None,
    width: float = 1.0,
    height: float = 1.0,
    origin: Tuple[float, float] = (0.0, 0.0),
) -> List[Tuple[float, float]]:
    """Draw ``n`` points uniformly at random from a rectangle.

    Args:
        n: Number of points to draw.
        rng: Random source (a fresh unseeded one is used when omitted).
        width: Rectangle width.
        height: Rectangle height.
        origin: Lower-left corner of the rectangle.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    rng = rng or random.Random()
    ox, oy = origin
    return [(ox + rng.random() * width, oy + rng.random() * height) for _ in range(n)]


def clustered_points(
    n: int,
    num_clusters: int,
    rng: Optional[random.Random] = None,
    width: float = 1.0,
    height: float = 1.0,
    spread: float = 0.05,
    origin: Tuple[float, float] = (0.0, 0.0),
) -> List[Tuple[float, float]]:
    """Draw ``n`` points from Gaussian clusters with random centers.

    Used to model customers concentrated around population centers (paper
    Section 2.1: "most customers reside in the big cities").  Points falling
    outside the rectangle are clamped to its boundary.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
    rng = rng or random.Random()
    ox, oy = origin
    centers = random_points(num_clusters, rng, width, height, origin)
    points: List[Tuple[float, float]] = []
    for _ in range(n):
        cx, cy = centers[rng.randrange(num_clusters)]
        x = min(ox + width, max(ox, rng.gauss(cx, spread * width)))
        y = min(oy + height, max(oy, rng.gauss(cy, spread * height)))
        points.append((x, y))
    return points


def grid_points(
    rows: int, cols: int, width: float = 1.0, height: float = 1.0
) -> List[Tuple[float, float]]:
    """Regular grid of ``rows x cols`` points covering a rectangle."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    points = []
    for r in range(rows):
        for c in range(cols):
            x = (c + 0.5) * width / cols
            y = (r + 0.5) * height / rows
            points.append((x, y))
    return points


def total_length(points: Iterable[Tuple[float, float]]) -> float:
    """Length of the polyline visiting ``points`` in order."""
    points = list(points)
    return sum(euclidean(points[i], points[i + 1]) for i in range(len(points) - 1))
