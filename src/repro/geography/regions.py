"""Geographic regions: rectangles with named extents and grid decomposition.

A :class:`Region` models the service footprint of an ISP — a metro area for
the access-design problem (paper Section 4) or a national footprint for the
backbone-design problem (Section 2.2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .points import clustered_points, random_points


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangular service region.

    Attributes:
        name: Human-readable name.
        width: Extent in the x direction (e.g. kilometres).
        height: Extent in the y direction.
        origin: Lower-left corner coordinates.
    """

    name: str = "region"
    width: float = 1.0
    height: float = 1.0
    origin: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("region width and height must be positive")

    @property
    def area(self) -> float:
        """Area of the region."""
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        """Center point of the region."""
        ox, oy = self.origin
        return (ox + self.width / 2.0, oy + self.height / 2.0)

    @property
    def diagonal(self) -> float:
        """Length of the region's diagonal (the maximum possible distance)."""
        return (self.width**2 + self.height**2) ** 0.5

    def contains(self, point: Tuple[float, float]) -> bool:
        """True if ``point`` lies inside (or on the boundary of) the region."""
        ox, oy = self.origin
        x, y = point
        return ox <= x <= ox + self.width and oy <= y <= oy + self.height

    def clamp(self, point: Tuple[float, float]) -> Tuple[float, float]:
        """Project a point onto the region."""
        ox, oy = self.origin
        x = min(ox + self.width, max(ox, point[0]))
        y = min(oy + self.height, max(oy, point[1]))
        return (x, y)

    def sample_uniform(
        self, n: int, rng: Optional[random.Random] = None
    ) -> List[Tuple[float, float]]:
        """Draw ``n`` points uniformly at random inside the region."""
        return random_points(n, rng, self.width, self.height, self.origin)

    def sample_clustered(
        self,
        n: int,
        num_clusters: int,
        rng: Optional[random.Random] = None,
        spread: float = 0.05,
    ) -> List[Tuple[float, float]]:
        """Draw ``n`` points clustered around random centers inside the region."""
        return clustered_points(
            n, num_clusters, rng, self.width, self.height, spread, self.origin
        )

    def subdivide(self, rows: int, cols: int) -> List["Region"]:
        """Split the region into an evenly sized ``rows x cols`` grid of sub-regions."""
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        ox, oy = self.origin
        cell_w = self.width / cols
        cell_h = self.height / rows
        cells = []
        for r in range(rows):
            for c in range(cols):
                cells.append(
                    Region(
                        name=f"{self.name}[{r},{c}]",
                        width=cell_w,
                        height=cell_h,
                        origin=(ox + c * cell_w, oy + r * cell_h),
                    )
                )
        return cells


def unit_square(name: str = "unit-square") -> Region:
    """The unit square, the canonical region for the FKP model."""
    return Region(name=name, width=1.0, height=1.0)


def metro_region(name: str = "metro", size_km: float = 50.0) -> Region:
    """A metropolitan-scale square region (default 50 km x 50 km).

    This is the natural scale for the access network design problem the paper
    studies in Section 4 ("Typically, this design problem occurs at the level
    of the metropolitan area").
    """
    return Region(name=name, width=size_km, height=size_km)


def national_region(
    name: str = "national", width_km: float = 4200.0, height_km: float = 2500.0
) -> Region:
    """A continental-scale region sized like the contiguous United States."""
    return Region(name=name, width=width_km, height=height_km)


def bounding_region(
    points: Sequence[Tuple[float, float]], name: str = "bounding-box"
) -> Region:
    """The axis-aligned bounding box of a point set, as a :class:`Region`.

    The box is what :class:`~repro.geography.spatial_index.SpatialGridIndex`
    needs for its exactness guarantee: every indexed/queried point must lie
    inside the region, otherwise the clamped cell assignment could overstate
    a cell's distance lower bound.  Both sides are set to the larger span
    (square cells suit the grid's ring expansion), with a small positive
    floor so degenerate point sets (collinear or identical) stay valid.
    """
    if not points:
        raise ValueError("bounding_region requires at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    min_x, min_y = min(xs), min(ys)
    extent = max(max(xs) - min_x, max(ys) - min_y, 1e-9)
    return Region(name=name, width=extent, height=extent, origin=(min_x, min_y))
