"""Traffic demand models.

The paper (Section 2.2) identifies traffic demand as "one of the key inputs"
to the optimization formulation and proposes deriving it from population
centers dispersed over a geographic region.  This module implements the
standard gravity model — demand between two cities proportional to the
product of their populations divided by a power of their distance — plus a
uniform model used as an ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .points import euclidean
from .population import City


@dataclass
class DemandMatrix:
    """A symmetric traffic demand matrix keyed by endpoint names.

    Demands are stored once per unordered pair; :meth:`demand` is symmetric.
    Bulk construction goes through :meth:`from_arrays` (index/volume columns,
    one validation pass) and routing consumes the matrix through
    :meth:`compile`, which resolves endpoint names against a topology exactly
    once.
    """

    endpoints: List[str]
    _demands: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.endpoints) != len(set(self.endpoints)):
            raise ValueError("endpoint names must be unique")
        self._index = set(self.endpoints)

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    @classmethod
    def from_arrays(
        cls,
        endpoints: Sequence[str],
        sources: Sequence[int],
        targets: Sequence[int],
        volumes: Sequence[float],
    ) -> "DemandMatrix":
        """Bulk constructor from parallel index/volume columns.

        ``sources``/``targets`` are indices into ``endpoints`` and
        ``volumes`` the matching demands — the natural output shape of the
        array-native builders (:func:`gravity_demand`, :func:`uniform_demand`
        and the :mod:`repro.workloads.matrices` constructors).  Validation
        runs once over the columns instead of once per ``set_demand`` call,
        and no intermediate pair-keyed dictionary is built.
        """
        names = list(endpoints)
        matrix = cls(endpoints=names)
        if not (len(sources) == len(targets) == len(volumes)):
            raise ValueError("sources, targets, and volumes must align")
        key = cls._key
        demands = matrix._demands
        for i, j, volume in zip(sources, targets, volumes):
            if i == j:
                raise ValueError("self-demand is not allowed")
            if volume < 0:
                raise ValueError(f"demand must be non-negative, got {volume}")
            demands[key(names[i], names[j])] = volume
        return matrix

    def compile(self, topology: Any, endpoint_map: Optional[Dict[str, Any]] = None):
        """Compile this matrix against a topology's compiled graph.

        Returns a :class:`~repro.routing.engine.CompiledDemand` — int-indexed
        source/target/volume columns aligned with ``topology.compiled()`` —
        ready for :func:`~repro.routing.engine.route_demand`.
        """
        from ..routing.engine import compile_demand

        return compile_demand(topology, self, endpoint_map)

    def set_demand(self, a: str, b: str, volume: float) -> None:
        """Set the demand between two distinct endpoints."""
        if a == b:
            raise ValueError("self-demand is not allowed")
        if a not in self._index or b not in self._index:
            raise KeyError(f"unknown endpoint in pair ({a!r}, {b!r})")
        if volume < 0:
            raise ValueError(f"demand must be non-negative, got {volume}")
        self._demands[self._key(a, b)] = volume

    def demand(self, a: str, b: str) -> float:
        """Demand between two endpoints (0 if never set)."""
        if a == b:
            return 0.0
        return self._demands.get(self._key(a, b), 0.0)

    def pairs(self) -> Iterator[Tuple[str, str, float]]:
        """Iterate over ``(a, b, volume)`` for all non-zero pairs."""
        for (a, b), volume in self._demands.items():
            if volume > 0:
                yield a, b, volume

    def total(self) -> float:
        """Total demand over all pairs."""
        return sum(v for v in self._demands.values() if v > 0)

    def outgoing(self, endpoint: str) -> float:
        """Total demand involving ``endpoint``."""
        if endpoint not in self._index:
            raise KeyError(f"unknown endpoint {endpoint!r}")
        return sum(v for (a, b), v in self._demands.items() if endpoint in (a, b))

    def top_pairs(self, k: int) -> List[Tuple[str, str, float]]:
        """The ``k`` largest demand pairs, largest first."""
        ranked = sorted(self.pairs(), key=lambda item: item[2], reverse=True)
        return ranked[:k]

    def scaled(self, factor: float) -> "DemandMatrix":
        """Return a copy with every demand multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        scaled = DemandMatrix(endpoints=list(self.endpoints))
        for a, b, volume in self.pairs():
            scaled.set_demand(a, b, volume * factor)
        return scaled


def gravity_demand(
    cities: Sequence[City],
    total_volume: float = 1000.0,
    distance_exponent: float = 1.0,
    min_distance: Optional[float] = None,
) -> DemandMatrix:
    """Build a gravity-model demand matrix over a set of cities.

    The raw demand between cities ``i`` and ``j`` is
    ``population_i * population_j / distance(i, j)**distance_exponent``; the
    matrix is then normalized so all pairwise demands sum to ``total_volume``.

    Args:
        cities: Population centers.
        total_volume: Total traffic volume to distribute over all pairs.
        distance_exponent: How strongly distance suppresses demand (0 makes
            demand purely population-product driven).
        min_distance: Lower bound on the distance used in the denominator,
            protecting against co-located cities.  Defaults to 1% of the
            largest pairwise distance.
    """
    if len(cities) < 2:
        raise ValueError("gravity demand requires at least two cities")
    if total_volume < 0:
        raise ValueError("total_volume must be non-negative")
    names = [c.name for c in cities]

    # Array-native construction: flat source/target/distance columns in i<j
    # order, distances computed once (the dict-building implementation walked
    # the city pairs twice and round-tripped volumes through a tuple-keyed
    # dictionary).  The arithmetic and its order are unchanged, so the
    # resulting matrix is bit-identical to the historical builder.
    n = len(cities)
    locations = [c.location for c in cities]
    populations = [c.population for c in cities]
    sources: List[int] = []
    targets: List[int] = []
    distances: List[float] = []
    for i in range(n):
        location_i = locations[i]
        for j in range(i + 1, n):
            sources.append(i)
            targets.append(j)
            distances.append(euclidean(location_i, locations[j]))
    max_distance = max(distances) if distances else 1.0
    floor = min_distance if min_distance is not None else 0.01 * max(max_distance, 1e-12)
    floor = max(floor, 1e-12)

    raw = [
        populations[i] * populations[j] / (max(distance, floor) ** distance_exponent)
        for i, j, distance in zip(sources, targets, distances)
    ]
    total_raw = sum(raw)
    if total_raw <= 0:
        return DemandMatrix(endpoints=names)
    volumes = [total_volume * value / total_raw for value in raw]
    return DemandMatrix.from_arrays(names, sources, targets, volumes)


def uniform_demand(names: Sequence[str], total_volume: float = 1000.0) -> DemandMatrix:
    """Uniform all-pairs demand (ablation baseline for the gravity model)."""
    names = list(names)
    if len(names) < 2:
        raise ValueError("uniform demand requires at least two endpoints")
    if total_volume < 0:
        raise ValueError("total_volume must be non-negative")
    n = len(names)
    num_pairs = n * (n - 1) // 2
    per_pair = total_volume / num_pairs
    sources = [i for i in range(n) for _ in range(i + 1, n)]
    targets = [j for i in range(n) for j in range(i + 1, n)]
    return DemandMatrix.from_arrays(names, sources, targets, [per_pair] * num_pairs)


def access_demands(
    populations: Sequence[float], per_capita: float = 0.001
) -> List[float]:
    """Access-link demand of customer sites proportional to served population."""
    if per_capita < 0:
        raise ValueError("per_capita must be non-negative")
    demands = []
    for population in populations:
        if population < 0:
            raise ValueError("populations must be non-negative")
        demands.append(population * per_capita)
    return demands
