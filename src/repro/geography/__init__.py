"""Geographic substrate: points, regions, population centers, traffic demand."""

from .points import (
    Point,
    bounding_box,
    centroid,
    clustered_points,
    euclidean,
    grid_points,
    manhattan,
    nearest_point_index,
    pairwise_distances,
    random_points,
    total_length,
)
from .regions import Region, bounding_region, metro_region, national_region, unit_square
from .spatial_index import GridBuckets, SpatialGridIndex
from .population import (
    City,
    PopulationModel,
    population_weights,
    synthetic_population,
    zipf_populations,
)
from .demand import DemandMatrix, access_demands, gravity_demand, uniform_demand

__all__ = [
    "Point",
    "bounding_box",
    "bounding_region",
    "centroid",
    "clustered_points",
    "euclidean",
    "grid_points",
    "manhattan",
    "nearest_point_index",
    "pairwise_distances",
    "random_points",
    "total_length",
    "Region",
    "metro_region",
    "national_region",
    "unit_square",
    "GridBuckets",
    "SpatialGridIndex",
    "City",
    "PopulationModel",
    "population_weights",
    "synthetic_population",
    "zipf_populations",
    "DemandMatrix",
    "access_demands",
    "gravity_demand",
    "uniform_demand",
]
