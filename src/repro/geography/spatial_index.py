"""Uniform spatial grid index for the generation engine.

Two geometric access patterns dominate topology generation:

* The FKP growth model attaches each arriving node to the existing node
  minimizing ``alpha * d(i, j) + h(j)`` — a nearest-neighbour query with an
  additive per-point penalty.  :class:`SpatialGridIndex` answers it *exactly*
  via ring expansion over a uniform grid: a cell is skipped when even its
  best case ``alpha * d_min(cell) + min_h(cell)`` strictly exceeds the best
  objective found so far, and ties between surviving candidates break toward
  the lowest id, so the pruned argmin returns the identical node the seed's
  full O(n) scan returned.
* The Waxman model connects node pairs with a distance-decaying probability.
  :class:`GridBuckets` partitions the points into cells so the pair loop can
  run per cell pair with a probability upper bound derived from the minimum
  inter-cell distance (see ``repro.generators.waxman``).

Exactness notes for the argmin: cell rectangles are expanded by a small
epsilon before computing ``d_min`` so float rounding in the point-to-cell
assignment can never make the lower bound exceed a member's true distance,
and pruning uses a strict ``>`` so an equal-objective candidate with a lower
id is never discarded.  Both bounds use monotone correctly-rounded operations
(``math.hypot``, one multiply, one add), so ``bound <= objective`` holds in
float arithmetic, not just in exact arithmetic.
"""

from __future__ import annotations

import math
from typing import Container, Dict, Iterator, List, Optional, Sequence, Tuple

from ..topology.compiled import KERNEL_COUNTERS
from .regions import Region

__all__ = ["SpatialGridIndex", "GridBuckets"]


def _cell_coordinate(value: float, origin: float, cell_size: float, cells: int) -> int:
    """Grid coordinate of ``value`` along one axis, clamped to the grid."""
    index = int((value - origin) / cell_size)
    if index < 0:
        return 0
    if index >= cells:
        return cells - 1
    return index


class SpatialGridIndex:
    """Uniform grid over a region answering exact penalized-nearest queries.

    Points are inserted with an id, a location, and a static ``score`` (the
    penalty term ``h(j)``).  :meth:`argmin` then returns the id minimizing
    ``alpha * d(query, point) + score`` with ties broken toward the lowest id
    — exactly the answer of a full scan in ascending-id order.

    The grid resizes itself (rebuilding in O(n)) whenever average occupancy
    exceeds ~2 points per cell, keeping ring queries near O(sqrt(n)) cells.
    """

    def __init__(self, region: Region, expected_points: int = 64) -> None:
        self._region = region
        self._points: List[Tuple[int, float, float, float]] = []
        self._min_score = math.inf
        self._build(max(1, expected_points))

    def _build(self, capacity: int) -> None:
        side = max(1, int(math.sqrt(capacity)))
        self._nx = side
        self._ny = side
        ox, oy = self._region.origin
        self._ox = ox
        self._oy = oy
        self._cell_w = self._region.width / side
        self._cell_h = self._region.height / side
        # Slack added around each cell rectangle before computing d_min, so
        # rounding in the point-to-cell assignment cannot break the bound.
        self._eps = (self._cell_w + self._cell_h) * 1e-9
        self._cells: Dict[Tuple[int, int], List[Tuple[int, float, float, float]]] = {}
        self._cell_min_score: Dict[Tuple[int, int], float] = {}
        for entry in self._points:
            self._place(entry)

    def _cell_of(self, x: float, y: float) -> Tuple[int, int]:
        return (
            _cell_coordinate(x, self._ox, self._cell_w, self._nx),
            _cell_coordinate(y, self._oy, self._cell_h, self._ny),
        )

    def _place(self, entry: Tuple[int, float, float, float]) -> None:
        key = self._cell_of(entry[1], entry[2])
        bucket = self._cells.get(key)
        if bucket is None:
            self._cells[key] = [entry]
            self._cell_min_score[key] = entry[3]
        else:
            bucket.append(entry)
            if entry[3] < self._cell_min_score[key]:
                self._cell_min_score[key] = entry[3]

    def __len__(self) -> int:
        return len(self._points)

    def insert(self, item_id: int, point: Tuple[float, float], score: float = 0.0) -> None:
        """Insert a point with a static penalty ``score``."""
        entry = (item_id, point[0], point[1], score)
        self._points.append(entry)
        if score < self._min_score:
            self._min_score = score
        if len(self._points) > 2 * self._nx * self._ny:
            self._build(2 * len(self._points))
        else:
            self._place(entry)

    def argmin(
        self,
        query: Tuple[float, float],
        alpha: float,
        stop_above: float = math.inf,
        exclude: Optional[Container[int]] = None,
    ) -> Tuple[Optional[int], float]:
        """Return ``(best_id, best_objective)`` for ``alpha*d + score``.

        Exact: identical to scanning every point in ascending-id order with
        ``objective < best`` replacement (first minimum wins ties).

        ``stop_above`` is an external incumbent objective: cells that cannot
        strictly beat it are skipped (a cell whose bound *equals* it is still
        scanned, so equal-objective ties survive for the caller's id
        comparison).  With a finite ``stop_above`` the result may be ``(None,
        inf)`` when every cell is pruned; any candidate the pruning discards
        is guaranteed to have an objective strictly above ``stop_above``.

        ``exclude`` removes ids from consideration (infeasible attachment
        targets, e.g. nodes at their degree limit).  Exactness is preserved:
        excluded points still contribute to cell lower bounds, which only
        makes pruning more conservative, never wrong.
        """
        if not self._points:
            raise ValueError("cannot query an empty spatial index")
        KERNEL_COUNTERS.spatial_queries += 1
        qx, qy = query
        cells = self._cells
        cell_min_score = self._cell_min_score
        hypot = math.hypot
        qix, qiy = self._cell_of(qx, qy)
        best_obj = math.inf
        best_id: Optional[int] = None
        limit = stop_above
        ring_step = min(self._cell_w, self._cell_h)
        max_ring = max(
            qix, self._nx - 1 - qix, qiy, self._ny - 1 - qiy
        )
        scanned = 0
        for ring in range(max_ring + 1):
            if ring > 1 and limit < math.inf:
                # No cell at Chebyshev ring r can hold a point closer than
                # (r-1) cell sides; once even that plus the global best score
                # cannot beat the incumbent, no farther ring can either.
                ring_gap = (ring - 1) * ring_step - self._eps
                if alpha * ring_gap + self._min_score > limit:
                    break
            for key in self._ring_cells(qix, qiy, ring):
                bucket = cells.get(key)
                if bucket is None:
                    continue
                bound = alpha * self._cell_min_distance(qx, qy, key)
                bound += cell_min_score[key]
                if bound > limit:
                    continue
                for item_id, x, y, score in bucket:
                    if exclude is not None and item_id in exclude:
                        continue
                    objective = alpha * hypot(qx - x, qy - y) + score
                    if objective < best_obj or (
                        objective == best_obj and item_id < best_id
                    ):
                        best_obj = objective
                        best_id = item_id
                scanned += len(bucket)
                if best_obj < limit:
                    limit = best_obj
        KERNEL_COUNTERS.spatial_candidates += scanned
        return best_id, best_obj

    def _ring_cells(self, cx: int, cy: int, ring: int) -> Iterator[Tuple[int, int]]:
        """Grid cells at Chebyshev distance ``ring`` from ``(cx, cy)``."""
        nx, ny = self._nx, self._ny
        if ring == 0:
            yield (cx, cy)
            return
        x_lo, x_hi = cx - ring, cx + ring
        y_lo, y_hi = cy - ring, cy + ring
        for ix in range(max(0, x_lo), min(nx - 1, x_hi) + 1):
            if 0 <= y_lo:
                yield (ix, y_lo)
            if y_hi < ny:
                yield (ix, y_hi)
        for iy in range(max(0, y_lo + 1), min(ny - 1, y_hi - 1) + 1):
            if 0 <= x_lo:
                yield (x_lo, iy)
            if x_hi < nx:
                yield (x_hi, iy)

    def _cell_min_distance(self, qx: float, qy: float, key: Tuple[int, int]) -> float:
        """Lower bound on the distance from the query to any point in the cell."""
        ix, iy = key
        x_lo = self._ox + ix * self._cell_w - self._eps
        x_hi = self._ox + (ix + 1) * self._cell_w + self._eps
        y_lo = self._oy + iy * self._cell_h - self._eps
        y_hi = self._oy + (iy + 1) * self._cell_h + self._eps
        dx = x_lo - qx if qx < x_lo else (qx - x_hi if qx > x_hi else 0.0)
        dy = y_lo - qy if qy < y_lo else (qy - y_hi if qy > y_hi else 0.0)
        if dx == 0.0 and dy == 0.0:
            return 0.0
        return math.hypot(dx, dy)


class GridBuckets:
    """Static cell decomposition of a point set (for grid-bucketed pair loops).

    Cells are iterated in sorted key order so any consumer drawing random
    numbers per cell pair stays deterministic for a fixed seed.
    """

    def __init__(
        self,
        points: Sequence[Tuple[float, float]],
        region: Region,
        cells_per_side: int,
    ) -> None:
        if cells_per_side < 1:
            raise ValueError("cells_per_side must be >= 1")
        self._nx = cells_per_side
        ox, oy = region.origin
        self._ox = ox
        self._oy = oy
        self._cell_w = region.width / cells_per_side
        self._cell_h = region.height / cells_per_side
        buckets: Dict[Tuple[int, int], List[int]] = {}
        for index, (x, y) in enumerate(points):
            ix = _cell_coordinate(x, ox, self._cell_w, cells_per_side)
            iy = _cell_coordinate(y, oy, self._cell_h, cells_per_side)
            buckets.setdefault((ix, iy), []).append(index)
        #: ``(cell_key, member point indices)`` in sorted key order.
        self.cells: List[Tuple[Tuple[int, int], List[int]]] = sorted(buckets.items())

    def min_distance(self, key_a: Tuple[int, int], key_b: Tuple[int, int]) -> float:
        """Lower bound on the distance between points of two cells."""
        gap_x = max(0, abs(key_a[0] - key_b[0]) - 1) * self._cell_w
        gap_y = max(0, abs(key_a[1] - key_b[1]) - 1) * self._cell_h
        if gap_x == 0.0 and gap_y == 0.0:
            return 0.0
        return math.hypot(gap_x, gap_y)
