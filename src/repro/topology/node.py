"""Node model for annotated network topologies.

The paper (Section 1, footnote 1) insists that "topology" means connectivity
*plus* resource capacity: nodes and links carry annotations such as role,
geographic location, and equipment capacity.  This module defines the node
side of that annotation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


class NodeRole(enum.Enum):
    """Functional role of a node inside an ISP topology.

    The roles mirror the hierarchical decomposition described in Section 2.2
    of the paper: backbone (WAN), distribution (MAN), and customers (LAN),
    plus peering points that interconnect ISPs (Section 2.3).
    """

    CORE = "core"
    BACKBONE = "backbone"
    DISTRIBUTION = "distribution"
    ACCESS = "access"
    CUSTOMER = "customer"
    PEERING = "peering"
    GENERIC = "generic"

    def is_infrastructure(self) -> bool:
        """Return True for nodes owned and operated by the ISP itself."""
        return self not in (NodeRole.CUSTOMER, NodeRole.GENERIC)


#: Hierarchy rank of each role, used to order levels from core outwards.
ROLE_RANK: Dict[NodeRole, int] = {
    NodeRole.CORE: 0,
    NodeRole.BACKBONE: 1,
    NodeRole.PEERING: 1,
    NodeRole.DISTRIBUTION: 2,
    NodeRole.ACCESS: 3,
    NodeRole.CUSTOMER: 4,
    NodeRole.GENERIC: 5,
}


@dataclass
class Node:
    """A single annotated node (router, switch, or customer site).

    Attributes:
        node_id: Hashable identifier, unique within a topology.
        role: Functional role of the node (see :class:`NodeRole`).
        location: Optional ``(x, y)`` coordinates in the topology's region.
        capacity: Optional switching capacity (same units as link capacity).
        demand: Traffic demand originated by this node (customers only).
        max_degree: Optional technology bound on the number of interfaces
            (Section 2.1: routers have a limited number of line cards).
        city: Optional name of the population center the node belongs to.
        attributes: Free-form extra annotations.
    """

    node_id: Any
    role: NodeRole = NodeRole.GENERIC
    location: Optional[Tuple[float, float]] = None
    capacity: Optional[float] = None
    demand: float = 0.0
    max_degree: Optional[int] = None
    city: Optional[str] = None
    attributes: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.demand < 0:
            raise ValueError(f"node demand must be non-negative, got {self.demand}")
        if self.capacity is not None and self.capacity < 0:
            raise ValueError(f"node capacity must be non-negative, got {self.capacity}")
        if self.max_degree is not None and self.max_degree < 1:
            raise ValueError(f"max_degree must be >= 1, got {self.max_degree}")
        if self.location is not None:
            x, y = self.location
            self.location = (float(x), float(y))

    @property
    def rank(self) -> int:
        """Hierarchy rank (0 = core, larger = further from the core)."""
        return ROLE_RANK[self.role]

    def is_customer(self) -> bool:
        """Return True if this node represents a paying customer site."""
        return self.role == NodeRole.CUSTOMER

    def with_role(self, role: NodeRole) -> "Node":
        """Return a copy of this node with a different role."""
        return Node(
            node_id=self.node_id,
            role=role,
            location=self.location,
            capacity=self.capacity,
            demand=self.demand,
            max_degree=self.max_degree,
            city=self.city,
            attributes=dict(self.attributes),
        )

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the node to a plain dictionary."""
        return {
            "node_id": self.node_id,
            "role": self.role.value,
            "location": list(self.location) if self.location is not None else None,
            "capacity": self.capacity,
            "demand": self.demand,
            "max_degree": self.max_degree,
            "city": self.city,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Node":
        """Reconstruct a node from :meth:`to_dict` output."""
        location = data.get("location")
        return cls(
            node_id=data["node_id"],
            role=NodeRole(data.get("role", NodeRole.GENERIC.value)),
            location=tuple(location) if location is not None else None,
            capacity=data.get("capacity"),
            demand=data.get("demand", 0.0),
            max_degree=data.get("max_degree"),
            city=data.get("city"),
            attributes=dict(data.get("attributes", {})),
        )
