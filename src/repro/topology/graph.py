"""Annotated undirected topology graph.

:class:`Topology` is the central data structure of the library.  It is an
undirected graph whose nodes and links carry the annotations (role, location,
capacity, cost) that the paper argues are an inseparable part of "topology".
All generators — the optimization-driven ones in :mod:`repro.core` and the
descriptive baselines in :mod:`repro.generators` — produce ``Topology``
instances, and all metrics in :mod:`repro.metrics` consume them.

The implementation is a plain adjacency-dictionary graph, independent of
networkx; :mod:`repro.topology.serialization` provides conversion helpers for
interoperability.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .link import Link, edge_key
from .node import Node, NodeRole

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from .compiled import CompiledGraph


class TopologyError(Exception):
    """Raised for structural errors (missing nodes, duplicate links, ...)."""


class Topology:
    """An undirected graph with annotated nodes and links.

    Args:
        name: Human-readable name for the topology (e.g. the generator that
            produced it).

    Example:
        >>> topo = Topology(name="example")
        >>> topo.add_node("a", role=NodeRole.CORE, location=(0.0, 0.0))
        >>> topo.add_node("b", role=NodeRole.CUSTOMER, location=(1.0, 0.0))
        >>> _ = topo.add_link("a", "b", capacity=100.0)
        >>> topo.degree("a")
        1
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self._nodes: Dict[Any, Node] = {}
        self._adjacency: Dict[Any, Dict[Any, Link]] = {}
        self._links: Dict[Tuple[Any, Any], Link] = {}
        self.metadata: Dict[str, Any] = {}
        self._version: int = 0
        self._compiled: Optional["CompiledGraph"] = None

    # ------------------------------------------------------------------
    # Compiled view / invalidation
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonically increasing structural version.

        Bumped by every mutating method (node/link addition or removal), so
        caches keyed on it — :meth:`compiled`, ``PathCache`` — know exactly
        when their snapshot went stale.
        """
        return self._version

    def _bump_version(self) -> None:
        self._version += 1
        self._compiled = None

    def touch(self) -> None:
        """Manually bump :attr:`version`.

        Call after mutating link/node *annotations* in place (e.g. lengths or
        capacities used as routing weights) so long-lived compiled views and
        path caches rebuild; structural mutations bump automatically.
        """
        self._bump_version()

    def compiled(self) -> "CompiledGraph":
        """Return the CSR view of this topology, rebuilding only when stale.

        The returned :class:`~repro.topology.compiled.CompiledGraph` is cached
        and shared by all analysis kernels until the next structural mutation.
        """
        from .compiled import CompiledGraph

        if self._compiled is None or self._compiled.version != self._version:
            self._compiled = CompiledGraph(self)
        return self._compiled

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: Any,
        role: NodeRole = NodeRole.GENERIC,
        location: Optional[Tuple[float, float]] = None,
        capacity: Optional[float] = None,
        demand: float = 0.0,
        max_degree: Optional[int] = None,
        city: Optional[str] = None,
        **attributes: Any,
    ) -> Node:
        """Add a node; raises :class:`TopologyError` if it already exists."""
        if node_id in self._nodes:
            raise TopologyError(f"node {node_id!r} already exists")
        node = Node(
            node_id=node_id,
            role=role,
            location=location,
            capacity=capacity,
            demand=demand,
            max_degree=max_degree,
            city=city,
            attributes=dict(attributes),
        )
        self._nodes[node_id] = node
        self._adjacency[node_id] = {}
        self._bump_version()
        return node

    def add_node_object(self, node: Node) -> Node:
        """Add an already-constructed :class:`Node` instance."""
        if node.node_id in self._nodes:
            raise TopologyError(f"node {node.node_id!r} already exists")
        self._nodes[node.node_id] = node
        self._adjacency[node.node_id] = {}
        self._bump_version()
        return node

    def ensure_node(self, node_id: Any, **kwargs: Any) -> Node:
        """Return the existing node, or add it if missing."""
        if node_id in self._nodes:
            return self._nodes[node_id]
        return self.add_node(node_id, **kwargs)

    def remove_node(self, node_id: Any) -> None:
        """Remove a node and all links incident to it."""
        self._require_node(node_id)
        for neighbor in list(self._adjacency[node_id]):
            self.remove_link(node_id, neighbor)
        del self._adjacency[node_id]
        del self._nodes[node_id]
        self._bump_version()

    def has_node(self, node_id: Any) -> bool:
        """Return True if the node exists."""
        return node_id in self._nodes

    def node(self, node_id: Any) -> Node:
        """Return the :class:`Node` object for ``node_id``."""
        self._require_node(node_id)
        return self._nodes[node_id]

    def nodes(self) -> Iterator[Node]:
        """Iterate over node objects."""
        return iter(self._nodes.values())

    def node_ids(self) -> Iterator[Any]:
        """Iterate over node identifiers."""
        return iter(self._nodes.keys())

    def nodes_by_role(self, role: NodeRole) -> List[Node]:
        """Return all nodes with a given role."""
        return [node for node in self._nodes.values() if node.role == role]

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Link operations
    # ------------------------------------------------------------------
    def add_link(
        self,
        u: Any,
        v: Any,
        capacity: Optional[float] = None,
        length: Optional[float] = None,
        cable: Optional[str] = None,
        install_cost: float = 0.0,
        usage_cost: float = 0.0,
        load: float = 0.0,
        **attributes: Any,
    ) -> Link:
        """Add an undirected link between existing nodes ``u`` and ``v``.

        If ``length`` is not given and both endpoints have locations, the
        Euclidean distance between them is used.

        Raises:
            TopologyError: if either endpoint is missing, the link already
                exists, or a degree constraint on an endpoint is violated.
        """
        self._require_node(u)
        self._require_node(v)
        key = self._edge_key(u, v)
        if key in self._links:
            raise TopologyError(f"link {key} already exists")
        for endpoint in (u, v):
            limit = self._nodes[endpoint].max_degree
            if limit is not None and self.degree(endpoint) >= limit:
                raise TopologyError(
                    f"adding link {key} would exceed max_degree={limit} "
                    f"of node {endpoint!r}"
                )
        if length is None:
            length = self._euclidean_length(u, v)
        link = Link(
            source=u,
            target=v,
            capacity=capacity,
            length=length,
            cable=cable,
            install_cost=install_cost,
            usage_cost=usage_cost,
            load=load,
            attributes=dict(attributes),
        )
        self._links[key] = link
        self._adjacency[u][v] = link
        self._adjacency[v][u] = link
        self._bump_version()
        return link

    def add_link_object(self, link: Link) -> Link:
        """Add an already-constructed :class:`Link` instance."""
        self._require_node(link.source)
        self._require_node(link.target)
        key = link.key
        if key in self._links:
            raise TopologyError(f"link {key} already exists")
        self._links[key] = link
        self._adjacency[link.source][link.target] = link
        self._adjacency[link.target][link.source] = link
        self._bump_version()
        return link

    def remove_link(self, u: Any, v: Any) -> None:
        """Remove the link between ``u`` and ``v``."""
        key = self._edge_key(u, v)
        if key not in self._links:
            raise TopologyError(f"link {key} does not exist")
        del self._links[key]
        del self._adjacency[u][v]
        del self._adjacency[v][u]
        self._bump_version()

    def _restore_link_order(
        self,
        links_order: List[Tuple[Any, Any]],
        adjacency_order: Dict[Any, List[Any]],
    ) -> None:
        """Restore link/adjacency dict iteration order (undo support).

        Re-inserting a removed :class:`Link` lands it at the *end* of the
        link and adjacency dicts, so a remove → revert round trip would
        otherwise permute the compiled edge order — structurally identical,
        but no longer byte-identical for edge-indexed load columns.  Undo
        records capture the pre-removal orders and call this after the links
        are back.  Raises :class:`TopologyError` when the captured key sets
        no longer match the live dicts (an interleaved structural mutation
        that should have been reverted first).
        """
        if set(links_order) != set(self._links):
            raise TopologyError(
                "cannot restore link order: link set changed since capture"
            )
        self._links = {key: self._links[key] for key in links_order}
        for u, neighbors in adjacency_order.items():
            row = self._adjacency[u]
            if set(neighbors) != set(row):
                raise TopologyError(
                    f"cannot restore adjacency order of {u!r}: "
                    f"neighbor set changed since capture"
                )
            self._adjacency[u] = {v: row[v] for v in neighbors}

    def has_link(self, u: Any, v: Any) -> bool:
        """Return True if a link between ``u`` and ``v`` exists."""
        if u == v:
            return False
        return edge_key(u, v) in self._links

    def link(self, u: Any, v: Any) -> Link:
        """Return the :class:`Link` between ``u`` and ``v``."""
        key = self._edge_key(u, v)
        if key not in self._links:
            raise TopologyError(f"link {key} does not exist")
        return self._links[key]

    def links(self) -> Iterator[Link]:
        """Iterate over link objects."""
        return iter(self._links.values())

    def link_keys(self) -> Iterator[Tuple[Any, Any]]:
        """Iterate over canonical link keys."""
        return iter(self._links.keys())

    @property
    def num_links(self) -> int:
        """Number of links."""
        return len(self._links)

    # ------------------------------------------------------------------
    # Neighborhood / degree
    # ------------------------------------------------------------------
    def neighbors(self, node_id: Any) -> List[Any]:
        """Return the neighbor identifiers of a node."""
        self._require_node(node_id)
        return list(self._adjacency[node_id].keys())

    def incident_links(self, node_id: Any) -> List[Link]:
        """Return the links incident to a node."""
        self._require_node(node_id)
        return list(self._adjacency[node_id].values())

    def degree(self, node_id: Any) -> int:
        """Return the degree of a node."""
        self._require_node(node_id)
        return len(self._adjacency[node_id])

    def degree_sequence(self) -> List[int]:
        """Return the degree of every node, in node-insertion order."""
        return [len(self._adjacency[n]) for n in self._nodes]

    def max_degree_node(self) -> Any:
        """Return the identifier of a node of maximum degree."""
        if not self._nodes:
            raise TopologyError("topology has no nodes")
        return max(self._nodes, key=lambda n: len(self._adjacency[n]))

    # ------------------------------------------------------------------
    # Traversal / structure
    # ------------------------------------------------------------------
    def bfs_order(self, source: Any) -> List[Any]:
        """Return nodes reachable from ``source`` in BFS order."""
        self._require_node(source)
        from .compiled import bfs_indices

        graph = self.compiled()
        _, order = bfs_indices(graph, graph.index_of[source])
        ids = graph.ids
        return [ids[i] for i in order]

    def hop_distances(self, source: Any) -> Dict[Any, int]:
        """Return BFS hop distances from ``source`` to every reachable node."""
        self._require_node(source)
        from .compiled import bfs_indices

        graph = self.compiled()
        dist, order = bfs_indices(graph, graph.index_of[source])
        ids = graph.ids
        return {ids[i]: dist[i] for i in order}

    def connected_components(self) -> List[Set[Any]]:
        """Return the connected components as sets of node identifiers.

        Components are ordered by their first node in insertion order.
        """
        if not self._nodes:
            return []
        from .compiled import components_indices

        graph = self.compiled()
        labels, count = components_indices(graph)
        components: List[Set[Any]] = [set() for _ in range(count)]
        ids = graph.ids
        for i, label in enumerate(labels):
            components[label].add(ids[i])
        return components

    def is_connected(self) -> bool:
        """Return True if the topology is connected (and non-empty)."""
        if not self._nodes:
            return False
        return len(self.bfs_order(next(iter(self._nodes)))) == len(self._nodes)

    def is_tree(self) -> bool:
        """Return True if the topology is a connected acyclic graph."""
        if not self._nodes:
            return False
        return self.is_connected() and self.num_links == self.num_nodes - 1

    def is_forest(self) -> bool:
        """Return True if the topology contains no cycles."""
        return self.num_links == self.num_nodes - len(self.connected_components())

    def subgraph(self, node_ids: Iterable[Any], name: Optional[str] = None) -> "Topology":
        """Return the induced subgraph on ``node_ids`` (copies annotations).

        Nodes and links are inserted in this topology's insertion order, so
        subgraphs (and :meth:`copy`) iterate deterministically regardless of
        ``PYTHONHASHSEED`` — float accumulations over a copy reproduce the
        original's summation order.
        """
        keep = set(node_ids)
        missing = keep - set(self._nodes)
        if missing:
            raise TopologyError(f"nodes not in topology: {sorted(map(repr, missing))}")
        sub = Topology(name=name or f"{self.name}-subgraph")
        for node_id in self._nodes:
            if node_id in keep:
                sub.add_node_object(self._copy_node(self._nodes[node_id]))
        for link in self._links.values():
            if link.source in keep and link.target in keep:
                sub.add_link_object(self._copy_link(link))
        return sub

    def copy(self, name: Optional[str] = None) -> "Topology":
        """Return a deep copy of the topology."""
        duplicate = self.subgraph(self._nodes.keys(), name=name or self.name)
        duplicate.metadata = dict(self.metadata)
        return duplicate

    # ------------------------------------------------------------------
    # Aggregate annotations
    # ------------------------------------------------------------------
    def total_install_cost(self) -> float:
        """Sum of installation costs over all links."""
        return sum(link.install_cost for link in self._links.values())

    def total_usage_cost(self) -> float:
        """Sum of usage costs (marginal cost times load) over all links."""
        return sum(link.usage_cost * link.load for link in self._links.values())

    def total_cost(self) -> float:
        """Total cost of the topology (installation plus usage)."""
        return self.total_install_cost() + self.total_usage_cost()

    def total_length(self) -> float:
        """Sum of link lengths (total installed fiber mileage)."""
        return sum(link.length for link in self._links.values())

    def total_demand(self) -> float:
        """Sum of node demands (total customer traffic)."""
        return sum(node.demand for node in self._nodes.values())

    def role_counts(self) -> Dict[NodeRole, int]:
        """Number of nodes per role."""
        counts: Dict[NodeRole, int] = {}
        for node in self._nodes.values():
            counts[node.role] = counts.get(node.role, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> List[str]:
        """Return a list of consistency problems (empty when valid).

        Checks adjacency/link-dictionary consistency, degree constraints, and
        capacity violations (load exceeding installed capacity).
        """
        problems: List[str] = []
        for key, link in self._links.items():
            if link.source not in self._nodes or link.target not in self._nodes:
                problems.append(f"link {key} references missing node")
            if link.capacity is not None and link.load > link.capacity + 1e-9:
                problems.append(
                    f"link {key} overloaded: load {link.load} > capacity {link.capacity}"
                )
        for node_id, neighbors in self._adjacency.items():
            limit = self._nodes[node_id].max_degree
            if limit is not None and len(neighbors) > limit:
                problems.append(
                    f"node {node_id!r} violates max_degree {limit} with degree {len(neighbors)}"
                )
            for neighbor, link in neighbors.items():
                if edge_key(node_id, neighbor) not in self._links:
                    problems.append(
                        f"adjacency entry ({node_id!r}, {neighbor!r}) missing from link table"
                    )
                if node_id not in (link.source, link.target):
                    problems.append(f"link {link.key} stored under wrong node {node_id!r}")
        return problems

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _require_node(self, node_id: Any) -> None:
        if node_id not in self._nodes:
            raise TopologyError(f"node {node_id!r} is not in the topology")

    @staticmethod
    def _edge_key(u: Any, v: Any) -> Tuple[Any, Any]:
        """Canonical edge key, normalizing self-loop errors to TopologyError."""
        try:
            return edge_key(u, v)
        except ValueError as exc:
            raise TopologyError(str(exc)) from exc

    def _euclidean_length(self, u: Any, v: Any) -> float:
        loc_u = self._nodes[u].location
        loc_v = self._nodes[v].location
        if loc_u is None or loc_v is None:
            return 0.0
        return ((loc_u[0] - loc_v[0]) ** 2 + (loc_u[1] - loc_v[1]) ** 2) ** 0.5

    @staticmethod
    def _copy_node(node: Node) -> Node:
        return Node(
            node_id=node.node_id,
            role=node.role,
            location=node.location,
            capacity=node.capacity,
            demand=node.demand,
            max_degree=node.max_degree,
            city=node.city,
            attributes=dict(node.attributes),
        )

    @staticmethod
    def _copy_link(link: Link) -> Link:
        return Link(
            source=link.source,
            target=link.target,
            capacity=link.capacity,
            length=link.length,
            cable=link.cable,
            install_cost=link.install_cost,
            usage_cost=link.usage_cost,
            load=link.load,
            attributes=dict(link.attributes),
        )

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __contains__(self, node_id: Any) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (
            f"Topology(name={self.name!r}, nodes={self.num_nodes}, "
            f"links={self.num_links})"
        )


def union(topologies: Sequence[Topology], name: str = "union") -> Topology:
    """Return the disjoint-aware union of several topologies.

    Nodes appearing in multiple topologies are merged (first occurrence wins
    for annotations); duplicate links are kept once.
    """
    merged = Topology(name=name)
    for topo in topologies:
        for node in topo.nodes():
            if not merged.has_node(node.node_id):
                merged.add_node_object(Topology._copy_node(node))
        for link in topo.links():
            if not merged.has_link(link.source, link.target):
                merged.add_link_object(Topology._copy_link(link))
    return merged
