"""Convenience builder for constructing annotated topologies fluently.

The builder is a thin layer over :class:`~repro.topology.graph.Topology`
providing automatic node-id allocation and role-specific helpers, used by the
ISP generator and by the examples.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from .graph import Topology
from .link import Link
from .node import NodeRole


class TopologyBuilder:
    """Incrementally build a :class:`Topology` with auto-generated node ids.

    Node identifiers are strings of the form ``"<prefix><counter>"`` where the
    prefix defaults to the first letter of the node role (``c0``, ``b1``, ...).

    Example:
        >>> builder = TopologyBuilder(name="demo")
        >>> core = builder.add_core((0.5, 0.5))
        >>> cust = builder.add_customer((0.1, 0.2), demand=5.0)
        >>> _ = builder.connect(core, cust, capacity=100.0)
        >>> builder.topology.num_links
        1
    """

    _ROLE_PREFIX = {
        NodeRole.CORE: "core",
        NodeRole.BACKBONE: "bb",
        NodeRole.DISTRIBUTION: "dist",
        NodeRole.ACCESS: "acc",
        NodeRole.CUSTOMER: "cust",
        NodeRole.PEERING: "peer",
        NodeRole.GENERIC: "n",
    }

    def __init__(self, name: str = "topology") -> None:
        self.topology = Topology(name=name)
        self._counter = 0

    def _next_id(self, role: NodeRole, explicit: Optional[Any]) -> Any:
        if explicit is not None:
            return explicit
        node_id = f"{self._ROLE_PREFIX[role]}{self._counter}"
        self._counter += 1
        return node_id

    def add(
        self,
        role: NodeRole,
        location: Optional[Tuple[float, float]] = None,
        node_id: Optional[Any] = None,
        **kwargs: Any,
    ) -> Any:
        """Add a node with the given role; returns the node identifier."""
        node_id = self._next_id(role, node_id)
        self.topology.add_node(node_id, role=role, location=location, **kwargs)
        return node_id

    def add_core(self, location: Optional[Tuple[float, float]] = None, **kwargs: Any) -> Any:
        """Add a core (WAN) node."""
        return self.add(NodeRole.CORE, location, **kwargs)

    def add_backbone(self, location: Optional[Tuple[float, float]] = None, **kwargs: Any) -> Any:
        """Add a backbone node."""
        return self.add(NodeRole.BACKBONE, location, **kwargs)

    def add_distribution(
        self, location: Optional[Tuple[float, float]] = None, **kwargs: Any
    ) -> Any:
        """Add a distribution (MAN) node."""
        return self.add(NodeRole.DISTRIBUTION, location, **kwargs)

    def add_access(self, location: Optional[Tuple[float, float]] = None, **kwargs: Any) -> Any:
        """Add an access node (customer-facing aggregation point)."""
        return self.add(NodeRole.ACCESS, location, **kwargs)

    def add_customer(
        self,
        location: Optional[Tuple[float, float]] = None,
        demand: float = 1.0,
        **kwargs: Any,
    ) -> Any:
        """Add a customer (LAN) node with a traffic demand."""
        return self.add(NodeRole.CUSTOMER, location, demand=demand, **kwargs)

    def add_peering(self, location: Optional[Tuple[float, float]] = None, **kwargs: Any) -> Any:
        """Add a peering point node."""
        return self.add(NodeRole.PEERING, location, **kwargs)

    def connect(self, u: Any, v: Any, **kwargs: Any) -> Link:
        """Add a link between two previously added nodes."""
        return self.topology.add_link(u, v, **kwargs)

    def connect_if_absent(self, u: Any, v: Any, **kwargs: Any) -> Optional[Link]:
        """Add a link unless one already exists; returns ``None`` if skipped."""
        if self.topology.has_link(u, v):
            return None
        return self.topology.add_link(u, v, **kwargs)

    def build(self) -> Topology:
        """Return the built topology."""
        return self.topology
