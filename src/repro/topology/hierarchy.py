"""Hierarchy analysis for ISP topologies.

Section 2.2 of the paper describes the decomposition of an ISP network into
backbone (WAN), distribution (MAN), and customer (LAN) levels.  This module
provides helpers to inspect and summarize that hierarchy on an annotated
:class:`~repro.topology.graph.Topology`.

All aggregate helpers run against the compiled view: level classification is
a single pass over the compiled endpoint arrays, and nearest-core depths come
from **one** multi-source BFS (:func:`~repro.topology.compiled.
multi_source_bfs_indices`) instead of one BFS per core node — the same
O(V + E) kernels the hierarchical routing overlay
(:mod:`repro.routing.hierarchical`) partitions with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from .compiled import CompiledGraph, multi_source_bfs_indices
from .graph import Topology
from .node import NodeRole, ROLE_RANK

#: Human-readable level names, ordered from the core outwards.
LEVEL_NAMES: Tuple[str, ...] = ("core", "backbone", "distribution", "access", "customer")

#: Rank per level name: position in :data:`LEVEL_NAMES` (0 = innermost).
LEVEL_RANKS: Dict[str, int] = {name: rank for rank, name in enumerate(LEVEL_NAMES)}

_ROLE_TO_LEVEL: Dict[NodeRole, str] = {
    NodeRole.CORE: "core",
    NodeRole.BACKBONE: "backbone",
    NodeRole.PEERING: "backbone",
    NodeRole.DISTRIBUTION: "distribution",
    NodeRole.ACCESS: "access",
    NodeRole.CUSTOMER: "customer",
    NodeRole.GENERIC: "customer",
}

_ROLE_TO_RANK: Dict[NodeRole, int] = {
    role: LEVEL_RANKS[level] for role, level in _ROLE_TO_LEVEL.items()
}


def level_of(role: NodeRole) -> str:
    """Map a node role to its hierarchy level name."""
    return _ROLE_TO_LEVEL[role]


def compiled_level_ranks(graph: CompiledGraph) -> List[int]:
    """Hierarchy level rank per compiled node index (0 = core ... 4 = customer).

    One pass over the snapshot's node objects; the rank column is what the
    hierarchical routing partition and the summary helpers classify against.
    """
    return [_ROLE_TO_RANK[node.role] for node in graph.nodes]


@dataclass
class HierarchySummary:
    """Aggregate statistics of the WAN/MAN/LAN hierarchy of a topology.

    Attributes:
        level_counts: Number of nodes per hierarchy level.
        intra_level_links: Number of links whose endpoints share a level.
        inter_level_links: Number of links whose endpoints differ in level.
        level_link_matrix: Link counts keyed by (level, level) pairs with the
            lexicographically smaller level first.
        backbone_fraction: Fraction of nodes in the core or backbone levels.
        mean_customer_depth: Mean hop distance from customers to the nearest
            core node (``nan`` if there are no core nodes or customers).
    """

    level_counts: Dict[str, int] = field(default_factory=dict)
    intra_level_links: int = 0
    inter_level_links: int = 0
    level_link_matrix: Dict[Tuple[str, str], int] = field(default_factory=dict)
    backbone_fraction: float = 0.0
    mean_customer_depth: float = float("nan")

    def count(self, level: str) -> int:
        """Node count for a level (0 if absent)."""
        return self.level_counts.get(level, 0)


def summarize_hierarchy(topology: Topology) -> HierarchySummary:
    """Compute a :class:`HierarchySummary` for a topology.

    Link classification is a single pass over the compiled endpoint arrays
    (``edge_u``/``edge_v`` against the per-index rank column) instead of two
    object-graph node lookups per link, and the customer-depth aggregate is
    one multi-source BFS — the summary stays cheap at the scale-tier sizes
    the E12 report records it for.
    """
    if topology.num_nodes == 0:
        return HierarchySummary()
    graph = topology.compiled()
    ranks = compiled_level_ranks(graph)

    level_counts: Dict[str, int] = {}
    for rank in ranks:
        level = LEVEL_NAMES[rank]
        level_counts[level] = level_counts.get(level, 0) + 1

    # Canonical (lexicographically ordered) level-pair key per rank pair.
    pair_key: Dict[Tuple[int, int], Tuple[str, str]] = {}
    for ru in range(len(LEVEL_NAMES)):
        for rv in range(len(LEVEL_NAMES)):
            lu, lv = LEVEL_NAMES[ru], LEVEL_NAMES[rv]
            pair_key[(ru, rv)] = (lu, lv) if lu <= lv else (lv, lu)

    intra = 0
    inter = 0
    matrix: Dict[Tuple[str, str], int] = {}
    edge_u = graph.edge_u.tolist()
    edge_v = graph.edge_v.tolist()
    for u, v in zip(edge_u, edge_v):
        ru = ranks[u]
        rv = ranks[v]
        key = pair_key[(ru, rv)]
        matrix[key] = matrix.get(key, 0) + 1
        if ru == rv:
            intra += 1
        else:
            inter += 1

    total_nodes = graph.num_nodes
    backbone_nodes = level_counts.get("core", 0) + level_counts.get("backbone", 0)
    backbone_fraction = backbone_nodes / total_nodes if total_nodes else 0.0

    return HierarchySummary(
        level_counts=level_counts,
        intra_level_links=intra,
        inter_level_links=inter,
        level_link_matrix=matrix,
        backbone_fraction=backbone_fraction,
        mean_customer_depth=_mean_customer_depth(topology),
    )


def _mean_customer_depth(topology: Topology) -> float:
    """Mean BFS hop distance from each customer to its nearest core node.

    One multi-source BFS over the compiled graph; bit-identical to the
    per-core minimum (the nearest-source hop distance *is* that minimum) at
    O(V + E) total instead of O(cores x (V + E)).
    """
    graph = topology.compiled()
    cores = [i for i, node in enumerate(graph.nodes) if node.role == NodeRole.CORE]
    customers = [
        i for i, node in enumerate(graph.nodes) if node.role == NodeRole.CUSTOMER
    ]
    if not cores or not customers:
        return float("nan")
    dist = multi_source_bfs_indices(graph, cores)
    depths = [dist[c] for c in customers if dist[c] != -1]
    if not depths:
        return float("nan")
    return sum(depths) / len(depths)


def assign_levels_by_distance(
    topology: Topology, core_nodes: Sequence[Any]
) -> Dict[Any, str]:
    """Assign hierarchy levels from BFS distance to the nearest core node.

    This is useful for topologies produced by generators that do not annotate
    roles (e.g. the descriptive baselines): nodes at distance 0 are ``core``,
    distance 1 ``backbone``, distance 2 ``distribution``, distance 3
    ``access``, and everything further is ``customer``.

    Implemented as one multi-source BFS over the compiled graph (the
    nearest-core distance per node) rather than one BFS per core —
    assignments are bit-identical to the per-core minimum.

    Returns:
        Mapping from node identifier to level name; unreachable nodes map to
        ``customer``.
    """
    for core in core_nodes:
        if not topology.has_node(core):
            raise ValueError(f"core node {core!r} is not in the topology")
    if topology.num_nodes == 0:
        return {}
    graph = topology.compiled()
    index_of = graph.index_of
    dist = multi_source_bfs_indices(graph, [index_of[core] for core in core_nodes])
    deepest = len(LEVEL_NAMES) - 1
    assignment: Dict[Any, str] = {}
    for i, node_id in enumerate(graph.ids):
        d = dist[i]
        if d == -1:
            assignment[node_id] = "customer"
        else:
            assignment[node_id] = LEVEL_NAMES[min(d, deepest)]
    return assignment


def relabel_roles_from_levels(topology: Topology, assignment: Dict[Any, str]) -> None:
    """Overwrite node roles in-place according to a level assignment."""
    level_to_role = {
        "core": NodeRole.CORE,
        "backbone": NodeRole.BACKBONE,
        "distribution": NodeRole.DISTRIBUTION,
        "access": NodeRole.ACCESS,
        "customer": NodeRole.CUSTOMER,
    }
    for node_id, level in assignment.items():
        node = topology.node(node_id)
        node.role = level_to_role[level]


def is_downward_tree(topology: Topology) -> bool:
    """Check whether every non-core node has exactly one neighbor closer to the core.

    This is the structural signature of a clean hierarchical (tree-like)
    design in which traffic flows strictly up/down the hierarchy.
    Nodes are compared by role rank (see :data:`repro.topology.node.ROLE_RANK`).
    """
    for node in topology.nodes():
        if node.role == NodeRole.CORE:
            continue
        uplinks = 0
        for neighbor_id in topology.neighbors(node.node_id):
            neighbor = topology.node(neighbor_id)
            if ROLE_RANK[neighbor.role] < ROLE_RANK[node.role]:
                uplinks += 1
        if uplinks > 1:
            return False
    return True
