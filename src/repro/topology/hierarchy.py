"""Hierarchy analysis for ISP topologies.

Section 2.2 of the paper describes the decomposition of an ISP network into
backbone (WAN), distribution (MAN), and customer (LAN) levels.  This module
provides helpers to inspect and summarize that hierarchy on an annotated
:class:`~repro.topology.graph.Topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from .graph import Topology
from .node import NodeRole, ROLE_RANK


#: Human-readable level names, ordered from the core outwards.
LEVEL_NAMES: Tuple[str, ...] = ("core", "backbone", "distribution", "access", "customer")

_ROLE_TO_LEVEL: Dict[NodeRole, str] = {
    NodeRole.CORE: "core",
    NodeRole.BACKBONE: "backbone",
    NodeRole.PEERING: "backbone",
    NodeRole.DISTRIBUTION: "distribution",
    NodeRole.ACCESS: "access",
    NodeRole.CUSTOMER: "customer",
    NodeRole.GENERIC: "customer",
}


def level_of(role: NodeRole) -> str:
    """Map a node role to its hierarchy level name."""
    return _ROLE_TO_LEVEL[role]


@dataclass
class HierarchySummary:
    """Aggregate statistics of the WAN/MAN/LAN hierarchy of a topology.

    Attributes:
        level_counts: Number of nodes per hierarchy level.
        intra_level_links: Number of links whose endpoints share a level.
        inter_level_links: Number of links whose endpoints differ in level.
        level_link_matrix: Link counts keyed by (level, level) pairs with the
            lexicographically smaller level first.
        backbone_fraction: Fraction of nodes in the core or backbone levels.
        mean_customer_depth: Mean hop distance from customers to the nearest
            core node (``nan`` if there are no core nodes or customers).
    """

    level_counts: Dict[str, int] = field(default_factory=dict)
    intra_level_links: int = 0
    inter_level_links: int = 0
    level_link_matrix: Dict[Tuple[str, str], int] = field(default_factory=dict)
    backbone_fraction: float = 0.0
    mean_customer_depth: float = float("nan")

    def count(self, level: str) -> int:
        """Node count for a level (0 if absent)."""
        return self.level_counts.get(level, 0)


def summarize_hierarchy(topology: Topology) -> HierarchySummary:
    """Compute a :class:`HierarchySummary` for a topology."""
    level_counts: Dict[str, int] = {}
    for node in topology.nodes():
        level = level_of(node.role)
        level_counts[level] = level_counts.get(level, 0) + 1

    intra = 0
    inter = 0
    matrix: Dict[Tuple[str, str], int] = {}
    for link in topology.links():
        lu = level_of(topology.node(link.source).role)
        lv = level_of(topology.node(link.target).role)
        key = (lu, lv) if lu <= lv else (lv, lu)
        matrix[key] = matrix.get(key, 0) + 1
        if lu == lv:
            intra += 1
        else:
            inter += 1

    total_nodes = topology.num_nodes
    backbone_nodes = level_counts.get("core", 0) + level_counts.get("backbone", 0)
    backbone_fraction = backbone_nodes / total_nodes if total_nodes else 0.0

    return HierarchySummary(
        level_counts=level_counts,
        intra_level_links=intra,
        inter_level_links=inter,
        level_link_matrix=matrix,
        backbone_fraction=backbone_fraction,
        mean_customer_depth=_mean_customer_depth(topology),
    )


def _mean_customer_depth(topology: Topology) -> float:
    """Mean BFS hop distance from each customer to its nearest core node."""
    cores = [n.node_id for n in topology.nodes() if n.role == NodeRole.CORE]
    customers = [n.node_id for n in topology.nodes() if n.role == NodeRole.CUSTOMER]
    if not cores or not customers:
        return float("nan")
    best: Dict[Any, int] = {}
    for core in cores:
        for node_id, dist in topology.hop_distances(core).items():
            if node_id not in best or dist < best[node_id]:
                best[node_id] = dist
    depths = [best[c] for c in customers if c in best]
    if not depths:
        return float("nan")
    return sum(depths) / len(depths)


def assign_levels_by_distance(topology: Topology, core_nodes: List[Any]) -> Dict[Any, str]:
    """Assign hierarchy levels from BFS distance to the nearest core node.

    This is useful for topologies produced by generators that do not annotate
    roles (e.g. the descriptive baselines): nodes at distance 0 are ``core``,
    distance 1 ``backbone``, distance 2 ``distribution``, distance 3
    ``access``, and everything further is ``customer``.

    Returns:
        Mapping from node identifier to level name; unreachable nodes map to
        ``customer``.
    """
    for core in core_nodes:
        if not topology.has_node(core):
            raise ValueError(f"core node {core!r} is not in the topology")
    best: Dict[Any, int] = {}
    for core in core_nodes:
        for node_id, dist in topology.hop_distances(core).items():
            if node_id not in best or dist < best[node_id]:
                best[node_id] = dist
    assignment: Dict[Any, str] = {}
    for node_id in topology.node_ids():
        dist = best.get(node_id)
        if dist is None:
            assignment[node_id] = "customer"
        else:
            assignment[node_id] = LEVEL_NAMES[min(dist, len(LEVEL_NAMES) - 1)]
    return assignment


def relabel_roles_from_levels(topology: Topology, assignment: Dict[Any, str]) -> None:
    """Overwrite node roles in-place according to a level assignment."""
    level_to_role = {
        "core": NodeRole.CORE,
        "backbone": NodeRole.BACKBONE,
        "distribution": NodeRole.DISTRIBUTION,
        "access": NodeRole.ACCESS,
        "customer": NodeRole.CUSTOMER,
    }
    for node_id, level in assignment.items():
        node = topology.node(node_id)
        node.role = level_to_role[level]


def is_downward_tree(topology: Topology) -> bool:
    """Check whether every non-core node has exactly one neighbor closer to the core.

    This is the structural signature of a clean hierarchical (tree-like)
    design in which traffic flows strictly up/down the hierarchy.
    Nodes are compared by role rank (see :data:`repro.topology.node.ROLE_RANK`).
    """
    for node in topology.nodes():
        if node.role == NodeRole.CORE:
            continue
        uplinks = 0
        for neighbor_id in topology.neighbors(node.node_id):
            neighbor = topology.node(neighbor_id)
            if ROLE_RANK[neighbor.role] < ROLE_RANK[node.role]:
                uplinks += 1
        if uplinks > 1:
            return False
    return True
