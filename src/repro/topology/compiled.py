"""Compiled CSR view of a :class:`Topology` for analysis kernels.

The annotated object graph (:class:`repro.topology.graph.Topology`) is the
mutable source of truth: nodes and links are rich Python objects carrying
roles, locations, capacities, and costs.  That representation is ideal for
construction and annotation but slow for the evaluation loop that dominates
every experiment — repeated shortest paths, demand assignment, and robustness
traces walk it one ``Link`` object at a time.

:class:`CompiledGraph` snapshots a topology into flat, int-indexed CSR arrays
(``indptr``/``indices`` plus per-edge weight columns) that the kernels in this
module run against.  The contract between the two layers:

* ``Topology.version`` is a monotonically increasing counter bumped by every
  structural mutation (node/link addition or removal).
* ``Topology.compiled()`` returns a cached :class:`CompiledGraph` and rebuilds
  it only when ``version`` changed since the last build.
* Kernels accept and return **int node indices**; public APIs in the
  optimization/routing/metrics layers translate ids at the boundary.
* Link *annotation* mutations (e.g. ``link.load``) do not bump the version;
  weight columns are recomputed from the live ``Link`` objects on each
  ``edge_weights`` call, so each public kernel entry sees current annotations.
  Code that mutates annotations and holds a long-lived weight array (such as
  ``PathCache``) can force a rebuild with ``Topology.touch()``.

All kernels take an optional ``mask`` (a ``bytearray`` with one truthy byte
per *active* node index), which is how removal traces degrade a topology
without copying it: flip bytes off instead of deleting nodes.
"""

from __future__ import annotations

import heapq
from array import array
from math import inf
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .link import Link

try:  # Optional accelerated batch kernels; the pure-Python path is canonical.
    import numpy as _np
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy installed
    _np = None
    _csr_matrix = None
    _scipy_dijkstra = None
    _HAVE_SCIPY = False

__all__ = [
    "CompiledGraph",
    "KernelCounters",
    "KERNEL_COUNTERS",
    "default_link_weight",
    "dijkstra_indices",
    "multi_source_dijkstra_indices",
    "batch_shortest_lengths",
    "bfs_indices",
    "multi_source_bfs_indices",
    "components_indices",
]


class KernelCounters:
    """Invocation counters for the compiled kernels and the generation engine.

    The counters make algorithmic claims checkable: e.g. the benchmark suite
    asserts that routing all customer demand to cores performs exactly one
    multi-source search instead of ``customers x cores`` single-source runs,
    and that generator growth performs O(n log n) sampler operations
    (``sampler_draws``/``sampler_updates``) and a bounded number of spatial
    candidate evaluations (``spatial_queries``/``spatial_candidates``) instead
    of the seed's O(n^2) scans.  The incremental objective engine
    (:mod:`repro.optimization.incremental`) records every canonical
    ``Objective.evaluate`` as ``objective_full_evals`` and every O(Δ)
    move evaluation as ``objective_delta_evals``, so benchmarks can assert
    that local search runs almost entirely on delta evaluations.  The traffic
    engine (:mod:`repro.routing.engine`) records one ``traffic_batched_sources``
    per shortest-path search (E11 asserts exactly one per unique demand
    source), every routed pair as ``traffic_assigned_pairs``, and every
    ECMP flow division across tied shortest paths as ``traffic_ecmp_splits``.
    """

    __slots__ = (
        "single_source",
        "multi_source",
        "bfs",
        "components",
        "compilations",
        "sampler_draws",
        "sampler_updates",
        "spatial_queries",
        "spatial_candidates",
        "objective_full_evals",
        "objective_delta_evals",
        "traffic_batched_sources",
        "traffic_assigned_pairs",
        "traffic_ecmp_splits",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters."""
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Return the current counts as a plain dictionary."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"KernelCounters({counts})"


#: Process-wide kernel invocation counters (reset freely in benchmarks/tests).
KERNEL_COUNTERS = KernelCounters()


def default_link_weight(link: Link) -> float:
    """The library-wide default link weight: physical length, falling back to
    1.0 for zero-length links so purely logical graphs get hop-count paths.

    Single source of truth — the optimization and routing layers alias this.
    """
    length = link.length
    return length if length > 0 else 1.0


class CompiledGraph:
    """Immutable int-indexed CSR snapshot of a :class:`Topology`.

    Attributes:
        version: ``Topology.version`` at build time (cache key).
        num_nodes: Number of nodes in the snapshot.
        num_edges: Number of undirected edges in the snapshot.
        ids: Node id per index (index → id), in node insertion order.
        index_of: Node index per id (id → index).
        indptr: CSR row pointers, length ``num_nodes + 1``.
        indices: Neighbor node index per half-edge, length ``2 * num_edges``.
            Neighbor order within a row matches adjacency insertion order, so
            BFS discovery order is identical to the object-graph traversal.
        half_edge_ids: Undirected edge index per half-edge.
        edge_u / edge_v: Endpoint node indices per undirected edge.
        links: The live :class:`Link` object per undirected edge (weight
            columns are derived from these on demand).
        edge_keys: Canonical ``(u, v)`` link key per undirected edge.
    """

    __slots__ = (
        "version",
        "num_nodes",
        "num_edges",
        "ids",
        "index_of",
        "indptr",
        "indices",
        "half_edge_ids",
        "edge_u",
        "edge_v",
        "links",
        "edge_keys",
        "_adjacency_rows",
        "_relaxation_cache",
    )

    def __init__(self, topology: Any) -> None:
        KERNEL_COUNTERS.compilations += 1
        self.version: int = topology.version
        ids: List[Any] = list(topology.node_ids())
        index_of: Dict[Any, int] = {nid: i for i, nid in enumerate(ids)}
        links: List[Link] = list(topology.links())
        edge_keys: List[Tuple[Any, Any]] = list(topology.link_keys())
        edge_index = {id(link): e for e, link in enumerate(links)}

        n = len(ids)
        m = len(links)
        adjacency = topology._adjacency  # same-package structural access
        indptr = array("q", [0]) * (n + 1)
        for i, nid in enumerate(ids):
            indptr[i + 1] = indptr[i] + len(adjacency[nid])
        indices = array("q", [0]) * (2 * m)
        half_edge_ids = array("q", [0]) * (2 * m)
        k = 0
        for nid in ids:
            for neighbor, link in adjacency[nid].items():
                indices[k] = index_of[neighbor]
                half_edge_ids[k] = edge_index[id(link)]
                k += 1
        edge_u = array("q", [0]) * m
        edge_v = array("q", [0]) * m
        for e, link in enumerate(links):
            edge_u[e] = index_of[link.source]
            edge_v[e] = index_of[link.target]

        self.num_nodes = n
        self.num_edges = m
        self.ids = ids
        self.index_of = index_of
        self.indptr = indptr
        self.indices = indices
        self.half_edge_ids = half_edge_ids
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.links = links
        self.edge_keys = edge_keys
        self._adjacency_rows: Optional[List[List[Tuple[int, int]]]] = None
        self._relaxation_cache: Optional[Tuple[array, List[List[Tuple[float, int, int]]]]] = None

    # ------------------------------------------------------------------
    # Derived columns
    # ------------------------------------------------------------------
    def degree(self, index: int) -> int:
        """Degree of the node at ``index``."""
        return self.indptr[index + 1] - self.indptr[index]

    def degrees(self) -> array:
        """Degree per node index as an int array."""
        out = array("q", [0]) * self.num_nodes
        indptr = self.indptr
        for i in range(self.num_nodes):
            out[i] = indptr[i + 1] - indptr[i]
        return out

    def edge_weights(self, weight: Optional[Callable[[Link], float]] = None) -> array:
        """Per-edge weight column computed from the live :class:`Link` objects.

        ``None`` selects the library default (physical length, falling back to
        1.0 for zero-length links).  Raises :class:`ValueError` on a negative
        weight, mirroring the object-graph Dijkstra.
        """
        out = array("d", [0.0]) * self.num_edges
        if weight is None:
            for e, link in enumerate(self.links):
                out[e] = default_link_weight(link)
        else:
            for e, link in enumerate(self.links):
                w = weight(link)
                if w < 0:
                    raise ValueError(f"negative link weight {w} on {link.key}")
                out[e] = w
        return out

    def adjacency_rows(self) -> List[List[Tuple[int, int]]]:
        """Per-node ``(neighbor, edge)`` tuple rows, built once per snapshot.

        Tuple rows iterate several times faster than CSR range indexing in
        pure Python; the CSR arrays remain the canonical representation (and
        the zero-copy input to the optional scipy batch kernels).
        """
        rows = self._adjacency_rows
        if rows is None:
            indptr = self.indptr
            indices = self.indices
            half_edge_ids = self.half_edge_ids
            rows = [
                [
                    (indices[k], half_edge_ids[k])
                    for k in range(indptr[i], indptr[i + 1])
                ]
                for i in range(self.num_nodes)
            ]
            self._adjacency_rows = rows
        return rows

    def relaxation_rows(
        self, weights: array
    ) -> List[List[Tuple[float, int, int]]]:
        """Per-node ``(weight, neighbor, edge)`` rows for Dijkstra relaxation.

        Cached for the most recent ``weights`` object, so a batch of searches
        sharing one weight column (e.g. all-pairs) builds the rows once.
        """
        cached = self._relaxation_cache
        if cached is not None and cached[0] is weights:
            return cached[1]
        rows = [
            [(weights[e], v, e) for v, e in row] for row in self.adjacency_rows()
        ]
        self._relaxation_cache = (weights, rows)
        return rows

    def scipy_csr(self, weights: array):
        """The snapshot as a ``scipy.sparse.csr_matrix`` (``None`` w/o scipy).

        Built zero-copy from the CSR arrays via the buffer protocol; used by
        the optional batch kernels.
        """
        if not _HAVE_SCIPY:
            return None
        data = _np.asarray(weights, dtype=_np.float64)[
            _np.asarray(self.half_edge_ids, dtype=_np.int64)
        ]
        return _csr_matrix(
            (
                data,
                _np.asarray(self.indices, dtype=_np.int64),
                _np.asarray(self.indptr, dtype=_np.int64),
            ),
            shape=(self.num_nodes, self.num_nodes),
        )

    def full_mask(self) -> bytearray:
        """A mask with every node active (for callers that then disable some)."""
        return bytearray(b"\x01") * self.num_nodes

    def __repr__(self) -> str:
        return (
            f"CompiledGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"version={self.version})"
        )


# ----------------------------------------------------------------------
# Kernels (int-index world)
# ----------------------------------------------------------------------
def dijkstra_indices(
    graph: CompiledGraph,
    source: int,
    weights: array,
    mask: Optional[bytearray] = None,
) -> Tuple[List[float], List[int], List[int]]:
    """Single-source shortest paths over the compiled view.

    Returns ``(dist, pred, pred_edge)`` lists indexed by node index:
    ``dist`` is ``inf`` for unreachable nodes, ``pred`` is the predecessor
    node index (-1 for the source and unreachable nodes), and ``pred_edge``
    is the undirected edge index used to reach each node (-1 likewise).
    """
    KERNEL_COUNTERS.single_source += 1
    n = graph.num_nodes
    rows = graph.relaxation_rows(weights)
    dist = [inf] * n
    pred = [-1] * n
    pred_edge = [-1] * n
    dist[source] = 0.0
    visited = bytearray(n)
    heap: List[Tuple[float, int]] = [(0.0, source)]
    push = heapq.heappush
    pop = heapq.heappop
    if mask is None:
        while heap:
            d, u = pop(heap)
            if visited[u]:
                continue
            visited[u] = 1
            for w, v, e in rows[u]:
                if visited[v]:
                    continue
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    pred[v] = u
                    pred_edge[v] = e
                    push(heap, (nd, v))
    else:
        while heap:
            d, u = pop(heap)
            if visited[u]:
                continue
            visited[u] = 1
            for w, v, e in rows[u]:
                if visited[v] or not mask[v]:
                    continue
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    pred[v] = u
                    pred_edge[v] = e
                    push(heap, (nd, v))
    return dist, pred, pred_edge


def multi_source_dijkstra_indices(
    graph: CompiledGraph,
    sources: Sequence[int],
    weights: array,
    mask: Optional[bytearray] = None,
) -> Tuple[List[float], List[int], List[int], List[int]]:
    """Multi-source shortest paths: one search growing from all sources at once.

    Returns ``(dist, pred, pred_edge, origin)`` where ``origin[v]`` is the
    node index of the source whose shortest-path tree reached ``v`` (-1 for
    unreachable nodes).  For strictly positive weights, exact distance ties
    between sources are resolved in favor of the source appearing earlier in
    ``sources``: every optimal predecessor of a node settles (and relaxes it)
    before the node itself is settled, so the equal-distance re-attribution
    below sees all competing origins.
    """
    KERNEL_COUNTERS.multi_source += 1
    n = graph.num_nodes
    rows = graph.relaxation_rows(weights)
    dist = [inf] * n
    pred = [-1] * n
    pred_edge = [-1] * n
    origin = [-1] * n
    rank: Dict[int, int] = {}
    visited = bytearray(n)
    heap: List[Tuple[float, int, int]] = []
    counter = 0
    for s in sources:
        if mask is not None and not mask[s]:
            continue
        if dist[s] == 0.0 and origin[s] != -1:
            continue  # duplicate source
        dist[s] = 0.0
        origin[s] = s
        rank[s] = counter
        heap.append((0.0, counter, s))
        counter += 1
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, _, u = pop(heap)
        if visited[u]:
            continue
        visited[u] = 1
        origin_u = origin[u]
        for w, v, e in rows[u]:
            if visited[v] or (mask is not None and not mask[v]):
                continue
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                pred_edge[v] = e
                origin[v] = origin_u
                counter += 1
                push(heap, (nd, counter, v))
            elif nd == dist[v] and rank[origin_u] < rank[origin[v]]:
                # Same distance via an earlier-listed source: re-attribute.
                pred[v] = u
                pred_edge[v] = e
                origin[v] = origin_u
    return dist, pred, pred_edge, origin


def batch_shortest_lengths(
    graph: CompiledGraph,
    sources: Sequence[int],
    weights: array,
) -> List[List[float]]:
    """Shortest-path lengths from many sources at once.

    Returns one row of per-node distances (``inf`` when unreachable) per
    source, in ``sources`` order.  When scipy is available the whole batch is
    a single vectorized ``csgraph.dijkstra`` call over the zero-copy CSR
    matrix; otherwise it falls back to the pure-Python kernel per source.
    The invocation counters record one single-source search per source either
    way, so algorithm-count assertions stay backend-independent.
    """
    KERNEL_COUNTERS.single_source += len(sources)
    if not sources:
        return []
    # Scipy's csgraph is ambiguous about explicit zero-weight edges, so the
    # vectorized path only engages for strictly positive weight columns.
    if _HAVE_SCIPY and graph.num_edges > 0 and min(weights) > 0:
        matrix = graph.scipy_csr(weights)
        result = _scipy_dijkstra(
            matrix, directed=False, indices=list(sources), return_predecessors=False
        )
        if result.ndim == 1:
            return [result.tolist()]
        return [row.tolist() for row in result]
    rows: List[List[float]] = []
    for source in sources:
        dist, _, _ = dijkstra_indices(graph, source, weights)
        KERNEL_COUNTERS.single_source -= 1  # already counted for the batch
        rows.append(dist)
    return rows


def bfs_indices(
    graph: CompiledGraph,
    source: int,
    mask: Optional[bytearray] = None,
) -> Tuple[List[int], List[int]]:
    """Breadth-first hop distances from one source.

    Returns ``(dist, order)``: ``dist`` holds hop counts (-1 when
    unreachable) and ``order`` lists reached node indices in discovery order
    (matching the object-graph BFS, since CSR rows preserve adjacency
    insertion order).
    """
    KERNEL_COUNTERS.bfs += 1
    rows = graph.adjacency_rows()
    dist = [-1] * graph.num_nodes
    dist[source] = 0
    order = [source]
    head = 0
    if mask is None:
        while head < len(order):
            u = order[head]
            head += 1
            du = dist[u] + 1
            for v, _ in rows[u]:
                if dist[v] == -1:
                    dist[v] = du
                    order.append(v)
    else:
        while head < len(order):
            u = order[head]
            head += 1
            du = dist[u] + 1
            for v, _ in rows[u]:
                if dist[v] == -1 and mask[v]:
                    dist[v] = du
                    order.append(v)
    return dist, order


def multi_source_bfs_indices(
    graph: CompiledGraph,
    sources: Iterable[int],
    mask: Optional[bytearray] = None,
) -> List[int]:
    """Hop distance to the nearest source per node (-1 when unreachable)."""
    KERNEL_COUNTERS.bfs += 1
    rows = graph.adjacency_rows()
    dist = [-1] * graph.num_nodes
    frontier: List[int] = []
    for s in sources:
        if mask is not None and not mask[s]:
            continue
        if dist[s] == -1:
            dist[s] = 0
            frontier.append(s)
    head = 0
    while head < len(frontier):
        u = frontier[head]
        head += 1
        du = dist[u] + 1
        for v, _ in rows[u]:
            if dist[v] != -1 or (mask is not None and not mask[v]):
                continue
            dist[v] = du
            frontier.append(v)
    return dist


def components_indices(
    graph: CompiledGraph,
    mask: Optional[bytearray] = None,
) -> Tuple[List[int], int]:
    """Connected-component labels over active nodes.

    Returns ``(labels, count)``: ``labels[v]`` is a component id in
    ``0..count-1`` assigned in order of each component's first node index,
    or -1 for masked-out nodes.
    """
    KERNEL_COUNTERS.components += 1
    n = graph.num_nodes
    rows = graph.adjacency_rows()
    labels = [-1] * n
    count = 0
    stack: List[int] = []
    for start in range(n):
        if labels[start] != -1 or (mask is not None and not mask[start]):
            continue
        labels[start] = count
        stack.append(start)
        if mask is None:
            while stack:
                u = stack.pop()
                for v, _ in rows[u]:
                    if labels[v] == -1:
                        labels[v] = count
                        stack.append(v)
        else:
            while stack:
                u = stack.pop()
                for v, _ in rows[u]:
                    if labels[v] == -1 and mask[v]:
                        labels[v] = count
                        stack.append(v)
        count += 1
    return labels, count
