"""Compiled CSR view of a :class:`Topology` for analysis kernels.

The annotated object graph (:class:`repro.topology.graph.Topology`) is the
mutable source of truth: nodes and links are rich Python objects carrying
roles, locations, capacities, and costs.  That representation is ideal for
construction and annotation but slow for the evaluation loop that dominates
every experiment — repeated shortest paths, demand assignment, and robustness
traces walk it one ``Link`` object at a time.

:class:`CompiledGraph` snapshots a topology into flat, int-indexed CSR
buffers (``indptr``/``indices`` plus per-edge weight columns) that the
kernels in this module run against.  When numpy is importable the buffers are
**native contiguous numpy arrays** (int32 CSR topology, int64 edge ids,
float64 weight columns) — not per-call conversions — and the batch kernels
dispatch to ``scipy.sparse.csgraph`` over a ``csr_matrix`` built zero-copy
from (and cached next to) those buffers.  Without numpy the same attributes
are ``array('q')``/``array('d')`` buffers and every kernel runs pure Python.

The contract between the two layers:

* ``Topology.version`` is a monotonically increasing counter bumped by every
  structural mutation (node/link addition or removal).
* ``Topology.compiled()`` returns a cached :class:`CompiledGraph` and rebuilds
  it only when ``version`` changed since the last build.
* Kernels accept and return **int node indices**; public APIs in the
  optimization/routing/metrics layers translate ids at the boundary.
* Link *annotation* mutations (e.g. ``link.load``) do not bump the version;
  weight columns are recomputed from the live ``Link`` objects on each
  ``edge_weights`` call, so each public kernel entry sees current annotations.
  The exception is the *named structural* columns cached by
  :meth:`CompiledGraph.edge_weight_column` (``"length"``/``"hops"``), which
  derive from immutable link geometry.  Code that mutates annotations and
  holds a long-lived weight array (such as ``PathCache``) can force a rebuild
  with ``Topology.touch()``.

Backend selection
-----------------

Every batch kernel takes a ``backend=`` switch:

* ``"python"`` — the canonical pure-Python implementation.  This is the
  equality/tolerance **reference**: its deterministic tie-breaking contracts
  (documented per kernel) define correct behaviour, and the property tests
  compare every accelerated path against it.
* ``"numpy"`` — the ``scipy.sparse.csgraph`` batch path (requires numpy *and*
  scipy; raises :class:`RuntimeError` when they are unavailable, so callers
  that must not silently fall back can pin it).
* ``"auto"`` / ``None`` — :data:`DEFAULT_BACKEND`: ``"numpy"`` when scipy is
  importable, else ``"python"``.

Setting the environment variable ``REPRO_BACKEND=python`` masks numpy/scipy
entirely (the no-scipy CI leg runs the whole test suite this way), while
``REPRO_BACKEND=numpy`` makes missing scipy a hard import error.

All kernels take an optional ``mask`` (a ``bytearray`` with one truthy byte
per *active* node index), which is how removal traces degrade a topology
without copying it: flip bytes off instead of deleting nodes.  Masked calls
always run the pure-Python path (scipy has no node-mask concept).
"""

from __future__ import annotations

import heapq
import os
from array import array
from math import inf
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .link import Link

_ENV_BACKEND = os.environ.get("REPRO_BACKEND", "auto").strip().lower() or "auto"
if _ENV_BACKEND not in ("auto", "python", "numpy"):
    raise ValueError(
        f"REPRO_BACKEND={_ENV_BACKEND!r} is not one of 'auto', 'python', 'numpy'"
    )

_np = None
_csr_matrix = None
_scipy_dijkstra = None
_scipy_connected_components = None
_HAVE_NUMPY = False
_HAVE_SCIPY = False
if _ENV_BACKEND != "python":
    try:
        import numpy as _np

        _HAVE_NUMPY = True
    except ImportError:  # pragma: no cover - exercised only without numpy
        _np = None
    if _HAVE_NUMPY:
        try:
            from scipy.sparse import csr_matrix as _csr_matrix
            from scipy.sparse.csgraph import (
                connected_components as _scipy_connected_components,
            )
            from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

            _HAVE_SCIPY = True
        except ImportError:  # pragma: no cover - exercised only without scipy
            pass
if _ENV_BACKEND == "numpy" and not _HAVE_SCIPY:
    raise RuntimeError(
        "REPRO_BACKEND=numpy requires numpy and scipy to be importable"
    )

#: Backend used by ``backend=None``/``"auto"`` calls.
DEFAULT_BACKEND = "numpy" if _HAVE_SCIPY else "python"

#: Below this node count the batch kernels stay pure Python even under the
#: numpy backend: per-call scipy dispatch overhead exceeds the work saved on
#: tiny graphs, and results are identical either way (the numpy paths that
#: honour this threshold are exact-integer kernels).
SMALL_GRAPH_NODES = 512

#: Max ``sources x nodes`` cells per scipy batch call; larger batches are
#: chunked so distance/predecessor matrices stay within a bounded footprint
#: (16M cells ~ 128 MB of float64 + 64 MB of int32 predecessors).
BATCH_CHUNK_CELLS = 16_000_000

__all__ = [
    "CompiledGraph",
    "KernelCounters",
    "KERNEL_COUNTERS",
    "DEFAULT_BACKEND",
    "default_link_weight",
    "have_numpy_backend",
    "resolve_backend",
    "dijkstra_indices",
    "multi_source_dijkstra_indices",
    "multi_source_distances",
    "batch_shortest_lengths",
    "batch_hop_lengths",
    "bfs_indices",
    "multi_source_bfs_indices",
    "components_indices",
]


def have_numpy_backend() -> bool:
    """True when the numpy/scipy batch backend is importable and not masked."""
    return _HAVE_SCIPY


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalize a ``backend=`` argument to ``"python"`` or ``"numpy"``.

    ``None``/``"auto"`` resolve to :data:`DEFAULT_BACKEND`.  Requesting
    ``"numpy"`` when scipy is unavailable (or masked by
    ``REPRO_BACKEND=python``) raises :class:`RuntimeError` rather than
    silently falling back.
    """
    if backend is None or backend == "auto":
        return DEFAULT_BACKEND
    if backend == "python":
        return "python"
    if backend == "numpy":
        if not _HAVE_SCIPY:
            raise RuntimeError(
                "numpy backend requested but numpy/scipy are unavailable "
                "(or masked by REPRO_BACKEND=python)"
            )
        return "numpy"
    raise ValueError(
        f"unknown backend {backend!r}; expected 'auto', 'python', or 'numpy'"
    )


class KernelCounters:
    """Invocation counters for the compiled kernels and the generation engine.

    The counters make algorithmic claims checkable: e.g. the benchmark suite
    asserts that routing all customer demand to cores performs exactly one
    multi-source search instead of ``customers x cores`` single-source runs,
    and that generator growth performs O(n log n) sampler operations
    (``sampler_draws``/``sampler_updates``) and a bounded number of spatial
    candidate evaluations (``spatial_queries``/``spatial_candidates``) instead
    of the seed's O(n^2) scans.  The incremental objective engine
    (:mod:`repro.optimization.incremental`) records every canonical
    ``Objective.evaluate`` as ``objective_full_evals`` and every O(Δ)
    move evaluation as ``objective_delta_evals``, so benchmarks can assert
    that local search runs almost entirely on delta evaluations.  The traffic
    engine (:mod:`repro.routing.engine`) records one ``traffic_batched_sources``
    per shortest-path search (E11 asserts exactly one per unique demand
    source), every routed pair as ``traffic_assigned_pairs``, and every
    ECMP flow division across tied shortest paths as ``traffic_ecmp_splits``.
    The hierarchical routing layer (:mod:`repro.routing.hierarchical`)
    records each overlay construction as ``hier_overlay_builds``, every
    restricted per-region sweep source as ``hier_region_sweeps``, and every
    demand pair answered through the overlay tables as ``hier_table_joins``
    — the E12 many-source gates assert the overlay actually answered the
    matrix instead of falling back to per-source searches.  The temporal
    engine (:mod:`repro.routing.temporal`) records every routed series step
    as ``temporal_steps``, every source group actually re-searched by the
    per-step diff as ``temporal_resolved_sources`` (unchanged groups reuse
    retained load columns and are *not* counted — the E13 gates assert the
    diff engages instead of silently re-routing everything), and every link
    tripped by a failure cascade as ``cascade_trips``.  The dynamic
    connectivity engine (:mod:`repro.topology.dynconn`) records every
    Euler-tour link/cut as ``dynconn_tree_ops`` and every tree-edge
    deletion's replacement hunt as ``dynconn_replacement_searches``, while
    the move engine's guarded fallback records each full O(V+E) component
    sweep as ``reachability_rebuilds`` — the E10/E13 gates assert the latter
    stays at zero on deletion-bearing move sequences.

    Algorithm-count counters (``single_source``/``multi_source``/``bfs``/
    ``components``) are **backend-independent**: a batch scipy call records
    the same logical search count as the equivalent pure-Python loop.  The
    batch path additionally records each ``scipy.sparse.csgraph`` dispatch as
    ``batch_dijkstra_calls`` and the sources it covered as
    ``batch_sources_total`` — the E12 scaling gates assert these are non-zero,
    so a silent fallback to the slow path fails CI instead of passing slowly.
    """

    __slots__ = (
        "single_source",
        "multi_source",
        "bfs",
        "components",
        "compilations",
        "batch_dijkstra_calls",
        "batch_sources_total",
        "sampler_draws",
        "sampler_updates",
        "spatial_queries",
        "spatial_candidates",
        "objective_full_evals",
        "objective_delta_evals",
        "traffic_batched_sources",
        "traffic_assigned_pairs",
        "traffic_ecmp_splits",
        "hier_overlay_builds",
        "hier_region_sweeps",
        "hier_table_joins",
        "temporal_steps",
        "temporal_resolved_sources",
        "cascade_trips",
        "dynconn_tree_ops",
        "dynconn_replacement_searches",
        "reachability_rebuilds",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters."""
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        """Return the current counts as a plain dictionary."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        counts = ", ".join(f"{k}={v}" for k, v in self.snapshot().items())
        return f"KernelCounters({counts})"


#: Process-wide kernel invocation counters (reset freely in benchmarks/tests).
KERNEL_COUNTERS = KernelCounters()


def default_link_weight(link: Link) -> float:
    """The library-wide default link weight: physical length, falling back to
    1.0 for zero-length links so purely logical graphs get hop-count paths.

    Single source of truth — the optimization and routing layers alias this.
    """
    length = link.length
    return length if length > 0 else 1.0


def _column_min(weights: Any) -> float:
    """Minimum of a weight column (numpy-aware; 0.0 for an empty column)."""
    if _HAVE_NUMPY and isinstance(weights, _np.ndarray):
        return float(weights.min()) if len(weights) else 0.0
    return min(weights) if len(weights) else 0.0


def _column_values(weights: Any) -> List[float]:
    """A weight column as a plain Python float list (for the Python kernels)."""
    return weights.tolist() if hasattr(weights, "tolist") else list(weights)


class CompiledGraph:
    """Immutable int-indexed CSR snapshot of a :class:`Topology`.

    Attributes:
        version: ``Topology.version`` at build time (cache key).
        num_nodes: Number of nodes in the snapshot.
        num_edges: Number of undirected edges in the snapshot.
        ids: Node id per index (index → id), in node insertion order.
        index_of: Node index per id (id → index).
        indptr: CSR row pointers, length ``num_nodes + 1`` (int32 numpy array
            when numpy is available, else ``array('q')``).
        indices: Neighbor node index per half-edge, length ``2 * num_edges``.
            Neighbor order within a row matches adjacency insertion order, so
            BFS discovery order is identical to the object-graph traversal.
        half_edge_ids: Undirected edge index per half-edge (int64).
        edge_u / edge_v: Endpoint node indices per undirected edge (int32).
        nodes: The live :class:`~repro.topology.node.Node` object per node
            index (role/annotation columns are derived from these on demand,
            mirroring ``links``).
        links: The live :class:`Link` object per undirected edge (weight
            columns are derived from these on demand).
        edge_keys: Canonical ``(u, v)`` link key per undirected edge.

    Per-snapshot caches (all invalidated for free when a structural mutation
    bumps ``Topology.version`` and a fresh snapshot is compiled): adjacency
    tuple rows for the Python kernels, named weight columns
    (:meth:`edge_weight_column`), ``scipy.sparse.csr_matrix`` instances per
    weight column (:meth:`scipy_csr`), the sorted half-edge key table
    behind :meth:`edge_ids_for_pairs`, and the hierarchical routing overlays
    (``_overlay_cache``, owned by :mod:`repro.routing.hierarchical` and keyed
    by weight-column name — the "same contract as ``scipy_csr``" invalidation
    the routing layer documents).
    """

    __slots__ = (
        "version",
        "num_nodes",
        "num_edges",
        "ids",
        "index_of",
        "indptr",
        "indices",
        "half_edge_ids",
        "edge_u",
        "edge_v",
        "nodes",
        "links",
        "edge_keys",
        "_adjacency_rows",
        "_relaxation_cache",
        "_weight_columns",
        "_csr_cache",
        "_edge_lookup",
        "_overlay_cache",
    )

    def __init__(self, topology: Any) -> None:
        KERNEL_COUNTERS.compilations += 1
        self.version: int = topology.version
        ids: List[Any] = list(topology.node_ids())
        index_of: Dict[Any, int] = {nid: i for i, nid in enumerate(ids)}
        links: List[Link] = list(topology.links())
        edge_keys: List[Tuple[Any, Any]] = list(topology.link_keys())
        edge_index = {id(link): e for e, link in enumerate(links)}

        n = len(ids)
        m = len(links)
        adjacency = topology._adjacency  # same-package structural access
        if _HAVE_NUMPY:
            indptr = _np.zeros(n + 1, dtype=_np.int32)
            _np.cumsum(
                _np.fromiter(
                    (len(adjacency[nid]) for nid in ids), dtype=_np.int32, count=n
                ),
                out=indptr[1:],
            )
            indices = _np.fromiter(
                (
                    index_of[neighbor]
                    for nid in ids
                    for neighbor in adjacency[nid]
                ),
                dtype=_np.int32,
                count=2 * m,
            )
            half_edge_ids = _np.fromiter(
                (
                    edge_index[id(link)]
                    for nid in ids
                    for link in adjacency[nid].values()
                ),
                dtype=_np.int64,
                count=2 * m,
            )
            edge_u = _np.fromiter(
                (index_of[link.source] for link in links), dtype=_np.int32, count=m
            )
            edge_v = _np.fromiter(
                (index_of[link.target] for link in links), dtype=_np.int32, count=m
            )
        else:
            indptr = array("q", [0]) * (n + 1)
            for i, nid in enumerate(ids):
                indptr[i + 1] = indptr[i] + len(adjacency[nid])
            indices = array("q", [0]) * (2 * m)
            half_edge_ids = array("q", [0]) * (2 * m)
            k = 0
            for nid in ids:
                for neighbor, link in adjacency[nid].items():
                    indices[k] = index_of[neighbor]
                    half_edge_ids[k] = edge_index[id(link)]
                    k += 1
            edge_u = array("q", [0]) * m
            edge_v = array("q", [0]) * m
            for e, link in enumerate(links):
                edge_u[e] = index_of[link.source]
                edge_v[e] = index_of[link.target]

        self.num_nodes = n
        self.num_edges = m
        self.ids = ids
        self.index_of = index_of
        self.nodes = list(topology.nodes())
        self.indptr = indptr
        self.indices = indices
        self.half_edge_ids = half_edge_ids
        self.edge_u = edge_u
        self.edge_v = edge_v
        self.links = links
        self.edge_keys = edge_keys
        self._adjacency_rows: Optional[List[List[Tuple[int, int]]]] = None
        self._relaxation_cache: Optional[Tuple[Any, List[List[Tuple[float, int, int]]]]] = None
        self._weight_columns: Dict[str, Any] = {}
        self._csr_cache: List[Tuple[Any, Any]] = []
        self._edge_lookup: Optional[Tuple[Any, Any]] = None
        self._overlay_cache: Dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # Derived columns
    # ------------------------------------------------------------------
    def degree(self, index: int) -> int:
        """Degree of the node at ``index``."""
        return int(self.indptr[index + 1] - self.indptr[index])

    def degrees(self) -> Any:
        """Degree per node index as an int column (numpy array or ``array``)."""
        if _HAVE_NUMPY:
            return _np.diff(_np.asarray(self.indptr, dtype=_np.int64))
        out = array("q", [0]) * self.num_nodes
        indptr = self.indptr
        for i in range(self.num_nodes):
            out[i] = indptr[i + 1] - indptr[i]
        return out

    def edge_weights(self, weight: Optional[Callable[[Link], float]] = None) -> Any:
        """Per-edge weight column computed from the live :class:`Link` objects.

        ``None`` selects the library default (physical length, falling back to
        1.0 for zero-length links).  Raises :class:`ValueError` on a negative
        weight, mirroring the object-graph Dijkstra.  Returns a float64 numpy
        array when numpy is available, else ``array('d')`` — always freshly
        computed, so annotation mutations are visible (see
        :meth:`edge_weight_column` for the cached named columns).
        """
        m = self.num_edges
        if _HAVE_NUMPY:
            if weight is None:
                return _np.fromiter(
                    (default_link_weight(link) for link in self.links),
                    dtype=_np.float64,
                    count=m,
                )
            out = _np.fromiter(
                (weight(link) for link in self.links), dtype=_np.float64, count=m
            )
            if m and float(out.min()) < 0:
                e = int(out.argmin())
                raise ValueError(
                    f"negative link weight {out[e]} on {self.links[e].key}"
                )
            return out
        out = array("d", [0.0]) * m
        if weight is None:
            for e, link in enumerate(self.links):
                out[e] = default_link_weight(link)
        else:
            for e, link in enumerate(self.links):
                w = weight(link)
                if w < 0:
                    raise ValueError(f"negative link weight {w} on {link.key}")
                out[e] = w
        return out

    #: Names whose weight columns derive from immutable link geometry and are
    #: therefore safe to cache on the snapshot.  Annotation-dependent weights
    #: (e.g. ``"inverse-capacity"``) must bypass the cache so provisioning
    #: updates stay visible without a ``Topology.touch()``.
    CACHEABLE_WEIGHT_NAMES = frozenset({"length", "hops"})

    def edge_weight_column(
        self, name: Optional[str], weight: Optional[Callable[[Link], float]] = None
    ) -> Any:
        """The weight column for a *named* weight, cached per snapshot.

        ``name=None`` aliases ``"length"`` (the library default).  Columns in
        :data:`CACHEABLE_WEIGHT_NAMES` are materialized once per snapshot and
        shared by every caller — repeat routing/metric calls stop re-building
        the same float64 column (and, transitively, the same
        ``csr_matrix``, since :meth:`scipy_csr` caches by column identity).
        Other names fall through to a fresh :meth:`edge_weights` computation.
        """
        key = "length" if name is None else name
        if key not in self.CACHEABLE_WEIGHT_NAMES:
            return self.edge_weights(weight)
        column = self._weight_columns.get(key)
        if column is None:
            if key == "hops":
                if _HAVE_NUMPY:
                    column = _np.ones(self.num_edges, dtype=_np.float64)
                else:
                    column = array("d", [1.0]) * self.num_edges
            else:
                column = self.edge_weights(
                    weight if name is not None else None
                )
            self._weight_columns[key] = column
        return column

    def adjacency_rows(self) -> List[List[Tuple[int, int]]]:
        """Per-node ``(neighbor, edge)`` tuple rows, built once per snapshot.

        Tuple rows iterate several times faster than CSR range indexing in
        pure Python; the CSR arrays remain the canonical representation (and
        the zero-copy input to the optional scipy batch kernels).
        """
        rows = self._adjacency_rows
        if rows is None:
            indptr = self.indptr.tolist()
            indices = self.indices.tolist()
            half_edge_ids = self.half_edge_ids.tolist()
            rows = [
                list(zip(indices[indptr[i] : indptr[i + 1]],
                         half_edge_ids[indptr[i] : indptr[i + 1]]))
                for i in range(self.num_nodes)
            ]
            self._adjacency_rows = rows
        return rows

    def relaxation_rows(
        self, weights: Any
    ) -> List[List[Tuple[float, int, int]]]:
        """Per-node ``(weight, neighbor, edge)`` rows for Dijkstra relaxation.

        Cached for the most recent ``weights`` object, so a batch of searches
        sharing one weight column (e.g. all-pairs) builds the rows once.  The
        column is flattened to plain Python floats first, so the heap kernels
        compare native floats even when the column is a numpy array.
        """
        cached = self._relaxation_cache
        if cached is not None and cached[0] is weights:
            return cached[1]
        values = _column_values(weights)
        rows = [
            [(values[e], v, e) for v, e in row] for row in self.adjacency_rows()
        ]
        self._relaxation_cache = (weights, rows)
        return rows

    def scipy_csr(self, weights: Any):
        """The snapshot as a ``scipy.sparse.csr_matrix`` (``None`` w/o scipy).

        Built zero-copy from the native numpy CSR buffers and cached per
        weight-column object (a small FIFO keyed by column identity), so the
        named columns from :meth:`edge_weight_column` get one matrix per
        snapshot instead of one per call.
        """
        if not _HAVE_SCIPY:
            return None
        for column, matrix in self._csr_cache:
            if column is weights:
                return matrix
        data = _np.asarray(weights, dtype=_np.float64)[
            _np.asarray(self.half_edge_ids)
        ]
        matrix = _csr_matrix(
            (
                data,
                _np.asarray(self.indices),
                _np.asarray(self.indptr),
            ),
            shape=(self.num_nodes, self.num_nodes),
        )
        self._csr_cache.append((weights, matrix))
        if len(self._csr_cache) > 4:  # bound transient (unnamed) columns
            self._csr_cache.pop(0)
        return matrix

    def unit_csr(self):
        """Cached unit-weight ``csr_matrix`` (structure-only batch kernels)."""
        return self.scipy_csr(self.edge_weight_column("hops"))

    def edge_ids_for_pairs(self, tails: Any, heads: Any) -> Any:
        """Undirected edge id per ``(tails[i], heads[i])`` adjacent pair.

        Vectorized half-edge lookup over a sorted ``(row, col)`` key table
        built once per snapshot; used by the numpy traffic scatter to resolve
        predecessor edges from a predecessor node array.  Requires numpy; all
        pairs must be existing adjacencies.
        """
        lookup = self._edge_lookup
        if lookup is None:
            n = self.num_nodes
            counts = _np.diff(_np.asarray(self.indptr, dtype=_np.int64))
            rows = _np.repeat(_np.arange(n, dtype=_np.int64), counts)
            keys = rows * n + _np.asarray(self.indices, dtype=_np.int64)
            perm = _np.argsort(keys, kind="stable")
            edge_of_key = _np.asarray(self.half_edge_ids)[perm]
            lookup = (keys[perm], edge_of_key)
            self._edge_lookup = lookup
        sorted_keys, edge_of_key = lookup
        targets = (
            _np.asarray(tails, dtype=_np.int64) * self.num_nodes
            + _np.asarray(heads, dtype=_np.int64)
        )
        positions = _np.searchsorted(sorted_keys, targets)
        return edge_of_key[positions]

    def full_mask(self) -> bytearray:
        """A mask with every node active (for callers that then disable some)."""
        return bytearray(b"\x01") * self.num_nodes

    def __repr__(self) -> str:
        return (
            f"CompiledGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"version={self.version})"
        )


# ----------------------------------------------------------------------
# Kernels (int-index world)
# ----------------------------------------------------------------------
def dijkstra_indices(
    graph: CompiledGraph,
    source: int,
    weights: Any,
    mask: Optional[bytearray] = None,
) -> Tuple[List[float], List[int], List[int]]:
    """Single-source shortest paths over the compiled view (pure Python).

    Returns ``(dist, pred, pred_edge)`` lists indexed by node index:
    ``dist`` is ``inf`` for unreachable nodes, ``pred`` is the predecessor
    node index (-1 for the source and unreachable nodes), and ``pred_edge``
    is the undirected edge index used to reach each node (-1 likewise).

    This is the canonical tie-breaking reference: under equal-distance ties
    the predecessor recorded is the first relaxation that achieved the final
    distance in heap-settle order.
    """
    KERNEL_COUNTERS.single_source += 1
    n = graph.num_nodes
    rows = graph.relaxation_rows(weights)
    dist = [inf] * n
    pred = [-1] * n
    pred_edge = [-1] * n
    dist[source] = 0.0
    visited = bytearray(n)
    heap: List[Tuple[float, int]] = [(0.0, source)]
    push = heapq.heappush
    pop = heapq.heappop
    if mask is None:
        while heap:
            d, u = pop(heap)
            if visited[u]:
                continue
            visited[u] = 1
            for w, v, e in rows[u]:
                if visited[v]:
                    continue
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    pred[v] = u
                    pred_edge[v] = e
                    push(heap, (nd, v))
    else:
        while heap:
            d, u = pop(heap)
            if visited[u]:
                continue
            visited[u] = 1
            for w, v, e in rows[u]:
                if visited[v] or not mask[v]:
                    continue
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    pred[v] = u
                    pred_edge[v] = e
                    push(heap, (nd, v))
    return dist, pred, pred_edge


def multi_source_dijkstra_indices(
    graph: CompiledGraph,
    sources: Sequence[int],
    weights: Any,
    mask: Optional[bytearray] = None,
) -> Tuple[List[float], List[int], List[int], List[int]]:
    """Multi-source shortest paths: one search growing from all sources at once.

    Returns ``(dist, pred, pred_edge, origin)`` where ``origin[v]`` is the
    node index of the source whose shortest-path tree reached ``v`` (-1 for
    unreachable nodes).  For strictly positive weights, exact distance ties
    between sources are resolved in favor of the source appearing earlier in
    ``sources``: every optimal predecessor of a node settles (and relaxes it)
    before the node itself is settled, so the equal-distance re-attribution
    below sees all competing origins.

    Always pure Python: the origin/predecessor tie contract above is part of
    the public API (customer→core attribution depends on it), and scipy's
    ``min_only`` path does not honor it.  Distance-only consumers can use
    :func:`multi_source_distances` for the batch path.
    """
    KERNEL_COUNTERS.multi_source += 1
    n = graph.num_nodes
    rows = graph.relaxation_rows(weights)
    dist = [inf] * n
    pred = [-1] * n
    pred_edge = [-1] * n
    origin = [-1] * n
    rank: Dict[int, int] = {}
    visited = bytearray(n)
    heap: List[Tuple[float, int, int]] = []
    counter = 0
    for s in sources:
        if mask is not None and not mask[s]:
            continue
        if dist[s] == 0.0 and origin[s] != -1:
            continue  # duplicate source
        dist[s] = 0.0
        origin[s] = s
        rank[s] = counter
        heap.append((0.0, counter, s))
        counter += 1
    heapq.heapify(heap)
    push = heapq.heappush
    pop = heapq.heappop
    while heap:
        d, _, u = pop(heap)
        if visited[u]:
            continue
        visited[u] = 1
        origin_u = origin[u]
        for w, v, e in rows[u]:
            if visited[v] or (mask is not None and not mask[v]):
                continue
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pred[v] = u
                pred_edge[v] = e
                origin[v] = origin_u
                counter += 1
                push(heap, (nd, counter, v))
            elif nd == dist[v] and rank[origin_u] < rank[origin[v]]:
                # Same distance via an earlier-listed source: re-attribute.
                pred[v] = u
                pred_edge[v] = e
                origin[v] = origin_u
    return dist, pred, pred_edge, origin


def multi_source_distances(
    graph: CompiledGraph,
    sources: Sequence[int],
    weights: Any,
    mask: Optional[bytearray] = None,
    backend: Optional[str] = None,
) -> List[float]:
    """Distance to the nearest source per node (``inf`` when unreachable).

    The distance-only projection of :func:`multi_source_dijkstra_indices`:
    distances are backend-identical (both backends take the float minimum over
    the same relaxation sums), so the numpy path — one ``min_only``
    ``csgraph.dijkstra`` over all sources — engages whenever scipy is
    available, the graph is unmasked, and weights are strictly positive.
    """
    if (
        resolve_backend(backend) == "numpy"
        and mask is None
        and graph.num_edges > 0
        and len(sources) > 0
        and _column_min(weights) > 0
    ):
        KERNEL_COUNTERS.multi_source += 1
        KERNEL_COUNTERS.batch_dijkstra_calls += 1
        KERNEL_COUNTERS.batch_sources_total += len(sources)
        matrix = graph.scipy_csr(weights)
        dist = _scipy_dijkstra(
            matrix, directed=False, indices=list(sources), min_only=True
        )
        return dist.tolist()
    dist, _, _, _ = multi_source_dijkstra_indices(graph, sources, weights, mask)
    return dist


def _batch_chunks(sources: Sequence[int], num_nodes: int) -> Iterable[List[int]]:
    """Split a source batch so each scipy call stays within the cell budget."""
    chunk = max(1, BATCH_CHUNK_CELLS // max(1, num_nodes))
    source_list = list(sources)
    for start in range(0, len(source_list), chunk):
        yield source_list[start : start + chunk]


def batch_shortest_lengths(
    graph: CompiledGraph,
    sources: Sequence[int],
    weights: Any,
    backend: Optional[str] = None,
) -> List[List[float]]:
    """Shortest-path lengths from many sources at once.

    Returns one row of per-node distances (``inf`` when unreachable) per
    source, in ``sources`` order.  Under the numpy backend the whole batch is
    a bounded number of vectorized ``csgraph.dijkstra`` calls over the cached
    CSR matrix (chunked to :data:`BATCH_CHUNK_CELLS`); otherwise it falls
    back to the pure-Python kernel per source.  Distances are
    backend-identical bit for bit: both paths accumulate ``dist + w`` along
    the same shortest paths and take float minima over the same candidates.
    The invocation counters record one single-source search per source either
    way, so algorithm-count assertions stay backend-independent.
    """
    KERNEL_COUNTERS.single_source += len(sources)
    if not sources:
        return []
    # Scipy's csgraph is ambiguous about explicit zero-weight edges, so the
    # vectorized path only engages for strictly positive weight columns.
    if (
        resolve_backend(backend) == "numpy"
        and graph.num_edges > 0
        and _column_min(weights) > 0
    ):
        matrix = graph.scipy_csr(weights)
        rows: List[List[float]] = []
        for chunk in _batch_chunks(sources, graph.num_nodes):
            KERNEL_COUNTERS.batch_dijkstra_calls += 1
            KERNEL_COUNTERS.batch_sources_total += len(chunk)
            result = _scipy_dijkstra(
                matrix, directed=False, indices=chunk, return_predecessors=False
            )
            if result.ndim == 1:
                rows.append(result.tolist())
            else:
                rows.extend(row.tolist() for row in result)
        return rows
    rows = []
    for source in sources:
        dist, _, _ = dijkstra_indices(graph, source, weights)
        KERNEL_COUNTERS.single_source -= 1  # already counted for the batch
        rows.append(dist)
    return rows


def batch_hop_lengths(
    graph: CompiledGraph,
    sources: Sequence[int],
    backend: Optional[str] = None,
) -> List[List[int]]:
    """BFS hop distances from many sources at once (-1 when unreachable).

    The batch sibling of :func:`bfs_indices` for bulk hop metrics: one row of
    integer hop counts per source, in ``sources`` order.  Hop counts are
    exact integers under both backends, so results are backend-identical.
    The numpy path runs unweighted ``csgraph.dijkstra`` over the cached unit
    CSR matrix; graphs below :data:`SMALL_GRAPH_NODES` stay pure Python.
    """
    if not sources:
        return []
    if (
        resolve_backend(backend) == "numpy"
        and graph.num_edges > 0
        and graph.num_nodes >= SMALL_GRAPH_NODES
    ):
        KERNEL_COUNTERS.bfs += len(sources)
        matrix = graph.unit_csr()
        rows: List[List[int]] = []
        for chunk in _batch_chunks(sources, graph.num_nodes):
            KERNEL_COUNTERS.batch_dijkstra_calls += 1
            KERNEL_COUNTERS.batch_sources_total += len(chunk)
            result = _scipy_dijkstra(
                matrix, directed=False, indices=chunk, unweighted=True
            )
            if result.ndim == 1:
                result = result[_np.newaxis, :]
            hops = _np.where(_np.isinf(result), -1.0, result).astype(_np.int64)
            rows.extend(row.tolist() for row in hops)
        return rows
    rows = []
    for source in sources:
        dist, _ = bfs_indices(graph, source)
        rows.append(dist)
    return rows


def bfs_indices(
    graph: CompiledGraph,
    source: int,
    mask: Optional[bytearray] = None,
) -> Tuple[List[int], List[int]]:
    """Breadth-first hop distances from one source (pure Python).

    Returns ``(dist, order)``: ``dist`` holds hop counts (-1 when
    unreachable) and ``order`` lists reached node indices in discovery order
    (matching the object-graph BFS, since CSR rows preserve adjacency
    insertion order).  The discovery-order contract is why this kernel has no
    numpy path — bulk consumers that only need distances use
    :func:`batch_hop_lengths`.
    """
    KERNEL_COUNTERS.bfs += 1
    rows = graph.adjacency_rows()
    dist = [-1] * graph.num_nodes
    dist[source] = 0
    order = [source]
    head = 0
    if mask is None:
        while head < len(order):
            u = order[head]
            head += 1
            du = dist[u] + 1
            for v, _ in rows[u]:
                if dist[v] == -1:
                    dist[v] = du
                    order.append(v)
    else:
        while head < len(order):
            u = order[head]
            head += 1
            du = dist[u] + 1
            for v, _ in rows[u]:
                if dist[v] == -1 and mask[v]:
                    dist[v] = du
                    order.append(v)
    return dist, order


def multi_source_bfs_indices(
    graph: CompiledGraph,
    sources: Iterable[int],
    mask: Optional[bytearray] = None,
    backend: Optional[str] = None,
) -> List[int]:
    """Hop distance to the nearest source per node (-1 when unreachable).

    Hop counts are exact small integers, so the numpy path — unweighted
    ``min_only`` ``csgraph.dijkstra`` over the cached unit CSR matrix — is
    backend-identical to the pure-Python frontier sweep.  It engages for
    unmasked graphs of at least :data:`SMALL_GRAPH_NODES` nodes.
    """
    source_list = list(sources)
    if (
        resolve_backend(backend) == "numpy"
        and mask is None
        and graph.num_edges > 0
        and graph.num_nodes >= SMALL_GRAPH_NODES
        and source_list
    ):
        KERNEL_COUNTERS.bfs += 1
        KERNEL_COUNTERS.batch_dijkstra_calls += 1
        KERNEL_COUNTERS.batch_sources_total += len(source_list)
        matrix = graph.unit_csr()
        dist = _scipy_dijkstra(
            matrix, directed=False, indices=source_list, min_only=True, unweighted=True
        )
        return _np.where(_np.isinf(dist), -1.0, dist).astype(_np.int64).tolist()
    KERNEL_COUNTERS.bfs += 1
    rows = graph.adjacency_rows()
    dist = [-1] * graph.num_nodes
    frontier: List[int] = []
    for s in source_list:
        if mask is not None and not mask[s]:
            continue
        if dist[s] == -1:
            dist[s] = 0
            frontier.append(s)
    head = 0
    while head < len(frontier):
        u = frontier[head]
        head += 1
        du = dist[u] + 1
        for v, _ in rows[u]:
            if dist[v] != -1 or (mask is not None and not mask[v]):
                continue
            dist[v] = du
            frontier.append(v)
    return dist


def components_indices(
    graph: CompiledGraph,
    mask: Optional[bytearray] = None,
    backend: Optional[str] = None,
) -> Tuple[List[int], int]:
    """Connected-component labels over active nodes.

    Returns ``(labels, count)``: ``labels[v]`` is a component id in
    ``0..count-1`` assigned in order of each component's first node index,
    or -1 for masked-out nodes.  The numpy path relabels scipy's
    ``connected_components`` output into that canonical first-node order, so
    labels are backend-identical; it engages for unmasked graphs of at least
    :data:`SMALL_GRAPH_NODES` nodes.
    """
    KERNEL_COUNTERS.components += 1
    n = graph.num_nodes
    if (
        resolve_backend(backend) == "numpy"
        and mask is None
        and graph.num_edges > 0
        and n >= SMALL_GRAPH_NODES
    ):
        count, labels = _scipy_connected_components(graph.unit_csr(), directed=False)
        # Canonicalize: component ids in order of each component's first node.
        _, first = _np.unique(labels, return_index=True)
        rank = _np.empty(count, dtype=_np.int64)
        rank[_np.argsort(first, kind="stable")] = _np.arange(count)
        return rank[labels].tolist(), int(count)
    rows = graph.adjacency_rows()
    labels = [-1] * n
    count = 0
    stack: List[int] = []
    for start in range(n):
        if labels[start] != -1 or (mask is not None and not mask[start]):
            continue
        labels[start] = count
        stack.append(start)
        if mask is None:
            while stack:
                u = stack.pop()
                for v, _ in rows[u]:
                    if labels[v] == -1:
                        labels[v] = count
                        stack.append(v)
        else:
            while stack:
                u = stack.pop()
                for v, _ in rows[u]:
                    if labels[v] == -1 and mask[v]:
                        labels[v] = count
                        stack.append(v)
        count += 1
    return labels, count
