"""Annotated topology substrate: graphs whose nodes and links carry resources.

Public API:

* :class:`Topology` — the central annotated graph type.
* :class:`Node`, :class:`NodeRole`, :class:`Link` — node/link annotations.
* :class:`TopologyBuilder` — fluent construction helper.
* :class:`DynamicConnectivity` — HDT fully-dynamic connectivity with exact
  per-component service aggregates and O(polylog) deletions.
* :func:`summarize_hierarchy` — WAN/MAN/LAN hierarchy statistics.
* serialization helpers (``topology_to_dict``, ``save_json``, ``to_networkx``, ...).
"""

from .compiled import CompiledGraph, KERNEL_COUNTERS, KernelCounters
from .dynconn import ComponentSummary, DynamicConnectivity
from .graph import Topology, TopologyError, union
from .link import Link, edge_key
from .node import Node, NodeRole, ROLE_RANK
from .builder import TopologyBuilder
from .hierarchy import (
    HierarchySummary,
    assign_levels_by_distance,
    is_downward_tree,
    level_of,
    relabel_roles_from_levels,
    summarize_hierarchy,
)
from .serialization import (
    from_networkx,
    load_json,
    save_edge_list,
    save_json,
    to_edge_list,
    to_networkx,
    topology_from_dict,
    topology_to_dict,
)

__all__ = [
    "CompiledGraph",
    "ComponentSummary",
    "DynamicConnectivity",
    "KernelCounters",
    "KERNEL_COUNTERS",
    "Topology",
    "TopologyError",
    "union",
    "Link",
    "edge_key",
    "Node",
    "NodeRole",
    "ROLE_RANK",
    "TopologyBuilder",
    "HierarchySummary",
    "assign_levels_by_distance",
    "is_downward_tree",
    "level_of",
    "relabel_roles_from_levels",
    "summarize_hierarchy",
    "from_networkx",
    "load_json",
    "save_edge_list",
    "save_json",
    "to_edge_list",
    "to_networkx",
    "topology_from_dict",
    "topology_to_dict",
]
