"""Fully-dynamic connectivity with exact per-component service aggregates.

The move engine (:mod:`repro.optimization.incremental`) answers "what does
this change cost?" in O(Δ) for additions, but before this module every
deletion — ``RemoveLink``, the removal half of ``Rewire``, each
``RemoveLinks`` cascade batch — paid a full O(V+E) component sweep plus an
O(V) union-find snapshot, because a union-find cannot split.  This module is
the structure that can: a Holm–de Lichtenberg–Thorup (HDT) level-structured
spanning forest over Euler-tour trees, giving amortized O(log² n) edge
insertion/deletion, O(log n) connectivity queries, O(log n) per-component
aggregate queries, and exact-undo tokens matching the move engine's LIFO
rollback discipline.

Level structure
---------------

Every edge carries a level ``0 ≤ level(e) ≤ log₂ n``; ``F_i`` is a spanning
forest of the subgraph of edges with level ≥ i, and ``F_0 ⊇ F_1 ⊇ …`` spans
the whole graph.  New edges enter at level 0 — as a tree edge of ``F_0`` when
they join two components, as a level-0 non-tree edge otherwise.  Deleting a
non-tree edge touches only adjacency sets: O(log n).  Deleting a tree edge of
level ``l`` cuts it out of ``F_0 … F_l`` and then searches for a replacement
from level ``l`` down to 0: at each level the *smaller* of the two split
trees has its level-``i`` tree edges promoted to ``i+1`` (it can afford it:
the smaller side has ≤ n/2^{i+1} vertices, preserving the HDT size
invariant), and its level-``i`` non-tree edges are scanned — an edge whose
far endpoint lands in the other side reconnects the forest and is linked as a
tree edge into ``F_0 … F_i``; every other scanned edge is promoted to
``i+1``, paying for its own future scans.  Each edge is promoted at most
O(log n) times, which is where the amortized O(log² n) bound comes from.

Euler-tour trees
----------------

Each forest ``F_i`` stores its trees as Euler tours — the circular sequence
of directed arcs of a DFS traversal, plus one self-loop node per vertex —
kept in splay trees (deterministic, no RNG, amortized O(log n) per splay).
Linking two trees is a pair of rotations (reroots) and a concatenation; a cut
splits the sequence around the edge's two arcs.  Splay nodes carry subtree
sums, so the root of a tour answers whole-component questions in O(1) after
an O(log n) splay:

* vertex count, core count, customer demand and revenue (level 0 only) —
  the aggregates :class:`~repro.optimization.incremental.IncrementalState`
  prices service with;
* "some vertex below me has level-i non-tree edges" and "some arc below me is
  a level-i tree edge" — the subtree-OR flags the replacement search descends
  along, so each candidate costs O(log n) to find instead of a linear scan.

Exact aggregates and the undo contract
--------------------------------------

Per-vertex demand/revenue are stored as *exact fixed-point integers*: every
finite double is an integer multiple of 2⁻¹⁰⁷⁴, so ``value · 2¹⁰⁷⁴`` is an
exact Python int and subtree sums are associative, order- and
shape-independent.  Converting a component sum back (``n / 2¹⁰⁷⁴`` — int/int
true division is correctly rounded) therefore yields a float that depends
only on the *set* of vertices in the component, never on splay shape or
operation history.  This is what makes rollback bit-identical:
:meth:`DynamicConnectivity.undo` replays a mutation's primitive journal
(links, cuts, level changes, adjacency flips) in reverse, and although the
splay trees may land in a different *shape* than before the mutation, every
observable — connectivity, component size/core/demand/revenue — is restored
bit-exactly.  Tokens obey strict LIFO, mirroring the move engine's undo
stack.

The structure is pure Python and backend-independent: it behaves identically
under both ``REPRO_BACKEND`` settings, and
:func:`~repro.topology.compiled.components_indices` remains the canonical
oracle it is property-tested against.  ``KERNEL_COUNTERS`` records every ETT
link/cut as ``dynconn_tree_ops`` and every tree-edge deletion's replacement
hunt as ``dynconn_replacement_searches``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

from .compiled import KERNEL_COUNTERS
from .link import edge_key

__all__ = ["DynamicConnectivity", "ComponentSummary"]


#: Scale factor of the exact fixed-point representation.  2^1074 is the
#: reciprocal of the smallest positive subnormal double, so every finite
#: float ``x`` satisfies ``x * _FIXED_ONE == exact int``.
_FIXED_ONE = 1 << 1074


def _to_fixed(value: float) -> int:
    """Exact fixed-point integer of a finite float (lossless)."""
    if value == 0.0:
        return 0
    p, q = value.as_integer_ratio()
    return p * (_FIXED_ONE // q)


def _from_fixed(value: int) -> float:
    """Correctly-rounded float of an exact fixed-point integer."""
    if value == 0:
        return 0.0
    return value / _FIXED_ONE


class ComponentSummary(NamedTuple):
    """Whole-component aggregates read off one level-0 Euler-tour root."""

    size: int
    has_core: bool
    demand: float
    revenue: float


class _EttNode:
    """One splay node of an Euler tour: a vertex self-loop or a directed arc.

    Vertex nodes carry the vertex payload (level 0 only) and the per-level
    ``nontree`` flag; arc nodes carry the per-level ``istree`` flag (true on
    the canonical arc of the one forest level equal to the edge's current
    level).  All nodes maintain subtree sums/ORs of everything, so any node
    can serve as an aggregation root after a splay.
    """

    __slots__ = (
        "parent",
        "left",
        "right",
        "vertex",
        "arc",
        "count",
        "core",
        "demand",
        "revenue",
        "nontree",
        "istree",
        "s_count",
        "s_core",
        "s_demand",
        "s_revenue",
        "s_nontree",
        "s_istree",
    )

    def __init__(self, vertex: Any = None, arc: Optional[Tuple[Any, Any]] = None):
        self.parent: Optional[_EttNode] = None
        self.left: Optional[_EttNode] = None
        self.right: Optional[_EttNode] = None
        self.vertex = vertex
        self.arc = arc
        self.count = 1 if vertex is not None else 0
        self.core = 0
        self.demand = 0
        self.revenue = 0
        self.nontree = False
        self.istree = False
        self.s_count = self.count
        self.s_core = 0
        self.s_demand = 0
        self.s_revenue = 0
        self.s_nontree = False
        self.s_istree = False


def _pull(x: _EttNode) -> None:
    count = x.count
    core = x.core
    demand = x.demand
    revenue = x.revenue
    nontree = x.nontree
    istree = x.istree
    left = x.left
    if left is not None:
        count += left.s_count
        core += left.s_core
        demand += left.s_demand
        revenue += left.s_revenue
        nontree = nontree or left.s_nontree
        istree = istree or left.s_istree
    right = x.right
    if right is not None:
        count += right.s_count
        core += right.s_core
        demand += right.s_demand
        revenue += right.s_revenue
        nontree = nontree or right.s_nontree
        istree = istree or right.s_istree
    x.s_count = count
    x.s_core = core
    x.s_demand = demand
    x.s_revenue = revenue
    x.s_nontree = nontree
    x.s_istree = istree


def _rotate(x: _EttNode) -> None:
    p = x.parent
    g = p.parent
    if p.left is x:
        p.left = x.right
        if x.right is not None:
            x.right.parent = p
        x.right = p
    else:
        p.right = x.left
        if x.left is not None:
            x.left.parent = p
        x.left = p
    p.parent = x
    x.parent = g
    if g is not None:
        if g.left is p:
            g.left = x
        elif g.right is p:
            g.right = x
    _pull(p)
    _pull(x)


def _splay(x: _EttNode) -> None:
    # Rotations permute shape, not membership, so subtree sums above the
    # rotation site never change — only the two rotated nodes re-pull.
    while x.parent is not None:
        p = x.parent
        g = p.parent
        if g is not None:
            if (g.left is p) == (p.left is x):
                _rotate(p)
            else:
                _rotate(x)
        _rotate(x)


def _bst_root(x: _EttNode) -> _EttNode:
    """Splay ``x`` to the root of its BST and return it."""
    _splay(x)
    return x


def _same_tree(a: _EttNode, b: _EttNode) -> bool:
    """Whether two splay nodes currently share a BST (amortized O(log n))."""
    if a is b:
        return True
    _splay(a)
    _splay(b)
    # b is now the root of its tree; if a landed under it they share a tree.
    return a.parent is not None


def _rightmost(x: _EttNode) -> _EttNode:
    while x.right is not None:
        x = x.right
    return x


def _join(a: Optional[_EttNode], b: Optional[_EttNode]) -> Optional[_EttNode]:
    """Concatenate two sequences (BST roots in, BST root out)."""
    if a is None:
        return b
    if b is None:
        return a
    r = _rightmost(a)
    _splay(r)
    r.right = b
    b.parent = r
    _pull(r)
    return r


def _split_before(x: _EttNode) -> Tuple[Optional[_EttNode], _EttNode]:
    """Split x's sequence into (strictly-before-x, x-and-after)."""
    _splay(x)
    left = x.left
    if left is not None:
        left.parent = None
        x.left = None
        _pull(x)
    return left, x


def _split_after(x: _EttNode) -> Tuple[_EttNode, Optional[_EttNode]]:
    """Split x's sequence into (up-to-and-including-x, strictly-after-x)."""
    _splay(x)
    right = x.right
    if right is not None:
        right.parent = None
        x.right = None
        _pull(x)
    return x, right


def _precedes(x: _EttNode, y: _EttNode) -> bool:
    """Whether x comes before y in their (shared) sequence."""
    _splay(x)
    _splay(y)
    # x is now a proper descendant of y; the child of y on the x→root path
    # tells which side of y it sits on.
    node = x
    prev = None
    while node is not y:
        prev = node
        node = node.parent
    return prev is y.left


class _Edge:
    """One logical undirected edge of the dynamic graph."""

    __slots__ = ("u", "v", "key", "level", "is_tree", "tree_arcs")

    def __init__(self, u: Any, v: Any, key: Tuple[Any, Any]):
        self.u = u
        self.v = v
        self.key = key
        self.level = 0
        self.is_tree = False
        # tree_arcs[i] = the edge's arc pair in forest F_i (i = 0..level when
        # is_tree); tree_arcs[i][0] is the canonical (u, v)-direction arc and
        # the only one that ever carries the ``istree`` flag.
        self.tree_arcs: List[Tuple[_EttNode, _EttNode]] = []


class DynamicConnectivity:
    """HDT fully-dynamic connectivity over splay Euler-tour trees.

    Vertices carry a service payload (``is_core``, customer ``demand`` and
    ``revenue``) aggregated per component.  :meth:`insert` and :meth:`delete`
    return opaque undo tokens; :meth:`undo` consumes them in strict LIFO
    order, restoring every observable bit-exactly.
    """

    def __init__(self) -> None:
        # _vnodes[i][v] -> the self-loop splay node of v in forest F_i
        # (eager at level 0 for every vertex, lazy at higher levels).
        self._vnodes: List[Dict[Any, _EttNode]] = [{}]
        # _nontree[i][v] -> ordered set (dict) of level-i non-tree edges at v.
        self._nontree: List[Dict[Any, Dict[Tuple[Any, Any], _Edge]]] = [{}]
        self._edges: Dict[Tuple[Any, Any], _Edge] = {}
        self._num_vertices = 0

    # -- vertices ------------------------------------------------------
    def __contains__(self, vertex: Any) -> bool:
        return vertex in self._vnodes[0]

    def __len__(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def add_vertex(
        self,
        vertex: Any,
        *,
        is_core: bool = False,
        demand: float = 0.0,
        revenue: float = 0.0,
    ) -> None:
        """Add an isolated vertex with its service payload."""
        if vertex in self._vnodes[0]:
            raise ValueError(f"vertex {vertex!r} already present")
        node = _EttNode(vertex=vertex)
        node.core = 1 if is_core else 0
        node.demand = _to_fixed(demand)
        node.revenue = _to_fixed(revenue)
        _pull(node)
        self._vnodes[0][vertex] = node
        self._num_vertices += 1

    def remove_vertex(self, vertex: Any) -> None:
        """Remove a vertex that is currently isolated (the AddNode undo path)."""
        node = self._vnodes[0][vertex]
        _splay(node)
        if node.left is not None or node.right is not None:
            raise ValueError(f"vertex {vertex!r} still has incident tree edges")
        for level_adj in self._nontree:
            if level_adj.get(vertex):
                raise ValueError(f"vertex {vertex!r} still has non-tree edges")
        del self._vnodes[0][vertex]
        for level_map in self._vnodes[1:]:
            level_map.pop(vertex, None)
        self._num_vertices -= 1

    # -- queries -------------------------------------------------------
    def has_edge(self, u: Any, v: Any) -> bool:
        return edge_key(u, v) in self._edges

    def connected(self, u: Any, v: Any) -> bool:
        """Whether u and v are in one component (amortized O(log n))."""
        if u == v:
            return True
        return _same_tree(self._vnodes[0][u], self._vnodes[0][v])

    def summary(self, vertex: Any) -> ComponentSummary:
        """Aggregates of ``vertex``'s component (amortized O(log n))."""
        root = _bst_root(self._vnodes[0][vertex])
        return ComponentSummary(
            size=root.s_count,
            has_core=root.s_core > 0,
            demand=_from_fixed(root.s_demand),
            revenue=_from_fixed(root.s_revenue),
        )

    def has_core_component(self, vertex: Any) -> bool:
        """Whether ``vertex``'s component contains a core vertex."""
        return _bst_root(self._vnodes[0][vertex]).s_core > 0

    def component_size(self, vertex: Any) -> int:
        return _bst_root(self._vnodes[0][vertex]).s_count

    def components(self) -> Dict[Any, List[Any]]:
        """Materialize the partition: first-member → members, insertion order.

        O(V · depth); walks parent pointers without splaying so BST roots
        stay stable across the pass.  Intended for oracles, tests, and
        canonical-order initialization — not for the hot path.
        """
        groups: Dict[int, List[Any]] = {}
        order: List[int] = []
        for vertex, node in self._vnodes[0].items():
            while node.parent is not None:
                node = node.parent
            key = id(node)
            members = groups.get(key)
            if members is None:
                groups[key] = members = []
                order.append(key)
            members.append(vertex)
        return {groups[key][0]: groups[key] for key in order}

    # -- bulk construction ---------------------------------------------
    def build(
        self,
        vertices: Iterable[Tuple[Any, bool, float, float]],
        edges: Iterable[Tuple[Any, Any]],
    ) -> None:
        """Bulk-initialize from scratch in O(V + E).

        ``vertices`` yields ``(id, is_core, demand, revenue)``; ``edges``
        yields endpoint pairs.  A BFS spanning forest (vertices and adjacency
        in iteration order) becomes the level-0 Euler tours, built as
        perfectly balanced BSTs with bottom-up sums; every non-forest edge
        becomes a level-0 non-tree edge.  Equivalent to, but much cheaper
        than, incremental insertion — :class:`IncrementalState` rebuilds
        through this path so engine construction stays linear.
        """
        if self._num_vertices or self._edges:
            raise ValueError("build() requires an empty structure")
        payload: Dict[Any, Tuple[int, int, int]] = {}
        for vertex, is_core, demand, revenue in vertices:
            if vertex in payload:
                raise ValueError(f"vertex {vertex!r} repeated in build()")
            payload[vertex] = (1 if is_core else 0, _to_fixed(demand), _to_fixed(revenue))
        adjacency: Dict[Any, List[Any]] = {v: [] for v in payload}
        for u, v in edges:
            key = edge_key(u, v)
            if key in self._edges:
                raise ValueError(f"edge {key!r} repeated in build()")
            if u not in payload or v not in payload:
                raise ValueError(f"edge {key!r} references an unknown vertex")
            self._edges[key] = _Edge(u, v, key)
            adjacency[u].append(v)
            adjacency[v].append(u)

        # Create every vertex node up front, in payload iteration order: the
        # vmap's insertion order is the canonical member order components()
        # reports, and it must not depend on BFS tour shape.
        vmap = self._vnodes[0]
        for vertex, (core, demand, revenue) in payload.items():
            node = _EttNode(vertex=vertex)
            node.core, node.demand, node.revenue = core, demand, revenue
            _pull(node)
            vmap[vertex] = node

        visited: Dict[Any, bool] = {}
        tree_edges = 0
        for start in payload:
            if start in visited:
                continue
            visited[start] = True
            # BFS spanning tree; children lists follow adjacency order.
            children: Dict[Any, List[Any]] = {start: []}
            frontier = [start]
            while frontier:
                next_frontier = []
                for vertex in frontier:
                    for other in adjacency[vertex]:
                        if other in visited:
                            continue
                        visited[other] = True
                        children[other] = []
                        children[vertex].append(other)
                        next_frontier.append(other)
                frontier = next_frontier
            # Euler tour of the component as a flat node list (iterative DFS:
            # down-arc, child subtree, up-arc).
            tour: List[_EttNode] = [vmap[start]]
            stack: List[Tuple[Any, Any, int]] = [(start, None, 0)]
            while stack:
                vertex, parent, child_index = stack.pop()
                kids = children[vertex]
                if child_index < len(kids):
                    stack.append((vertex, parent, child_index + 1))
                    child = kids[child_index]
                    edge = self._edges[edge_key(vertex, child)]
                    edge.is_tree = True
                    down = _EttNode(arc=(vertex, child))
                    up = _EttNode(arc=(child, vertex))
                    pair = (down, up) if (vertex, child) == (edge.u, edge.v) else (up, down)
                    pair[0].istree = True  # s_istree lands in the balanced pull
                    edge.tree_arcs.append(pair)
                    tour.append(down)
                    tour.append(vmap[child])
                    stack.append((child, vertex, 0))
                    tree_edges += 1
                elif parent is not None:
                    edge = self._edges[edge_key(parent, vertex)]
                    pair = edge.tree_arcs[0]
                    tour.append(pair[1] if pair[0].arc == (parent, vertex) else pair[0])
            _build_balanced(tour, 0, len(tour) - 1, None)
        for edge in self._edges.values():
            if not edge.is_tree:
                self._nontree_add(0, edge)
        self._num_vertices = len(payload)
        KERNEL_COUNTERS.dynconn_tree_ops += tree_edges

    # -- mutation ------------------------------------------------------
    def insert(self, u: Any, v: Any) -> Tuple:
        """Insert edge (u, v) at level 0; returns an undo token.

        Amortized O(log n): one ETT link when the edge joins two components,
        one adjacency append otherwise.
        """
        key = edge_key(u, v)
        if key in self._edges:
            raise ValueError(f"edge {key!r} already present")
        if u not in self._vnodes[0] or v not in self._vnodes[0]:
            raise ValueError(f"edge {key!r} references an unknown vertex")
        edge = _Edge(u, v, key)
        self._edges[key] = edge
        if self.connected(u, v):
            self._nontree_add(0, edge)
            return ("insert", edge, False)
        edge.is_tree = True
        self._ett_link(0, edge)
        return ("insert", edge, True)

    def delete(self, u: Any, v: Any) -> Tuple:
        """Delete edge (u, v); returns an undo token.

        A non-tree edge is an O(log n) adjacency removal.  A tree edge of
        level ``l`` is cut from ``F_0 … F_l`` and followed by the HDT
        replacement search; every primitive step lands in the token's journal
        so :meth:`undo` can replay exact inverses.
        """
        key = edge_key(u, v)
        edge = self._edges.get(key)
        if edge is None:
            raise ValueError(f"edge {key!r} not present")
        del self._edges[key]
        if not edge.is_tree:
            self._nontree_remove(edge.level, edge)
            return ("delete_nontree", edge)
        journal: List[Tuple] = []
        level = edge.level
        for i in range(level, -1, -1):
            self._ett_cut(i, edge)
            journal.append(("cut", edge, i))
        edge.is_tree = False
        KERNEL_COUNTERS.dynconn_replacement_searches += 1
        for i in range(level, -1, -1):
            if self._search_replacement(i, edge.u, edge.v, journal) is not None:
                break
        return ("delete_tree", edge, level, journal)

    def undo(self, token: Tuple) -> None:
        """Replay a mutation's primitive journal in reverse (strict LIFO)."""
        kind = token[0]
        if kind == "insert":
            _, edge, was_tree = token
            if was_tree:
                self._ett_cut(0, edge)
                edge.is_tree = False
            else:
                self._nontree_remove(0, edge)
            del self._edges[edge.key]
        elif kind == "delete_nontree":
            _, edge = token
            self._nontree_add(edge.level, edge)
            self._edges[edge.key] = edge
        elif kind == "delete_tree":
            _, edge, level, journal = token
            for op in reversed(journal):
                name = op[0]
                if name == "cut":
                    _, cut_edge, i = op
                    cut_edge.is_tree = True
                    self._ett_link(i, cut_edge)
                elif name == "promote_tree":
                    _, tree_edge, i = op
                    self._ett_cut(i + 1, tree_edge)
                    tree_edge.level = i
                    self._set_istree(tree_edge.tree_arcs[i][0], True)
                elif name == "promote_nontree":
                    _, nt_edge, i = op
                    self._nontree_remove(i + 1, nt_edge)
                    nt_edge.level = i
                    self._nontree_add(i, nt_edge)
                elif name == "replace":
                    _, rep_edge, i = op
                    for j in range(i, -1, -1):
                        self._ett_cut(j, rep_edge)
                    rep_edge.is_tree = False
                    self._nontree_add(i, rep_edge)
                else:  # pragma: no cover - defensive
                    raise AssertionError(f"unknown journal op {name!r}")
            self._edges[edge.key] = edge
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unknown undo token {kind!r}")

    # -- HDT internals -------------------------------------------------
    def _level_vnode(self, level: int, vertex: Any) -> _EttNode:
        """The self-loop node of ``vertex`` in F_level (lazily created)."""
        self._ensure_level(level)
        vmap = self._vnodes[level]
        node = vmap.get(vertex)
        if node is None:
            node = _EttNode(vertex=vertex)
            vmap[vertex] = node
        return node

    def _ensure_level(self, level: int) -> None:
        while len(self._vnodes) <= level:
            self._vnodes.append({})
            self._nontree.append({})

    def _ett_link(self, level: int, edge: _Edge) -> None:
        """Link ``edge`` into forest F_level (creates its arc pair there)."""
        KERNEL_COUNTERS.dynconn_tree_ops += 1
        if len(edge.tree_arcs) != level:
            raise AssertionError(
                f"edge {edge.key!r}: linking level {level} with arcs present "
                f"for {len(edge.tree_arcs)} levels"
            )
        u, v = edge.u, edge.v
        nu = self._level_vnode(level, u)
        nv = self._level_vnode(level, v)
        arc_uv = _EttNode(arc=(u, v))
        arc_vu = _EttNode(arc=(v, u))
        if level == edge.level:
            arc_uv.istree = True
            _pull(arc_uv)
        edge.tree_arcs.append((arc_uv, arc_vu))
        tour_u = self._ett_reroot(nu)
        tour_v = self._ett_reroot(nv)
        _join(_join(_join(tour_u, arc_uv), tour_v), arc_vu)

    def _ett_cut(self, level: int, edge: _Edge) -> None:
        """Cut ``edge`` out of forest F_level (frees its arc pair there)."""
        KERNEL_COUNTERS.dynconn_tree_ops += 1
        if len(edge.tree_arcs) != level + 1:
            raise AssertionError(
                f"edge {edge.key!r}: cutting level {level} with arcs present "
                f"for {len(edge.tree_arcs)} levels"
            )
        arc_a, arc_b = edge.tree_arcs.pop()
        if not _precedes(arc_a, arc_b):
            arc_a, arc_b = arc_b, arc_a
        # Sequence = L · arc_a · M · arc_b · R.  M is one side's tour, L·R
        # (rejoined) the other's; the two arc nodes are discarded.
        before_a, _ = _split_before(arc_a)
        _split_after(arc_a)
        _split_before(arc_b)
        _, after_b = _split_after(arc_b)
        _join(before_a, after_b)

    def _ett_reroot(self, vnode: _EttNode) -> _EttNode:
        """Rotate the circular tour to start at ``vnode``; returns the root."""
        before, rest = _split_before(vnode)
        return _join(rest, before)

    def _set_istree(self, arc: _EttNode, value: bool) -> None:
        _splay(arc)
        arc.istree = value
        _pull(arc)

    def _set_nontree_flag(self, level: int, vertex: Any) -> None:
        node = self._level_vnode(level, vertex)
        value = bool(self._nontree[level].get(vertex))
        if node.nontree != value:
            _splay(node)
            node.nontree = value
            _pull(node)

    def _nontree_add(self, level: int, edge: _Edge) -> None:
        self._ensure_level(level)
        adj = self._nontree[level]
        for end in (edge.u, edge.v):
            bucket = adj.get(end)
            if bucket is None:
                adj[end] = bucket = {}
            bucket[edge.key] = edge
            self._set_nontree_flag(level, end)

    def _nontree_remove(self, level: int, edge: _Edge) -> None:
        adj = self._nontree[level]
        for end in (edge.u, edge.v):
            del adj[end][edge.key]
            self._set_nontree_flag(level, end)

    def _search_replacement(
        self, level: int, u: Any, v: Any, journal: List[Tuple]
    ) -> Optional[_Edge]:
        """One HDT level pass after cutting a tree edge between u and v.

        Promotes the smaller side's level-``level`` tree edges to
        ``level+1``, then scans its level-``level`` non-tree edges: the first
        one reaching the other side reconnects the forest (linked into
        ``F_0 … F_level``) and is returned; the rest are promoted.  Every
        primitive step is appended to ``journal`` for exact undo.
        """
        node_u = self._vnodes[level].get(u)
        node_v = self._vnodes[level].get(v)
        size_u = _bst_root(node_u).s_count if node_u is not None else 1
        size_v = _bst_root(node_v).s_count if node_v is not None else 1
        if size_v > size_u:
            v, node_v = u, node_u
        if node_v is None:
            # The smaller side is a lone vertex with no presence in F_level:
            # it has no level-`level` edges of either kind to offer.
            return None
        # Promote the smaller side's level-`level` tree edges: the side has
        # at most n/2^{level+1} vertices, so the HDT size invariant allows
        # them at level+1, and future searches at this level never rescan
        # them.  This also makes the side connected in F_{level+1}, which is
        # what lets its non-tree edges promote safely below.
        root = _bst_root(node_v)
        while root.s_istree:
            arc = root
            while not arc.istree:
                left = arc.left
                if left is not None and left.s_istree:
                    arc = left
                else:
                    arc = arc.right
            tree_edge = self._edges[edge_key(*arc.arc)]
            self._set_istree(tree_edge.tree_arcs[level][0], False)
            tree_edge.level = level + 1
            self._ett_link(level + 1, tree_edge)
            journal.append(("promote_tree", tree_edge, level))
            root = _bst_root(node_v)
        # Scan the side's level-`level` non-tree edges.
        while root.s_nontree:
            vertex_node = root
            while not vertex_node.nontree:
                left = vertex_node.left
                if left is not None and left.s_nontree:
                    vertex_node = left
                else:
                    vertex_node = vertex_node.right
            vertex = vertex_node.vertex
            bucket = self._nontree[level].get(vertex, {})
            for key in list(bucket):
                nt_edge = bucket.get(key)
                if nt_edge is None:
                    continue
                other = nt_edge.v if nt_edge.u == vertex else nt_edge.u
                other_node = self._vnodes[level].get(other)
                if other_node is not None and _same_tree(
                    other_node, self._vnodes[level][vertex]
                ):
                    # Both endpoints inside the shrunken side: this edge can
                    # never reconnect at this level again — promote it.
                    self._nontree_remove(level, nt_edge)
                    nt_edge.level = level + 1
                    self._nontree_add(level + 1, nt_edge)
                    journal.append(("promote_nontree", nt_edge, level))
                else:
                    # Far endpoint is across the split: reconnect.  The edge
                    # keeps its level and becomes a tree edge of F_0 … F_level.
                    self._nontree_remove(level, nt_edge)
                    nt_edge.is_tree = True
                    for j in range(0, level + 1):
                        self._ett_link(j, nt_edge)
                    journal.append(("replace", nt_edge, level))
                    return nt_edge
            root = _bst_root(node_v)
        return None


def _build_balanced(
    tour: List[_EttNode], lo: int, hi: int, parent: Optional[_EttNode]
) -> Optional[_EttNode]:
    """Perfectly balanced BST over ``tour[lo..hi]`` with bottom-up pulls."""
    if lo > hi:
        return None
    mid = (lo + hi) // 2
    node = tour[mid]
    node.parent = parent
    node.left = _build_balanced(tour, lo, mid - 1, node)
    node.right = _build_balanced(tour, mid + 1, hi, node)
    _pull(node)
    return node
