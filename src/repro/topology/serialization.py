"""Serialization and interoperability for :class:`~repro.topology.graph.Topology`.

Supports round-tripping through plain dictionaries and JSON files, a simple
edge-list text format, and conversion to/from ``networkx`` graphs (networkx is
imported lazily so the core library does not depend on it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .graph import Topology
from .link import Link
from .node import Node


def topology_to_dict(topology: Topology) -> Dict[str, Any]:
    """Serialize a topology (nodes, links, metadata) to a plain dictionary."""
    return {
        "name": topology.name,
        "metadata": dict(topology.metadata),
        "nodes": [node.to_dict() for node in topology.nodes()],
        "links": [link.to_dict() for link in topology.links()],
    }


def topology_from_dict(data: Dict[str, Any]) -> Topology:
    """Reconstruct a topology from :func:`topology_to_dict` output."""
    topology = Topology(name=data.get("name", "topology"))
    topology.metadata = dict(data.get("metadata", {}))
    for node_data in data.get("nodes", []):
        topology.add_node_object(Node.from_dict(node_data))
    for link_data in data.get("links", []):
        topology.add_link_object(Link.from_dict(link_data))
    return topology


def save_json(topology: Topology, path: Union[str, Path]) -> None:
    """Write a topology to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(topology_to_dict(topology), indent=2, default=str))


def load_json(path: Union[str, Path]) -> Topology:
    """Read a topology from a JSON file written by :func:`save_json`."""
    data = json.loads(Path(path).read_text())
    return topology_from_dict(data)


def to_edge_list(topology: Topology) -> List[str]:
    """Render the topology as ``u v length capacity`` text lines.

    Node identifiers are converted with ``str``; capacity ``None`` is rendered
    as ``inf``.  Useful for feeding external tools.
    """
    lines = []
    for link in topology.links():
        capacity = "inf" if link.capacity is None else f"{link.capacity:g}"
        lines.append(f"{link.source} {link.target} {link.length:.6f} {capacity}")
    return lines


def save_edge_list(topology: Topology, path: Union[str, Path]) -> None:
    """Write the edge-list rendering to a text file."""
    Path(path).write_text("\n".join(to_edge_list(topology)) + "\n")


def to_networkx(topology: Topology):
    """Convert to a ``networkx.Graph`` with node/link annotations as attributes.

    Raises:
        ImportError: if networkx is not installed.
    """
    import networkx as nx

    graph = nx.Graph(name=topology.name)
    for node in topology.nodes():
        graph.add_node(
            node.node_id,
            role=node.role.value,
            location=node.location,
            capacity=node.capacity,
            demand=node.demand,
            city=node.city,
        )
    for link in topology.links():
        graph.add_edge(
            link.source,
            link.target,
            capacity=link.capacity,
            length=link.length,
            cable=link.cable,
            install_cost=link.install_cost,
            usage_cost=link.usage_cost,
            load=link.load,
        )
    return graph


def from_networkx(graph, name: str = "networkx-import") -> Topology:
    """Convert a ``networkx.Graph`` into a :class:`Topology`.

    Recognized node attributes: ``location``, ``capacity``, ``demand``,
    ``city``.  Recognized edge attributes: ``capacity``, ``length``,
    ``cable``, ``install_cost``, ``usage_cost``, ``load``.  Unknown attributes
    are preserved in the ``attributes`` dictionaries.
    """
    from .node import NodeRole

    topology = Topology(name=name)
    for node_id, attrs in graph.nodes(data=True):
        known = {"role", "location", "capacity", "demand", "city"}
        extra = {k: v for k, v in attrs.items() if k not in known}
        role_value = attrs.get("role", NodeRole.GENERIC.value)
        try:
            role = NodeRole(role_value)
        except ValueError:
            role = NodeRole.GENERIC
        topology.add_node(
            node_id,
            role=role,
            location=attrs.get("location"),
            capacity=attrs.get("capacity"),
            demand=attrs.get("demand", 0.0),
            city=attrs.get("city"),
            **extra,
        )
    for u, v, attrs in graph.edges(data=True):
        if u == v:
            continue
        known = {"capacity", "length", "cable", "install_cost", "usage_cost", "load"}
        extra = {k: v2 for k, v2 in attrs.items() if k not in known}
        topology.add_link(
            u,
            v,
            capacity=attrs.get("capacity"),
            length=attrs.get("length"),
            cable=attrs.get("cable"),
            install_cost=attrs.get("install_cost", 0.0),
            usage_cost=attrs.get("usage_cost", 0.0),
            load=attrs.get("load", 0.0),
            **extra,
        )
    return topology
