"""Link model for annotated network topologies.

Links carry the resource-capacity annotations required by the paper's notion
of topology (connectivity plus capacity): installed cable type, capacity,
length, and cost components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


def edge_key(u: Any, v: Any) -> Tuple[Any, Any]:
    """Return a canonical, order-independent key for an undirected edge.

    The two endpoints are ordered by ``repr`` so that ``edge_key(a, b)`` and
    ``edge_key(b, a)`` always produce the same tuple even when the node
    identifiers are of mixed (non-comparable) types.
    """
    if u == v:
        raise ValueError(f"self-loops are not allowed (node {u!r})")
    return (u, v) if repr(u) <= repr(v) else (v, u)


@dataclass
class Link:
    """A single undirected, capacity-annotated link.

    Attributes:
        source: One endpoint identifier.
        target: The other endpoint identifier.
        capacity: Installed capacity (e.g. Mbps); ``None`` means unbounded.
        length: Physical length (same units as node locations).
        cable: Name of the installed cable type, if any.
        install_cost: Fixed cost paid to install the link.
        usage_cost: Marginal cost per unit of carried traffic.
        load: Traffic currently routed over the link.
        attributes: Free-form extra annotations.
    """

    source: Any
    target: Any
    capacity: Optional[float] = None
    length: float = 0.0
    cable: Optional[str] = None
    install_cost: float = 0.0
    usage_cost: float = 0.0
    load: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError(f"self-loops are not allowed (node {self.source!r})")
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {self.capacity}")
        if self.length < 0:
            raise ValueError(f"link length must be non-negative, got {self.length}")
        if self.install_cost < 0 or self.usage_cost < 0:
            raise ValueError("link costs must be non-negative")
        if self.load < 0:
            raise ValueError(f"link load must be non-negative, got {self.load}")

    @property
    def key(self) -> Tuple[Any, Any]:
        """Canonical undirected edge key."""
        return edge_key(self.source, self.target)

    @property
    def endpoints(self) -> Tuple[Any, Any]:
        """The two endpoints as given at construction time."""
        return (self.source, self.target)

    def other_end(self, node_id: Any) -> Any:
        """Return the endpoint opposite to ``node_id``.

        Raises:
            ValueError: if ``node_id`` is not an endpoint of this link.
        """
        if node_id == self.source:
            return self.target
        if node_id == self.target:
            return self.source
        raise ValueError(f"node {node_id!r} is not an endpoint of {self.key}")

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use; 0.0 when capacity is unbounded."""
        if self.capacity is None or self.capacity == 0:
            return 0.0
        return self.load / self.capacity

    @property
    def residual_capacity(self) -> float:
        """Capacity still available; ``inf`` when capacity is unbounded."""
        if self.capacity is None:
            return float("inf")
        return max(0.0, self.capacity - self.load)

    def total_cost(self) -> float:
        """Installation cost plus usage cost for the current load."""
        return self.install_cost + self.usage_cost * self.load

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the link to a plain dictionary."""
        return {
            "source": self.source,
            "target": self.target,
            "capacity": self.capacity,
            "length": self.length,
            "cable": self.cable,
            "install_cost": self.install_cost,
            "usage_cost": self.usage_cost,
            "load": self.load,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Link":
        """Reconstruct a link from :meth:`to_dict` output."""
        return cls(
            source=data["source"],
            target=data["target"],
            capacity=data.get("capacity"),
            length=data.get("length", 0.0),
            cable=data.get("cable"),
            install_cost=data.get("install_cost", 0.0),
            usage_cost=data.get("usage_cost", 0.0),
            load=data.get("load", 0.0),
            attributes=dict(data.get("attributes", {})),
        )
