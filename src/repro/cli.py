"""Command-line interface for the topology generation framework.

Exposes the main generators and the metric/validation suites without writing
any Python::

    python -m repro.cli generate fkp --nodes 500 --alpha 4.0 -o fkp.json
    python -m repro.cli generate access --customers 300 --algorithm meyerson -o metro.json
    python -m repro.cli generate isp --cities 20 -o isp.json
    python -m repro.cli generate baseline --model barabasi-albert --nodes 500 -o ba.json
    python -m repro.cli metrics fkp.json metro.json ba.json
    python -m repro.cli validate metro.json --target router-access
    python -m repro.cli scenarios
    python -m repro.cli run E1 --jobs 4 --smoke
    python -m repro.cli run all --jobs 8

Topologies are written/read as the JSON format of
:mod:`repro.topology.serialization`.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .core.framework import BUY_AT_BULK_SOLVERS, HOTGenerator
from .generators import available_generators, make_generator
from .metrics.comparison import compare_topologies, report_table
from .metrics.validation import BUILTIN_TARGETS, validate_topology
from .topology.serialization import load_json, save_json
from .workloads.scenarios import all_scenarios


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Optimization-driven Internet topology generation (HotNets 2003 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a topology and save it as JSON")
    generate_sub = generate.add_subparsers(dest="model", required=True)

    fkp = generate_sub.add_parser("fkp", help="FKP tradeoff tree (paper §3.1)")
    fkp.add_argument("--nodes", type=int, default=1000)
    fkp.add_argument("--alpha", type=float, default=4.0)
    fkp.add_argument("--seed", type=int, default=None)
    fkp.add_argument("-o", "--output", required=True)

    access = generate_sub.add_parser("access", help="buy-at-bulk access tree (paper §4)")
    access.add_argument("--customers", type=int, default=200)
    access.add_argument("--algorithm", choices=sorted(BUY_AT_BULK_SOLVERS), default="meyerson")
    access.add_argument("--clustered", action="store_true")
    access.add_argument("--seed", type=int, default=None)
    access.add_argument("-o", "--output", required=True)

    isp = generate_sub.add_parser("isp", help="single-ISP router-level topology (paper §2.2)")
    isp.add_argument("--cities", type=int, default=20)
    isp.add_argument("--objective", choices=["cost", "profit"], default="cost")
    isp.add_argument("--customers-per-city", type=float, default=6.0)
    isp.add_argument("--seed", type=int, default=None)
    isp.add_argument("-o", "--output", required=True)

    internet = generate_sub.add_parser("internet", help="multi-ISP AS graph (paper §2.3)")
    internet.add_argument("--isps", type=int, default=30)
    internet.add_argument("--cities", type=int, default=40)
    internet.add_argument("--seed", type=int, default=None)
    internet.add_argument("-o", "--output", required=True)

    baseline = generate_sub.add_parser("baseline", help="descriptive baseline generator")
    baseline.add_argument("--generator", choices=available_generators(), required=True)
    baseline.add_argument("--nodes", type=int, default=1000)
    baseline.add_argument("--seed", type=int, default=None)
    baseline.add_argument("-o", "--output", required=True)

    metrics = subparsers.add_parser("metrics", help="evaluate the metric suite on saved topologies")
    metrics.add_argument("paths", nargs="+", help="topology JSON files")
    metrics.add_argument("--sample-size", type=int, default=50)
    metrics.add_argument("--spectrum", action="store_true", help="include eigenvalue summaries")

    validate = subparsers.add_parser("validate", help="validate a topology against a reference target")
    validate.add_argument("path", help="topology JSON file")
    validate.add_argument("--target", choices=sorted(BUILTIN_TARGETS), required=True)
    validate.add_argument("--sample-size", type=int, default=50)

    growth = subparsers.add_parser("growth", help="simulate incremental multi-period build-out")
    growth.add_argument("--periods", type=int, default=8)
    growth.add_argument("--initial-customers", type=int, default=40)
    growth.add_argument("--customers-per-period", type=int, default=20)
    growth.add_argument("--budget", type=float, default=float("inf"))
    growth.add_argument("--seed", type=int, default=None)
    growth.add_argument("-o", "--output", default=None, help="optionally save the final topology as JSON")

    render = subparsers.add_parser("render", help="render a saved topology (or its degree CCDF) as SVG")
    render.add_argument("path", help="topology JSON file")
    render.add_argument("-o", "--output", required=True, help="output SVG file")
    render.add_argument("--ccdf", action="store_true", help="render the degree CCDF instead of the layout")
    render.add_argument("--linear-x", action="store_true", help="linear (not log) degree axis for the CCDF")

    subparsers.add_parser("scenarios", help="list the paper's experiments (E1–E13)")

    run = subparsers.add_parser(
        "run",
        help="run experiment sweeps through the orchestration engine",
        description=(
            "Expand a scenario's sweep grid into tasks, fan them out over worker "
            "processes with deterministic per-task seeds (parallel and serial runs "
            "are bit-identical), cache completed points content-addressed under "
            "RESULTS/<scenario>/, and print the experiment's report tables."
        ),
    )
    run.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (E1..E13) or 'all' (required unless --list)",
    )
    run.add_argument("--jobs", type=int, default=1, help="worker processes (default 1)")
    run.add_argument(
        "--smoke", action="store_true", help="reduced sweep sizes for quick CI runs"
    )
    run.add_argument(
        "--force", action="store_true", help="recompute every point, ignoring the cache"
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help=(
            "continue an interrupted sweep: completed points load from the store "
            "as cache hits (reported as resumed); incompatible with --force"
        ),
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per task after a failure/worker death/timeout (default 2)",
    )
    run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help=(
            "per-task wall-clock budget in seconds; an overrunning attempt is "
            "killed and retried (default: no timeout)"
        ),
    )
    run.add_argument(
        "--results-dir",
        default="RESULTS",
        help="result store root (default RESULTS/); per-task records and manifests",
    )
    run.add_argument(
        "--no-check", action="store_true", help="skip the experiment acceptance gates"
    )
    run.add_argument(
        "--list", action="store_true", help="list runnable experiments and exit"
    )
    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = HOTGenerator(seed=getattr(args, "seed", None))
    if args.model == "fkp":
        topology = generator.generate_fkp_tree(args.nodes, args.alpha)
    elif args.model == "access":
        topology = generator.generate_access_tree(
            args.customers, algorithm=args.algorithm, clustered=args.clustered
        ).topology
    elif args.model == "isp":
        topology = generator.generate_isp(
            num_cities=args.cities,
            objective=args.objective,
            customers_per_city_scale=args.customers_per_city,
        ).topology
    elif args.model == "internet":
        topology = generator.generate_internet(
            num_isps=args.isps, num_cities=args.cities
        ).as_graph
    elif args.model == "baseline":
        topology = make_generator(args.generator).generate(args.nodes, seed=args.seed)
    else:  # pragma: no cover - argparse prevents this
        raise ValueError(f"unknown model {args.model!r}")
    save_json(topology, args.output)
    print(f"wrote {topology.num_nodes} nodes / {topology.num_links} links to {args.output}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    topologies = {path: load_json(path) for path in args.paths}
    reports = compare_topologies(
        topologies, include_spectrum=args.spectrum, sample_size=args.sample_size
    )
    print(report_table(reports))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    topology = load_json(args.path)
    target = BUILTIN_TARGETS[args.target]
    report = validate_topology(topology, target, sample_size=args.sample_size)
    print("\n".join(report.summary_lines()))
    print(f"overall: {'PASS' if report.passed else 'FAIL'} ({report.pass_fraction:.0%} of checks)")
    return 0 if report.passed else 1


def _cmd_growth(args: argparse.Namespace) -> int:
    from .core.evolution import simulate_growth

    trace = simulate_growth(
        periods=args.periods,
        initial_customers=args.initial_customers,
        customers_per_period=args.customers_per_period,
        seed=args.seed,
        budget_per_period=args.budget,
    )
    columns = [
        "period", "num_customers", "deferred_customers", "num_links",
        "capital_spent", "upgrade_count", "max_degree", "tail_verdict",
    ]
    print("  ".join(f"{c:>18}" for c in columns))
    for row in trace.as_rows():
        print("  ".join(f"{str(round(row[c], 1) if isinstance(row[c], float) else row[c]):>18}" for c in columns))
    print(f"total capital spent: {trace.total_capital():.1f}")
    if args.output:
        save_json(trace.topology, args.output)
        print(f"wrote final topology to {args.output}")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from .visualization import save_ccdf_svg, save_topology_svg

    topology = load_json(args.path)
    if args.ccdf:
        save_ccdf_svg({topology.name: topology}, args.output, log_x=not args.linear_x)
    else:
        save_topology_svg(topology, args.output)
    print(f"wrote {args.output}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .experiments import available_experiments, get_suite, run_experiment
    from .experiments.reporting import print_experiment

    known = available_experiments()
    if args.list:
        for experiment_id in known:
            print(f"{experiment_id}: {get_suite(experiment_id).title}")
        return 0
    if not args.experiments:
        print("no experiments given (try 'all' or --list)", file=sys.stderr)
        return 2
    if args.resume and args.force:
        print("--resume and --force are mutually exclusive", file=sys.stderr)
        return 2
    requested: List[str] = []
    for name in args.experiments:
        if name.lower() == "all":
            requested.extend(known)
        elif name in known:
            requested.append(name)
        else:
            print(f"unknown experiment {name!r}; known: {', '.join(known)}", file=sys.stderr)
            return 2
    failed: List[str] = []
    degraded: List[str] = []
    for experiment_id in dict.fromkeys(requested):  # de-dup, keep order
        # Gates run after the tables are printed (check=False here), so a
        # failing experiment still shows its report before the FAIL verdict.
        # strict=False: a degraded sweep (quarantined tasks) still writes its
        # partial manifest and prints its accounting; the CLI maps it to a
        # distinct exit code instead of a traceback.
        result = run_experiment(
            experiment_id,
            smoke=args.smoke,
            jobs=args.jobs,
            results_dir=args.results_dir,
            force=args.force,
            check=False,
            max_retries=args.max_retries,
            task_timeout=args.task_timeout,
            resume=args.resume,
            strict=False,
        )
        # emit=False: the CLI prints tables but leaves the benchmarks/results/
        # text artifacts to the benchmark scripts.
        print_experiment(result, emit=False)
        if result.manifest_path is not None:
            print(f"[{experiment_id}] manifest: {result.manifest_path}")
        if result.degraded:
            degraded.append(experiment_id)
            for digest, error in sorted(result.report.quarantined.items()):
                print(f"[{experiment_id}] quarantined {digest[:16]}: {error}", file=sys.stderr)
            print(
                f"[{experiment_id}] DEGRADED: {len(result.report.quarantined)} task(s) "
                "quarantined; manifest flagged, gates skipped",
                file=sys.stderr,
            )
            continue
        if not args.no_check:
            suite = get_suite(experiment_id)
            if suite.check is not None:
                try:
                    suite.check(result.tables, args.smoke)
                    result.gates_checked = True
                    print(f"[{experiment_id}] gates: PASS")
                except AssertionError as error:
                    failed.append(experiment_id)
                    detail = f": {error}" if str(error) else ""
                    print(f"[{experiment_id}] gates: FAIL{detail}", file=sys.stderr)
    if degraded:
        # Distinct from gate failures (1) and usage errors (2): the sweep
        # finished, but without its quarantined tasks.
        print(f"degraded sweeps: {', '.join(degraded)}", file=sys.stderr)
        return 3
    if failed:
        print(f"gate failures: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


def _cmd_scenarios() -> int:
    for scenario in all_scenarios():
        print(f"{scenario.experiment_id}: {scenario.title}")
        print(f"    claim: {scenario.paper_claim}")
        print(f"    parameters: {scenario.parameters}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "growth":
        return _cmd_growth(args)
    if args.command == "render":
        return _cmd_render(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "scenarios":
        return _cmd_scenarios()
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
