"""Dependency-free SVG rendering of topologies and degree distributions.

The library deliberately avoids heavyweight plotting dependencies; this module
produces self-contained SVG documents good enough to eyeball a generated
topology (nodes at their geographic locations, links colored by installed
cable) and to inspect degree CCDFs on log-log or log-linear axes — the two
pictures that matter for the paper's claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..metrics.degree import topology_degree_ccdf
from ..topology.graph import Topology
from ..topology.node import NodeRole


#: Fill colors per node role (hex RGB).
ROLE_COLORS: Dict[NodeRole, str] = {
    NodeRole.CORE: "#c0392b",
    NodeRole.BACKBONE: "#d35400",
    NodeRole.PEERING: "#8e44ad",
    NodeRole.DISTRIBUTION: "#2980b9",
    NodeRole.ACCESS: "#16a085",
    NodeRole.CUSTOMER: "#7f8c8d",
    NodeRole.GENERIC: "#2c3e50",
}

#: Node radii per role (core routers drawn larger than customer sites).
ROLE_RADII: Dict[NodeRole, float] = {
    NodeRole.CORE: 6.0,
    NodeRole.BACKBONE: 5.0,
    NodeRole.PEERING: 5.0,
    NodeRole.DISTRIBUTION: 4.0,
    NodeRole.ACCESS: 3.5,
    NodeRole.CUSTOMER: 2.0,
    NodeRole.GENERIC: 2.5,
}

#: A small qualitative palette used to color links by cable type.
CABLE_PALETTE: Tuple[str, ...] = (
    "#bdc3c7",
    "#95a5a6",
    "#3498db",
    "#9b59b6",
    "#e67e22",
    "#e74c3c",
    "#1abc9c",
)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


@dataclass
class SVGCanvas:
    """Minimal SVG document builder."""

    width: float
    height: float
    elements: List[str] = field(default_factory=list)
    background: str = "#ffffff"

    def add(self, element: str) -> None:
        """Append a raw SVG element."""
        self.elements.append(element)

    def line(self, x1: float, y1: float, x2: float, y2: float, color: str = "#888888",
             width: float = 1.0, opacity: float = 1.0) -> None:
        """Add a line segment."""
        self.add(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{color}" stroke-width="{width:.2f}" stroke-opacity="{opacity:.2f}" />'
        )

    def circle(self, cx: float, cy: float, radius: float, color: str = "#333333",
               title: Optional[str] = None) -> None:
        """Add a filled circle, optionally with a hover tooltip."""
        tooltip = f"<title>{_escape(title)}</title>" if title else ""
        self.add(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{radius:.2f}" fill="{color}">'
            f"{tooltip}</circle>"
        )

    def text(self, x: float, y: float, content: str, size: float = 12.0,
             color: str = "#333333", anchor: str = "start") -> None:
        """Add a text label."""
        self.add(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size:.1f}" fill="{color}" '
            f'text-anchor="{anchor}" font-family="sans-serif">{_escape(content)}</text>'
        )

    def render(self) -> str:
        """Return the complete SVG document."""
        body = "\n  ".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width:.0f}" '
            f'height="{self.height:.0f}" viewBox="0 0 {self.width:.0f} {self.height:.0f}">\n'
            f'  <rect width="100%" height="100%" fill="{self.background}" />\n'
            f"  {body}\n</svg>\n"
        )


def _location_transform(
    topology: Topology, width: float, height: float, margin: float
) -> Dict[object, Tuple[float, float]]:
    """Map node locations into canvas coordinates (missing locations on a circle)."""
    located = [n for n in topology.nodes() if n.location is not None]
    positions: Dict[object, Tuple[float, float]] = {}
    if located:
        xs = [n.location[0] for n in located]
        ys = [n.location[1] for n in located]
        min_x, max_x = min(xs), max(xs)
        min_y, max_y = min(ys), max(ys)
        span_x = (max_x - min_x) or 1.0
        span_y = (max_y - min_y) or 1.0
        for node in located:
            x = margin + (node.location[0] - min_x) / span_x * (width - 2 * margin)
            # SVG y grows downward; flip so north stays up.
            y = height - margin - (node.location[1] - min_y) / span_y * (height - 2 * margin)
            positions[node.node_id] = (x, y)
    unlocated = [n for n in topology.nodes() if n.location is None]
    if unlocated:
        center_x, center_y = width / 2.0, height / 2.0
        radius = min(width, height) / 2.0 - margin
        for index, node in enumerate(unlocated):
            angle = 2.0 * math.pi * index / len(unlocated)
            positions[node.node_id] = (
                center_x + radius * math.cos(angle),
                center_y + radius * math.sin(angle),
            )
    return positions


def topology_to_svg(
    topology: Topology,
    width: float = 800.0,
    height: float = 600.0,
    margin: float = 30.0,
    title: Optional[str] = None,
    link_width_by_load: bool = True,
) -> str:
    """Render a topology as an SVG document string.

    Nodes are placed at their geographic locations (nodes without locations
    are arranged on a circle), colored by role; links are colored by installed
    cable type and optionally widened with carried load.
    """
    if topology.num_nodes == 0:
        raise ValueError("cannot render an empty topology")
    canvas = SVGCanvas(width=width, height=height)
    positions = _location_transform(topology, width, height, margin)

    cable_names = sorted({link.cable for link in topology.links() if link.cable})
    cable_colors = {
        name: CABLE_PALETTE[index % len(CABLE_PALETTE)]
        for index, name in enumerate(cable_names)
    }
    max_load = max((link.load for link in topology.links()), default=0.0)

    for link in topology.links():
        x1, y1 = positions[link.source]
        x2, y2 = positions[link.target]
        color = cable_colors.get(link.cable, "#bbbbbb")
        stroke = 1.0
        if link_width_by_load and max_load > 0 and link.load > 0:
            stroke = 1.0 + 3.0 * (link.load / max_load)
        canvas.line(x1, y1, x2, y2, color=color, width=stroke, opacity=0.8)

    for node in topology.nodes():
        x, y = positions[node.node_id]
        canvas.circle(
            x,
            y,
            ROLE_RADII.get(node.role, 2.5),
            color=ROLE_COLORS.get(node.role, "#2c3e50"),
            title=f"{node.node_id} ({node.role.value}, degree {topology.degree(node.node_id)})",
        )

    canvas.text(margin, 20.0, title or topology.name, size=16.0)
    legend_y = 20.0
    for index, name in enumerate(cable_names):
        canvas.text(
            width - margin - 120.0,
            legend_y + index * 16.0,
            name,
            size=11.0,
            color=cable_colors[name],
        )
    return canvas.render()


def save_topology_svg(topology: Topology, path, **kwargs) -> None:
    """Render a topology and write the SVG to ``path``."""
    from pathlib import Path

    Path(path).write_text(topology_to_svg(topology, **kwargs))


def ccdf_to_svg(
    series: Dict[str, Sequence[Tuple[int, float]]],
    width: float = 640.0,
    height: float = 480.0,
    margin: float = 50.0,
    log_x: bool = True,
    title: str = "Degree CCDF",
) -> str:
    """Render one or more degree CCDFs as an SVG scatter/step chart.

    Args:
        series: Mapping from label to CCDF points ``(degree, probability)``.
        log_x: Log-scale the degree axis (log-log view highlights power laws);
            the probability axis is always log-scaled.
    """
    if not series:
        raise ValueError("at least one CCDF series is required")
    canvas = SVGCanvas(width=width, height=height)

    def x_value(k: int) -> float:
        return math.log10(k) if log_x else float(k)

    all_points = [(k, p) for points in series.values() for k, p in points if p > 0 and k > 0]
    if not all_points:
        raise ValueError("CCDF series contain no positive points")
    min_x = min(x_value(k) for k, _ in all_points)
    max_x = max(x_value(k) for k, _ in all_points)
    min_y = min(math.log10(p) for _, p in all_points)
    max_y = 0.0
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0

    def to_canvas(k: int, p: float) -> Tuple[float, float]:
        x = margin + (x_value(k) - min_x) / span_x * (width - 2 * margin)
        y = height - margin - (math.log10(p) - min_y) / span_y * (height - 2 * margin)
        return x, y

    # Axes.
    canvas.line(margin, height - margin, width - margin, height - margin, color="#333333", width=1.5)
    canvas.line(margin, margin, margin, height - margin, color="#333333", width=1.5)
    canvas.text(width / 2, height - 10, "degree" + (" (log)" if log_x else ""), anchor="middle")
    canvas.text(15, height / 2, "P(D >= k) (log)", anchor="middle")
    canvas.text(margin, 25, title, size=16.0)

    palette = ("#c0392b", "#2980b9", "#27ae60", "#8e44ad", "#e67e22", "#16a085")
    for index, (label, points) in enumerate(series.items()):
        color = palette[index % len(palette)]
        previous: Optional[Tuple[float, float]] = None
        for k, p in points:
            if p <= 0 or k <= 0:
                continue
            x, y = to_canvas(k, p)
            canvas.circle(x, y, 2.5, color=color, title=f"{label}: P(D>={k}) = {p:.4f}")
            if previous is not None:
                canvas.line(previous[0], previous[1], x, y, color=color, width=1.0, opacity=0.6)
            previous = (x, y)
        canvas.text(width - margin - 150.0, margin + index * 16.0, label, size=12.0, color=color)
    return canvas.render()


def degree_ccdf_svg(
    topologies: Dict[str, Topology],
    log_x: bool = True,
    title: str = "Degree CCDF",
    **kwargs,
) -> str:
    """Convenience wrapper: compute CCDFs of topologies and render them."""
    series = {name: topology_degree_ccdf(topo) for name, topo in topologies.items()}
    return ccdf_to_svg(series, log_x=log_x, title=title, **kwargs)


def save_ccdf_svg(topologies: Dict[str, Topology], path, **kwargs) -> None:
    """Render degree CCDFs of topologies and write the SVG to ``path``."""
    from pathlib import Path

    Path(path).write_text(degree_ccdf_svg(topologies, **kwargs))
