"""Dependency-free SVG visualization of topologies and degree distributions."""

from .svg import (
    CABLE_PALETTE,
    ROLE_COLORS,
    ROLE_RADII,
    SVGCanvas,
    ccdf_to_svg,
    degree_ccdf_svg,
    save_ccdf_svg,
    save_topology_svg,
    topology_to_svg,
)

__all__ = [
    "CABLE_PALETTE",
    "ROLE_COLORS",
    "ROLE_RADII",
    "SVGCanvas",
    "ccdf_to_svg",
    "degree_ccdf_svg",
    "save_ccdf_svg",
    "save_topology_svg",
    "topology_to_svg",
]
