"""Path selection for traffic routing over annotated topologies.

Routing is a substrate of the evaluation, not a contribution of the paper:
backbone provisioning (E4) and utilization analysis need demand routed over
shortest paths so that link loads (and hence cable choices and costs) can be
computed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..optimization.shortest_path import dijkstra, reconstruct_path
from ..topology.graph import Topology
from ..topology.link import Link


#: Weight functions selectable by name.
WEIGHT_FUNCTIONS: Dict[str, Callable[[Link], float]] = {
    "length": lambda link: link.length if link.length > 0 else 1.0,
    "hops": lambda link: 1.0,
    "inverse-capacity": lambda link: (
        1.0 / link.capacity if link.capacity else 1.0
    ),
}


class PathCache:
    """Caches single-source shortest-path computations for repeated queries."""

    def __init__(self, topology: Topology, weight: Callable[[Link], float]) -> None:
        self._topology = topology
        self._weight = weight
        self._cache: Dict[Any, Tuple[Dict[Any, float], Dict[Any, Any]]] = {}

    def path(self, source: Any, target: Any) -> Optional[List[Any]]:
        """Shortest path between two nodes, or ``None`` when unreachable."""
        if source not in self._cache:
            self._cache[source] = dijkstra(self._topology, source, self._weight)
        distances, predecessors = self._cache[source]
        if target not in distances:
            return None
        return reconstruct_path(predecessors, source, target)

    def distance(self, source: Any, target: Any) -> float:
        """Shortest-path distance, ``inf`` when unreachable."""
        if source not in self._cache:
            self._cache[source] = dijkstra(self._topology, source, self._weight)
        distances, _ = self._cache[source]
        return distances.get(target, float("inf"))

    def invalidate(self) -> None:
        """Clear the cache (call after the topology changes)."""
        self._cache.clear()


def resolve_weight(weight: Optional[str]) -> Callable[[Link], float]:
    """Look up a weight function by name (``None`` → length-based)."""
    if weight is None:
        return WEIGHT_FUNCTIONS["length"]
    if weight not in WEIGHT_FUNCTIONS:
        raise KeyError(
            f"unknown weight {weight!r}; available: {sorted(WEIGHT_FUNCTIONS)}"
        )
    return WEIGHT_FUNCTIONS[weight]


def shortest_path_between(
    topology: Topology, source: Any, target: Any, weight: Optional[str] = None
) -> Optional[List[Any]]:
    """One-off shortest path using a named weight function."""
    cache = PathCache(topology, resolve_weight(weight))
    return cache.path(source, target)


def k_shortest_node_disjoint_paths(
    topology: Topology, source: Any, target: Any, k: int = 2, weight: Optional[str] = None
) -> List[List[Any]]:
    """Up to ``k`` node-disjoint paths, found by iterative removal.

    A simple (not optimal) disjoint-path heuristic: find a shortest path,
    delete its interior nodes, repeat.  Used by the redundancy analysis in E7
    to check how many independent routes customers have after backup links are
    added.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    weight_function = resolve_weight(weight)
    working = topology.copy()
    paths: List[List[Any]] = []
    for _ in range(k):
        if not (working.has_node(source) and working.has_node(target)):
            break
        distances, predecessors = dijkstra(working, source, weight_function)
        if target not in distances:
            break
        path = reconstruct_path(predecessors, source, target)
        paths.append(path)
        for node in path[1:-1]:
            working.remove_node(node)
        if len(path) == 2:
            # Direct link: remove it so the next iteration finds another route.
            if working.has_link(source, target):
                working.remove_link(source, target)
    return paths
