"""Path selection for traffic routing over annotated topologies.

Routing is a substrate of the evaluation, not a contribution of the paper:
backbone provisioning (E4) and utilization analysis need demand routed over
shortest paths so that link loads (and hence cable choices and costs) can be
computed.

The cache in this module runs on the topology's compiled CSR view and is
keyed on ``Topology.version``: any structural mutation automatically
invalidates cached searches, so stale paths can no longer be served silently.
"""

from __future__ import annotations

from math import inf
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

from ..optimization.shortest_path import dijkstra, reconstruct_path
from ..topology.compiled import CompiledGraph, default_link_weight, dijkstra_indices
from ..topology.graph import Topology, TopologyError
from ..topology.link import Link


#: Weight functions selectable by name.
WEIGHT_FUNCTIONS: Dict[str, Callable[[Link], float]] = {
    "length": default_link_weight,
    "hops": lambda link: 1.0,
    "inverse-capacity": lambda link: (
        1.0 / link.capacity if link.capacity else 1.0
    ),
}


class RoutedPath(NamedTuple):
    """A shortest path with its link objects resolved once.

    Attributes:
        nodes: Node ids along the path (source first).
        links: The :class:`Link` object of every hop, aligned with the node
            pairs — resolved from the predecessor tree, not by per-hop lookup.
        keys: Canonical link key per hop (for load accounting dictionaries).
    """

    nodes: List[Any]
    links: List[Link]
    keys: List[Tuple[Any, Any]]


class PathCache:
    """Caches single-source shortest-path computations for repeated queries.

    Searches run on the compiled view of the topology and are cached per
    source.  The cache checks ``Topology.version`` on every query and
    recompiles/clears itself when the topology was mutated, which fixes the
    historical failure mode of serving stale paths after a mutation unless
    :meth:`invalidate` was called manually (still available, now optional).
    """

    def __init__(self, topology: Topology, weight: Callable[[Link], float]) -> None:
        self._topology = topology
        self._weight = weight
        self._graph: Optional[CompiledGraph] = None
        self._weights = None
        self._cache: Dict[int, tuple] = {}

    def _view(self) -> CompiledGraph:
        graph = self._topology.compiled()
        if graph is not self._graph:
            self._graph = graph
            self._weights = graph.edge_weights(self._weight)
            self._cache.clear()
        return graph

    def _search(self, graph: CompiledGraph, source: Any) -> tuple:
        if source not in graph.index_of:
            raise TopologyError(f"node {source!r} is not in the topology")
        source_index = graph.index_of[source]
        state = self._cache.get(source_index)
        if state is None:
            state = dijkstra_indices(graph, source_index, self._weights)
            self._cache[source_index] = state
        return state

    def route(self, source: Any, target: Any) -> Optional[RoutedPath]:
        """Shortest path with per-hop links resolved, ``None`` when unreachable."""
        graph = self._view()
        if target not in graph.index_of:
            return None
        dist, pred, pred_edge = self._search(graph, source)
        target_index = graph.index_of[target]
        if dist[target_index] == inf:
            return None
        ids = graph.ids
        edge_keys = graph.edge_keys
        edge_links = graph.links
        nodes = [target]
        links: List[Link] = []
        keys: List[Tuple[Any, Any]] = []
        current = target_index
        source_index = graph.index_of[source]
        while current != source_index:
            edge = pred_edge[current]
            links.append(edge_links[edge])
            keys.append(edge_keys[edge])
            current = pred[current]
            nodes.append(ids[current])
        nodes.reverse()
        links.reverse()
        keys.reverse()
        return RoutedPath(nodes=nodes, links=links, keys=keys)

    def path(self, source: Any, target: Any) -> Optional[List[Any]]:
        """Shortest path between two nodes, or ``None`` when unreachable."""
        routed = self.route(source, target)
        return None if routed is None else routed.nodes

    def distance(self, source: Any, target: Any) -> float:
        """Shortest-path distance, ``inf`` when unreachable."""
        graph = self._view()
        if target not in graph.index_of:
            return inf
        dist, _, _ = self._search(graph, source)
        return dist[graph.index_of[target]]

    def invalidate(self) -> None:
        """Clear the cache explicitly (mutations already invalidate it)."""
        self._cache.clear()
        self._graph = None
        self._weights = None


def resolve_weight(weight: Optional[str]) -> Callable[[Link], float]:
    """Look up a weight function by name (``None`` → length-based)."""
    if weight is None:
        return WEIGHT_FUNCTIONS["length"]
    if weight not in WEIGHT_FUNCTIONS:
        raise KeyError(
            f"unknown weight {weight!r}; available: {sorted(WEIGHT_FUNCTIONS)}"
        )
    return WEIGHT_FUNCTIONS[weight]


def shortest_path_between(
    topology: Topology, source: Any, target: Any, weight: Optional[str] = None
) -> Optional[List[Any]]:
    """One-off shortest path using a named weight function."""
    cache = PathCache(topology, resolve_weight(weight))
    return cache.path(source, target)


def k_shortest_node_disjoint_paths(
    topology: Topology, source: Any, target: Any, k: int = 2, weight: Optional[str] = None
) -> List[List[Any]]:
    """Up to ``k`` node-disjoint paths, found by iterative removal.

    A simple (not optimal) disjoint-path heuristic: find a shortest path,
    delete its interior nodes, repeat.  Used by the redundancy analysis in E7
    to check how many independent routes customers have after backup links are
    added.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    weight_function = resolve_weight(weight)
    working = topology.copy()
    paths: List[List[Any]] = []
    for _ in range(k):
        if not (working.has_node(source) and working.has_node(target)):
            break
        distances, predecessors = dijkstra(working, source, weight_function)
        if target not in distances:
            break
        path = reconstruct_path(predecessors, source, target)
        paths.append(path)
        for node in path[1:-1]:
            working.remove_node(node)
        if len(path) == 2:
            # Direct link: remove it so the next iteration finds another route.
            if working.has_link(source, target):
                working.remove_link(source, target)
    return paths
