"""Routing substrate: path selection, demand assignment, utilization analysis.

The hot path is the vectorized traffic engine (:mod:`repro.routing.engine`):
demand compiles to int-indexed arrays, routing batches one search per unique
source, and loads live in per-edge columns until a single flush annotates the
object graph.  :mod:`repro.routing.paths` and the per-pair assignment remain
the reference implementations.

:func:`route_demand` is the façade for one demand snapshot;
:mod:`repro.routing.temporal` extends it along the time axis
(:func:`route_series` diff-routes a :class:`DemandSeries`,
:func:`failure_cascade` iterates overload trips to a fixed point), with
:class:`RoutingOptions` carrying the shared weight/mode/method/backend
vocabulary across all entry points.
"""

from .options import (
    ROUTING_BACKENDS,
    ROUTING_METHODS,
    ROUTING_MODES,
    RoutingOptions,
)
from .paths import (
    PathCache,
    RoutedPath,
    WEIGHT_FUNCTIONS,
    k_shortest_node_disjoint_paths,
    resolve_weight,
    shortest_path_between,
)
from .engine import (
    CompiledDemand,
    FlowResult,
    compile_demand,
    route_demand,
)
from .hierarchical import (
    HierarchicalOverlay,
    OverlayTooLarge,
    build_overlay,
    overlay_for,
    route_demand_hierarchical,
)
from .temporal import (
    CascadeResult,
    CascadeRound,
    CompiledSeries,
    DemandSeries,
    TemporalFlowResult,
    TemporalStepResult,
    compile_series,
    diurnal_series,
    failure_cascade,
    flash_crowd,
    route_series,
)
from .assignment import (
    AssignmentResult,
    assign_demand,
    route_customer_demand_to_core,
)
from .utilization import (
    UtilizationReport,
    load_concentration,
    most_loaded_links,
    utilization_bin,
    utilization_report,
)

__all__ = [
    "ROUTING_BACKENDS",
    "ROUTING_METHODS",
    "ROUTING_MODES",
    "RoutingOptions",
    "CascadeResult",
    "CascadeRound",
    "CompiledSeries",
    "DemandSeries",
    "TemporalFlowResult",
    "TemporalStepResult",
    "compile_series",
    "diurnal_series",
    "failure_cascade",
    "flash_crowd",
    "route_series",
    "PathCache",
    "RoutedPath",
    "WEIGHT_FUNCTIONS",
    "k_shortest_node_disjoint_paths",
    "resolve_weight",
    "shortest_path_between",
    "CompiledDemand",
    "FlowResult",
    "compile_demand",
    "route_demand",
    "HierarchicalOverlay",
    "OverlayTooLarge",
    "build_overlay",
    "overlay_for",
    "route_demand_hierarchical",
    "AssignmentResult",
    "assign_demand",
    "route_customer_demand_to_core",
    "UtilizationReport",
    "load_concentration",
    "most_loaded_links",
    "utilization_bin",
    "utilization_report",
]
