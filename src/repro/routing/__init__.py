"""Routing substrate: path selection, demand assignment, utilization analysis."""

from .paths import (
    PathCache,
    RoutedPath,
    WEIGHT_FUNCTIONS,
    k_shortest_node_disjoint_paths,
    resolve_weight,
    shortest_path_between,
)
from .assignment import (
    AssignmentResult,
    assign_demand,
    route_customer_demand_to_core,
)
from .utilization import (
    UtilizationReport,
    load_concentration,
    most_loaded_links,
    utilization_report,
)

__all__ = [
    "PathCache",
    "RoutedPath",
    "WEIGHT_FUNCTIONS",
    "k_shortest_node_disjoint_paths",
    "resolve_weight",
    "shortest_path_between",
    "AssignmentResult",
    "assign_demand",
    "route_customer_demand_to_core",
    "UtilizationReport",
    "load_concentration",
    "most_loaded_links",
    "utilization_report",
]
