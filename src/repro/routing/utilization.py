"""Link utilization analysis of loaded, provisioned topologies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..topology.graph import Topology


@dataclass
class UtilizationReport:
    """Aggregate utilization statistics of a topology.

    Attributes:
        mean_utilization: Mean load/capacity over links with finite capacity.
        peak_utilization: Maximum utilization.
        overloaded_links: Canonical keys of links with load > capacity.
        total_load: Sum of link loads.
        total_capacity: Sum of installed capacities (finite ones only).
        utilization_histogram: Counts of links in 10%-wide utilization bins
            (keys 0.0, 0.1, ..., 0.9; the last bin also holds >100%).
    """

    mean_utilization: float
    peak_utilization: float
    overloaded_links: List[Tuple]
    total_load: float
    total_capacity: float
    utilization_histogram: Dict[float, int]


def utilization_report(topology: Topology) -> UtilizationReport:
    """Compute utilization statistics over all capacity-annotated links."""
    utilizations = []
    overloaded = []
    total_load = 0.0
    total_capacity = 0.0
    histogram: Dict[float, int] = {round(b / 10.0, 1): 0 for b in range(10)}
    for link in topology.links():
        total_load += link.load
        if link.capacity is None or link.capacity <= 0:
            continue
        total_capacity += link.capacity
        utilization = link.load / link.capacity
        utilizations.append(utilization)
        if link.load > link.capacity + 1e-9:
            overloaded.append(link.key)
        bin_key = round(min(0.9, (int(utilization * 10) / 10.0)), 1)
        histogram[bin_key] += 1
    mean = sum(utilizations) / len(utilizations) if utilizations else 0.0
    peak = max(utilizations) if utilizations else 0.0
    return UtilizationReport(
        mean_utilization=mean,
        peak_utilization=peak,
        overloaded_links=overloaded,
        total_load=total_load,
        total_capacity=total_capacity,
        utilization_histogram=histogram,
    )


def most_loaded_links(topology: Topology, k: int = 10) -> List[Tuple[Tuple, float]]:
    """The ``k`` links carrying the most traffic, as (key, load) pairs."""
    if k < 0:
        raise ValueError("k must be non-negative")
    ranked = sorted(
        ((link.key, link.load) for link in topology.links()),
        key=lambda item: item[1],
        reverse=True,
    )
    return ranked[:k]


def load_concentration(topology: Topology, top_fraction: float = 0.1) -> float:
    """Fraction of total traffic carried by the top ``top_fraction`` of links.

    HOT-style aggregation concentrates traffic onto a few high-capacity trunks
    (values near 1); uniform meshes spread it out.
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    loads = sorted((link.load for link in topology.links()), reverse=True)
    total = sum(loads)
    if total <= 0:
        return 0.0
    top_count = max(1, int(round(top_fraction * len(loads))))
    return sum(loads[:top_count]) / total
