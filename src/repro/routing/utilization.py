"""Link utilization analysis of loaded, provisioned topologies.

The analysis entry points consume routing results uniformly: pass the
:class:`~repro.routing.engine.FlowResult` returned by ``route_demand`` and
the edge-load column is validated against the topology's *current* compiled
snapshot (a stale result — the topology mutated since routing — raises
:class:`~repro.topology.graph.TopologyError` instead of silently repricing
against a different graph).  The legacy ``loads=`` column kwarg still works
but raises :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..topology.graph import Topology


def _resolve_flow_loads(
    topology: Topology,
    flow: Any,
    loads: Optional[Sequence[float]],
    caller: str,
) -> Optional[Sequence[float]]:
    """Normalize the ``flow=`` / deprecated ``loads=`` arguments to a column.

    ``flow`` is anything with a ``loads_for(topology)`` method (a
    :class:`~repro.routing.engine.FlowResult` or a temporal step result) —
    the method validates the snapshot version and returns the edge column.
    A bare sequence passed as ``flow`` is treated as a legacy positional
    ``loads`` column, with the same :class:`DeprecationWarning` as the
    ``loads=`` kwarg.  Returns ``None`` when neither was given (callers then
    read the annotated ``Link.load`` values).
    """
    if flow is not None and loads is not None:
        raise TypeError(f"{caller}() takes flow= or loads=, not both")
    if flow is not None:
        if hasattr(flow, "loads_for"):
            return flow.loads_for(topology)
        loads = flow  # legacy positional loads column
    if loads is not None:
        warnings.warn(
            f"{caller}(loads=...) is deprecated; pass the FlowResult itself "
            f"({caller}(topology, flow))",
            DeprecationWarning,
            stacklevel=3,
        )
    return loads


def utilization_bin(utilization: float) -> float:
    """The 10%-wide histogram bin key for one utilization value.

    Bins are keyed by their lower edge (``0.0``, ``0.1``, ..., ``0.9``) and
    half-open: a utilization of exactly 0.1 lands in the ``0.1`` bin.  The
    last bin is the overflow bin — every utilization of 90% and above,
    including overloads past 100%, lands in ``0.9``.
    """
    if utilization < 0:
        raise ValueError(f"utilization must be non-negative, got {utilization}")
    return min(9, int(utilization * 10)) / 10.0


@dataclass
class UtilizationReport:
    """Aggregate utilization statistics of a topology.

    Attributes:
        mean_utilization: Mean load/capacity over links with positive capacity.
        peak_utilization: Maximum utilization.
        overloaded_links: Canonical keys of links with load > capacity —
            including zero-capacity links carrying load, whose utilization is
            unbounded and therefore excluded from the mean/peak/histogram.
        total_load: Sum of link loads.
        total_capacity: Sum of installed capacities (finite ones only).
        utilization_histogram: Counts of links in 10%-wide utilization bins
            (see :func:`utilization_bin`; keys 0.0, 0.1, ..., 0.9 with the
            last bin holding everything >= 90%, overloads included).
    """

    mean_utilization: float
    peak_utilization: float
    overloaded_links: List[Tuple]
    total_load: float
    total_capacity: float
    utilization_histogram: Dict[float, int]


def utilization_report(
    topology: Topology,
    flow: Any = None,
    *,
    loads: Optional[Sequence[float]] = None,
) -> UtilizationReport:
    """Compute utilization statistics over all capacity-annotated links.

    Args:
        topology: The provisioned topology.
        flow: Optional routing result (e.g. a
            :class:`~repro.routing.engine.FlowResult`) whose edge-load column
            supplies the statistics — the annotated ``Link.load`` values are
            ignored, so the array pipeline needs no flush before analysis.
            The result is validated against the topology's current snapshot;
            a stale result raises
            :class:`~repro.topology.graph.TopologyError`.
        loads: Deprecated — a bare per-edge load column aligned with
            ``topology.compiled()``; pass the routing result as ``flow``
            instead.
    """
    loads = _resolve_flow_loads(topology, flow, loads, "utilization_report")
    utilizations = []
    overloaded = []
    total_load = 0.0
    total_capacity = 0.0
    histogram: Dict[float, int] = {round(b / 10.0, 1): 0 for b in range(10)}
    if loads is None:
        links = list(topology.links())
        loads = [link.load for link in links]
    else:
        links = topology.compiled().links
        if len(loads) != len(links):
            raise ValueError(
                f"loads column has {len(loads)} entries for {len(links)} links"
            )
    for link, load in zip(links, loads):
        total_load += load
        capacity = link.capacity
        if capacity is None:
            continue
        if capacity <= 0:
            # Unbounded utilization: never divides, but a loaded link with no
            # installed capacity is an overload, not a link to skip silently.
            if load > 1e-9:
                overloaded.append(link.key)
            continue
        total_capacity += capacity
        utilization = load / capacity
        utilizations.append(utilization)
        if load > capacity + 1e-9:
            overloaded.append(link.key)
        histogram[utilization_bin(utilization)] += 1
    mean = sum(utilizations) / len(utilizations) if utilizations else 0.0
    peak = max(utilizations) if utilizations else 0.0
    return UtilizationReport(
        mean_utilization=mean,
        peak_utilization=peak,
        overloaded_links=overloaded,
        total_load=total_load,
        total_capacity=total_capacity,
        utilization_histogram=histogram,
    )


def most_loaded_links(topology: Topology, k: int = 10) -> List[Tuple[Tuple, float]]:
    """The ``k`` links carrying the most traffic, as (key, load) pairs."""
    if k < 0:
        raise ValueError("k must be non-negative")
    ranked = sorted(
        ((link.key, link.load) for link in topology.links()),
        key=lambda item: item[1],
        reverse=True,
    )
    return ranked[:k]


def load_concentration(
    topology: Topology,
    top_fraction: float = 0.1,
    flow: Any = None,
    *,
    loads: Optional[Sequence[float]] = None,
) -> float:
    """Fraction of total traffic carried by the top ``top_fraction`` of links.

    HOT-style aggregation concentrates traffic onto a few high-capacity trunks
    (values near 1); uniform meshes spread it out.  ``flow`` optionally
    supplies a routing result (validated against the current snapshot, like
    :func:`utilization_report`) instead of the annotated ``Link.load``
    values; ``loads`` (deprecated) accepts a bare column in any order.
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    loads = _resolve_flow_loads(topology, flow, loads, "load_concentration")
    if loads is None:
        loads = [link.load for link in topology.links()]
    ranked = sorted(loads, reverse=True)
    total = sum(ranked)
    if total <= 0:
        return 0.0
    top_count = max(1, int(round(top_fraction * len(ranked))))
    return sum(ranked[:top_count]) / total
