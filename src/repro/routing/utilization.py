"""Link utilization analysis of loaded, provisioned topologies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..topology.graph import Topology


def utilization_bin(utilization: float) -> float:
    """The 10%-wide histogram bin key for one utilization value.

    Bins are keyed by their lower edge (``0.0``, ``0.1``, ..., ``0.9``) and
    half-open: a utilization of exactly 0.1 lands in the ``0.1`` bin.  The
    last bin is the overflow bin — every utilization of 90% and above,
    including overloads past 100%, lands in ``0.9``.
    """
    if utilization < 0:
        raise ValueError(f"utilization must be non-negative, got {utilization}")
    return min(9, int(utilization * 10)) / 10.0


@dataclass
class UtilizationReport:
    """Aggregate utilization statistics of a topology.

    Attributes:
        mean_utilization: Mean load/capacity over links with positive capacity.
        peak_utilization: Maximum utilization.
        overloaded_links: Canonical keys of links with load > capacity —
            including zero-capacity links carrying load, whose utilization is
            unbounded and therefore excluded from the mean/peak/histogram.
        total_load: Sum of link loads.
        total_capacity: Sum of installed capacities (finite ones only).
        utilization_histogram: Counts of links in 10%-wide utilization bins
            (see :func:`utilization_bin`; keys 0.0, 0.1, ..., 0.9 with the
            last bin holding everything >= 90%, overloads included).
    """

    mean_utilization: float
    peak_utilization: float
    overloaded_links: List[Tuple]
    total_load: float
    total_capacity: float
    utilization_histogram: Dict[float, int]


def utilization_report(
    topology: Topology, loads: Optional[Sequence[float]] = None
) -> UtilizationReport:
    """Compute utilization statistics over all capacity-annotated links.

    Args:
        topology: The provisioned topology.
        loads: Optional per-edge load column aligned with
            ``topology.compiled()`` (e.g. ``FlowResult.edge_loads``).  When
            given, statistics come from the array and the annotated
            ``Link.load`` values are ignored — the array pipeline needs no
            flush before analysis.
    """
    utilizations = []
    overloaded = []
    total_load = 0.0
    total_capacity = 0.0
    histogram: Dict[float, int] = {round(b / 10.0, 1): 0 for b in range(10)}
    if loads is None:
        links = list(topology.links())
        loads = [link.load for link in links]
    else:
        links = topology.compiled().links
        if len(loads) != len(links):
            raise ValueError(
                f"loads column has {len(loads)} entries for {len(links)} links"
            )
    for link, load in zip(links, loads):
        total_load += load
        capacity = link.capacity
        if capacity is None:
            continue
        if capacity <= 0:
            # Unbounded utilization: never divides, but a loaded link with no
            # installed capacity is an overload, not a link to skip silently.
            if load > 1e-9:
                overloaded.append(link.key)
            continue
        total_capacity += capacity
        utilization = load / capacity
        utilizations.append(utilization)
        if load > capacity + 1e-9:
            overloaded.append(link.key)
        histogram[utilization_bin(utilization)] += 1
    mean = sum(utilizations) / len(utilizations) if utilizations else 0.0
    peak = max(utilizations) if utilizations else 0.0
    return UtilizationReport(
        mean_utilization=mean,
        peak_utilization=peak,
        overloaded_links=overloaded,
        total_load=total_load,
        total_capacity=total_capacity,
        utilization_histogram=histogram,
    )


def most_loaded_links(topology: Topology, k: int = 10) -> List[Tuple[Tuple, float]]:
    """The ``k`` links carrying the most traffic, as (key, load) pairs."""
    if k < 0:
        raise ValueError("k must be non-negative")
    ranked = sorted(
        ((link.key, link.load) for link in topology.links()),
        key=lambda item: item[1],
        reverse=True,
    )
    return ranked[:k]


def load_concentration(
    topology: Topology,
    top_fraction: float = 0.1,
    loads: Optional[Sequence[float]] = None,
) -> float:
    """Fraction of total traffic carried by the top ``top_fraction`` of links.

    HOT-style aggregation concentrates traffic onto a few high-capacity trunks
    (values near 1); uniform meshes spread it out.  ``loads`` optionally
    supplies a per-edge column (any order) instead of the annotated
    ``Link.load`` values.
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    if loads is None:
        loads = [link.load for link in topology.links()]
    ranked = sorted(loads, reverse=True)
    total = sum(ranked)
    if total <= 0:
        return 0.0
    top_count = max(1, int(round(top_fraction * len(ranked))))
    return sum(ranked[:top_count]) / total
