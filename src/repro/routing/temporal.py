"""Temporal traffic engine: time-indexed demand, diff routing, and cascades.

The paper evaluates a topology through the traffic it carries under
shortest-path routing; this module extends that evaluation along a **time
axis**.  A :class:`DemandSeries` is an ordered sequence of
:class:`~repro.geography.demand.DemandMatrix` steps (diurnal load curves,
flash crowds); :func:`route_series` routes the whole sequence through the
batched engine of :mod:`repro.routing.engine`, and :func:`failure_cascade`
iterates route → overload → trip → re-route to a fixed point on a
capacity-provisioned topology.

The diff contract
-----------------

Routing every step from scratch repeats one shortest-path search per unique
source per step, even though consecutive steps of a realistic series differ
in only a few sources (a flash crowd touches its hotspots, everything else
carries yesterday's traffic).  :func:`compile_series` therefore compiles the
**union** of every step's pairs once, with one shared orientation, and
:func:`route_series` retains a **per-source load column** for every demand
source:

* At step ``t`` the engine diffs the step's per-pair volume column against
  step ``t-1`` and re-resolves only the sources whose volumes moved —
  one search + scatter per *changed* source
  (``KERNEL_COUNTERS.temporal_resolved_sources`` counts them, so benchmarks
  gate that the diff path actually engaged instead of assuming it).
* The step's total load column is then rebuilt **fresh** by summing the
  retained per-source columns in compile (first-appearance) source order.
  The sum is a pure function of the per-source columns — never an
  incremental ``+delta`` update — so a step's loads are independent of the
  *history* of which sources happened to be re-resolved, and
  ``route_series(..., reuse=False)`` (re-resolve everything, every step) is
  bit-identical to the diff path by construction.

Per-source columns are deterministic functions of (source, step volumes), so
backend parity is inherited from the engine scatter kernels: loads are
bit-identical across backends on tie-free weights with integral volumes, and
match a from-scratch ``route_demand`` of the step's matrix under the same
conditions (compilation may orient a pair from the opposite endpoint, which
on tie-free instances routes the identical unique shortest path).

The cascade trip rule
---------------------

:func:`failure_cascade` routes the full demand, then **trips** every link
whose load exceeds ``capacity * (1 + headroom)`` (a ``1e-9`` absolute
tolerance absorbs float accumulation; links without a finite capacity never
trip).  All overloaded links of a round trip *together*, in ascending edge
order — the deterministic batch becomes one
:class:`~repro.optimization.incremental.RemoveLinks` move, applied as
incremental deletions on the move engine's dynamic-connectivity structure
(:mod:`repro.topology.dynconn`) — one bounded replacement-edge search per
tripped tree edge, never a full reachability sweep.  Only the
sources that carried flow on a tripped link are re-routed (their retained
columns are the ones the removals invalidated; on tie-free instances every
other source's unique shortest paths are untouched, and in ECMP mode the
retained column covers *all* tied paths, so the nonzero-on-tripped test is
exact).  Rounds iterate until no link trips; demand whose targets become
unreachable is **shed** and shows up in the round's ``unrouted`` column.

Headroom semantics: ``headroom`` is survivability slack — the fraction of
extra capacity a link can absorb before tripping.  ``headroom=0.0`` trips at
the provisioned capacity; larger values resist the cascade, and the E13
suite sweeps it to map served fraction against slack.  The topology is
restored (``restore=True``) by rewinding the undo stack, so the cascade is
an analysis, not a mutation.
"""

from __future__ import annotations

import hashlib
from array import array
from dataclasses import dataclass, field
from math import inf, pi, sin
from random import Random
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..geography.demand import DemandMatrix
from ..topology.compiled import (
    BATCH_CHUNK_CELLS,
    CompiledGraph,
    KERNEL_COUNTERS,
    _column_min,
    dijkstra_indices,
    have_numpy_backend,
    resolve_backend,
)
from ..topology.graph import Topology, TopologyError
from .engine import (
    CompiledDemand,
    compile_demand,
    _scatter_ecmp,
    _scatter_tree,
)
from .options import RoutingOptions
from .paths import resolve_weight

if have_numpy_backend():
    import numpy as _np
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra
else:  # pragma: no cover - exercised by the no-scipy CI leg
    _np = None
    _scipy_dijkstra = None

__all__ = [
    "CascadeResult",
    "CascadeRound",
    "CompiledSeries",
    "DemandSeries",
    "TemporalFlowResult",
    "TemporalStepResult",
    "compile_series",
    "diurnal_series",
    "failure_cascade",
    "flash_crowd",
    "route_series",
]

#: Absolute tolerance of the cascade trip rule (absorbs float accumulation).
TRIP_TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# The time-indexed demand layer
# ----------------------------------------------------------------------
@dataclass
class DemandSeries:
    """An ordered sequence of demand matrices — one per time step.

    Attributes:
        steps: The per-step :class:`~repro.geography.demand.DemandMatrix`
            objects, in time order.  Steps may share matrix objects (a flash
            crowd outside its spike window reuses the base matrix verbatim —
            the diff engine then re-resolves nothing).
        labels: Optional per-step labels (``t00``, ``t01``, ... by default).
    """

    steps: List[DemandMatrix]
    labels: Optional[List[str]] = None

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("DemandSeries needs at least one step")
        if self.labels is None:
            self.labels = [f"t{t:02d}" for t in range(len(self.steps))]
        elif len(self.labels) != len(self.steps):
            raise ValueError(
                f"DemandSeries has {len(self.steps)} steps but "
                f"{len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[DemandMatrix]:
        return iter(self.steps)

    def __getitem__(self, index: int) -> DemandMatrix:
        return self.steps[index]


def diurnal_series(
    base: DemandMatrix,
    num_steps: int = 24,
    amplitude: float = 0.5,
    phase: float = 0.0,
) -> DemandSeries:
    """A sinusoidal diurnal load curve over a base matrix.

    Step ``t`` scales every demand of ``base`` by
    ``1 + amplitude * sin(2*pi*(t + phase)/num_steps)`` — a deterministic
    day/night cycle.  Every step changes every pair, so the diff engine
    re-resolves every source each step: the diurnal series is the temporal
    engine's *worst case* and the flash crowd its best.

    Args:
        base: The matrix carrying the mean load.
        num_steps: Steps per cycle (hours, by the default 24).
        amplitude: Peak-to-mean swing; must satisfy ``0 <= amplitude < 1`` so
            scaled volumes stay positive.
        phase: Fractional step offset of the peak.
    """
    if num_steps < 1:
        raise ValueError(f"diurnal_series needs num_steps >= 1, got {num_steps}")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError(
            f"diurnal_series needs 0 <= amplitude < 1, got {amplitude}"
        )
    steps = [
        base.scaled(1.0 + amplitude * sin(2.0 * pi * (t + phase) / num_steps))
        for t in range(num_steps)
    ]
    return DemandSeries(steps, labels=[f"h{t:02d}" for t in range(num_steps)])


def flash_crowd(
    base: DemandMatrix,
    num_steps: int = 12,
    num_hotspots: int = 2,
    spike: float = 8.0,
    duration: int = 3,
    seed: int = 0,
) -> DemandSeries:
    """Multiplicative demand spikes on sampled hotspot endpoints.

    ``num_hotspots`` endpoints are sampled (deterministically from ``seed``)
    among the endpoints that carry demand; each gets one spike window of
    ``duration`` consecutive steps, and inside the window every pair touching
    the hotspot is multiplied by ``spike``.  Steps outside every window reuse
    the ``base`` matrix object verbatim, so consecutive quiet steps diff to
    *zero* changed sources — the workload the diff engine exists for.  An
    integral ``spike`` over an integral base keeps volumes integral, which is
    what the bit-identity gates require.
    """
    if num_steps < 1:
        raise ValueError(f"flash_crowd needs num_steps >= 1, got {num_steps}")
    if not 1 <= duration <= num_steps:
        raise ValueError(
            f"flash_crowd needs 1 <= duration <= num_steps, got {duration}"
        )
    if spike <= 0:
        raise ValueError(f"flash_crowd needs spike > 0, got {spike}")
    candidates = sorted({name for a, b, _v in base.pairs() for name in (a, b)})
    if not candidates:
        raise ValueError("flash_crowd needs a base matrix with positive demand")
    if not 1 <= num_hotspots <= len(candidates):
        raise ValueError(
            f"flash_crowd needs 1 <= num_hotspots <= {len(candidates)} "
            f"(endpoints with demand), got {num_hotspots}"
        )
    rng = Random(seed)
    hotspots = rng.sample(candidates, num_hotspots)
    windows = {
        hotspot: rng.randrange(0, num_steps - duration + 1) for hotspot in hotspots
    }
    steps: List[DemandMatrix] = []
    for t in range(num_steps):
        hot = {h for h, start in windows.items() if start <= t < start + duration}
        if not hot:
            steps.append(base)
            continue
        spiked = DemandMatrix(endpoints=list(base.endpoints))
        for a, b, volume in base.pairs():
            factor = spike if (a in hot or b in hot) else 1.0
            spiked.set_demand(a, b, volume * factor)
        steps.append(spiked)
    return DemandSeries(steps)


# ----------------------------------------------------------------------
# Series compilation: one union orientation, per-step volume columns
# ----------------------------------------------------------------------
@dataclass
class CompiledSeries:
    """A demand series compiled against one compiled-graph snapshot.

    The pair list is the **union** of every step's pairs, in first-appearance
    order across steps, oriented once (toward the endpoint shared by more
    union pairs — the :func:`~repro.routing.engine.compile_demand` rule
    applied to the union).  One shared orientation is what makes per-source
    columns retainable across steps: a pair that flipped orientation between
    steps would silently move between source groups.

    Attributes:
        graph: The compiled topology snapshot the indices refer to.
        sources: Oriented source node index per union pair.
        targets: Oriented target node index per union pair.
        labels: Original ``(a, b)`` endpoint names per union pair.
        step_volumes: One ``array('d')`` per step, aligned with the union
            pair list (zero where a pair is absent from the step).
        unmatched: Per step, the ``(a, b, volume)`` pairs whose endpoints are
            missing from the topology (positive volumes only).
    """

    graph: CompiledGraph
    sources: array
    targets: array
    labels: List[Tuple[str, str]]
    step_volumes: List[array]
    unmatched: List[List[Tuple[str, str, float]]] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        """Number of time steps."""
        return len(self.step_volumes)

    @property
    def num_pairs(self) -> int:
        """Number of union (routable-endpoint) pairs."""
        return len(self.sources)

    @property
    def unique_sources(self) -> int:
        """Number of distinct oriented demand sources."""
        return len(set(self.sources))


def compile_series(
    topology: Topology,
    series: DemandSeries,
    endpoint_map: Optional[Dict[str, Any]] = None,
) -> CompiledSeries:
    """Compile a demand series against ``topology.compiled()``.

    Endpoint-name resolution and pair orientation happen exactly once, over
    the union of every step's pairs; see :class:`CompiledSeries` for the
    layout.  Endpoints missing from the topology land in the per-step
    ``unmatched`` lists instead of raising, mirroring
    :func:`~repro.routing.engine.compile_demand`.
    """
    endpoint_map = endpoint_map or {}
    graph = topology.compiled()
    index_of = graph.index_of
    union: Dict[Tuple[str, str], Tuple[Optional[int], Optional[int]]] = {}
    for matrix in series.steps:
        for a, b, _volume in matrix.pairs():
            if (a, b) not in union:
                union[(a, b)] = (
                    index_of.get(endpoint_map.get(a, a)),
                    index_of.get(endpoint_map.get(b, b)),
                )
    matched: List[Tuple[int, int, Tuple[str, str]]] = []
    unmatched_labels: List[Tuple[str, str]] = []
    frequency: Dict[int, int] = {}
    for label, (source, target) in union.items():
        if source is None or target is None:
            unmatched_labels.append(label)
            continue
        matched.append((source, target, label))
        frequency[source] = frequency.get(source, 0) + 1
        frequency[target] = frequency.get(target, 0) + 1
    sources = array("q")
    targets = array("q")
    labels: List[Tuple[str, str]] = []
    for source, target, label in matched:
        if frequency[target] > frequency[source]:
            source, target = target, source
        sources.append(source)
        targets.append(target)
        labels.append(label)
    step_volumes = [
        array("d", (matrix.demand(a, b) for a, b in labels))
        for matrix in series.steps
    ]
    unmatched = [
        [
            (a, b, matrix.demand(a, b))
            for a, b in unmatched_labels
            if matrix.demand(a, b) > 0
        ]
        for matrix in series.steps
    ]
    return CompiledSeries(
        graph=graph,
        sources=sources,
        targets=targets,
        labels=labels,
        step_volumes=step_volumes,
        unmatched=unmatched,
    )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class TemporalStepResult:
    """Edge-indexed routing result of one time step (or cascade round).

    Mirrors :class:`~repro.routing.engine.FlowResult` — including the
    :meth:`loads_for` consumer contract, so a step result feeds
    ``utilization_report`` / ``load_concentration`` / ``provision_topology``
    directly — plus the diff accounting of the temporal engine.

    Attributes:
        graph: The compiled snapshot the loads are aligned with.
        step: Time-step (or cascade-round) index.
        edge_loads: Load per undirected edge index.
        routed_volume: Volume that found a path at this step.
        routed_pairs: Pairs (with positive volume) that found a path.
        unrouted: ``(a, b, volume)`` for unmatched or disconnected pairs.
        resolved_sources: Sources re-resolved at this step (the diff size).
        mode: ``"single"`` or ``"ecmp"``.
    """

    graph: CompiledGraph
    step: int
    edge_loads: Any
    routed_volume: float
    routed_pairs: int
    unrouted: List[Tuple[str, str, float]]
    resolved_sources: int
    mode: str

    @property
    def unrouted_volume(self) -> float:
        """Total volume that could not be routed (shed demand included)."""
        return sum(volume for _, _, volume in self.unrouted)

    @property
    def served_fraction(self) -> float:
        """Routed volume over offered volume (1.0 when nothing was offered)."""
        offered = self.routed_volume + self.unrouted_volume
        if offered <= 0:
            return 1.0
        return self.routed_volume / offered

    def loads_list(self) -> List[float]:
        """The edge load column as a plain Python float list."""
        return self.edge_loads.tolist()

    def link_loads(self) -> Dict[Tuple[Any, Any], float]:
        """Boundary conversion: loaded edges as a canonical-key dictionary."""
        edge_keys = self.graph.edge_keys
        return {
            edge_keys[e]: load
            for e, load in enumerate(self.loads_list())
            if load != 0.0
        }

    def max_load(self) -> float:
        """Largest per-edge load (0.0 on an edgeless graph)."""
        if not len(self.edge_loads):
            return 0.0
        if _np is not None and isinstance(self.edge_loads, _np.ndarray):
            return float(self.edge_loads.max())
        return max(self.edge_loads)

    def load_hash(self) -> str:
        """SHA-256 of the load column bytes — the determinism fingerprint.

        Bit-identical columns (the backend/serial-parallel contract on
        tie-free integral instances) hash identically; any float divergence
        is loud.
        """
        return hashlib.sha256(array("d", self.edge_loads).tobytes()).hexdigest()

    def overloaded_edges(self, capacities: Sequence[Optional[float]]) -> List[int]:
        """Edge indices whose load exceeds the aligned capacity column.

        ``None`` capacities mean unbounded and never overload; the comparison
        uses the cascade's :data:`TRIP_TOLERANCE`.
        """
        loads = self.edge_loads
        if len(capacities) != len(loads):
            raise ValueError(
                f"capacities column has {len(capacities)} entries for "
                f"{len(loads)} edges"
            )
        return [
            e
            for e, capacity in enumerate(capacities)
            if capacity is not None and loads[e] > capacity + TRIP_TOLERANCE
        ]

    def loads_for(self, topology: Topology) -> Any:
        """The load column, validated against ``topology``'s current snapshot.

        Same contract as :meth:`repro.routing.engine.FlowResult.loads_for`:
        a stale snapshot raises :class:`~repro.topology.graph.TopologyError`
        instead of silently repricing against a reindexed graph.
        """
        graph = topology.compiled()
        if graph is not self.graph:
            raise TopologyError(
                f"stale step result: routed against snapshot version "
                f"{self.graph.version}, but topology {topology.name!r} now "
                f"compiles to version {graph.version} — re-route the series "
                f"instead of repricing a stale load column"
            )
        return self.edge_loads


@dataclass
class TemporalFlowResult:
    """Result of routing a whole demand series.

    Attributes:
        graph: The compiled snapshot every step column is aligned with.
        mode: ``"single"`` or ``"ecmp"``.
        steps: One :class:`TemporalStepResult` per time step.
    """

    graph: CompiledGraph
    mode: str
    steps: List[TemporalStepResult]

    @property
    def num_steps(self) -> int:
        """Number of routed time steps."""
        return len(self.steps)

    @property
    def resolved_sources_total(self) -> int:
        """Total source re-resolutions across all steps (the diff work)."""
        return sum(step.resolved_sources for step in self.steps)

    def step_hashes(self) -> List[str]:
        """Per-step SHA-256 load-column fingerprints (determinism gates)."""
        return [step.load_hash() for step in self.steps]

    def served_fractions(self) -> List[float]:
        """Per-step served fraction (routed volume over offered volume)."""
        return [step.served_fraction for step in self.steps]

    def overload_counts(self, capacities: Sequence[Optional[float]]) -> List[int]:
        """Per-step count of overloaded edges against one capacity column."""
        return [len(step.overloaded_edges(capacities)) for step in self.steps]


@dataclass
class CascadeRound:
    """One route → trip round of a failure cascade.

    Attributes:
        flow: The routing result of this round (loads in the round's own
            edge space — ``flow.graph`` is the degraded snapshot).
        tripped: Canonical keys of the links that exceeded the trip threshold
            this round, in ascending edge order.  Empty on the fixed-point
            round.
    """

    flow: TemporalStepResult
    tripped: List[Tuple[Any, Any]]


@dataclass
class CascadeResult:
    """Fixed point of a failure cascade.

    Attributes:
        rounds: Route → trip rounds, in order; the last round tripped
            nothing (unless ``max_rounds`` cut the cascade short).
        fixed_point: Whether the cascade converged (``False`` only when
            ``max_rounds`` stopped it with overloads still standing).
        headroom: The survivability slack the cascade ran with.
        mode: ``"single"`` or ``"ecmp"``.
    """

    rounds: List[CascadeRound]
    fixed_point: bool
    headroom: float
    mode: str

    @property
    def num_rounds(self) -> int:
        """Number of routing rounds (>= 1)."""
        return len(self.rounds)

    @property
    def total_trips(self) -> int:
        """Total links tripped across all rounds."""
        return sum(len(round_.tripped) for round_ in self.rounds)

    @property
    def tripped_keys(self) -> List[Tuple[Any, Any]]:
        """Every tripped link key, in trip order."""
        return [key for round_ in self.rounds for key in round_.tripped]

    @property
    def served_fraction(self) -> float:
        """Served fraction at the fixed point (the survivability summary)."""
        return self.rounds[-1].flow.served_fraction

    def step_hashes(self) -> List[str]:
        """Per-round SHA-256 load-column fingerprints (determinism gates)."""
        return [round_.flow.load_hash() for round_ in self.rounds]


# ----------------------------------------------------------------------
# The diff engine
# ----------------------------------------------------------------------
def route_series(
    topology: Any,
    series: Any = None,
    weight: Optional[str] = None,
    mode: Optional[str] = None,
    backend: Optional[str] = None,
    *,
    options: Optional[RoutingOptions] = None,
    endpoint_map: Optional[Dict[str, Any]] = None,
    reuse: bool = True,
) -> TemporalFlowResult:
    """Route a demand series step by step, re-resolving only changed sources.

    Two calling forms, mirroring :func:`~repro.routing.engine.route_demand`:
    ``route_series(topology, demand_series, ...)`` compiles and routes in one
    call, and ``route_series(compiled_series, ...)`` takes a pre-compiled
    :class:`CompiledSeries` (also accepted as the second argument next to its
    topology, validated against the current snapshot).

    Switches follow the façade vocabulary
    (:class:`~repro.routing.options.RoutingOptions`); the temporal engine is
    a flat-engine consumer, so ``method`` must be ``"auto"`` or ``"flat"``.
    ``reuse=False`` disables the diff and re-resolves every source at every
    step — bit-identical to the diff path by the fresh-summation contract
    (see the module docstring), which is exactly what the benchmark and the
    property tests gate.
    """
    opts = RoutingOptions.normalize(
        options, weight=weight, mode=mode, method=None, backend=backend
    )
    if opts.method not in ("auto", "flat"):
        raise ValueError(
            f"temporal routing supports method='flat' only (the per-source "
            f"diff needs per-source scatter), got method={opts.method!r}"
        )
    compiled = _resolve_series(topology, series, endpoint_map)
    return _route_series_compiled(compiled, opts, reuse)


def _resolve_series(
    topology: Any, series: Any, endpoint_map: Optional[Dict[str, Any]]
) -> CompiledSeries:
    """Normalize ``route_series``'s two calling forms to a CompiledSeries."""
    if isinstance(topology, CompiledSeries):
        if series is not None:
            raise TypeError(
                "route_series(compiled_series) takes no second series "
                "argument; use route_series(topology, series) to compile "
                "and route in one call"
            )
        if endpoint_map is not None:
            raise TypeError(
                "endpoint_map only applies when route_series compiles a "
                "DemandSeries; this series is already compiled"
            )
        return topology
    if isinstance(topology, Topology):
        if isinstance(series, CompiledSeries):
            if endpoint_map is not None:
                raise TypeError(
                    "endpoint_map only applies when route_series compiles a "
                    "DemandSeries; this series is already compiled"
                )
            graph = topology.compiled()
            if series.graph is not graph:
                raise TopologyError(
                    f"stale CompiledSeries: compiled against snapshot version "
                    f"{series.graph.version}, but topology {topology.name!r} "
                    f"now compiles to version {graph.version} — recompile "
                    f"with compile_series()"
                )
            return series
        if isinstance(series, DemandSeries):
            return compile_series(topology, series, endpoint_map)
        raise TypeError(
            f"route_series(topology, series) needs a DemandSeries or "
            f"CompiledSeries, got {type(series).__name__}"
        )
    raise TypeError(
        f"route_series expects a Topology or CompiledSeries first, "
        f"got {type(topology).__name__}"
    )


def _route_series_compiled(
    compiled: CompiledSeries, opts: RoutingOptions, reuse: bool
) -> TemporalFlowResult:
    graph = compiled.graph
    weights = graph.edge_weight_column(opts.weight, resolve_weight(opts.weight))
    use_numpy = _select_backend(graph, weights, opts)
    groups = _pair_groups(compiled.sources)
    columns: Dict[int, Any] = {}
    stats: Dict[int, Tuple[float, int, List[Tuple[str, str, float]]]] = {}
    steps: List[TemporalStepResult] = []
    previous: Optional[array] = None
    sources = compiled.sources
    for t, volumes in enumerate(compiled.step_volumes):
        if previous is None or not reuse:
            changed = list(groups)
        else:
            moved = {
                sources[p]
                for p in range(len(volumes))
                if volumes[p] != previous[p]
            }
            changed = [source for source in groups if source in moved]
        KERNEL_COUNTERS.temporal_steps += 1
        KERNEL_COUNTERS.temporal_resolved_sources += len(changed)
        _resolve_sources(
            graph,
            weights,
            opts.mode,
            use_numpy,
            groups,
            compiled.targets,
            volumes,
            compiled.labels,
            changed,
            columns,
            stats,
        )
        total, routed_volume, routed_pairs, unrouted = _combine(
            graph, use_numpy, groups, columns, stats, compiled.unmatched[t]
        )
        steps.append(
            TemporalStepResult(
                graph=graph,
                step=t,
                edge_loads=total,
                routed_volume=routed_volume,
                routed_pairs=routed_pairs,
                unrouted=unrouted,
                resolved_sources=len(changed),
                mode=opts.mode,
            )
        )
        previous = volumes
    return TemporalFlowResult(graph=graph, mode=opts.mode, steps=steps)


def _select_backend(
    graph: CompiledGraph, weights: Any, opts: RoutingOptions
) -> bool:
    """Shared backend dispatch: True for the numpy path, False for Python.

    Same rules as the flat engine: ECMP and the numpy path require strictly
    positive weights; ``backend="auto"`` falls back to Python on nonpositive
    columns while an explicit ``backend="numpy"`` raises.
    """
    positive = graph.num_edges == 0 or _column_min(weights) > 0
    if opts.mode == "ecmp" and not positive:
        raise ValueError("ECMP routing requires strictly positive weights")
    if resolve_backend(opts.backend) == "numpy" and graph.num_edges > 0:
        if positive:
            return True
        if opts.backend == "numpy":
            raise ValueError(
                "backend='numpy' routing requires strictly positive weights"
            )
    return False


def _pair_groups(sources: array) -> Dict[int, List[int]]:
    """Group union-pair positions by oriented source, first-appearance order."""
    groups: Dict[int, List[int]] = {}
    for position, source in enumerate(sources):
        groups.setdefault(source, []).append(position)
    return groups


def _resolve_sources(
    graph: CompiledGraph,
    weights: Any,
    mode: str,
    use_numpy: bool,
    groups: Dict[int, List[int]],
    targets: array,
    volumes: array,
    labels: List[Tuple[str, str]],
    changed: List[int],
    columns: Dict[int, Any],
    stats: Dict[int, Tuple[float, int, List[Tuple[str, str, float]]]],
) -> None:
    """Re-route every source in ``changed``; update its retained column.

    A source's column is ``None`` when it carries no flow (all volumes zero,
    or every positive-volume target unreachable) — the combine step treats
    ``None`` as an all-zero column without paying the addition.
    """
    if use_numpy:
        _resolve_sources_numpy(
            graph, weights, mode, groups, targets, volumes, labels, changed,
            columns, stats,
        )
        return
    n = graph.num_nodes
    for source in changed:
        positions = groups[source]
        active = [p for p in positions if volumes[p] > 0.0]
        if not active:
            columns[source] = None
            stats[source] = (0.0, 0, [])
            continue
        dist, pred, pred_edge = dijkstra_indices(graph, source, weights)
        KERNEL_COUNTERS.traffic_batched_sources += 1
        node_flow = array("d", [0.0]) * n
        group_volume = 0.0
        group_pairs = 0
        unrouted: List[Tuple[str, str, float]] = []
        for p in active:
            target = targets[p]
            volume = volumes[p]
            if dist[target] == inf:
                unrouted.append((*labels[p], volume))
                continue
            node_flow[target] += volume
            group_volume += volume
            group_pairs += 1
        KERNEL_COUNTERS.traffic_assigned_pairs += group_pairs
        if group_volume > 0.0:
            column = array("d", [0.0]) * graph.num_edges
            if mode == "single":
                _scatter_tree(graph, source, pred, pred_edge, node_flow, column)
            else:
                _scatter_ecmp(graph, source, dist, weights, node_flow, column)
            columns[source] = column
        else:
            columns[source] = None
        stats[source] = (group_volume, group_pairs, unrouted)


def _resolve_sources_numpy(
    graph: CompiledGraph,
    weights: Any,
    mode: str,
    groups: Dict[int, List[int]],
    targets: array,
    volumes: array,
    labels: List[Tuple[str, str]],
    changed: List[int],
    columns: Dict[int, Any],
    stats: Dict[int, Tuple[float, int, List[Tuple[str, str, float]]]],
) -> None:
    """Numpy variant: batched ``csgraph`` searches, per-source scatter.

    Searches batch many sources per scipy call (the E12 chunking rule);
    scatter stays per-source because the diff engine retains per-source
    columns.  Counter accounting matches the flat engine's numpy path.
    """
    from .engine import _scatter_ecmp_numpy, _scatter_tree_numpy

    need = []
    for source in changed:
        if any(volumes[p] > 0.0 for p in groups[source]):
            need.append(source)
        else:
            columns[source] = None
            stats[source] = (0.0, 0, [])
    if not need:
        return
    n = graph.num_nodes
    matrix = graph.scipy_csr(weights)
    need_pred = mode == "single"
    chunk = max(1, BATCH_CHUNK_CELLS // max(1, n))
    order = sorted(need)
    for start in range(0, len(order), chunk):
        batch = order[start : start + chunk]
        KERNEL_COUNTERS.batch_dijkstra_calls += 1
        KERNEL_COUNTERS.batch_sources_total += len(batch)
        KERNEL_COUNTERS.traffic_batched_sources += len(batch)
        KERNEL_COUNTERS.single_source += len(batch)  # backend-independent count
        if need_pred:
            dist_rows, pred_rows = _scipy_dijkstra(
                matrix, directed=False, indices=batch, return_predecessors=True
            )
        else:
            dist_rows = _scipy_dijkstra(matrix, directed=False, indices=batch)
            pred_rows = None
        if dist_rows.ndim == 1:
            dist_rows = dist_rows[_np.newaxis, :]
            if pred_rows is not None:
                pred_rows = pred_rows[_np.newaxis, :]
        for k, source in enumerate(batch):
            dist = dist_rows[k]
            node_flow = _np.zeros(n, dtype=_np.float64)
            group_volume = 0.0
            group_pairs = 0
            unrouted: List[Tuple[str, str, float]] = []
            for p in groups[source]:
                volume = volumes[p]
                if volume <= 0.0:
                    continue
                target = targets[p]
                if not _np.isfinite(dist[target]):
                    unrouted.append((*labels[p], volume))
                    continue
                node_flow[target] += volume
                group_volume += volume
                group_pairs += 1
            KERNEL_COUNTERS.traffic_assigned_pairs += group_pairs
            if group_volume > 0.0:
                column = _np.zeros(graph.num_edges, dtype=_np.float64)
                if mode == "single":
                    _scatter_tree_numpy(
                        graph, source, dist, pred_rows[k], node_flow, column
                    )
                else:
                    _scatter_ecmp_numpy(
                        graph, source, dist, weights, node_flow, column
                    )
                columns[source] = column
            else:
                columns[source] = None
            stats[source] = (group_volume, group_pairs, unrouted)


def _combine(
    graph: CompiledGraph,
    use_numpy: bool,
    groups: Dict[int, List[int]],
    columns: Dict[int, Any],
    stats: Dict[int, Tuple[float, int, List[Tuple[str, str, float]]]],
    unmatched: List[Tuple[str, str, float]],
) -> Tuple[Any, float, int, List[Tuple[str, str, float]]]:
    """Sum retained per-source columns into one fresh total, in group order.

    The fixed summation order (compile-time first-appearance source order) is
    what makes step loads history-independent: the total is a pure function
    of the per-source columns, never of which sources were re-resolved when.
    Both backends add source columns in the identical element-wise sequence,
    so backend parity reduces to per-source column parity.
    """
    num_edges = graph.num_edges
    if use_numpy:
        total = _np.zeros(num_edges, dtype=_np.float64)
    else:
        total = array("d", [0.0]) * num_edges
    routed_volume = 0.0
    routed_pairs = 0
    unrouted = list(unmatched)
    for source in groups:
        group_volume, group_pairs, group_unrouted = stats[source]
        routed_volume += group_volume
        routed_pairs += group_pairs
        unrouted.extend(group_unrouted)
        column = columns[source]
        if column is None:
            continue
        if use_numpy:
            total += column
        else:
            for e in range(num_edges):
                total[e] += column[e]
    return total, routed_volume, routed_pairs, unrouted


# ----------------------------------------------------------------------
# Failure cascades
# ----------------------------------------------------------------------
def failure_cascade(
    topology: Topology,
    demand: Any,
    weight: Optional[str] = None,
    mode: Optional[str] = None,
    backend: Optional[str] = None,
    *,
    options: Optional[RoutingOptions] = None,
    endpoint_map: Optional[Dict[str, Any]] = None,
    headroom: float = 0.0,
    max_rounds: Optional[int] = None,
    restore: bool = True,
) -> CascadeResult:
    """Iterate route → overload → trip → re-route to a fixed point.

    Each round routes the full demand (retained per-source columns — only
    the sources whose flow crossed a tripped link are re-routed), trips every
    link whose load exceeds ``capacity * (1 + headroom)`` in ascending edge
    order, removes the batch through one
    :class:`~repro.optimization.incremental.RemoveLinks` move (incremental
    deletions on the dynamic-connectivity engine — no reachability sweep,
    ``KERNEL_COUNTERS.reachability_rebuilds`` stays at zero), and recompiles
    the degraded graph.
    Links without a finite installed capacity (``link.capacity is None``)
    never trip — run :func:`~repro.economics.provisioning.provision_topology`
    first to install capacities.  The cascade terminates because every
    applying round removes at least one link; demand whose targets become
    unreachable is shed into the round's ``unrouted`` column.

    Args:
        topology: A capacity-provisioned topology.  Mutated during the
            cascade; rewound to its original structure before returning
            unless ``restore=False`` (the undo stack re-inserts the original
            ``Link`` objects, leaving the degraded state inspectable only
            through the per-round results).
        demand: A :class:`~repro.geography.demand.DemandMatrix` or a
            :class:`~repro.routing.engine.CompiledDemand` against the
            topology's current snapshot.
        headroom: Survivability slack — see the module docstring.
        max_rounds: Optional cap on routing rounds; hitting it returns
            ``fixed_point=False`` with the last round's trips unapplied.
        restore: Rewind the topology when done (default).

    Returns:
        A :class:`CascadeResult`; ``rounds[-1].flow`` is the fixed-point
        flow and ``served_fraction`` the survivability summary.
    """
    opts = RoutingOptions.normalize(
        options, weight=weight, mode=mode, method=None, backend=backend
    )
    if opts.method not in ("auto", "flat"):
        raise ValueError(
            f"failure_cascade supports method='flat' only (the per-source "
            f"diff needs per-source scatter), got method={opts.method!r}"
        )
    if headroom < 0:
        raise ValueError(f"headroom must be non-negative, got {headroom}")
    if max_rounds is not None and max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    if not isinstance(topology, Topology):
        raise TypeError(
            f"failure_cascade expects a Topology first, "
            f"got {type(topology).__name__}"
        )
    if isinstance(demand, CompiledDemand):
        if endpoint_map is not None:
            raise TypeError(
                "endpoint_map only applies when failure_cascade compiles a "
                "DemandMatrix; this demand is already compiled"
            )
        if demand.graph is not topology.compiled():
            raise TopologyError(
                f"stale CompiledDemand: compiled against snapshot version "
                f"{demand.graph.version}, but topology {topology.name!r} now "
                f"compiles to version {topology.compiled().version} — "
                f"recompile with compile_demand()"
            )
        compiled = demand
    elif hasattr(demand, "pairs"):
        compiled = compile_demand(topology, demand, endpoint_map)
    else:
        raise TypeError(
            f"failure_cascade(topology, demand) needs a DemandMatrix or "
            f"CompiledDemand, got {type(demand).__name__}"
        )

    # Lazy imports: optimization consumes routing results elsewhere, so the
    # move vocabulary is pulled in at call time to keep imports acyclic.
    from ..core.objectives import CostObjective
    from ..optimization.incremental import IncrementalState, RemoveLinks

    state = IncrementalState(topology, CostObjective())
    base_depth = state.undo_depth
    graph = compiled.graph
    groups = _pair_groups(compiled.sources)
    columns: Dict[int, Any] = {}
    stats: Dict[int, Tuple[float, int, List[Tuple[str, str, float]]]] = {}
    unmatched = [
        (a, b, volume)
        for a, b, volume in compiled.unmatched
        if volume > 0
    ]
    to_resolve = list(groups)
    rounds: List[CascadeRound] = []
    fixed_point = True
    try:
        while True:
            weights = graph.edge_weight_column(
                opts.weight, resolve_weight(opts.weight)
            )
            use_numpy = _select_backend(graph, weights, opts)
            KERNEL_COUNTERS.temporal_steps += 1
            KERNEL_COUNTERS.temporal_resolved_sources += len(to_resolve)
            _resolve_sources(
                graph,
                weights,
                opts.mode,
                use_numpy,
                groups,
                compiled.targets,
                compiled.volumes,
                compiled.labels,
                to_resolve,
                columns,
                stats,
            )
            total, routed_volume, routed_pairs, unrouted = _combine(
                graph, use_numpy, groups, columns, stats, unmatched
            )
            capacities = [link.capacity for link in graph.links]
            tripped_edges = [
                e
                for e, capacity in enumerate(capacities)
                if capacity is not None
                and total[e] > capacity * (1.0 + headroom) + TRIP_TOLERANCE
            ]
            tripped_keys = [graph.edge_keys[e] for e in tripped_edges]
            flow = TemporalStepResult(
                graph=graph,
                step=len(rounds),
                edge_loads=total,
                routed_volume=routed_volume,
                routed_pairs=routed_pairs,
                unrouted=unrouted,
                resolved_sources=len(to_resolve),
                mode=opts.mode,
            )
            rounds.append(CascadeRound(flow=flow, tripped=tripped_keys))
            if not tripped_edges:
                break
            if max_rounds is not None and len(rounds) >= max_rounds:
                fixed_point = False
                break
            KERNEL_COUNTERS.cascade_trips += len(tripped_edges)
            state.apply(RemoveLinks(tuple(tripped_keys)))
            # Only sources whose retained flow crossed a tripped link need a
            # re-route; everyone else's column survives the removals (exact
            # on tie-free instances; exact in ECMP mode because the column
            # covers all tied paths).
            to_resolve = _affected_sources(groups, columns, tripped_edges)
            new_graph = topology.compiled()
            _remap_columns(columns, graph, new_graph, skip=set(to_resolve))
            graph = new_graph
    finally:
        if restore:
            state.revert_to(base_depth)
    return CascadeResult(
        rounds=rounds,
        fixed_point=fixed_point,
        headroom=headroom,
        mode=opts.mode,
    )


def _affected_sources(
    groups: Dict[int, List[int]],
    columns: Dict[int, Any],
    tripped_edges: List[int],
) -> List[int]:
    """Sources with nonzero retained flow on any tripped edge, group order."""
    affected = []
    for source in groups:
        column = columns[source]
        if column is None:
            continue
        if any(column[e] != 0.0 for e in tripped_edges):
            affected.append(source)
    return affected


def _remap_columns(
    columns: Dict[int, Any],
    old_graph: CompiledGraph,
    new_graph: CompiledGraph,
    skip: set,
) -> None:
    """Gather retained columns from the old edge space into the new one.

    Link removal preserves the relative order of surviving links, so the new
    edge list is a subsequence of the old one; the gather is a pure bit-copy
    (loads keep their exact float values).  Sources in ``skip`` are about to
    be re-resolved and need no remap.
    """
    old_index = {key: e for e, key in enumerate(old_graph.edge_keys)}
    new_keys = new_graph.edge_keys
    gather = [old_index[key] for key in new_keys]
    use_numpy_gather = _np is not None
    gather_array = (
        _np.asarray(gather, dtype=_np.int64) if use_numpy_gather else None
    )
    for source, column in columns.items():
        if column is None or source in skip:
            continue
        if use_numpy_gather and isinstance(column, _np.ndarray):
            columns[source] = column[gather_array]
        else:
            columns[source] = array("d", (column[e] for e in gather))
