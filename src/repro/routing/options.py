"""Normalized routing options: one vocabulary for every routing entry point.

``route_demand``, the hierarchical overlay, the temporal engine, and the
assignment boundary all take the same three switches — ``mode`` (flow
splitting), ``method`` (flat vs hierarchical), ``backend`` (python vs numpy)
— plus a named ``weight``.  Historically each entry point re-validated its
own kwargs with slightly different spellings; :class:`RoutingOptions` is the
single place the vocabulary is defined and validated, and every error names
the offending field.

The dataclass is frozen so an options object can be shared across routing
calls (the E11/E12/E13 suites build one per sweep point).  ``None`` is not a
valid ``mode``/``method``/``backend`` value here — entry points map their
legacy ``None`` defaults through :meth:`RoutingOptions.normalize`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["RoutingOptions", "ROUTING_MODES", "ROUTING_METHODS", "ROUTING_BACKENDS"]

#: Flow-splitting modes: one canonical shortest path vs equal-cost multipath.
ROUTING_MODES = ("single", "ecmp")

#: Routing methods: the flat one-search-per-source engine, the hierarchical
#: overlay, or automatic selection between them.
ROUTING_METHODS = ("auto", "flat", "hierarchical")

#: Kernel backends (see :func:`repro.topology.compiled.resolve_backend`).
ROUTING_BACKENDS = ("auto", "python", "numpy")


@dataclass(frozen=True)
class RoutingOptions:
    """Validated routing switches shared by every routing entry point.

    Attributes:
        weight: Named weight function for path selection (``None`` = the
            library default, physical length).
        mode: ``"single"`` or ``"ecmp"`` flow splitting.
        method: ``"auto"``, ``"flat"``, or ``"hierarchical"``.
        backend: ``"auto"``, ``"python"``, or ``"numpy"``.

    Validation runs at construction; every error names the bad field, so a
    typo'd kwarg fails loudly at the call site instead of deep in a kernel.
    """

    weight: Optional[str] = None
    mode: str = "single"
    method: str = "auto"
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.weight is not None and not isinstance(self.weight, str):
            raise ValueError(
                f"RoutingOptions.weight must be a weight name or None, "
                f"got {self.weight!r}"
            )
        if self.mode not in ROUTING_MODES:
            raise ValueError(
                f"unknown routing mode {self.mode!r}: RoutingOptions.mode "
                f"must be one of {ROUTING_MODES}"
            )
        if self.method not in ROUTING_METHODS:
            raise ValueError(
                f"unknown routing method {self.method!r}: RoutingOptions.method "
                f"must be one of {ROUTING_METHODS}"
            )
        if self.backend not in ROUTING_BACKENDS:
            raise ValueError(
                f"unknown routing backend {self.backend!r}: RoutingOptions.backend "
                f"must be one of {ROUTING_BACKENDS}"
            )

    @classmethod
    def normalize(
        cls,
        options: Optional["RoutingOptions"] = None,
        *,
        weight: Optional[str] = None,
        mode: Optional[str] = None,
        method: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> "RoutingOptions":
        """Merge an explicit options object with legacy per-call kwargs.

        Passing both ``options`` and any individual kwarg is an error — the
        caller's intent would be ambiguous.  Legacy ``None`` kwargs map to
        the field defaults (``mode="single"``, ``method="auto"``,
        ``backend="auto"``).
        """
        if options is not None:
            if not isinstance(options, cls):
                raise TypeError(
                    f"options must be a RoutingOptions, got {type(options).__name__}"
                )
            extras = [
                name
                for name, value in (
                    ("weight", weight),
                    ("mode", mode),
                    ("method", method),
                    ("backend", backend),
                )
                if value is not None
            ]
            if extras:
                raise ValueError(
                    f"pass routing switches via options= or as individual "
                    f"kwargs, not both (got options= and {', '.join(extras)})"
                )
            return options
        return cls(
            weight=weight,
            mode="single" if mode is None else mode,
            method="auto" if method is None else method,
            backend="auto" if backend is None else backend,
        )

    def with_(self, **changes: object) -> "RoutingOptions":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)
