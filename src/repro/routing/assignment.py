"""Traffic assignment: route a demand matrix and accumulate link loads.

Two implementations share the :class:`AssignmentResult` boundary:

* ``method="batched"`` (default) runs the vectorized traffic engine
  (:mod:`repro.routing.engine`): endpoint names are resolved once into a
  :class:`~repro.routing.engine.CompiledDemand`, one shortest-path search
  runs per unique source, and volumes scatter onto a per-edge load column
  that is flushed back to ``Link.load`` in a single pass.  ``mode="ecmp"``
  additionally splits each pair's volume equally over tied shortest paths.
* ``method="per-pair"`` is the seed implementation — one
  :class:`~repro.routing.paths.PathCache` path resolution per pair with
  per-link object accumulation — kept as the equivalence reference the
  property tests and ``benchmarks/bench_traffic.py`` compare against, and
  the only mode that records per-pair node paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Any, Dict, List, Optional, Tuple

from ..geography.demand import DemandMatrix
from ..topology.compiled import multi_source_dijkstra_indices
from ..topology.graph import Topology
from .engine import route_demand
from .paths import PathCache, resolve_weight


@dataclass
class AssignmentResult:
    """Result of routing a demand matrix over a topology.

    Attributes:
        routed_volume: Total demand successfully routed.
        unrouted_pairs: Demand pairs with no path, with their volumes.
        link_loads: Load per canonical link key after assignment.
        paths: The node path used for each routed (a, b) pair — recorded by
            the per-pair reference only (the batched engine never resolves
            per-pair paths; that is what makes it fast).
    """

    routed_volume: float = 0.0
    unrouted_pairs: List[Tuple[str, str, float]] = field(default_factory=list)
    link_loads: Dict[Tuple[Any, Any], float] = field(default_factory=dict)
    paths: Dict[Tuple[str, str], List[Any]] = field(default_factory=dict)

    @property
    def unrouted_volume(self) -> float:
        """Total demand that could not be routed."""
        return sum(volume for _, _, volume in self.unrouted_pairs)


def assign_demand(
    topology: Topology,
    demand: DemandMatrix,
    endpoint_map: Optional[Dict[str, Any]] = None,
    weight: Optional[str] = None,
    reset_loads: bool = True,
    method: str = "batched",
    mode: str = "single",
    backend: Optional[str] = None,
) -> AssignmentResult:
    """Route every demand pair over shortest paths and add loads to links.

    Args:
        topology: Topology whose link ``load`` fields receive the traffic.
        demand: Demand matrix between named endpoints.
        endpoint_map: Maps demand endpoint names to topology node ids
            (identity mapping when omitted).
        weight: Named weight function for path selection (default: length).
        reset_loads: Zero all link loads before assignment.
        method: ``"batched"`` (the engine) or ``"per-pair"`` (the reference).
        mode: ``"single"`` or ``"ecmp"`` flow splitting (batched only).
        backend: Kernel backend for the batched engine (see
            :func:`repro.routing.engine.route_demand`); ignored by
            ``method="per-pair"``, which is always pure Python.

    Returns:
        An :class:`AssignmentResult`; unrouted pairs (missing nodes or
        disconnected endpoints) are recorded rather than raising.
    """
    if method == "batched":
        flow = route_demand(
            topology,
            demand,
            weight=weight,
            mode=mode,
            backend=backend,
            endpoint_map=endpoint_map,
        )
        flow.flush(reset=reset_loads)
        return AssignmentResult(
            routed_volume=flow.routed_volume,
            unrouted_pairs=flow.unrouted,
            link_loads=flow.link_loads(),
        )
    if method != "per-pair":
        raise ValueError(f"unknown assignment method {method!r}")
    if mode != "single":
        raise ValueError("per-pair assignment only supports mode='single'")
    return _assign_demand_per_pair(topology, demand, endpoint_map, weight, reset_loads)


def _assign_demand_per_pair(
    topology: Topology,
    demand: DemandMatrix,
    endpoint_map: Optional[Dict[str, Any]],
    weight: Optional[str],
    reset_loads: bool,
) -> AssignmentResult:
    """The seed per-pair path: one cached path resolution per demand pair."""
    endpoint_map = endpoint_map or {}
    cache = PathCache(topology, resolve_weight(weight))
    if reset_loads:
        for link in topology.links():
            link.load = 0.0

    result = AssignmentResult()
    link_loads = result.link_loads
    for a, b, volume in demand.pairs():
        node_a = endpoint_map.get(a, a)
        node_b = endpoint_map.get(b, b)
        if not (topology.has_node(node_a) and topology.has_node(node_b)):
            result.unrouted_pairs.append((a, b, volume))
            continue
        routed = cache.route(node_a, node_b)
        if routed is None:
            result.unrouted_pairs.append((a, b, volume))
            continue
        # Link objects come resolved from the predecessor tree: one pass per
        # path instead of a repr-keyed topology.link(u, v) lookup per hop.
        for link, key in zip(routed.links, routed.keys):
            link.load += volume
            link_loads[key] = link_loads.get(key, 0.0) + volume
        result.paths[(a, b)] = routed.nodes
        result.routed_volume += volume
    return result


def route_customer_demand_to_core(
    topology: Topology, weight: Optional[str] = None, reset_loads: bool = True
) -> AssignmentResult:
    """Route every customer node's demand to its nearest core node.

    This is the access-traffic pattern of the paper's formulations: customers
    send/receive through the ISP core rather than to each other directly.
    Implemented as a *single* multi-source Dijkstra growing from all cores at
    once (ties go to the core listed first), instead of one single-source
    search per (customer, core) pair.
    """
    from ..topology.node import NodeRole

    cores = [n.node_id for n in topology.nodes() if n.role == NodeRole.CORE]
    customers = [n for n in topology.nodes() if n.role == NodeRole.CUSTOMER and n.demand > 0]
    if reset_loads:
        for link in topology.links():
            link.load = 0.0
    result = AssignmentResult()
    if not cores:
        result.unrouted_pairs = [
            (str(c.node_id), "<no-core>", c.demand) for c in customers
        ]
        return result

    graph = topology.compiled()
    weights = graph.edge_weights(resolve_weight(weight))
    core_indices = [graph.index_of[core] for core in cores]
    dist, pred, pred_edge, origin = multi_source_dijkstra_indices(
        graph, core_indices, weights
    )
    ids = graph.ids
    edge_keys = graph.edge_keys
    edge_links = graph.links
    link_loads = result.link_loads
    for customer in customers:
        customer_index = graph.index_of[customer.node_id]
        if dist[customer_index] == inf:
            result.unrouted_pairs.append(
                (str(customer.node_id), "<unreachable>", customer.demand)
            )
            continue
        # The predecessor tree is rooted at the cores, so walking it from the
        # customer yields the customer→core path directly, links included.
        path = [customer.node_id]
        current = customer_index
        volume = customer.demand
        while pred[current] != -1:
            edge = pred_edge[current]
            edge_links[edge].load += volume
            key = edge_keys[edge]
            link_loads[key] = link_loads.get(key, 0.0) + volume
            current = pred[current]
            path.append(ids[current])
        best_core = ids[origin[customer_index]]
        result.paths[(str(customer.node_id), str(best_core))] = path
        result.routed_volume += volume
    return result
