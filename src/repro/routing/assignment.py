"""Traffic assignment: route a demand matrix and accumulate link loads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..geography.demand import DemandMatrix
from ..topology.graph import Topology
from .paths import PathCache, resolve_weight


@dataclass
class AssignmentResult:
    """Result of routing a demand matrix over a topology.

    Attributes:
        routed_volume: Total demand successfully routed.
        unrouted_pairs: Demand pairs with no path, with their volumes.
        link_loads: Load per canonical link key after assignment.
        paths: The node path used for each routed (a, b) pair.
    """

    routed_volume: float = 0.0
    unrouted_pairs: List[Tuple[str, str, float]] = field(default_factory=list)
    link_loads: Dict[Tuple[Any, Any], float] = field(default_factory=dict)
    paths: Dict[Tuple[str, str], List[Any]] = field(default_factory=dict)

    @property
    def unrouted_volume(self) -> float:
        """Total demand that could not be routed."""
        return sum(volume for _, _, volume in self.unrouted_pairs)


def assign_demand(
    topology: Topology,
    demand: DemandMatrix,
    endpoint_map: Optional[Dict[str, Any]] = None,
    weight: Optional[str] = None,
    reset_loads: bool = True,
) -> AssignmentResult:
    """Route every demand pair over its shortest path and add loads to links.

    Args:
        topology: Topology whose link ``load`` fields receive the traffic.
        demand: Demand matrix between named endpoints.
        endpoint_map: Maps demand endpoint names to topology node ids
            (identity mapping when omitted).
        weight: Named weight function for path selection (default: length).
        reset_loads: Zero all link loads before assignment.

    Returns:
        An :class:`AssignmentResult`; unrouted pairs (missing nodes or
        disconnected endpoints) are recorded rather than raising.
    """
    endpoint_map = endpoint_map or {}
    cache = PathCache(topology, resolve_weight(weight))
    if reset_loads:
        for link in topology.links():
            link.load = 0.0

    result = AssignmentResult()
    for a, b, volume in demand.pairs():
        node_a = endpoint_map.get(a, a)
        node_b = endpoint_map.get(b, b)
        if not (topology.has_node(node_a) and topology.has_node(node_b)):
            result.unrouted_pairs.append((a, b, volume))
            continue
        path = cache.path(node_a, node_b)
        if path is None:
            result.unrouted_pairs.append((a, b, volume))
            continue
        for u, v in zip(path, path[1:]):
            link = topology.link(u, v)
            link.load += volume
            result.link_loads[link.key] = result.link_loads.get(link.key, 0.0) + volume
        result.paths[(a, b)] = path
        result.routed_volume += volume
    return result


def route_customer_demand_to_core(
    topology: Topology, weight: Optional[str] = None, reset_loads: bool = True
) -> AssignmentResult:
    """Route every customer node's demand to its nearest core node.

    This is the access-traffic pattern of the paper's formulations: customers
    send/receive through the ISP core rather than to each other directly.
    """
    from ..topology.node import NodeRole

    cores = [n.node_id for n in topology.nodes() if n.role == NodeRole.CORE]
    customers = [n for n in topology.nodes() if n.role == NodeRole.CUSTOMER and n.demand > 0]
    if reset_loads:
        for link in topology.links():
            link.load = 0.0
    result = AssignmentResult()
    if not cores:
        result.unrouted_pairs = [
            (str(c.node_id), "<no-core>", c.demand) for c in customers
        ]
        return result

    cache = PathCache(topology, resolve_weight(weight))
    for customer in customers:
        best_core = None
        best_distance = float("inf")
        for core in cores:
            distance = cache.distance(customer.node_id, core)
            if distance < best_distance:
                best_distance = distance
                best_core = core
        if best_core is None or best_distance == float("inf"):
            result.unrouted_pairs.append((str(customer.node_id), "<unreachable>", customer.demand))
            continue
        path = cache.path(customer.node_id, best_core)
        if path is None:
            result.unrouted_pairs.append((str(customer.node_id), str(best_core), customer.demand))
            continue
        for u, v in zip(path, path[1:]):
            link = topology.link(u, v)
            link.load += customer.demand
            result.link_loads[link.key] = result.link_loads.get(link.key, 0.0) + customer.demand
        result.paths[(str(customer.node_id), str(best_core))] = path
        result.routed_volume += customer.demand
    return result
